//! Per-path cost breakdown for the batched check path.
//!
//! ```text
//! cargo run --release -p draco-core --example batch_microbench
//! ```
//!
//! Times the scalar `check()` loop against `check_batch()` on warm,
//! hit-dominated streams so the staging overhead and the per-check
//! bookkeeping are visible in isolation. Not a tracked benchmark —
//! use `repro throughput` for recorded numbers.

use std::hint::black_box;
use std::time::Instant;

use draco_core::{DracoChecker, Decision};
use draco_profiles::{ProfileGenerator, ProfileKind};
use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};

fn req(nr: u16, args: &[u64]) -> SyscallRequest {
    SyscallRequest::new(0x7000, SyscallId::new(nr), ArgSet::from_slice(args))
}

fn build_checker() -> DracoChecker {
    let mut gen = ProfileGenerator::new("microbench");
    gen.observe(&req(0, &[3, 0x1000, 64]));
    gen.observe(&req(0, &[4, 0x2000, 128]));
    gen.observe(&req(1, &[5, 0x3000, 256]));
    gen.observe(&req(39, &[]));
    gen.observe(&req(96, &[]));
    let profile = gen.emit(ProfileKind::SyscallComplete);
    DracoChecker::from_profile(&profile).expect("profile compiles")
}

fn bench(label: &str, stream: &[SyscallRequest], batch: usize, iters: usize) -> f64 {
    let mut checker = build_checker();
    let mut out = vec![Decision::KILLED; batch.max(1)];
    // Warm every key so the measured loop is hit-only.
    for r in stream {
        black_box(checker.check(r));
    }
    let start = Instant::now();
    if batch == 0 {
        for _ in 0..iters {
            for r in stream {
                black_box(checker.check(r));
            }
        }
    } else {
        for _ in 0..iters {
            for chunk in stream.chunks(batch) {
                checker.check_batch(chunk, &mut out[..chunk.len()]);
                black_box(&out);
            }
        }
    }
    let elapsed = start.elapsed();
    let checks = (stream.len() * iters) as f64;
    let ns = elapsed.as_nanos() as f64 / checks;
    println!("{label:<28} {ns:>8.1} ns/check  ({:.2} Mchecks/s)", 1e3 / ns);
    ns
}

fn main() {
    // Mixed stream: 2/6 SPT exits, 4/6 VAT-backed keys, mirrors the
    // pipe-style replay mix.
    let mixed: Vec<SyscallRequest> = (0..4096)
        .map(|i| match i % 6 {
            0 => req(39, &[]),
            1 => req(96, &[]),
            2 => req(0, &[3, 0x1000, 64]),
            3 => req(0, &[4, 0x2000, 128]),
            4 => req(1, &[5, 0x3000, 256]),
            _ => req(0, &[3, 0x1000, 64]),
        })
        .collect();
    let vat_only: Vec<SyscallRequest> = (0..4096)
        .map(|i| match i % 3 {
            0 => req(0, &[3, 0x1000, 64]),
            1 => req(0, &[4, 0x2000, 128]),
            _ => req(1, &[5, 0x3000, 256]),
        })
        .collect();
    let spt_only: Vec<SyscallRequest> = (0..4096)
        .map(|i| if i % 2 == 0 { req(39, &[]) } else { req(96, &[]) })
        .collect();

    let iters = 2000;
    println!("== mixed (1/3 SPT exit, 2/3 VAT) ==");
    let scalar = bench("scalar", &mixed, 0, iters);
    for b in [16usize, 64, 256] {
        let ns = bench(&format!("batch={b}"), &mixed, b, iters);
        println!("{:>38} speedup {:.2}x", "", scalar / ns);
    }
    println!("== vat-only ==");
    let scalar = bench("scalar", &vat_only, 0, iters);
    let ns = bench("batch=64", &vat_only, 64, iters);
    println!("{:>38} speedup {:.2}x", "", scalar / ns);
    // One argument set per syscall — the replay-trace shape (pipe-style
    // read/write loops) where the bulk commit path engages.
    let pipe_like: Vec<SyscallRequest> = (0..4096)
        .map(|i| match i % 2 {
            0 => req(0, &[3, 0x1000, 64]),
            _ => req(1, &[5, 0x3000, 256]),
        })
        .collect();
    println!("== pipe-like (one key per syscall) ==");
    let scalar = bench("scalar", &pipe_like, 0, iters);
    let ns = bench("batch=64", &pipe_like, 64, iters);
    println!("{:>38} speedup {:.2}x", "", scalar / ns);
    println!("== spt-only ==");
    let scalar = bench("scalar", &spt_only, 0, iters);
    let ns = bench("batch=64", &spt_only, 64, iters);
    println!("{:>38} speedup {:.2}x", "", scalar / ns);

    // Per-stage breakdown of the batch path via the span tracer
    // (sample every batch; each batch records one span per stage).
    println!("== batch=64 stage breakdown (vat-only stream) ==");
    let mut checker = build_checker();
    checker.enable_span_trace(1 << 16, 1);
    let mut out = vec![Decision::KILLED; 64];
    for r in &vat_only {
        black_box(checker.check(r));
    }
    let _ = checker.take_span_tracer();
    checker.enable_span_trace(1 << 16, 1);
    for _ in 0..120 {
        for chunk in vat_only.chunks(64) {
            checker.check_batch(chunk, &mut out[..chunk.len()]);
        }
    }
    let tracer = checker.take_span_tracer().expect("installed");
    let mut by_stage: std::collections::BTreeMap<String, (u64, u64)> = Default::default();
    for s in tracer.spans() {
        let e = by_stage.entry(format!("{:?}", s.stage)).or_insert((0, 0));
        e.0 += s.dur_ns;
        e.1 += 1;
    }
    let total: u64 = by_stage.values().map(|v| v.0).sum();
    for (stage, (ns, n)) in &by_stage {
        println!(
            "{stage:<22} {:>10} ns total  {:>7.1} ns/span  {:>5.1}%",
            ns,
            *ns as f64 / *n as f64,
            *ns as f64 * 100.0 / total as f64
        );
    }
}
