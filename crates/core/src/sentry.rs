//! Two-layer checking for user-level kernels (paper §VIII).
//!
//! gVisor routes application system calls through a user-level guardian
//! (the *Sentry*), which services most of them itself and issues its own,
//! narrower set of *host* system calls under a host Seccomp filter. The
//! paper notes Draco "can be applied to user-level container
//! technologies such as Google's gVisor" — both layers are `(ID, args)`
//! checks over stateless policies, so both get a Draco checker.

use core::fmt;

use draco_profiles::ProfileSpec;
use draco_syscalls::{SyscallId, SyscallRequest};

use crate::{CheckResult, CheckerStats, DracoChecker, DracoError};

/// How the Sentry disposes of one application system call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SentryOutcome {
    /// The application-facing policy rejected the call outright.
    DeniedByPolicy,
    /// The Sentry emulated the call without touching the host kernel.
    Emulated,
    /// The Sentry issued a host syscall, and the host filter allowed it.
    ForwardedAllowed,
    /// The Sentry issued a host syscall the host filter rejected — a
    /// Sentry-compromise containment event.
    ForwardedDenied,
}

impl SentryOutcome {
    /// True if the application call ultimately succeeded.
    pub const fn succeeded(self) -> bool {
        matches!(self, SentryOutcome::Emulated | SentryOutcome::ForwardedAllowed)
    }
}

/// The user-level guardian: an application-facing Draco checker in front
/// of a host-facing one.
///
/// `forwards` maps application syscall IDs to the host syscall the Sentry
/// issues to service them; unmapped allowed calls are emulated entirely
/// in user space (the common case in gVisor).
///
/// # Example
///
/// ```
/// use draco_core::{SentryOutcome, SentryPipeline};
/// use draco_profiles::{docker_default, gvisor_default};
/// use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};
///
/// let mut sentry = SentryPipeline::new(
///     &docker_default(),
///     &gvisor_default(),
///     &[(SyscallId::new(0), SyscallId::new(0))], // app read → host read
/// )?;
/// let read = SyscallRequest::new(0, SyscallId::new(0), ArgSet::from_slice(&[3, 0, 8]));
/// assert_eq!(sentry.handle(&read), SentryOutcome::ForwardedAllowed);
/// # Ok::<(), draco_core::DracoError>(())
/// ```
#[derive(Debug)]
pub struct SentryPipeline {
    app: DracoChecker,
    host: DracoChecker,
    forwards: Vec<(SyscallId, SyscallId)>,
    emulated: u64,
    forwarded: u64,
    contained: u64,
}

impl SentryPipeline {
    /// Builds the pipeline from the application policy, the host filter
    /// (e.g. [`draco_profiles::gvisor_default`]), and the forwarding map.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] if either profile's filter fails to
    /// compile.
    pub fn new(
        app_policy: &ProfileSpec,
        host_policy: &ProfileSpec,
        forwards: &[(SyscallId, SyscallId)],
    ) -> Result<Self, DracoError> {
        Ok(SentryPipeline {
            app: DracoChecker::from_profile(app_policy)?,
            host: DracoChecker::from_profile(host_policy)?,
            forwards: forwards.to_vec(),
            emulated: 0,
            forwarded: 0,
            contained: 0,
        })
    }

    /// Handles one application system call through both layers.
    pub fn handle(&mut self, req: &SyscallRequest) -> SentryOutcome {
        let app_verdict: CheckResult = self.app.check(req);
        if !app_verdict.action.permits() {
            return SentryOutcome::DeniedByPolicy;
        }
        let Some(&(_, host_id)) = self.forwards.iter().find(|(a, _)| *a == req.id) else {
            self.emulated += 1;
            return SentryOutcome::Emulated;
        };
        // The Sentry re-issues the call against the host kernel from its
        // own code; same arguments, the Sentry's call site.
        let host_req = SyscallRequest::new(0xdead_0000 + u64::from(host_id), host_id, req.args);
        if self.host.check(&host_req).action.permits() {
            self.forwarded += 1;
            SentryOutcome::ForwardedAllowed
        } else {
            self.contained += 1;
            SentryOutcome::ForwardedDenied
        }
    }

    /// Application-layer checker statistics.
    pub fn app_stats(&self) -> CheckerStats {
        self.app.stats()
    }

    /// Host-layer checker statistics.
    pub fn host_stats(&self) -> CheckerStats {
        self.host.stats()
    }

    /// `(emulated, forwarded, contained)` counters.
    pub const fn dispositions(&self) -> (u64, u64, u64) {
        (self.emulated, self.forwarded, self.contained)
    }
}

impl fmt::Display for SentryPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sentry: {} emulated, {} forwarded, {} contained",
            self.emulated, self.forwarded, self.contained
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_bpf::SeccompAction;
    use draco_profiles::{
        gvisor_default, ProfileSpec, RuleSource, SyscallRule,
    };
    use draco_syscalls::ArgSet;

    fn req(nr: u16, args: &[u64]) -> SyscallRequest {
        SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
    }

    fn app_policy(allowed: &[u16]) -> ProfileSpec {
        let mut p = ProfileSpec::new("app", SeccompAction::Errno(1));
        for &nr in allowed {
            p.allow(SyscallId::new(nr), SyscallRule::any(RuleSource::Application));
        }
        p
    }

    #[test]
    fn three_way_disposition() {
        // App may read(0), getpid(39) and ptrace(101). The Sentry
        // emulates getpid, forwards read to host read, and forwards
        // ptrace — which the gVisor host filter contains.
        let mut sentry = SentryPipeline::new(
            &app_policy(&[0, 39, 101]),
            &gvisor_default(),
            &[
                (SyscallId::new(0), SyscallId::new(0)),
                (SyscallId::new(101), SyscallId::new(101)),
            ],
        )
        .unwrap();
        assert_eq!(sentry.handle(&req(39, &[])), SentryOutcome::Emulated);
        assert_eq!(
            sentry.handle(&req(0, &[3, 0, 8])),
            SentryOutcome::ForwardedAllowed
        );
        assert_eq!(
            sentry.handle(&req(101, &[0, 1])),
            SentryOutcome::ForwardedDenied,
            "host filter contains the Sentry"
        );
        assert_eq!(
            sentry.handle(&req(57, &[])),
            SentryOutcome::DeniedByPolicy
        );
        assert_eq!(sentry.dispositions(), (1, 1, 1));
        assert!(sentry.to_string().contains("1 contained"));
    }

    #[test]
    fn both_layers_cache_independently() {
        let mut sentry = SentryPipeline::new(
            &app_policy(&[0]),
            &gvisor_default(),
            &[(SyscallId::new(0), SyscallId::new(0))],
        )
        .unwrap();
        for _ in 0..5 {
            assert!(sentry.handle(&req(0, &[3, 0, 8])).succeeded());
        }
        assert!(sentry.app_stats().cache_hit_rate() > 0.5);
        assert!(sentry.host_stats().cache_hit_rate() > 0.5);
        assert_eq!(sentry.app_stats().total(), 5);
        assert_eq!(sentry.host_stats().total(), 5);
    }

    #[test]
    fn outcome_helpers() {
        assert!(SentryOutcome::Emulated.succeeded());
        assert!(SentryOutcome::ForwardedAllowed.succeeded());
        assert!(!SentryOutcome::DeniedByPolicy.succeeded());
        assert!(!SentryOutcome::ForwardedDenied.succeeded());
    }
}
