//! Errors surfaced by software Draco.

use core::fmt;

/// Errors constructing or operating a Draco checker.
#[derive(Debug)]
#[non_exhaustive]
pub enum DracoError {
    /// The profile could not be compiled to a fallback filter.
    FilterCompile(draco_bpf::BpfError),
    /// The fallback filter faulted at run time.
    FilterRuntime(draco_bpf::BpfError),
    /// A hot reload was refused by
    /// [`ReloadPolicy::RequireRefinement`](crate::ReloadPolicy): the
    /// candidate profile would relax — or could not be proven not to
    /// relax — the installed policy.
    ReloadRejected {
        /// The overall relation of the candidate vs. the installed
        /// policy (never `Equivalent`/`Refines` here).
        relation: draco_bpf::semdiff::Relation,
        /// The first offending per-syscall diff, carrying a
        /// VM-verified divergence witness when the search found one.
        diff: Option<draco_bpf::semdiff::SyscallDiff>,
    },
}

impl fmt::Display for DracoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DracoError::FilterCompile(e) => write!(f, "fallback filter compilation failed: {e}"),
            DracoError::FilterRuntime(e) => write!(f, "fallback filter execution failed: {e}"),
            DracoError::ReloadRejected { relation, diff } => {
                write!(
                    f,
                    "hot reload refused: candidate policy is not a refinement of the installed one (relation: {relation}"
                )?;
                if let Some(d) = diff {
                    write!(f, " at syscall {}", d.nr)?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for DracoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DracoError::FilterCompile(e) | DracoError::FilterRuntime(e) => Some(e),
            DracoError::ReloadRejected { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = DracoError::FilterCompile(draco_bpf::BpfError::Empty);
        assert!(err.to_string().contains("compilation failed"));
        assert!(std::error::Error::source(&err).is_some());
        let err = DracoError::FilterRuntime(draco_bpf::BpfError::RuntimeDivisionByZero);
        assert!(err.to_string().contains("execution failed"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<DracoError>();
    }
}
