//! A minimal OS layer multiplexing Draco-checked processes.
//!
//! The paper's kernel keeps one SPT/VAT pair per process (§V, §VII-A);
//! [`DracoOs`] models that ownership: a process table, spawn/fork/exec
//! lifecycle (exec replaces the process image, so it may install a new
//! profile — *installing* a filter is allowed; *modifying* a running
//! process's filter is not, per §VII-B), syscall dispatch by PID, and
//! fleet-wide statistics.

use std::collections::BTreeMap;
use std::fmt;

use draco_profiles::ProfileSpec;
use draco_syscalls::SyscallRequest;

use crate::{CheckResult, CheckerStats, DracoError, DracoProcess, ProcessId};

/// Errors from OS-level process operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum OsError {
    /// No such process.
    NoSuchProcess(ProcessId),
    /// The PID is already in use.
    PidInUse(ProcessId),
    /// The underlying checker failed to build.
    Draco(DracoError),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::NoSuchProcess(pid) => write!(f, "no such process {pid}"),
            OsError::PidInUse(pid) => write!(f, "{pid} already exists"),
            OsError::Draco(e) => write!(f, "checker construction failed: {e}"),
        }
    }
}

impl std::error::Error for OsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OsError::Draco(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DracoError> for OsError {
    fn from(e: DracoError) -> Self {
        OsError::Draco(e)
    }
}

/// The process table of a Draco-enabled kernel.
///
/// # Example
///
/// ```
/// use draco_core::{DracoOs, ProcessId};
/// use draco_profiles::docker_default;
/// use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};
///
/// let mut os = DracoOs::new();
/// let pid = os.spawn(&docker_default())?;
/// let read = SyscallRequest::new(0, SyscallId::new(0), ArgSet::from_slice(&[3, 0, 8]));
/// assert!(os.syscall(pid, &read)?.action.permits());
/// # Ok::<(), draco_core::OsError>(())
/// ```
#[derive(Debug, Default)]
pub struct DracoOs {
    processes: BTreeMap<ProcessId, DracoProcess>,
    next_pid: u32,
    reaped: u64,
}

impl DracoOs {
    /// Creates an empty process table.
    pub fn new() -> Self {
        DracoOs {
            processes: BTreeMap::new(),
            next_pid: 1,
            reaped: 0,
        }
    }

    fn allocate_pid(&mut self) -> ProcessId {
        loop {
            let pid = ProcessId(self.next_pid);
            self.next_pid = self.next_pid.wrapping_add(1).max(1);
            if !self.processes.contains_key(&pid) {
                return pid;
            }
        }
    }

    /// Spawns a process with the given profile installed; returns its PID.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Draco`] if the profile's filter fails to
    /// compile.
    pub fn spawn(&mut self, profile: &ProfileSpec) -> Result<ProcessId, OsError> {
        let pid = self.allocate_pid();
        let proc = DracoProcess::spawn(pid, profile)?;
        self.processes.insert(pid, proc);
        Ok(pid)
    }

    /// Forks `parent`: the child inherits the profile with cold tables.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NoSuchProcess`] for an unknown parent.
    pub fn fork(&mut self, parent: ProcessId) -> Result<ProcessId, OsError> {
        let child_pid = self.allocate_pid();
        let parent_proc = self
            .processes
            .get(&parent)
            .ok_or(OsError::NoSuchProcess(parent))?;
        let child = parent_proc.fork(child_pid)?;
        self.processes.insert(child_pid, child);
        Ok(child_pid)
    }

    /// `exec`: replaces the process image, installing a (possibly
    /// different) profile with fresh tables. The PID is preserved.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NoSuchProcess`] for an unknown PID.
    pub fn exec(&mut self, pid: ProcessId, profile: &ProfileSpec) -> Result<(), OsError> {
        if !self.processes.contains_key(&pid) {
            return Err(OsError::NoSuchProcess(pid));
        }
        let fresh = DracoProcess::spawn(pid, profile)?;
        self.processes.insert(pid, fresh);
        Ok(())
    }

    /// Dispatches one system call to a process.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NoSuchProcess`] for an unknown PID.
    pub fn syscall(
        &mut self,
        pid: ProcessId,
        req: &SyscallRequest,
    ) -> Result<CheckResult, OsError> {
        let proc = self
            .processes
            .get_mut(&pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        Ok(proc.syscall(req))
    }

    /// Access to a process.
    pub fn process(&self, pid: ProcessId) -> Option<&DracoProcess> {
        self.processes.get(&pid)
    }

    /// PIDs currently in the table, ascending.
    pub fn pids(&self) -> Vec<ProcessId> {
        self.processes.keys().copied().collect()
    }

    /// Number of live (not-killed) processes.
    pub fn live_count(&self) -> usize {
        self.processes.values().filter(|p| p.is_alive()).count()
    }

    /// Removes dead processes; returns how many were reaped.
    pub fn reap(&mut self) -> usize {
        let before = self.processes.len();
        self.processes.retain(|_, p| p.is_alive());
        let reaped = before - self.processes.len();
        self.reaped += reaped as u64;
        reaped
    }

    /// Total processes reaped over the OS lifetime.
    pub const fn total_reaped(&self) -> u64 {
        self.reaped
    }

    /// Fleet-wide checker statistics (sum over live processes).
    pub fn aggregate_stats(&self) -> CheckerStats {
        let mut total = CheckerStats::default();
        for p in self.processes.values() {
            let s = p.stats();
            total.spt_hits += s.spt_hits;
            total.vat_hits += s.vat_hits;
            total.filter_runs += s.filter_runs;
            total.filter_insns += s.filter_insns;
            total.denials += s.denials;
            total.vat_inserts += s.vat_inserts;
        }
        total
    }

    /// Total VAT bytes across live processes (each process pays for its
    /// own tables — the §XI-C footprint is per process).
    pub fn total_vat_bytes(&self) -> usize {
        self.processes
            .values()
            .map(|p| p.checker().vat().footprint_bytes())
            .sum()
    }
}

impl fmt::Display for DracoOs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DracoOs: {} processes ({} live), {}",
            self.processes.len(),
            self.live_count(),
            self.aggregate_stats()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_bpf::SeccompAction;
    use draco_profiles::{docker_default, firecracker, gvisor_default};
    use draco_syscalls::{ArgSet, SyscallId};

    fn req(nr: u16, args: &[u64]) -> SyscallRequest {
        SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
    }

    #[test]
    fn spawn_dispatch_and_stats() {
        let mut os = DracoOs::new();
        let a = os.spawn(&docker_default()).unwrap();
        let b = os.spawn(&firecracker()).unwrap();
        assert_ne!(a, b);
        assert_eq!(os.pids(), vec![a, b]);
        // Same syscall, different verdicts per process profile.
        let ptrace = req(101, &[0, 0]);
        assert!(!os.syscall(a, &ptrace).unwrap().action.permits());
        assert!(!os.syscall(b, &ptrace).unwrap().action.permits());
        let read = req(0, &[3, 0, 64]);
        assert!(os.syscall(a, &read).unwrap().action.permits());
        assert_eq!(os.aggregate_stats().total(), 3);
    }

    #[test]
    fn per_process_isolation_of_tables() {
        let mut os = DracoOs::new();
        let a = os.spawn(&docker_default()).unwrap();
        let b = os.spawn(&docker_default()).unwrap();
        let read = req(0, &[3, 0, 64]);
        os.syscall(a, &read).unwrap();
        os.syscall(a, &read).unwrap();
        // Process a has warmed its SPT; b is still cold.
        assert!(os.process(a).unwrap().stats().spt_hits > 0);
        assert_eq!(os.process(b).unwrap().stats().total(), 0);
        let r = os.syscall(b, &read).unwrap();
        assert!(!r.path.is_cache_hit(), "b's tables are its own");
    }

    #[test]
    fn kill_and_reap() {
        let mut os = DracoOs::new();
        let a = os.spawn(&gvisor_default()).unwrap(); // kill-process default
        let b = os.spawn(&gvisor_default()).unwrap();
        os.syscall(a, &req(101, &[0, 0])).unwrap(); // ptrace → killed
        assert_eq!(os.live_count(), 1);
        assert_eq!(os.reap(), 1);
        assert!(os.process(a).is_none());
        assert!(os.process(b).is_some());
        assert_eq!(os.total_reaped(), 1);
    }

    #[test]
    fn fork_preserves_profile_exec_replaces_it() {
        let mut os = DracoOs::new();
        let parent = os.spawn(&docker_default()).unwrap();
        let child = os.fork(parent).unwrap();
        assert_eq!(
            os.process(child).unwrap().profile().name(),
            "docker-default"
        );
        os.exec(child, &firecracker()).unwrap();
        assert_eq!(os.process(child).unwrap().profile().name(), "firecracker");
        // Parent unaffected.
        assert_eq!(
            os.process(parent).unwrap().profile().name(),
            "docker-default"
        );
    }

    #[test]
    fn errors_are_typed() {
        let mut os = DracoOs::new();
        let missing = ProcessId(99);
        assert!(matches!(
            os.syscall(missing, &req(0, &[])),
            Err(OsError::NoSuchProcess(_))
        ));
        assert!(matches!(
            os.fork(missing),
            Err(OsError::NoSuchProcess(_))
        ));
        assert!(matches!(
            os.exec(missing, &firecracker()),
            Err(OsError::NoSuchProcess(_))
        ));
        let msg = OsError::NoSuchProcess(missing).to_string();
        assert!(msg.contains("pid:99"));
    }

    #[test]
    fn vat_accounting_is_per_process() {
        let mut os = DracoOs::new();
        let a = os.spawn(&docker_default()).unwrap();
        let before = os.total_vat_bytes();
        // personality is argument-checked in docker-default → VAT table.
        os.syscall(a, &req(135, &[0xffff_ffff])).unwrap();
        assert!(os.total_vat_bytes() > before);
    }

    #[test]
    fn display_is_informative() {
        let mut os = DracoOs::new();
        os.spawn(&firecracker()).unwrap();
        let s = os.to_string();
        assert!(s.contains("1 processes"));
        assert_eq!(DracoOs::default().live_count(), 0);
    }

    #[test]
    fn denied_spawn_action_kills_only_with_kill_action() {
        // An errno-default profile never kills the process.
        let mut os = DracoOs::new();
        let mut profile = ProfileSpec::new("errno", SeccompAction::Errno(1));
        profile.allow(
            SyscallId::new(39),
            draco_profiles::SyscallRule::any(draco_profiles::RuleSource::Runtime),
        );
        let pid = os.spawn(&profile).unwrap();
        for _ in 0..5 {
            let r = os.syscall(pid, &req(101, &[0, 0])).unwrap();
            assert_eq!(r.action, SeccompAction::Errno(1));
        }
        assert_eq!(os.live_count(), 1);
    }
}
