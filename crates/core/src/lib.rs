//! Software Draco: cached system-call checking (the paper's §V–§VII).
//!
//! Draco's insight is that system call streams have locality: the same
//! `(ID, argument set)` pairs recur within tens of calls (paper Fig. 3).
//! Instead of executing the Seccomp filter at every syscall, Draco caches
//! validated pairs and re-admits them with a table lookup:
//!
//! * [`Spt`] — the **System Call Permissions Table**: one entry per
//!   syscall ID holding a Valid bit, the VAT base, and the 48-bit
//!   Argument Bitmask (paper Fig. 5);
//! * [`Vat`] — the **Validated Argument Table**: per-syscall bounded
//!   2-ary cuckoo hash tables of validated argument sets, hashed with the
//!   ECMA / ¬ECMA CRC pair (paper §VII-A);
//! * [`DracoChecker`] — the check workflow of paper Fig. 4: table hit →
//!   allow; miss → run the Seccomp filter; on success update the tables;
//! * [`DracoProcess`] — per-process state with fork semantics and the
//!   profile-immutability guarantee the soundness argument rests on.
//!
//! The correctness argument is the paper's: Seccomp profiles are
//! *stateless*, so a `(ID, argument set)` pair that validated once will
//! validate forever — caching cannot change any decision, only its cost.
//! The repo-level `equivalence` tests verify this against the
//! [`ProfileSpec::evaluate`](draco_profiles::ProfileSpec::evaluate) oracle
//! on arbitrary call streams.
//!
//! # Example
//!
//! ```
//! use draco_core::{CheckPath, DracoChecker};
//! use draco_profiles::docker_default;
//! use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};
//!
//! let mut checker = DracoChecker::from_profile(&docker_default())?;
//! let read = SyscallRequest::new(0x1000, SyscallId::new(0), ArgSet::from_slice(&[3, 0, 64]));
//! // First encounter runs the filter and fills the tables…
//! let first = checker.check(&read);
//! assert!(first.action.permits());
//! assert!(matches!(first.path, CheckPath::FilterRun { .. }));
//! // …subsequent encounters hit the cache and skip the filter entirely.
//! let second = checker.check(&read);
//! assert!(second.action.permits());
//! assert!(second.path.is_cache_hit());
//! # Ok::<(), draco_core::DracoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod checker;
mod error;
mod os;
mod process;
mod sentry;
mod shared;
mod spt;
mod stats;
mod vat;

pub use checker::{
    deny_audit_event, BatchScratch, CheckMode, CheckPath, CheckResult, Decision, DracoChecker,
    EngineKind, FilterEngine,
};
pub use error::DracoError;
pub use os::{DracoOs, OsError};
pub use process::{DracoProcess, ProcessId};
pub use sentry::{SentryOutcome, SentryPipeline};
pub use shared::{
    ReloadDecision, ReloadPolicy, SharedBatchScratch, SharedDracoProcess, SharedThreadHandle,
};
pub use spt::{Spt, SptEntry};
pub use stats::{BatchStats, CheckerStats};
pub use vat::{Vat, VatKey, VatLookup};
