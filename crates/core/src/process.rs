//! Per-process Draco state.
//!
//! The OS owns one SPT/VAT pair per process (paper §V: "the SPT contains
//! information for one process", and §VII-A: "The OS kernel is
//! responsible for filling the VAT of each process"). `DracoProcess`
//! bundles a checker with a process identity, enforces the
//! profile-immutability rule (§VII-B: "system call filters are not
//! modified during process runtime"), and provides fork semantics.

use core::fmt;

use draco_profiles::{ProfileAnalysis, ProfileSpec};
use draco_syscalls::SyscallRequest;

use crate::{CheckResult, CheckerStats, Decision, DracoChecker, DracoError, EngineKind};

/// A process identifier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// A process with an installed, immutable Draco-backed profile.
///
/// # Example
///
/// ```
/// use draco_core::{DracoProcess, ProcessId};
/// use draco_profiles::firecracker;
///
/// let mut p = DracoProcess::spawn(ProcessId(1), &firecracker())?;
/// assert_eq!(p.pid(), ProcessId(1));
/// # Ok::<(), draco_core::DracoError>(())
/// ```
#[derive(Debug)]
pub struct DracoProcess {
    pid: ProcessId,
    checker: DracoChecker,
    alive: bool,
}

impl DracoProcess {
    /// Creates a process with the given profile installed.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] if the profile's filter fails to compile.
    pub fn spawn(pid: ProcessId, profile: &ProfileSpec) -> Result<Self, DracoError> {
        Self::spawn_with_engine(pid, profile, EngineKind::Compiled)
    }

    /// Creates a process like [`DracoProcess::spawn`] with an explicit
    /// miss-path filter engine (e.g. [`EngineKind::Dag`] for the
    /// specialized decision DAG).
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] if the profile's filter fails to compile.
    pub fn spawn_with_engine(
        pid: ProcessId,
        profile: &ProfileSpec,
        kind: EngineKind,
    ) -> Result<Self, DracoError> {
        Ok(DracoProcess {
            pid,
            checker: DracoChecker::from_profile_with_engine(profile, kind)?,
            alive: true,
        })
    }

    /// Creates a process with the profile installed *and* a precomputed
    /// filter-analysis plan: the OS analyzed the filter at install time
    /// (once per profile, shareable across processes), preloaded the
    /// SPT, and proven always-allow syscalls take the no-VAT fast path
    /// from their very first call.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] if the profile's filter fails to compile.
    ///
    /// # Panics
    ///
    /// Panics if `analysis` was computed for a different profile (see
    /// [`DracoChecker::install_analysis`]).
    pub fn spawn_analyzed(
        pid: ProcessId,
        profile: &ProfileSpec,
        analysis: &ProfileAnalysis,
    ) -> Result<Self, DracoError> {
        Self::spawn_analyzed_with_engine(pid, profile, analysis, EngineKind::Compiled)
    }

    /// Like [`DracoProcess::spawn_analyzed`] with an explicit miss-path
    /// filter engine.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] if the profile's filter fails to compile.
    ///
    /// # Panics
    ///
    /// Panics if `analysis` was computed for a different profile (see
    /// [`DracoChecker::install_analysis`]).
    pub fn spawn_analyzed_with_engine(
        pid: ProcessId,
        profile: &ProfileSpec,
        analysis: &ProfileAnalysis,
        kind: EngineKind,
    ) -> Result<Self, DracoError> {
        let mut checker = DracoChecker::from_profile_with_engine(profile, kind)?;
        checker.install_analysis(analysis);
        checker.preload_spt();
        Ok(DracoProcess {
            pid,
            checker,
            alive: true,
        })
    }

    /// The process ID.
    pub const fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Whether the process is still running (a `KillProcess` verdict
    /// terminates it).
    pub const fn is_alive(&self) -> bool {
        self.alive
    }

    /// The installed profile (immutable for the process lifetime).
    pub fn profile(&self) -> &ProfileSpec {
        self.checker.profile()
    }

    /// The underlying checker.
    pub fn checker(&self) -> &DracoChecker {
        &self.checker
    }

    /// Mutable access to the checker, for configuring observability
    /// (flow ring, span tracer) on an owned process.
    pub fn checker_mut(&mut self) -> &mut DracoChecker {
        &mut self.checker
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CheckerStats {
        self.checker.stats()
    }

    /// Issues one system call through the checker.
    ///
    /// A `KillProcess`/`KillThread` verdict marks the process dead;
    /// further calls keep returning the denial without reaching the
    /// checker.
    pub fn syscall(&mut self, req: &SyscallRequest) -> CheckResult {
        if !self.alive {
            return CheckResult::KILLED;
        }
        let result = self.checker.check(req);
        if matches!(
            result.action,
            draco_bpf::SeccompAction::KillProcess | draco_bpf::SeccompAction::KillThread
        ) {
            self.alive = false;
        }
        result
    }

    /// Issues a whole batch of system calls through the staged batch
    /// path, producing exactly the decisions — and exactly the stats —
    /// of a loop over [`DracoProcess::syscall`]: the checker's commit
    /// walk stops at the first kill verdict, the process dies there,
    /// and every later slot reports the dead-process verdict without
    /// reaching the checker.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != reqs.len()`.
    pub fn syscall_batch(&mut self, reqs: &[SyscallRequest], out: &mut [Decision]) {
        assert_eq!(reqs.len(), out.len(), "one decision slot per request");
        let mut start = 0;
        while start < reqs.len() {
            if !self.alive {
                for slot in &mut out[start..] {
                    *slot = CheckResult::KILLED;
                }
                return;
            }
            let committed = self
                .checker
                .check_batch_segment(&reqs[start..], &mut out[start..]);
            start += committed;
            if matches!(
                out[start - 1].action,
                draco_bpf::SeccompAction::KillProcess | draco_bpf::SeccompAction::KillThread
            ) {
                self.alive = false;
            }
        }
    }

    /// Forks the process: the child inherits the profile but starts with
    /// cold tables (a fresh kernel would lazily rebuild them; starting
    /// cold is the conservative model and exercises Draco's warm-up).
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] if re-compiling the inherited profile fails
    /// (it cannot, for profiles that compiled once).
    pub fn fork(&self, child_pid: ProcessId) -> Result<DracoProcess, DracoError> {
        DracoProcess::spawn(child_pid, self.checker.profile())
    }
}

impl fmt::Display for DracoProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.pid, self.checker.profile().name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_profiles::{gvisor_default, ProfileGenerator, ProfileKind};
    use draco_syscalls::{ArgSet, SyscallId};

    fn req(nr: u16, args: &[u64]) -> SyscallRequest {
        SyscallRequest::new(0, SyscallId::new(nr), ArgSet::from_slice(args))
    }

    #[test]
    fn kill_verdict_terminates_process() {
        let p = gvisor_default(); // default action: kill-process
        let mut proc = DracoProcess::spawn(ProcessId(7), &p).unwrap();
        assert!(proc.is_alive());
        let r = proc.syscall(&req(101, &[0, 0])); // ptrace: not allowed
        assert!(!r.action.permits());
        assert!(!proc.is_alive());
        // Subsequent calls short-circuit.
        let r2 = proc.syscall(&req(0, &[1, 2, 3]));
        assert!(!r2.action.permits());
        assert_eq!(proc.stats().total(), 1, "dead process checks nothing");
    }

    #[test]
    fn errno_verdict_keeps_process_alive() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(0, &[1, 0, 1]));
        let mut profile = gen.emit(ProfileKind::SyscallNoargs);
        // Rebuild with errno default (like docker-default).
        let mut p = draco_profiles::ProfileSpec::new("t", draco_bpf::SeccompAction::Errno(1));
        for (id, rule) in profile.rules() {
            p.allow(id, rule.clone());
        }
        profile = p;
        let mut proc = DracoProcess::spawn(ProcessId(1), &profile).unwrap();
        let r = proc.syscall(&req(57, &[]));
        assert_eq!(r.action, draco_bpf::SeccompAction::Errno(1));
        assert!(proc.is_alive());
    }

    #[test]
    fn fork_starts_cold_with_same_profile() {
        let profile = gvisor_default();
        let mut parent = DracoProcess::spawn(ProcessId(1), &profile).unwrap();
        parent.syscall(&req(39, &[]));
        parent.syscall(&req(39, &[]));
        assert!(parent.stats().spt_hits > 0);
        let mut child = parent.fork(ProcessId(2)).unwrap();
        assert_eq!(child.pid(), ProcessId(2));
        assert_eq!(child.profile().name(), profile.name());
        // Child's first call is a cold miss.
        let r = child.syscall(&req(39, &[]));
        assert!(!r.path.is_cache_hit());
    }

    #[test]
    fn spawn_analyzed_starts_warm_with_proven_fast_paths() {
        let profile = gvisor_default();
        let analysis = draco_profiles::analyze_profile(&profile).unwrap();
        let mut proc =
            DracoProcess::spawn_analyzed(ProcessId(3), &profile, &analysis).unwrap();
        // getpid carries no argument checks in gvisor-default, so the
        // preloaded, proven syscall hits the SPT on its *first* call.
        let r = proc.syscall(&req(39, &[]));
        assert!(r.path.is_cache_hit());
        assert!(proc.stats().always_allow_hits > 0);
        // Verdicts still match a plain process on both allowed and
        // denied traffic.
        let mut plain = DracoProcess::spawn(ProcessId(4), &profile).unwrap();
        for request in [req(39, &[]), req(0, &[1, 2, 3]), req(101, &[0, 0])] {
            assert_eq!(
                proc.syscall(&request).action,
                plain.syscall(&request).action,
                "{request}"
            );
        }
    }

    #[test]
    fn display_shows_pid_and_profile() {
        let proc = DracoProcess::spawn(ProcessId(42), &gvisor_default()).unwrap();
        let s = proc.to_string();
        assert!(s.contains("pid:42"));
        assert!(s.contains("gvisor"));
    }
}
