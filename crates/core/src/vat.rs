//! The Validated Argument Table (paper §V-B, §VII-A).

use core::borrow::Borrow;
use core::fmt;

use draco_cuckoo::{CrcPairHasher, CuckooTable, HashPair, Lookup, Way};
use draco_obs::{CuckooMetrics, Stage, TraceScope, VatMetrics};
use draco_syscalls::{ArgBitmask, ArgSet, MaskedBytes, SyscallId};

/// The key of a VAT entry: the masked-selected argument bytes of one
/// validated invocation, in bitmask bit order (what the paper's Selector
/// feeds to the CRC hash functions, Fig. 5).
///
/// The bytes live in a fixed 48-byte inline buffer — the Argument
/// Bitmask is 48 bits wide, so a key can never be longer — making the
/// key `Copy` and keeping VAT probes free of heap allocation. Equality
/// and hashing are over the selected bytes only; the table probes it
/// through its `Borrow<[u8]>` form, so a lookup needs no owned key at
/// all.
#[derive(Clone, Copy, Debug)]
pub struct VatKey(MaskedBytes);

impl VatKey {
    /// Builds the key for an argument set under a bitmask.
    pub fn new(mask: ArgBitmask, args: &ArgSet) -> Self {
        VatKey(mask.select_bytes(args))
    }

    /// The selected bytes.
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_slice()
    }
}

// Equality and hashing go through the byte slice (not the whole inline
// buffer) so they agree with the key's `Borrow<[u8]>` form, as the
// `Borrow` contract requires.
impl PartialEq for VatKey {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for VatKey {}

impl core::hash::Hash for VatKey {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl AsRef<[u8]> for VatKey {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl Borrow<[u8]> for VatKey {
    fn borrow(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl From<MaskedBytes> for VatKey {
    fn from(bytes: MaskedBytes) -> Self {
        VatKey(bytes)
    }
}

/// Result of a successful VAT probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VatLookup {
    /// Which hash function located the entry (the SLB/STB cache this).
    pub way: Way,
    /// The hash value that located the entry.
    pub hash: u64,
}

/// One syscall's table within the VAT, plus the argument set each entry
/// stores (the cuckoo value is the full masked [`ArgSet`], which the
/// hardware fetches into the SLB).
type SyscallVat = CuckooTable<VatKey, ArgSet>;

/// The per-process Validated Argument Table.
///
/// One bounded two-way cuckoo table per syscall that checks arguments.
/// Tables are created on demand and sized as *twice* the expected number
/// of argument sets (paper §VII-A over-provisioning), with a configurable
/// floor.
///
/// # Example
///
/// ```
/// use draco_core::Vat;
/// use draco_syscalls::{ArgBitmask, ArgSet, SyscallId};
///
/// let mut vat = Vat::new();
/// let id = SyscallId::new(0);
/// let mask = ArgBitmask::from_widths([4, 0, 8, 0, 0, 0]);
/// let args = ArgSet::from_slice(&[3, 0xdead, 64]);
/// let idx = vat.ensure_table(id, 4);
/// assert!(vat.lookup(idx, mask, &args).is_none());
/// vat.insert(idx, mask, &args);
/// assert!(vat.lookup(idx, mask, &args).is_some());
/// ```
#[derive(Debug)]
pub struct Vat {
    tables: Vec<SyscallVat>,
    owners: Vec<SyscallId>,
    /// Syscall-id → table-index map, indexed by raw syscall number:
    /// `ensure_table` sits on the miss/update path of every argument
    /// check, so resolving an existing table must not scan `owners`.
    index_of: Vec<Option<u32>>,
    min_capacity: usize,
    capacity_cap: Option<usize>,
}

impl Vat {
    /// Default minimum per-syscall table capacity.
    pub const DEFAULT_MIN_CAPACITY: usize = 8;

    /// Creates an empty VAT.
    pub fn new() -> Self {
        Vat {
            tables: Vec::new(),
            owners: Vec::new(),
            index_of: Vec::new(),
            min_capacity: Self::DEFAULT_MIN_CAPACITY,
            capacity_cap: None,
        }
    }

    /// Sets the minimum per-syscall table capacity (builder-style).
    #[must_use]
    pub fn with_min_capacity(mut self, min: usize) -> Self {
        self.min_capacity = min.max(2);
        self
    }

    /// Caps every per-syscall table at `cap` entries (builder-style).
    ///
    /// The paper over-provisions tables to twice the expected argument
    /// sets; an OS under memory pressure can bound them instead, trading
    /// evictions (re-validations) for footprint.
    #[must_use]
    pub fn with_capacity_cap(mut self, cap: usize) -> Self {
        self.capacity_cap = Some(cap.max(2));
        self
    }

    /// Creates (or finds) the table for a syscall, sized for
    /// `expected_sets` argument sets. Returns the table index — the SPT's
    /// Base field.
    pub fn ensure_table(&mut self, id: SyscallId, expected_sets: usize) -> u32 {
        let nr = id.as_u16() as usize;
        if let Some(&Some(index)) = self.index_of.get(nr) {
            return index;
        }
        // Over-provision 2x (paper §VII-A), subject to the memory cap.
        let mut capacity = (expected_sets * 2).max(self.min_capacity);
        if let Some(cap) = self.capacity_cap {
            capacity = capacity.min(cap);
        }
        self.tables
            .push(CuckooTable::with_capacity(capacity, CrcPairHasher::new()));
        self.owners.push(id);
        let index = (self.tables.len() - 1) as u32;
        if self.index_of.len() <= nr {
            self.index_of.resize(nr + 1, None);
        }
        self.index_of[nr] = Some(index);
        index
    }

    /// Number of per-syscall tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// The syscall owning a table index.
    pub fn owner(&self, index: u32) -> Option<SyscallId> {
        self.owners.get(index as usize).copied()
    }

    /// The hash pair for an argument set (what hardware computes before
    /// probing).
    pub fn hash_pair(&self, index: u32, mask: ArgBitmask, args: &ArgSet) -> Option<HashPair> {
        let table = self.tables.get(index as usize)?;
        Some(table.hash_pair(mask.select_bytes(args).as_slice()))
    }

    /// Probes the table for a validated argument set (two probes, like
    /// the hardware). The selected bytes are borrowed straight off the
    /// stack — a probe performs no heap allocation.
    pub fn lookup(&mut self, index: u32, mask: ArgBitmask, args: &ArgSet) -> Option<VatLookup> {
        let table = self.tables.get_mut(index as usize)?;
        let key = mask.select_bytes(args);
        table.lookup(key.as_slice()).map(|hit| VatLookup {
            way: hit.way,
            hash: hit.hash,
        })
    }

    /// Issues software prefetches for both cuckoo ways of a pending
    /// probe — the batched check path's stand-in for the hardware SLB
    /// overlapping probe latency with younger checks. Returns whether
    /// the table exists, so callers can count issued prefetches.
    pub fn prefetch(&self, index: u32, pair: HashPair) -> bool {
        match self.tables.get(index as usize) {
            Some(table) => {
                table.prefetch(pair);
                true
            }
            None => false,
        }
    }

    /// Probes with a precomputed hash pair *without* touching the lookup
    /// counters. The batched check path separates the bulk probe pass
    /// from the in-order commit walk; the walk replays the bookkeeping
    /// through [`Vat::count_lookup`] so batched and scalar runs produce
    /// identical table metrics.
    pub fn probe_hashed(&self, index: u32, key: &[u8], pair: HashPair) -> Option<Lookup> {
        self.tables.get(index as usize)?.probe(key, pair)
    }

    /// Replays the counted-lookup bookkeeping for a probe performed via
    /// [`Vat::probe_hashed`], in commit order.
    pub fn count_lookup(&mut self, index: u32, found: Option<Lookup>) {
        if let Some(table) = self.tables.get_mut(index as usize) {
            table.count_lookup(found);
        }
    }

    /// Replays the bookkeeping of `n` consecutive counted lookups that
    /// all hit the same entry of table `index` (no other lookup of that
    /// table in between) in O(1) — the batch commit fast path's bulk
    /// form of [`Vat::count_lookup`]. Exactness is pinned by the
    /// table-level differential test
    /// (`hashed_bulk_hits_match_serial_count_lookup`).
    pub fn count_hits_bulk(&mut self, index: u32, hit: Lookup, n: u64) {
        if let Some(table) = self.tables.get_mut(index as usize) {
            table.count_hits_bulk(hit, n);
        }
    }

    /// [`Vat::lookup`] decomposed into its timed stages for a sampled
    /// check: CRC hashing, then each cuckoo way probed separately, each
    /// under its own span. Counters update exactly as in `lookup`
    /// (`count_lookup` replays the counted-lookup bookkeeping), so traced
    /// and untraced runs produce identical registries.
    pub fn lookup_traced(
        &mut self,
        index: u32,
        mask: ArgBitmask,
        args: &ArgSet,
        scope: &mut TraceScope<'_>,
    ) -> Option<VatLookup> {
        let table = self.tables.get_mut(index as usize)?;
        let key = mask.select_bytes(args);
        let key = key.as_slice();

        let t = scope.stage_begin();
        let pair = table.hash_pair(key);
        scope.stage_end(Stage::CrcHash, t);

        let t = scope.stage_begin();
        let mut found = table.probe_way(key, pair, Way::H1);
        scope.stage_end(Stage::VatProbeWay1, t);
        if found.is_none() {
            let t = scope.stage_begin();
            found = table.probe_way(key, pair, Way::H2);
            scope.stage_end(Stage::VatProbeWay2, t);
        }
        table.count_lookup(found);
        found.map(|hit| VatLookup {
            way: hit.way,
            hash: hit.hash,
        })
    }

    /// Records a newly validated argument set. Returns the eviction, if
    /// table pressure forced one.
    pub fn insert(
        &mut self,
        index: u32,
        mask: ArgBitmask,
        args: &ArgSet,
    ) -> Option<(VatKey, ArgSet)> {
        let table = self
            .tables
            .get_mut(index as usize)
            .expect("insert into nonexistent VAT table");
        let key = VatKey::new(mask, args);
        table.insert(key, mask.masked(args))
    }

    /// The stored argument set a preload fetches for `(index, hash, way)`,
    /// mirroring the hardware's VAT read during SLB preload (paper §VI-B).
    pub fn fetch_by_hash(&self, index: u32, hash: u64, way: Way) -> Option<ArgSet> {
        let table = self.tables.get(index as usize)?;
        table
            .iter()
            .find(|(k, _)| table.hash_pair(k.as_bytes()).for_way(way) == hash)
            .map(|(_, v)| *v)
    }

    /// Removes every entry from every table (fast clear, paper §VII-B).
    pub fn clear(&mut self) {
        for table in &mut self.tables {
            table.clear();
        }
    }

    /// Total resident argument sets across all tables.
    pub fn resident_sets(&self) -> usize {
        self.tables.iter().map(draco_cuckoo::CuckooTable::len).sum()
    }

    /// Total evictions across all tables (insertion-pressure signal).
    pub fn total_evictions(&self) -> u64 {
        self.tables.iter().map(|t| t.stats().evictions).sum()
    }

    /// Aggregated cuckoo-table observability across every per-syscall
    /// table (saturating section merge — order-independent).
    pub fn cuckoo_metrics(&self) -> CuckooMetrics {
        let mut merged = CuckooMetrics::default();
        for table in &self.tables {
            merged.merge(&table.metrics());
        }
        merged
    }

    /// Occupancy gauges for the registry's `vat` section.
    pub fn metrics(&self) -> VatMetrics {
        VatMetrics {
            tables: self.table_count() as u64,
            resident_sets: self.resident_sets() as u64,
            footprint_bytes: self.footprint_bytes() as u64,
        }
    }

    /// Approximate memory footprint in bytes (paper §XI-C reports a
    /// geometric mean of 6.98 KB per process).
    ///
    /// Each slot is costed as a packed VAT record: 48 bytes of argument
    /// values plus an 8-byte hash/metadata word.
    pub fn footprint_bytes(&self) -> usize {
        const ENTRY_BYTES: usize = 48 + 8;
        self.tables
            .iter()
            .map(|t| t.footprint_bytes(ENTRY_BYTES))
            .sum()
    }
}

impl Default for Vat {
    fn default() -> Self {
        Vat::new()
    }
}

impl fmt::Display for Vat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VAT: {} tables, {} sets, {} bytes",
            self.table_count(),
            self.resident_sets(),
            self.footprint_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask2() -> ArgBitmask {
        ArgBitmask::from_widths([4, 4, 0, 0, 0, 0])
    }

    #[test]
    fn ensure_table_is_idempotent() {
        let mut vat = Vat::new();
        let a = vat.ensure_table(SyscallId::new(0), 4);
        let b = vat.ensure_table(SyscallId::new(0), 400);
        assert_eq!(a, b);
        assert_eq!(vat.table_count(), 1);
        assert_eq!(vat.owner(a), Some(SyscallId::new(0)));
        assert_eq!(vat.owner(99), None);
    }

    #[test]
    fn lookup_miss_then_hit() {
        let mut vat = Vat::new();
        let idx = vat.ensure_table(SyscallId::new(1), 4);
        let args = ArgSet::from_slice(&[5, 6]);
        assert!(vat.lookup(idx, mask2(), &args).is_none());
        vat.insert(idx, mask2(), &args);
        let hit = vat.lookup(idx, mask2(), &args).expect("hit");
        let pair = vat.hash_pair(idx, mask2(), &args).unwrap();
        assert_eq!(hit.hash, pair.for_way(hit.way));
    }

    #[test]
    fn unselected_bytes_do_not_affect_lookup() {
        let mut vat = Vat::new();
        let idx = vat.ensure_table(SyscallId::new(1), 4);
        vat.insert(idx, mask2(), &ArgSet::from_slice(&[5, 6, 0xdead]));
        assert!(
            vat.lookup(idx, mask2(), &ArgSet::from_slice(&[5, 6, 0xbeef]))
                .is_some(),
            "third argument is unselected"
        );
        assert!(vat
            .lookup(idx, mask2(), &ArgSet::from_slice(&[5, 7]))
            .is_none());
    }

    #[test]
    fn fetch_by_hash_finds_preload_target() {
        let mut vat = Vat::new();
        let idx = vat.ensure_table(SyscallId::new(2), 4);
        let args = ArgSet::from_slice(&[9, 8]);
        vat.insert(idx, mask2(), &args);
        let hit = vat.lookup(idx, mask2(), &args).unwrap();
        let fetched = vat.fetch_by_hash(idx, hit.hash, hit.way).expect("fetch");
        assert_eq!(fetched, mask2().masked(&args));
        assert!(vat.fetch_by_hash(idx, hit.hash ^ 1, hit.way).is_none());
    }

    #[test]
    fn over_provisioning_doubles_capacity() {
        let mut vat = Vat::new().with_min_capacity(2);
        let idx = vat.ensure_table(SyscallId::new(3), 10);
        // 10 expected sets → capacity 20: all 10 inserts fit.
        for i in 0..10u64 {
            assert!(vat.insert(idx, mask2(), &ArgSet::from_slice(&[i, i])).is_none());
        }
        assert_eq!(vat.resident_sets(), 10);
        assert_eq!(vat.total_evictions(), 0);
    }

    #[test]
    fn pressure_causes_bounded_eviction() {
        let mut vat = Vat::new().with_min_capacity(4);
        let idx = vat.ensure_table(SyscallId::new(3), 1); // capacity 4
        let mut evictions = 0;
        for i in 0..64u64 {
            if vat.insert(idx, mask2(), &ArgSet::from_slice(&[i, i])).is_some() {
                evictions += 1;
            }
        }
        assert!(evictions > 0);
        assert!(vat.resident_sets() <= 4);
        assert_eq!(vat.total_evictions(), evictions);
    }

    #[test]
    fn clear_empties_everything() {
        let mut vat = Vat::new();
        let idx = vat.ensure_table(SyscallId::new(0), 4);
        vat.insert(idx, mask2(), &ArgSet::from_slice(&[1, 2]));
        vat.clear();
        assert_eq!(vat.resident_sets(), 0);
        assert!(vat.lookup(idx, mask2(), &ArgSet::from_slice(&[1, 2])).is_none());
    }

    #[test]
    fn footprint_is_positive_and_scales() {
        let mut vat = Vat::new();
        vat.ensure_table(SyscallId::new(0), 4);
        let f1 = vat.footprint_bytes();
        vat.ensure_table(SyscallId::new(1), 40);
        let f2 = vat.footprint_bytes();
        assert!(f1 > 0);
        assert!(f2 > f1);
        assert!(vat.to_string().contains("tables"));
    }

    #[test]
    fn ensure_table_scales_to_hundreds_of_tables() {
        // A full x86-64 profile can check arguments on ~400 syscalls;
        // resolving an existing table must stay O(1), not scan owners.
        let mut vat = Vat::new();
        let first: Vec<u32> = (0..403u16)
            .map(|nr| vat.ensure_table(SyscallId::new(nr), 2))
            .collect();
        assert_eq!(vat.table_count(), 403);
        for (nr, &idx) in first.iter().enumerate() {
            assert_eq!(vat.ensure_table(SyscallId::new(nr as u16), 2), idx);
            assert_eq!(vat.owner(idx), Some(SyscallId::new(nr as u16)));
        }
        assert_eq!(vat.table_count(), 403, "re-resolution must not grow");
    }

    #[test]
    fn metrics_aggregate_across_tables() {
        let mut vat = Vat::new();
        let a = vat.ensure_table(SyscallId::new(0), 4);
        let b = vat.ensure_table(SyscallId::new(1), 4);
        vat.insert(a, mask2(), &ArgSet::from_slice(&[1, 2]));
        vat.insert(b, mask2(), &ArgSet::from_slice(&[3, 4]));
        vat.lookup(a, mask2(), &ArgSet::from_slice(&[1, 2])); // hit
        vat.lookup(b, mask2(), &ArgSet::from_slice(&[9, 9])); // miss
        let cm = vat.cuckoo_metrics();
        assert_eq!(cm.hits, 1);
        assert_eq!(cm.misses, 1);
        assert_eq!(cm.insertions, 2);
        assert_eq!(cm.probe_length.count(), 2);
        assert_eq!(cm.reuse_distance.count(), 1);
        let vm = vat.metrics();
        assert_eq!(vm.tables, 2);
        assert_eq!(vm.resident_sets, 2);
        assert_eq!(vm.footprint_bytes, vat.footprint_bytes() as u64);
    }

    #[test]
    fn traced_lookup_matches_untraced() {
        let mut plain = Vat::new();
        let mut traced = Vat::new();
        let (pi, ti) = (
            plain.ensure_table(SyscallId::new(1), 4),
            traced.ensure_table(SyscallId::new(1), 4),
        );
        for i in 0..4u64 {
            plain.insert(pi, mask2(), &ArgSet::from_slice(&[i, i]));
            traced.insert(ti, mask2(), &ArgSet::from_slice(&[i, i]));
        }
        // An inactive scope (the common case) and an active one must both
        // preserve results and counters.
        let mut tracer = draco_obs::SpanTracer::new(64, 1);
        for i in 0..8u64 {
            let args = ArgSet::from_slice(&[i, i]);
            let expected = plain.lookup(pi, mask2(), &args);
            let mut scope = draco_obs::TraceScope::begin(Some(&mut tracer), i + 1, 1);
            let got = traced.lookup_traced(ti, mask2(), &args, &mut scope);
            scope.finish(draco_obs::FlowClass::VatHit);
            assert_eq!(got, expected, "args {i}");
        }
        assert_eq!(traced.cuckoo_metrics(), plain.cuckoo_metrics());
        // Hits record crc + way spans; misses additionally probe way 2.
        assert!(tracer.spans().iter().any(|s| s.stage == Stage::CrcHash));
        assert!(tracer.spans().iter().any(|s| s.stage == Stage::VatProbeWay2));
        // Bad index leaves no spans and returns None.
        let mut scope = draco_obs::TraceScope::inactive();
        assert!(traced
            .lookup_traced(999, mask2(), &ArgSet::from_slice(&[1, 1]), &mut scope)
            .is_none());
    }

    #[test]
    fn hashed_probe_with_replayed_counting_matches_lookup() {
        let mut counted = Vat::new();
        let mut staged = Vat::new();
        let (ci, si) = (
            counted.ensure_table(SyscallId::new(1), 4),
            staged.ensure_table(SyscallId::new(1), 4),
        );
        for i in 0..4u64 {
            counted.insert(ci, mask2(), &ArgSet::from_slice(&[i, i]));
            staged.insert(si, mask2(), &ArgSet::from_slice(&[i, i]));
        }
        for i in 0..8u64 {
            let args = ArgSet::from_slice(&[i, i]);
            let expected = counted.lookup(ci, mask2(), &args);
            let key = mask2().select_bytes(&args);
            let pair = staged.hash_pair(si, mask2(), &args).unwrap();
            assert!(staged.prefetch(si, pair), "table exists");
            let found = staged.probe_hashed(si, key.as_slice(), pair);
            staged.count_lookup(si, found);
            assert_eq!(
                found.map(|hit| VatLookup {
                    way: hit.way,
                    hash: hit.hash
                }),
                expected,
                "args {i}"
            );
        }
        assert_eq!(staged.cuckoo_metrics(), counted.cuckoo_metrics());
        // Out-of-range indices are inert on every staged entry point.
        let pair = staged.hash_pair(si, mask2(), &ArgSet::from_slice(&[0, 0])).unwrap();
        assert!(!staged.prefetch(999, pair));
        assert!(staged.probe_hashed(999, &[0], pair).is_none());
        staged.count_lookup(999, None);
        assert_eq!(staged.cuckoo_metrics(), counted.cuckoo_metrics());
    }

    #[test]
    fn vat_key_is_copy_and_borrows_as_bytes() {
        let mask = ArgBitmask::from_widths([2, 0, 0, 0, 0, 0]);
        let key = VatKey::new(mask, &ArgSet::from_slice(&[0x1234]));
        let copy = key; // Copy, not move
        assert_eq!(key, copy);
        let slice: &[u8] = core::borrow::Borrow::borrow(&key);
        assert_eq!(slice, key.as_bytes());
        assert_eq!(VatKey::from(mask.select_bytes(&ArgSet::from_slice(&[0x1234]))), key);
    }

    #[test]
    fn vat_key_is_selected_bytes() {
        let mask = ArgBitmask::from_widths([2, 0, 0, 0, 0, 0]);
        let key = VatKey::new(mask, &ArgSet::from_slice(&[0x1234]));
        assert_eq!(key.as_bytes(), &[0x34, 0x12]);
        assert_eq!(key.as_ref(), key.as_bytes());
    }
}
