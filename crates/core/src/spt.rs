//! The System Call Permissions Table (paper §V-A, Fig. 5).

use core::fmt;

use draco_syscalls::{ArgBitmask, SyscallId};

/// One SPT entry: Valid bit, VAT base, Argument Bitmask.
///
/// In the paper's software implementation the *Base* field is a virtual
/// address of the syscall's VAT structure; here it is the structure's
/// index within the process [`crate::Vat`], which plays the same role
/// (and lets the simulator assign virtual addresses independently).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SptEntry {
    /// Whether this syscall ID has been validated at least once.
    pub valid: bool,
    /// Index of the syscall's VAT structure (the paper's Base field);
    /// `None` when the syscall needs no argument checking.
    pub vat_index: Option<u32>,
    /// Which argument bytes participate in checking.
    pub bitmask: ArgBitmask,
    /// Accessed bit for the context-switch save/restore optimisation
    /// (paper §VII-B).
    pub accessed: bool,
}

/// The SPT: a direct-mapped table with one entry per system call.
///
/// # Example
///
/// ```
/// use draco_core::Spt;
/// use draco_syscalls::{ArgBitmask, SyscallId};
///
/// let mut spt = Spt::new(436);
/// let id = SyscallId::new(0);
/// assert!(spt.get(id).is_none());
/// spt.set_valid(id, ArgBitmask::EMPTY, None);
/// assert!(spt.get(id).is_some());
/// ```
#[derive(Clone)]
pub struct Spt {
    entries: Vec<SptEntry>,
}

impl Spt {
    /// Creates an SPT with `capacity` entries, all invalid.
    pub fn new(capacity: usize) -> Self {
        Spt {
            entries: vec![SptEntry::default(); capacity],
        }
    }

    /// Entry count.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Returns the entry for `id` if it is valid (and marks it accessed).
    pub fn get(&mut self, id: SyscallId) -> Option<SptEntry> {
        let entry = self.entries.get_mut(id.index())?;
        if entry.valid {
            entry.accessed = true;
            Some(*entry)
        } else {
            None
        }
    }

    /// Read-only peek that does not touch the Accessed bit.
    pub fn peek(&self, id: SyscallId) -> Option<&SptEntry> {
        self.entries.get(id.index()).filter(|e| e.valid)
    }

    /// Marks `id` validated, recording its bitmask and VAT base.
    ///
    /// Out-of-range IDs are ignored (they can never be validated, so the
    /// subsequent check falls back to the filter and is denied there).
    pub fn set_valid(&mut self, id: SyscallId, bitmask: ArgBitmask, vat_index: Option<u32>) {
        if let Some(entry) = self.entries.get_mut(id.index()) {
            entry.valid = true;
            entry.bitmask = bitmask;
            entry.vat_index = vat_index;
            entry.accessed = true;
        }
    }

    /// Invalidates every entry (context switch to a different process).
    pub fn invalidate_all(&mut self) {
        for entry in &mut self.entries {
            *entry = SptEntry::default();
        }
    }

    /// Clears all Accessed bits (the paper's periodic clearing, §VII-B).
    pub fn clear_accessed(&mut self) {
        for entry in &mut self.entries {
            entry.accessed = false;
        }
    }

    /// Returns the valid entries whose Accessed bit is set, with their
    /// IDs — what the OS saves on a context switch (paper §VII-B).
    pub fn accessed_entries(&self) -> Vec<(SyscallId, SptEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid && e.accessed)
            .map(|(i, e)| (SyscallId::new(i as u16), *e))
            .collect()
    }

    /// Restores previously saved entries (incoming process of a context
    /// switch).
    pub fn restore(&mut self, saved: &[(SyscallId, SptEntry)]) {
        for (id, entry) in saved {
            if let Some(slot) = self.entries.get_mut(id.index()) {
                *slot = *entry;
            }
        }
    }

    /// Number of valid entries.
    pub fn valid_count(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

impl fmt::Debug for Spt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Spt")
            .field("capacity", &self.entries.len())
            .field("valid", &self.valid_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_until_set() {
        let mut spt = Spt::new(16);
        assert!(spt.get(SyscallId::new(3)).is_none());
        assert!(spt.peek(SyscallId::new(3)).is_none());
        spt.set_valid(SyscallId::new(3), ArgBitmask::EMPTY, Some(7));
        let e = spt.get(SyscallId::new(3)).expect("valid");
        assert_eq!(e.vat_index, Some(7));
        assert!(e.accessed);
        assert_eq!(spt.valid_count(), 1);
    }

    #[test]
    fn out_of_range_ids_are_inert() {
        let mut spt = Spt::new(4);
        spt.set_valid(SyscallId::new(100), ArgBitmask::EMPTY, None);
        assert!(spt.get(SyscallId::new(100)).is_none());
        assert_eq!(spt.valid_count(), 0);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut spt = Spt::new(8);
        spt.set_valid(SyscallId::new(1), ArgBitmask::EMPTY, None);
        spt.invalidate_all();
        assert!(spt.get(SyscallId::new(1)).is_none());
        assert_eq!(spt.valid_count(), 0);
    }

    #[test]
    fn accessed_bit_workflow() {
        let mut spt = Spt::new(8);
        spt.set_valid(SyscallId::new(1), ArgBitmask::EMPTY, None);
        spt.set_valid(SyscallId::new(2), ArgBitmask::EMPTY, None);
        spt.clear_accessed();
        assert!(spt.accessed_entries().is_empty());
        // A hit re-marks the entry.
        let _ = spt.get(SyscallId::new(2));
        let saved = spt.accessed_entries();
        assert_eq!(saved.len(), 1);
        assert_eq!(saved[0].0, SyscallId::new(2));
        // Restore into a fresh SPT.
        let mut spt2 = Spt::new(8);
        spt2.restore(&saved);
        assert!(spt2.get(SyscallId::new(2)).is_some());
        assert!(spt2.get(SyscallId::new(1)).is_none());
    }

    #[test]
    fn peek_does_not_mark_accessed() {
        let mut spt = Spt::new(8);
        spt.set_valid(SyscallId::new(1), ArgBitmask::EMPTY, None);
        spt.clear_accessed();
        assert!(spt.peek(SyscallId::new(1)).is_some());
        assert!(spt.accessed_entries().is_empty());
    }

    #[test]
    fn debug_shows_occupancy() {
        let spt = Spt::new(4);
        assert!(format!("{spt:?}").contains("valid"));
    }
}
