//! Thread-shared Draco state (paper §VI).
//!
//! Every thread of a process shares one SPT and one VAT: "all threads in
//! the process share the same filter" and the kernel "updates the VAT
//! with a lock while lookups can still proceed" (§VI). This module is the
//! software model of that sharing:
//!
//! * the **check hot path is lock-free** — an SPT read is one atomic
//!   word load, a VAT probe is two seqlocked cuckoo-slot reads
//!   ([`draco_cuckoo::ConcurrentTable`]); a reader never blocks and never
//!   observes a torn 48-byte key / hash pair;
//! * only the **miss path** — filter execution and the subsequent VAT
//!   insert — takes a lock, and it is per-table: updates to one syscall's
//!   table never stall lookups (or updates) on another's;
//! * lifecycle follows the paper: [`SharedDracoProcess::spawn_thread`]
//!   shares the tables, [`SharedDracoProcess::fork`] starts cold with the
//!   same profile, and [`SharedDracoProcess::install_additional`]
//!   atomically swaps the policy and flushes cached state without ever
//!   stalling the lock-free readers.
//!
//! # Soundness under concurrency
//!
//! The serial checker's argument (stateless profiles; only positive
//! verdicts are cached) carries over, with two concurrent hazards
//! discharged by protocol:
//!
//! * **Torn reads** are impossible by the seqlock argument (see
//!   `docs/concurrency.md`); a reader under sustained writer pressure
//!   falls back to a miss, which merely re-runs the filter.
//! * **Stale inserts** around [`SharedDracoProcess::install_additional`]
//!   are prevented by an epoch: a miss-path thread captures the epoch
//!   *before* running the filter and re-checks it *inside* the write
//!   critical section. `install_additional` bumps the epoch before it
//!   flushes, so a validation from the old policy either lands before
//!   the flush (and is wiped by it) or observes the bumped epoch and is
//!   dropped. In-flight checks may still *return* a verdict from the
//!   policy that was installed when they started — exactly the semantics
//!   of a kernel filter attach racing in-flight syscalls — but no stale
//!   verdict is ever cached.

use core::fmt;

#[cfg(loom)]
use loom::sync::{
    atomic::{AtomicBool, AtomicU64, Ordering},
    Arc, Mutex, RwLock,
};
#[cfg(not(loom))]
use std::sync::{
    atomic::{AtomicBool, AtomicU64, Ordering},
    Arc, Mutex, RwLock,
};

use std::sync::OnceLock;

use draco_bpf::{SeccompAction, SeccompData};
use draco_cuckoo::{ConcurrentTable, CrcPairHasher, HashPair, InsertOutcome, PairHasher};
use draco_obs::{AuditRing, CheckerMetrics, CuckooMetrics, Histogram, MetricsRegistry, VatMetrics};
use draco_profiles::{analyze_profile, ArgPolicy, ProfileAnalysis, ProfileSpec, SyscallRule};
use draco_syscalls::{ArgBitmask, MaskedBytes, SyscallId, SyscallRequest, SyscallTable};

use crate::checker::{deny_audit_event, AnalysisPlan, FilterEngine};
use crate::{
    BatchStats, CheckMode, CheckPath, CheckResult, CheckerStats, Decision, DracoError, EngineKind,
    ProcessId,
};

/// Low 48 bits of an SPT word: the Argument Bitmask.
const SPT_MASK_BITS: u64 = (1 << 48) - 1;
/// The syscall checks arguments (a VAT table exists for it).
const SPT_HAS_VAT: u64 = 1 << 48;
/// The entry is valid.
const SPT_VALID: u64 = 1 << 49;
/// The analyzer proved the syscall always-allowed.
const SPT_ALWAYS_ALLOW: u64 = 1 << 50;

/// A decoded shared-SPT entry.
#[derive(Clone, Copy, Debug)]
struct SptWord {
    mask: ArgBitmask,
    has_vat: bool,
    always_allow: bool,
}

/// The shared SPT: one atomic word per syscall. An entry packs the
/// 48-bit Argument Bitmask with the Valid / has-VAT / always-allow flags
/// into a single `u64`, so the hot-path read is one `Acquire` load — no
/// seqlock needed, a word can never tear.
///
/// The serial SPT's *Base* field (the VAT table index) is implicit here:
/// the shared VAT is a direct-mapped table directory indexed by raw
/// syscall number.
struct SharedSpt {
    words: Box<[AtomicU64]>,
}

impl SharedSpt {
    fn new(capacity: usize) -> Self {
        SharedSpt {
            words: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Lock-free entry read (one atomic load).
    fn load(&self, id: SyscallId) -> Option<SptWord> {
        let word = self.words.get(id.index())?.load(Ordering::Acquire);
        if word & SPT_VALID == 0 {
            return None;
        }
        Some(SptWord {
            mask: ArgBitmask::from_raw(word & SPT_MASK_BITS),
            has_vat: word & SPT_HAS_VAT != 0,
            always_allow: word & SPT_ALWAYS_ALLOW != 0,
        })
    }

    /// Marks `id` validated. Out-of-range IDs are ignored (they can never
    /// be validated; the check falls back to the filter, which denies).
    fn store(&self, id: SyscallId, mask: ArgBitmask, has_vat: bool, always_allow: bool) {
        if let Some(cell) = self.words.get(id.index()) {
            let mut word = SPT_VALID | mask.raw();
            if has_vat {
                word |= SPT_HAS_VAT;
            }
            if always_allow {
                word |= SPT_ALWAYS_ALLOW;
            }
            cell.store(word, Ordering::Release);
        }
    }

    fn invalidate_all(&self) {
        for cell in self.words.iter() {
            cell.store(0, Ordering::Release);
        }
    }

    fn valid_count(&self) -> usize {
        self.words
            .iter()
            .filter(|cell| cell.load(Ordering::Acquire) & SPT_VALID != 0)
            .count()
    }
}

/// The shared VAT: a direct-mapped directory of per-syscall concurrent
/// cuckoo tables, indexed by raw syscall number. A resolved table is
/// reached with one lock-free `OnceLock::get`; creation happens at most
/// once per syscall, on the miss path.
struct SharedVat {
    tables: Box<[OnceLock<ConcurrentTable>]>,
    min_capacity: usize,
    capacity_cap: Option<usize>,
}

impl SharedVat {
    fn new(capacity: usize, capacity_cap: Option<usize>) -> Self {
        SharedVat {
            tables: (0..capacity).map(|_| OnceLock::new()).collect(),
            min_capacity: crate::Vat::DEFAULT_MIN_CAPACITY,
            capacity_cap,
        }
    }

    /// Lock-free table resolution for the probe hot path.
    fn get(&self, id: SyscallId) -> Option<&ConcurrentTable> {
        self.tables.get(id.index())?.get()
    }

    /// Creates (or finds) the table for a syscall, over-provisioned to
    /// twice the expected argument sets (paper §VII-A), subject to the
    /// memory cap.
    fn ensure(&self, id: SyscallId, expected_sets: usize) -> Option<&ConcurrentTable> {
        let cell = self.tables.get(id.index())?;
        Some(cell.get_or_init(|| {
            let mut capacity = (expected_sets * 2).max(self.min_capacity);
            if let Some(cap) = self.capacity_cap {
                capacity = capacity.min(cap.max(2));
            }
            ConcurrentTable::with_capacity(capacity)
        }))
    }

    fn allocated(&self) -> impl Iterator<Item = &ConcurrentTable> {
        self.tables.iter().filter_map(|cell| cell.get())
    }

    /// Clears every allocated table, each under its own write lock —
    /// readers (and writers) of *other* syscalls are never stalled.
    fn clear_all(&self) {
        for table in self.allocated() {
            table.clear();
        }
    }

    fn table_count(&self) -> usize {
        self.allocated().count()
    }

    fn resident_sets(&self) -> usize {
        self.allocated().map(draco_cuckoo::ConcurrentTable::len).sum()
    }

    /// Packed-record footprint, costed like the serial VAT (48 value
    /// bytes + an 8-byte hash/metadata word per slot) so shared and
    /// per-thread runs report comparable numbers.
    fn footprint_bytes(&self) -> usize {
        const ENTRY_BYTES: usize = 48 + 8;
        self.allocated()
            .map(|t| t.capacity() * ENTRY_BYTES)
            .sum()
    }

    /// Writer-side counters aggregated across tables. Reader hits and
    /// misses live in each thread's [`CheckerStats`] (the lock-free read
    /// path owns no shared counters), so this section reports insertion
    /// traffic only.
    fn cuckoo_metrics(&self) -> CuckooMetrics {
        let mut merged = CuckooMetrics::default();
        for table in self.allocated() {
            let stats = table.stats();
            merged.insertions = merged.insertions.saturating_add(stats.insertions);
            merged.updates = merged.updates.saturating_add(stats.updates);
            merged.evictions = merged.evictions.saturating_add(stats.evictions);
            merged.relocations = merged.relocations.saturating_add(stats.relocations);
        }
        merged
    }
}

/// How [`SharedDracoProcess::install_additional_with`] vets a candidate
/// profile before swapping it in — the `dracod` hot-reload safety
/// primitive.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReloadPolicy {
    /// Install unconditionally (the historical
    /// [`SharedDracoProcess::install_additional`] behavior). The
    /// intersection semantics still guarantee the *combined* policy
    /// never relaxes, but an extra profile that would relax the
    /// installed one on its own is silently neutered rather than
    /// flagged.
    #[default]
    Permissive,
    /// Run the semantic policy differ
    /// ([`draco_profiles::diff_profiles`]) on candidate-vs-installed
    /// and refuse the reload unless the candidate is proven
    /// `Equivalent` or `Refines` — i.e. the operator's *intent* is a
    /// tightening, not just the intersection's arithmetic. A refusal
    /// surfaces as [`DracoError::ReloadRejected`] with the offending
    /// syscall and (when the search found one) a VM-verified witness,
    /// and counts in [`CheckerStats::reloads_refused`].
    RequireRefinement,
}

/// What an admitted [`SharedDracoProcess::install_additional_with`]
/// reload actually established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReloadDecision {
    /// Installed without semantic vetting
    /// ([`ReloadPolicy::Permissive`]).
    Installed,
    /// Diffed and proven safe before installing; carries the proven
    /// relation (`Equivalent` or `Refines`).
    ProvenSafe(draco_bpf::semdiff::Relation),
}

/// The swappable policy: profile, compiled filter stack, check mode, and
/// the optional analysis plan — everything `install_additional` replaces
/// atomically.
struct Policy {
    profile: ProfileSpec,
    filter: FilterEngine,
    mode: CheckMode,
    plan: Option<AnalysisPlan>,
}

impl Policy {
    fn build(
        profile: ProfileSpec,
        plan: Option<AnalysisPlan>,
        kind: EngineKind,
    ) -> Result<Self, DracoError> {
        let mode = if profile.checks_arguments() {
            CheckMode::IdAndArgs
        } else {
            CheckMode::IdOnly
        };
        let filter = FilterEngine::build(&profile, kind)?;
        Ok(Policy {
            filter,
            profile,
            mode,
            plan,
        })
    }

    /// How a validated syscall gets cached — the shared twin of the
    /// serial checker's `cache_plan`.
    fn cache_plan(&self, id: SyscallId, rule: &SyscallRule) -> (ArgBitmask, Option<usize>) {
        if let Some(plan) = &self.plan {
            if plan.always_allows(id) {
                return (ArgBitmask::EMPTY, None);
            }
        }
        match (&rule.args, self.mode) {
            (ArgPolicy::Whitelist { mask, sets }, CheckMode::IdAndArgs) => {
                let mask = self
                    .plan
                    .as_ref()
                    .and_then(|plan| plan.mask(id))
                    .unwrap_or(*mask);
                (mask, Some(sets.len()))
            }
            _ => (ArgBitmask::EMPTY, None),
        }
    }

    fn always_allows(&self, id: SyscallId) -> bool {
        self.plan.as_ref().is_some_and(|plan| plan.always_allows(id))
    }
}

/// Check-traffic accumulator merged from finished thread sessions.
struct Aggregate {
    stats: CheckerStats,
    batch: BatchStats,
    batch_size: Histogram,
    insns_per_filter_run: Histogram,
    saved_insns_per_hit: Histogram,
}

/// The state every thread handle shares.
struct SharedState {
    pid: ProcessId,
    spt: SharedSpt,
    vat: SharedVat,
    /// The current policy. Read-locked briefly on the miss path (to
    /// clone the `Arc`); write-locked only by `install_additional`.
    policy: RwLock<Arc<Policy>>,
    /// Serializes shared-SPT writes against each other and against the
    /// `install_additional` flush (VAT tables carry their own per-table
    /// locks).
    update: Mutex<()>,
    /// Bumped by every `install_additional`/`flush`; miss-path threads
    /// re-check it inside their write critical sections so a validation
    /// from a superseded policy is never cached.
    epoch: AtomicU64,
    alive: AtomicBool,
    aggregate: Mutex<Aggregate>,
    /// Optional denial-audit sink. Installed (rarely) under the lock;
    /// each `spawn_thread` clones the `Arc` into the handle so the
    /// miss-path emission itself is lock-free.
    audit: Mutex<Option<Arc<AuditRing>>>,
}

impl SharedState {
    fn lock_aggregate(&self) -> std::sync::MutexGuard<'_, Aggregate> {
        self.aggregate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn read_policy(&self) -> Arc<Policy> {
        self.policy
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

/// A process whose SPT and VAT are shared by every thread spawned from
/// it (paper §VI). Cheap to clone handles from; the tables live exactly
/// as long as the last handle.
///
/// # Example
///
/// ```
/// use draco_core::{ProcessId, SharedDracoProcess};
/// use draco_profiles::docker_default;
/// use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};
///
/// let process = SharedDracoProcess::spawn(ProcessId(1), &docker_default())?;
/// let mut t1 = process.spawn_thread();
/// let mut t2 = process.spawn_thread();
/// let read = SyscallRequest::new(0, SyscallId::new(0), ArgSet::from_slice(&[3, 0, 64]));
/// // Thread 1 validates through the filter…
/// assert!(!t1.check(&read).path.is_cache_hit());
/// // …and thread 2 hits the *shared* tables immediately.
/// assert!(t2.check(&read).path.is_cache_hit());
/// # Ok::<(), draco_core::DracoError>(())
/// ```
pub struct SharedDracoProcess {
    state: Arc<SharedState>,
}

impl SharedDracoProcess {
    /// Creates a shared process with the given profile installed.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] if the profile's filter fails to compile.
    pub fn spawn(pid: ProcessId, profile: &ProfileSpec) -> Result<Self, DracoError> {
        Self::spawn_inner(pid, profile.clone(), None, None, EngineKind::Compiled)
    }

    /// Creates a shared process like [`SharedDracoProcess::spawn`] with an
    /// explicit miss-path filter engine (e.g. [`EngineKind::Dag`] for the
    /// specialized decision DAG).
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] if the profile's filter fails to compile.
    pub fn spawn_with_engine(
        pid: ProcessId,
        profile: &ProfileSpec,
        kind: EngineKind,
    ) -> Result<Self, DracoError> {
        Self::spawn_inner(pid, profile.clone(), None, None, kind)
    }

    /// Creates a shared process with a precomputed filter-analysis plan
    /// installed and the SPT preloaded, like
    /// [`DracoProcess::spawn_analyzed`](crate::DracoProcess::spawn_analyzed).
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] if the profile's filter fails to compile.
    ///
    /// # Panics
    ///
    /// Panics if `analysis` was computed for a different profile.
    pub fn spawn_analyzed(
        pid: ProcessId,
        profile: &ProfileSpec,
        analysis: &ProfileAnalysis,
    ) -> Result<Self, DracoError> {
        Self::spawn_analyzed_with_engine(pid, profile, analysis, EngineKind::Compiled)
    }

    /// Like [`SharedDracoProcess::spawn_analyzed`] with an explicit
    /// miss-path filter engine.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] if the profile's filter fails to compile.
    ///
    /// # Panics
    ///
    /// Panics if `analysis` was computed for a different profile.
    pub fn spawn_analyzed_with_engine(
        pid: ProcessId,
        profile: &ProfileSpec,
        analysis: &ProfileAnalysis,
        kind: EngineKind,
    ) -> Result<Self, DracoError> {
        assert_eq!(
            analysis.name(),
            profile.name(),
            "analysis plan must match the installed profile"
        );
        let capacity = SyscallTable::shared().capacity();
        let plan = AnalysisPlan::from_analysis(analysis, capacity);
        let process = Self::spawn_inner(pid, profile.clone(), Some(plan), None, kind)?;
        process.preload();
        Ok(process)
    }

    /// Like [`SharedDracoProcess::spawn`], with every VAT table capped at
    /// `cap` entries (memory-pressure policy; evicted argument sets
    /// revalidate through the filter).
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] if the profile's filter fails to compile.
    pub fn spawn_capped(
        pid: ProcessId,
        profile: &ProfileSpec,
        cap: usize,
    ) -> Result<Self, DracoError> {
        Self::spawn_inner(pid, profile.clone(), None, Some(cap), EngineKind::Compiled)
    }

    fn spawn_inner(
        pid: ProcessId,
        profile: ProfileSpec,
        plan: Option<AnalysisPlan>,
        capacity_cap: Option<usize>,
        kind: EngineKind,
    ) -> Result<Self, DracoError> {
        let capacity = SyscallTable::shared().capacity();
        let policy = Policy::build(profile, plan, kind)?;
        Ok(SharedDracoProcess {
            state: Arc::new(SharedState {
                pid,
                spt: SharedSpt::new(capacity),
                vat: SharedVat::new(capacity, capacity_cap),
                policy: RwLock::new(Arc::new(policy)),
                update: Mutex::new(()),
                epoch: AtomicU64::new(0),
                alive: AtomicBool::new(true),
                aggregate: Mutex::new(Aggregate {
                    stats: CheckerStats::default(),
                    batch: BatchStats::default(),
                    batch_size: Histogram::default(),
                    insns_per_filter_run: Histogram::default(),
                    saved_insns_per_hit: Histogram::default(),
                }),
                audit: Mutex::new(None),
            }),
        })
    }

    /// The process ID.
    pub fn pid(&self) -> ProcessId {
        self.state.pid
    }

    /// Whether the process group is still running (any thread observing a
    /// `KillProcess`/`KillThread` verdict through
    /// [`SharedThreadHandle::syscall`] terminates it).
    pub fn is_alive(&self) -> bool {
        self.state.alive.load(Ordering::Acquire)
    }

    /// The installed profile (a clone — the live spec sits behind the
    /// policy lock).
    pub fn profile(&self) -> ProfileSpec {
        self.state.read_policy().profile.clone()
    }

    /// Whether an analysis plan is installed.
    pub fn has_analysis(&self) -> bool {
        self.state.read_policy().plan.is_some()
    }

    /// The flavor of the miss-path filter engine.
    pub fn engine_kind(&self) -> EngineKind {
        self.state.read_policy().filter.kind()
    }

    /// Attaches a denial-audit ring: every `Deny`/`Errno`/`Kill` verdict
    /// from any thread emits one bounded
    /// [`AuditEvent`](draco_obs::AuditEvent) tagged with this process's
    /// pid (truncated to 16 bits).
    ///
    /// Handles capture the ring at [`SharedDracoProcess::spawn_thread`]
    /// time, so call this *before* spawning the threads that should be
    /// audited; existing handles keep their previous (possibly absent)
    /// sink.
    pub fn enable_audit(&self, ring: Arc<AuditRing>) {
        *self
            .state
            .audit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(ring);
    }

    /// Detaches the denial-audit ring for threads spawned afterwards.
    pub fn disable_audit(&self) {
        *self
            .state
            .audit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    /// The installed denial-audit ring, if any.
    pub fn audit_ring(&self) -> Option<Arc<AuditRing>> {
        self.state
            .audit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Creates a checking handle that shares this process's SPT/VAT —
    /// the paper's thread spawn (§VI: new threads share the tables, so a
    /// pair validated by any thread is a hit for all).
    pub fn spawn_thread(&self) -> SharedThreadHandle {
        SharedThreadHandle {
            audit: self.audit_ring(),
            state: Arc::clone(&self.state),
            stats: CheckerStats::default(),
            batch: BatchStats::default(),
            batch_size: Histogram::default(),
            batch_scratch: SharedBatchScratch::default(),
            insns_per_filter_run: Histogram::default(),
            saved_insns_per_hit: Histogram::default(),
        }
    }

    /// Forks the process: the child inherits the profile but starts with
    /// cold, *unshared* tables (existing [`crate::DracoProcess::fork`]
    /// semantics — a forked address space shares nothing with the
    /// parent's Draco state).
    ///
    /// # Errors
    ///
    /// Returns [`DracoError`] if re-compiling the inherited profile fails.
    pub fn fork(&self, child_pid: ProcessId) -> Result<SharedDracoProcess, DracoError> {
        SharedDracoProcess::spawn_with_engine(child_pid, &self.profile(), self.engine_kind())
    }

    /// Attaches an additional filter: the effective policy becomes the
    /// intersection (kernel most-restrictive combining), the analysis
    /// plan (if any) is re-derived for it, and every cached validation is
    /// flushed — *without stalling readers*: the policy swap is one
    /// `Arc` replacement, the SPT flush runs under the update lock only,
    /// and each VAT table is cleared under its own lock while lookups on
    /// other syscalls proceed untouched.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError::FilterCompile`] if the combined filter (or
    /// its re-analysis) fails to compile.
    pub fn install_additional(&self, extra: &ProfileSpec) -> Result<(), DracoError> {
        self.install_additional_with(extra, ReloadPolicy::Permissive)
            .map(|_| ())
    }

    /// Like [`SharedDracoProcess::install_additional`], but vetting the
    /// candidate through a [`ReloadPolicy`] first. Under
    /// [`ReloadPolicy::RequireRefinement`] the candidate profile is
    /// semantically diffed against the installed one (both compiled to
    /// their real filter stacks) and refused unless proven `Equivalent`
    /// or `Refines`; either outcome is counted in
    /// [`CheckerStats::reloads_permitted`] /
    /// [`CheckerStats::reloads_refused`] and the process metrics.
    ///
    /// The diff runs inside the policy write critical section, so the
    /// relation is established against exactly the policy being
    /// replaced; lock-free readers are unaffected (only the miss path's
    /// brief read-lock contends).
    ///
    /// # Errors
    ///
    /// Returns [`DracoError::ReloadRejected`] if the gate refuses the
    /// candidate, or [`DracoError::FilterCompile`] if the combined
    /// filter (or its re-analysis) fails to compile.
    pub fn install_additional_with(
        &self,
        extra: &ProfileSpec,
        reload_policy: ReloadPolicy,
    ) -> Result<ReloadDecision, DracoError> {
        let state = &self.state;
        let decision;
        {
            let mut guard = state
                .policy
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            decision = match reload_policy {
                ReloadPolicy::Permissive => ReloadDecision::Installed,
                ReloadPolicy::RequireRefinement => {
                    let diff = draco_profiles::diff_profiles(&guard.profile, extra)
                        .map_err(DracoError::FilterCompile)?;
                    let relation = diff.report.relation;
                    if !relation.is_safe_swap() {
                        drop(guard);
                        state.lock_aggregate().stats.reloads_refused += 1;
                        return Err(DracoError::ReloadRejected {
                            relation,
                            diff: diff
                                .report
                                .syscalls
                                .iter()
                                .find(|s| !s.relation.is_safe_swap())
                                .copied(),
                        });
                    }
                    ReloadDecision::ProvenSafe(relation)
                }
            };
            let combined = guard.profile.intersect(extra);
            let plan = if guard.plan.is_some() {
                let analysis = analyze_profile(&combined).map_err(DracoError::FilterCompile)?;
                let capacity = SyscallTable::shared().capacity();
                Some(AnalysisPlan::from_analysis(&analysis, capacity))
            } else {
                None
            };
            // Preserve the engine flavor across the policy swap.
            *guard = Arc::new(Policy::build(combined, plan, guard.filter.kind())?);
        }
        state.lock_aggregate().stats.reloads_permitted += 1;
        self.flush();
        Ok(decision)
    }

    /// Clears all cached state (the paper's one-shot clear, §VII-B),
    /// safely against concurrent checking threads: the epoch bump
    /// invalidates in-flight miss-path validations before the tables are
    /// wiped.
    pub fn flush(&self) {
        let state = &self.state;
        // Order matters: bump the epoch *first* so any in-flight
        // validation either lands before the wipe below (and is erased)
        // or sees the new epoch inside its critical section and aborts.
        state.epoch.fetch_add(1, Ordering::AcqRel);
        {
            let _update = state
                .update
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.spt.invalidate_all();
        }
        state.vat.clear_all();
    }

    /// Pre-populates the SPT (and VAT table directory) from the profile,
    /// as the OS does at filter-install time.
    pub fn preload(&self) {
        let state = &self.state;
        let epoch = state.epoch.load(Ordering::Acquire);
        let policy = state.read_policy();
        for (id, rule) in policy.profile.rules() {
            match policy.cache_plan(id, rule) {
                (mask, Some(sets)) => {
                    if state.vat.ensure(id, sets).is_some() {
                        Self::spt_store_guarded(state, epoch, id, mask, true, false);
                    }
                }
                (mask, None) => {
                    Self::spt_store_guarded(state, epoch, id, mask, false, policy.always_allows(id));
                }
            }
        }
    }

    /// Shared-SPT write under the update lock with the epoch re-check.
    /// Returns whether the lock acquisition was contended.
    fn spt_store_guarded(
        state: &SharedState,
        epoch: u64,
        id: SyscallId,
        mask: ArgBitmask,
        has_vat: bool,
        always_allow: bool,
    ) -> bool {
        let (guard, contended) = match state.update.try_lock() {
            Ok(guard) => (guard, false),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => (poisoned.into_inner(), false),
            Err(std::sync::TryLockError::WouldBlock) => (
                state
                    .update
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
                true,
            ),
        };
        if state.epoch.load(Ordering::Acquire) == epoch {
            state.spt.store(id, mask, has_vat, always_allow);
        }
        drop(guard);
        contended
    }

    /// Accumulated counters from every finished (or synced) thread
    /// session. Live handles hold their unflushed traffic locally — call
    /// [`SharedThreadHandle::sync_stats`] (or drop the handle) first for
    /// a complete total.
    pub fn stats(&self) -> CheckerStats {
        self.state.lock_aggregate().stats
    }

    /// Number of valid shared-SPT entries.
    pub fn spt_valid_count(&self) -> usize {
        self.state.spt.valid_count()
    }

    /// This process's observability snapshot: the `checker` section from
    /// the merged thread sessions, the `cuckoo` section from writer-side
    /// table counters (reader traffic is thread-local by design), and
    /// the `vat` occupancy gauges.
    pub fn metrics(&self) -> MetricsRegistry {
        let policy = self.state.read_policy();
        let aggregate = self.state.lock_aggregate();
        let stats = aggregate.stats;
        MetricsRegistry {
            checker: CheckerMetrics {
                spt_hits: stats.spt_hits,
                always_allow_hits: stats.always_allow_hits,
                vat_hits: stats.vat_hits,
                filter_runs: stats.filter_runs,
                filter_insns: stats.filter_insns,
                denials: stats.denials,
                vat_inserts: stats.vat_inserts,
                seqlock_retries: stats.seqlock_retries,
                vat_lock_waits: stats.vat_lock_waits,
                insert_races_lost: stats.insert_races_lost,
                masks_derived_match: policy.plan.as_ref().map_or(0, |p| p.derived_match),
                masks_overridden: policy.plan.as_ref().map_or(0, |p| p.overridden),
                batches: aggregate.batch.batches,
                batched_checks: aggregate.batch.batched_checks,
                prefetch_issued: aggregate.batch.prefetch_issued,
                miss_dedup_hits: aggregate.batch.miss_dedup_hits,
                reloads_permitted: stats.reloads_permitted,
                reloads_refused: stats.reloads_refused,
                batch_size: aggregate.batch_size,
                insns_per_filter_run: aggregate.insns_per_filter_run,
                saved_insns_per_hit: aggregate.saved_insns_per_hit,
            },
            cuckoo: self.state.vat.cuckoo_metrics(),
            vat: VatMetrics {
                tables: self.state.vat.table_count() as u64,
                resident_sets: self.state.vat.resident_sets() as u64,
                footprint_bytes: self.state.vat.footprint_bytes() as u64,
            },
            ..MetricsRegistry::default()
        }
    }
}

impl fmt::Debug for SharedDracoProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedDracoProcess")
            .field("pid", &self.state.pid)
            .field("spt_valid", &self.state.spt.valid_count())
            .field("vat_tables", &self.state.vat.table_count())
            .finish()
    }
}

impl fmt::Display for SharedDracoProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] shared",
            self.state.pid,
            self.state.read_policy().profile.name()
        )
    }
}

/// One thread's checking session against a [`SharedDracoProcess`].
///
/// The handle owns its [`CheckerStats`] — the lock-free hot path updates
/// plain thread-local counters, never a shared atomic — and merges them
/// into the process aggregate on [`SharedThreadHandle::sync_stats`] or
/// drop.
pub struct SharedThreadHandle {
    state: Arc<SharedState>,
    /// Captured from the process at spawn time so the deny emission
    /// never takes the process-level lock.
    audit: Option<Arc<AuditRing>>,
    stats: CheckerStats,
    batch: BatchStats,
    batch_size: Histogram,
    batch_scratch: SharedBatchScratch,
    insns_per_filter_run: Histogram,
    saved_insns_per_hit: Histogram,
}

/// Per-request classification from the shared batch resolve pass.
#[derive(Clone, Copy, Debug)]
enum SharedBatchClass {
    /// Valid SPT word with no VAT: the word alone decides (allow).
    SptExit { always_allow: bool },
    /// Valid SPT word with a resident VAT table: hash, prefetch, probe.
    Candidate,
    /// No usable word/table at resolve time: re-run the scalar check in
    /// the commit walk (which also picks up any in-batch cache fills).
    Miss,
}

/// Reusable staging buffers for [`SharedThreadHandle::check_batch`].
///
/// Same role as [`crate::BatchScratch`] on the serial checker: own the
/// per-pass vectors once so warm batches allocate nothing.
#[derive(Debug, Default)]
pub struct SharedBatchScratch {
    class: Vec<SharedBatchClass>,
    ids: Vec<SyscallId>,
    keys: Vec<MaskedBytes>,
    pairs: Vec<HashPair>,
    hits: Vec<bool>,
}

impl SharedBatchScratch {
    fn reset(&mut self) {
        self.class.clear();
        self.ids.clear();
        self.keys.clear();
        self.pairs.clear();
        self.hits.clear();
    }
}

impl SharedThreadHandle {
    /// Checks one system call against the shared tables (paper Fig. 4,
    /// multi-threaded §VI variant). The hit path takes no lock: one
    /// atomic SPT load, then (for argument-checked syscalls) a seqlocked
    /// two-probe VAT lookup.
    pub fn check(&mut self, req: &SyscallRequest) -> CheckResult {
        if let Some(word) = self.state.spt.load(req.id) {
            if !word.has_vat {
                self.stats.spt_hits += 1;
                if word.always_allow {
                    self.stats.always_allow_hits += 1;
                }
                self.saved_insns_per_hit.record(self.mean_filter_cost());
                return CheckResult {
                    action: SeccompAction::Allow,
                    path: CheckPath::SptHit,
                };
            }
            if let Some(table) = self.state.vat.get(req.id) {
                let key = word.mask.select_bytes(&req.args);
                let probe = table.probe(key.as_slice());
                self.stats.seqlock_retries += probe.retries;
                if probe.hit.is_some() {
                    self.stats.vat_hits += 1;
                    self.saved_insns_per_hit.record(self.mean_filter_cost());
                    return CheckResult {
                        action: SeccompAction::Allow,
                        path: CheckPath::VatHit,
                    };
                }
            }
        }
        self.check_miss(req)
    }

    /// Issues one system call: like [`SharedThreadHandle::check`] but
    /// honouring process-group liveness — a `KillProcess`/`KillThread`
    /// verdict from *any* thread marks the whole group dead (threads
    /// share their fate, paper §VI).
    pub fn syscall(&mut self, req: &SyscallRequest) -> CheckResult {
        if !self.state.alive.load(Ordering::Acquire) {
            return CheckResult {
                action: SeccompAction::KillProcess,
                path: CheckPath::FilterRun { insns: 0 },
            };
        }
        let result = self.check(req);
        if matches!(
            result.action,
            SeccompAction::KillProcess | SeccompAction::KillThread
        ) {
            self.state.alive.store(false, Ordering::Release);
        }
        result
    }

    /// Checks a whole batch through the staged passes, writing one
    /// decision per request.
    ///
    /// From a single handle with no concurrent writers this produces
    /// exactly the decisions — and exactly the stats — of a loop over
    /// [`SharedThreadHandle::check`]. Under concurrent mutation the
    /// decisions any interleaving could have produced are still the only
    /// possible outputs (every stale probe is re-run before it commits),
    /// but diagnostic counters such as `seqlock_retries` may count a
    /// rare re-probe twice.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != reqs.len()`.
    pub fn check_batch(&mut self, reqs: &[SyscallRequest], out: &mut [CheckResult]) {
        let mut scratch = core::mem::take(&mut self.batch_scratch);
        self.check_batch_with(reqs, out, &mut scratch);
        self.batch_scratch = scratch;
    }

    /// Like [`SharedThreadHandle::check_batch`], but staging through a
    /// caller-owned scratch (for allocation-free warm batches).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != reqs.len()`.
    pub fn check_batch_with(
        &mut self,
        reqs: &[SyscallRequest],
        out: &mut [CheckResult],
        scratch: &mut SharedBatchScratch,
    ) {
        let committed = self.batch_passes(reqs, out, scratch, false);
        debug_assert_eq!(committed, reqs.len());
    }

    /// Batch segment that stops committing after the first kill verdict;
    /// returns how many decisions were written.
    pub(crate) fn check_batch_segment(
        &mut self,
        reqs: &[SyscallRequest],
        out: &mut [CheckResult],
    ) -> usize {
        let mut scratch = core::mem::take(&mut self.batch_scratch);
        let committed = self.batch_passes(reqs, out, &mut scratch, true);
        self.batch_scratch = scratch;
        committed
    }

    /// Issues a whole batch of system calls: like
    /// [`SharedThreadHandle::syscall`] per slot — a kill verdict from any
    /// request marks the whole group dead, and every later slot reports
    /// the dead-group verdict without reaching the tables.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != reqs.len()`.
    pub fn syscall_batch(&mut self, reqs: &[SyscallRequest], out: &mut [Decision]) {
        assert_eq!(reqs.len(), out.len(), "one decision slot per request");
        let mut start = 0;
        while start < reqs.len() {
            if !self.state.alive.load(Ordering::Acquire) {
                for slot in &mut out[start..] {
                    *slot = CheckResult::KILLED;
                }
                return;
            }
            let committed = self.check_batch_segment(&reqs[start..], &mut out[start..]);
            start += committed;
            if matches!(
                out[start - 1].action,
                SeccompAction::KillProcess | SeccompAction::KillThread
            ) {
                self.state.alive.store(false, Ordering::Release);
            }
        }
    }

    /// The staged batch pipeline (shared-table variant of the serial
    /// checker's): resolve SPT words, hash surviving keys four lanes at a
    /// time, prefetch every candidate slot before any probe, probe, then
    /// commit decisions in request order. Commit re-runs the scalar path
    /// for misses and re-probes candidates whose table may have changed
    /// under an in-batch insert, so ordering effects (a repeated key
    /// validated earlier in the same batch) resolve exactly as a scalar
    /// loop would.
    fn batch_passes(
        &mut self,
        reqs: &[SyscallRequest],
        out: &mut [CheckResult],
        scratch: &mut SharedBatchScratch,
        stop_on_kill: bool,
    ) -> usize {
        assert_eq!(reqs.len(), out.len(), "one decision slot per request");
        if reqs.is_empty() {
            return 0;
        }
        self.batch.batches += 1;
        self.batch.batched_checks += reqs.len() as u64;
        self.batch_size.record(reqs.len() as u64);
        scratch.reset();

        // Pass 1: resolve SPT words, partition the batch.
        for req in reqs {
            let class = match self.state.spt.load(req.id) {
                Some(word) if !word.has_vat => SharedBatchClass::SptExit {
                    always_allow: word.always_allow,
                },
                Some(word) => {
                    if self.state.vat.get(req.id).is_some() {
                        scratch.ids.push(req.id);
                        scratch.keys.push(word.mask.select_bytes(&req.args));
                        SharedBatchClass::Candidate
                    } else {
                        SharedBatchClass::Miss
                    }
                }
                None => SharedBatchClass::Miss,
            };
            scratch.class.push(class);
        }

        // Pass 2: CRC the surviving keys, four lanes at a time.
        let hasher = CrcPairHasher::new();
        let mut chunks = scratch.keys.chunks_exact(4);
        for four in chunks.by_ref() {
            let pairs = hasher.hash_pair4([
                four[0].as_slice(),
                four[1].as_slice(),
                four[2].as_slice(),
                four[3].as_slice(),
            ]);
            scratch.pairs.extend_from_slice(&pairs);
        }
        for key in chunks.remainder() {
            scratch.pairs.push(hasher.hash_pair(key.as_slice()));
        }

        // Pass 3: prefetch both candidate ways, then probe.
        for (&id, &pair) in scratch.ids.iter().zip(scratch.pairs.iter()) {
            if let Some(table) = self.state.vat.get(id) {
                table.prefetch(pair);
                self.batch.prefetch_issued += 2;
            }
        }
        for (i, &id) in scratch.ids.iter().enumerate() {
            let hit = match self.state.vat.get(id) {
                Some(table) => {
                    let probe = table.probe_hashed(scratch.keys[i].as_slice(), scratch.pairs[i]);
                    self.stats.seqlock_retries += probe.retries;
                    probe.hit.is_some()
                }
                None => false,
            };
            scratch.hits.push(hit);
        }

        // Pass 4: commit decisions in request order.
        let mut mutated = false;
        let mut cursor = 0usize;
        let mut committed = reqs.len();
        for (i, req) in reqs.iter().enumerate() {
            let result = match scratch.class[i] {
                SharedBatchClass::SptExit { always_allow } => {
                    self.stats.spt_hits += 1;
                    if always_allow {
                        self.stats.always_allow_hits += 1;
                    }
                    self.saved_insns_per_hit.record(self.mean_filter_cost());
                    CheckResult {
                        action: SeccompAction::Allow,
                        path: CheckPath::SptHit,
                    }
                }
                SharedBatchClass::Candidate => {
                    let mut hit = scratch.hits[cursor];
                    // An in-batch insert may have filled — or evicted —
                    // the probed slots; re-probe so the commit sees the
                    // table exactly as a scalar check at this position
                    // would.
                    if mutated {
                        if let Some(table) = self.state.vat.get(req.id) {
                            let probe = table
                                .probe_hashed(scratch.keys[cursor].as_slice(), scratch.pairs[cursor]);
                            self.stats.seqlock_retries += probe.retries;
                            let fresh = probe.hit.is_some();
                            if !hit && fresh {
                                self.batch.miss_dedup_hits += 1;
                            }
                            hit = fresh;
                        }
                    }
                    cursor += 1;
                    if hit {
                        self.stats.vat_hits += 1;
                        self.saved_insns_per_hit.record(self.mean_filter_cost());
                        CheckResult {
                            action: SeccompAction::Allow,
                            path: CheckPath::VatHit,
                        }
                    } else {
                        let writes = self.stats.vat_inserts + self.stats.insert_races_lost;
                        let result = self.check_miss(req);
                        mutated |=
                            self.stats.vat_inserts + self.stats.insert_races_lost != writes;
                        result
                    }
                }
                SharedBatchClass::Miss => {
                    let cached = self.stats.spt_hits + self.stats.vat_hits;
                    let writes = self.stats.vat_inserts + self.stats.insert_races_lost;
                    let result = self.check(req);
                    if self.stats.spt_hits + self.stats.vat_hits != cached {
                        self.batch.miss_dedup_hits += 1;
                    }
                    mutated |= self.stats.vat_inserts + self.stats.insert_races_lost != writes;
                    result
                }
            };
            out[i] = result;
            if stop_on_kill
                && matches!(
                    result.action,
                    SeccompAction::KillProcess | SeccompAction::KillThread
                )
            {
                committed = i + 1;
                break;
            }
        }
        committed
    }

    /// The slow path: run the filter under the policy current *now*, and
    /// cache a permit — unless the policy epoch moved underneath us.
    fn check_miss(&mut self, req: &SyscallRequest) -> CheckResult {
        // Epoch before policy: if an install lands between these two
        // loads we run the *new* filter tagged with the *old* epoch, so
        // the validation is conservatively dropped at insert time.
        let epoch = self.state.epoch.load(Ordering::Acquire);
        let policy = self.state.read_policy();
        let data = SeccompData::from_request(req);
        let outcome = policy
            .filter
            .run(&data)
            .expect("profile-generated filters cannot fault");
        self.stats.filter_runs += 1;
        self.stats.filter_insns += outcome.insns_executed;
        self.insns_per_filter_run.record(outcome.insns_executed);
        if outcome.action.permits() {
            self.record_validation(req, &policy, epoch);
        } else {
            self.stats.denials += 1;
            if let Some(ring) = &self.audit {
                if let Some(event) = deny_audit_event(
                    self.state.pid.0 as u16,
                    req,
                    outcome.action,
                    policy.filter.kind(),
                    outcome.insns_executed,
                ) {
                    ring.offer(event);
                }
            }
        }
        CheckResult {
            action: outcome.action,
            path: CheckPath::FilterRun {
                insns: outcome.insns_executed,
            },
        }
    }

    /// Updates the shared SPT/VAT after a successful filter run. Every
    /// write re-checks the epoch inside its critical section; a stale
    /// validation (policy swapped since the filter ran) is dropped.
    fn record_validation(&mut self, req: &SyscallRequest, policy: &Policy, epoch: u64) {
        let Some(rule) = policy.profile.rule(req.id) else {
            return;
        };
        match policy.cache_plan(req.id, rule) {
            (mask, Some(sets)) => {
                let Some(table) = self.state.vat.ensure(req.id, sets) else {
                    return;
                };
                let key = mask.select_bytes(&req.args);
                let mut guard = table.write();
                if guard.contended() {
                    self.stats.vat_lock_waits += 1;
                }
                if self.state.epoch.load(Ordering::Acquire) != epoch {
                    return;
                }
                let outcome = guard.insert(key.as_slice(), mask.masked(&req.args).as_array());
                drop(guard);
                match outcome {
                    // The key was already resident: another thread
                    // validated the same argument set while our filter
                    // ran (the refreshed value is bit-identical).
                    InsertOutcome::Updated => self.stats.insert_races_lost += 1,
                    InsertOutcome::Inserted | InsertOutcome::Evicted => {
                        self.stats.vat_inserts += 1;
                    }
                }
                if SharedDracoProcess::spt_store_guarded(
                    &self.state,
                    epoch,
                    req.id,
                    mask,
                    true,
                    false,
                ) {
                    self.stats.vat_lock_waits += 1;
                }
            }
            (mask, None) => {
                if SharedDracoProcess::spt_store_guarded(
                    &self.state,
                    epoch,
                    req.id,
                    mask,
                    false,
                    policy.always_allows(req.id),
                ) {
                    self.stats.vat_lock_waits += 1;
                }
            }
        }
    }

    /// Mean fallback cost this thread has observed, in cBPF
    /// instructions (what a cached hit is credited with saving).
    fn mean_filter_cost(&self) -> u64 {
        self.stats.filter_insns / self.stats.filter_runs.max(1)
    }

    /// This thread's local counters (not yet merged into the process).
    pub fn stats(&self) -> CheckerStats {
        self.stats
    }

    /// This thread's local batch-path counters (not yet merged into the
    /// process).
    pub const fn batch_stats(&self) -> BatchStats {
        self.batch
    }

    /// Merges this thread's counters into the process aggregate and
    /// resets the local ones. Called automatically on drop.
    pub fn sync_stats(&mut self) {
        let mut aggregate = self.state.lock_aggregate();
        aggregate.stats.accumulate(&self.stats);
        aggregate.batch.accumulate(&self.batch);
        aggregate.batch_size.merge(&self.batch_size);
        aggregate
            .insns_per_filter_run
            .merge(&self.insns_per_filter_run);
        aggregate.saved_insns_per_hit.merge(&self.saved_insns_per_hit);
        drop(aggregate);
        self.stats = CheckerStats::default();
        self.batch = BatchStats::default();
        self.batch_size = Histogram::default();
        self.insns_per_filter_run = Histogram::default();
        self.saved_insns_per_hit = Histogram::default();
    }
}

impl Drop for SharedThreadHandle {
    fn drop(&mut self) {
        self.sync_stats();
    }
}

impl fmt::Debug for SharedThreadHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedThreadHandle")
            .field("pid", &self.state.pid)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use draco_profiles::{docker_default, gvisor_default, ProfileGenerator, ProfileKind};
    use draco_syscalls::ArgSet;

    fn req(nr: u16, args: &[u64]) -> SyscallRequest {
        SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
    }

    #[test]
    fn dag_engine_shared_process_matches_compiled() {
        let profile = gvisor_default();
        let dag = SharedDracoProcess::spawn_with_engine(
            ProcessId(1),
            &profile,
            crate::EngineKind::Dag,
        )
        .unwrap();
        assert_eq!(dag.engine_kind(), crate::EngineKind::Dag);
        let compiled = SharedDracoProcess::spawn(ProcessId(2), &profile).unwrap();
        let mut td = dag.spawn_thread();
        let mut tc = compiled.spawn_thread();
        for nr in 0u16..256 {
            for args in [[0u64, 0, 0], [0xffff_ffff, 0, 0], [3, 0, 64]] {
                let r = req(nr, &args);
                assert_eq!(td.check(&r).action, tc.check(&r).action, "{r}");
            }
        }
        // Engine flavor survives a policy swap and a fork.
        dag.install_additional(&profile).unwrap();
        assert_eq!(dag.engine_kind(), crate::EngineKind::Dag);
        let child = dag.fork(ProcessId(3)).unwrap();
        assert_eq!(child.engine_kind(), crate::EngineKind::Dag);
    }

    #[test]
    fn threads_share_validations() {
        let process = SharedDracoProcess::spawn(ProcessId(1), &docker_default()).unwrap();
        let mut t1 = process.spawn_thread();
        let mut t2 = process.spawn_thread();
        // t1 validates an argument-checked syscall through the filter…
        let r = t1.check(&req(135, &[0xffff_ffff, 0, 0]));
        assert!(matches!(r.path, CheckPath::FilterRun { .. }));
        assert!(r.action.permits());
        // …and t2's very first encounter is a VAT hit on the shared table.
        let r = t2.check(&req(135, &[0xffff_ffff, 0, 0]));
        assert_eq!(r.path, CheckPath::VatHit);
        // Same for an ID-only syscall via the shared SPT.
        assert!(matches!(
            t1.check(&req(0, &[3, 0, 100])).path,
            CheckPath::FilterRun { .. }
        ));
        assert_eq!(t2.check(&req(0, &[3, 0, 100])).path, CheckPath::SptHit);
    }

    #[test]
    fn decisions_match_the_serial_checker() {
        let profile = docker_default();
        let process = SharedDracoProcess::spawn(ProcessId(1), &profile).unwrap();
        let mut shared = process.spawn_thread();
        let mut serial = crate::DracoChecker::from_profile(&profile).unwrap();
        let reqs = [
            req(0, &[3, 0, 100]),
            req(135, &[0xffff_ffff, 0, 0]),
            req(135, &[0x1234, 0, 0]),
            req(135, &[0xffff_ffff, 0, 0]),
            req(101, &[0, 0, 0]),
            req(999, &[0, 0, 0]),
            req(0, &[3, 0, 100]),
        ];
        for r in &reqs {
            let a = shared.check(r);
            let b = serial.check(r);
            assert_eq!(a.action, b.action, "{r}");
            assert_eq!(a.path, b.path, "single-threaded paths agree, {r}");
        }
        shared.sync_stats();
        let stats = process.stats();
        assert_eq!(stats.spt_hits, serial.stats().spt_hits);
        assert_eq!(stats.vat_hits, serial.stats().vat_hits);
        assert_eq!(stats.filter_runs, serial.stats().filter_runs);
        assert_eq!(stats.filter_insns, serial.stats().filter_insns);
        assert_eq!(stats.denials, serial.stats().denials);
        assert_eq!(stats.vat_inserts, serial.stats().vat_inserts);
        assert_eq!(stats.seqlock_retries, 0, "no concurrent writers here");
        assert_eq!(stats.insert_races_lost, 0);
    }

    #[test]
    fn spawn_analyzed_preloads_proven_fast_paths() {
        let profile = gvisor_default();
        let analysis = analyze_profile(&profile).unwrap();
        let process =
            SharedDracoProcess::spawn_analyzed(ProcessId(3), &profile, &analysis).unwrap();
        assert!(process.has_analysis());
        let mut t = process.spawn_thread();
        let r = t.check(&req(39, &[]));
        assert!(r.path.is_cache_hit(), "preloaded proven syscall");
        assert!(t.stats().always_allow_hits > 0);
        drop(t);
        let m = process.metrics();
        assert!(m.checker.always_allow_hits > 0);
        assert!(m.checker.masks_derived_match > 0 || m.checker.masks_overridden == 0);
    }

    #[test]
    fn require_refinement_rejects_a_relaxing_profile() {
        use draco_profiles::{ArgPolicy, RuleSource, SyscallRule};
        let installed = draco_profiles::firecracker();
        let process = SharedDracoProcess::spawn(ProcessId(7), &installed).unwrap();
        // Candidate allows everything firecracker does *plus* one more
        // syscall: a relaxation of the operator's intent, even though
        // the intersection arithmetic would silently neuter it.
        let mut candidate = installed.clone();
        candidate.allow(
            SyscallId::new(333),
            SyscallRule {
                args: ArgPolicy::AnyArgs,
                source: RuleSource::Application,
            },
        );
        let err = process
            .install_additional_with(&candidate, crate::ReloadPolicy::RequireRefinement)
            .unwrap_err();
        match err {
            crate::DracoError::ReloadRejected { relation, diff } => {
                assert_eq!(relation, draco_bpf::semdiff::Relation::Relaxes);
                let diff = diff.expect("offending syscall identified");
                assert_eq!(diff.nr, 333);
                // The witness was VM-verified before it was reported.
                assert!(diff.witness.is_some());
            }
            other => panic!("wrong error: {other}"),
        }
        // Refusal left the installed policy untouched…
        assert_eq!(
            process.profile().allowed_syscall_count(),
            installed.allowed_syscall_count()
        );
        // …and is visible in the stats and the obs snapshot.
        assert_eq!(process.stats().reloads_refused, 1);
        assert_eq!(process.stats().reloads_permitted, 0);
        assert_eq!(process.metrics().checker.reloads_refused, 1);
        let expo = draco_obs::render_prometheus(&process.metrics());
        assert!(expo.contains("draco_checker_reloads_refused_total 1"), "{expo}");
    }

    #[test]
    fn require_refinement_permits_a_tightening_profile() {
        let installed = draco_profiles::firecracker();
        let process = SharedDracoProcess::spawn(ProcessId(8), &installed).unwrap();
        // Candidate drops one rule: a strict tightening.
        let mut candidate = installed.clone();
        let dropped = installed.rules().next().unwrap().0;
        assert!(candidate.deny(dropped));
        let decision = process
            .install_additional_with(&candidate, crate::ReloadPolicy::RequireRefinement)
            .unwrap();
        assert_eq!(
            decision,
            crate::ReloadDecision::ProvenSafe(draco_bpf::semdiff::Relation::Refines)
        );
        // The install actually took effect (intersection drops the rule).
        let mut t = process.spawn_thread();
        let r = t.check(&req(dropped.as_u16(), &[0, 0, 0]));
        assert!(!r.action.permits(), "dropped syscall now denied");
        drop(t);
        assert_eq!(process.stats().reloads_permitted, 1);
        assert_eq!(process.stats().reloads_refused, 0);
        assert_eq!(process.metrics().checker.reloads_permitted, 1);
    }

    #[test]
    fn permissive_reload_counts_as_permitted() {
        let installed = draco_profiles::firecracker();
        let process = SharedDracoProcess::spawn(ProcessId(9), &installed).unwrap();
        let decision = process
            .install_additional_with(&installed, crate::ReloadPolicy::Permissive)
            .unwrap();
        assert_eq!(decision, crate::ReloadDecision::Installed);
        // Equivalent candidates also pass the strict gate.
        let decision = process
            .install_additional_with(&installed, crate::ReloadPolicy::RequireRefinement)
            .unwrap();
        assert_eq!(
            decision,
            crate::ReloadDecision::ProvenSafe(draco_bpf::semdiff::Relation::Equivalent)
        );
        assert_eq!(process.stats().reloads_permitted, 2);
    }

    #[test]
    fn audit_ring_captures_every_thread_denial() {
        let process = SharedDracoProcess::spawn(ProcessId(42), &docker_default()).unwrap();
        let ring = Arc::new(AuditRing::with_capacity(64));
        process.enable_audit(Arc::clone(&ring));
        let mut t1 = process.spawn_thread();
        let mut t2 = process.spawn_thread();

        t1.check(&req(0, &[3, 0, 100])); // allowed: no event
        t1.check(&req(999, &[0, 0, 0])); // denied
        t2.check(&req(998, &[0, 0, 0])); // denied
        t2.check(&req(999, &[0, 0, 0])); // denied again (denials never cache)
        drop(t1);
        drop(t2);

        let denials = process.stats().denials;
        assert_eq!(denials, 3);
        assert_eq!(ring.events_published() + ring.events_dropped(), denials);
        let mut events = Vec::new();
        ring.drain(&mut events);
        assert_eq!(events.len(), 3);
        for event in &events {
            assert_eq!(event.source, 42);
            assert_eq!(event.engine, draco_obs::AuditEngine::Compiled);
        }
    }

    #[test]
    fn audit_attaches_only_to_threads_spawned_after_enable() {
        let process = SharedDracoProcess::spawn(ProcessId(5), &docker_default()).unwrap();
        let mut before = process.spawn_thread();
        let ring = Arc::new(AuditRing::with_capacity(8));
        process.enable_audit(Arc::clone(&ring));
        assert!(process.audit_ring().is_some());
        let mut after = process.spawn_thread();

        before.check(&req(999, &[0, 0, 0]));
        assert!(ring.is_empty(), "pre-enable handles keep no sink");
        after.check(&req(999, &[0, 0, 0]));
        assert_eq!(ring.len(), 1);

        process.disable_audit();
        assert!(process.audit_ring().is_none());
        let mut detached = process.spawn_thread();
        detached.check(&req(998, &[0, 0, 0]));
        assert_eq!(ring.len(), 1, "post-disable handles emit nothing");
    }

    #[test]
    #[should_panic(expected = "analysis plan must match")]
    fn foreign_analysis_is_rejected() {
        let analysis = analyze_profile(&gvisor_default()).unwrap();
        let _ = SharedDracoProcess::spawn_analyzed(ProcessId(1), &docker_default(), &analysis);
    }

    #[test]
    fn kill_verdict_terminates_the_whole_group() {
        let process = SharedDracoProcess::spawn(ProcessId(7), &gvisor_default()).unwrap();
        let mut t1 = process.spawn_thread();
        let mut t2 = process.spawn_thread();
        assert!(process.is_alive());
        let r = t1.syscall(&req(101, &[0, 0])); // ptrace: kill
        assert!(!r.action.permits());
        assert!(!process.is_alive());
        // Every thread of the group short-circuits now.
        let r2 = t2.syscall(&req(39, &[]));
        assert!(!r2.action.permits());
        assert!(matches!(r2.path, CheckPath::FilterRun { insns: 0 }));
        // check() still reports verdicts (the differential oracle needs
        // order-independent decisions).
        assert!(t2.check(&req(39, &[])).action.permits());
    }

    #[test]
    fn fork_starts_cold_with_same_profile() {
        let process = SharedDracoProcess::spawn(ProcessId(1), &gvisor_default()).unwrap();
        let mut t = process.spawn_thread();
        t.check(&req(39, &[]));
        assert_eq!(t.check(&req(39, &[])).path, CheckPath::SptHit);
        let child = process.fork(ProcessId(2)).unwrap();
        assert_eq!(child.pid(), ProcessId(2));
        let mut ct = child.spawn_thread();
        assert!(
            !ct.check(&req(39, &[])).path.is_cache_hit(),
            "child tables are cold"
        );
    }

    #[test]
    fn install_additional_restricts_and_flushes() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(0, &[3, 0, 64]));
        gen.observe(&req(1, &[4, 0, 64]));
        let base = gen.emit(ProfileKind::SyscallNoargs);
        let process = SharedDracoProcess::spawn(ProcessId(1), &base).unwrap();
        let mut t = process.spawn_thread();
        assert!(t.check(&req(0, &[3, 0, 64])).action.permits());
        assert!(t.check(&req(1, &[4, 0, 64])).action.permits());
        assert!(t.check(&req(1, &[4, 0, 64])).path.is_cache_hit());

        let mut gen2 = ProfileGenerator::new("tighter");
        gen2.observe(&req(0, &[3, 0, 64]));
        let extra = gen2.emit(ProfileKind::SyscallNoargs);
        process.install_additional(&extra).unwrap();

        // write is now denied — including the previously cached pair.
        assert!(!t.check(&req(1, &[4, 0, 64])).action.permits());
        // read revalidates from cold, then caches again.
        let r = t.check(&req(0, &[3, 0, 64]));
        assert!(r.action.permits());
        assert!(!r.path.is_cache_hit(), "tables were flushed");
        assert!(t.check(&req(0, &[3, 0, 64])).path.is_cache_hit());
        assert!(process.profile().name().contains('+'));
    }

    #[test]
    fn install_additional_matches_intersection_oracle() {
        let base = docker_default();
        let mut gen = ProfileGenerator::new("app");
        for nr in [0u16, 1, 3, 135] {
            gen.observe(&req(nr, &[0xffff_ffff, 0, 0]));
        }
        let extra = gen.emit(ProfileKind::SyscallComplete);
        let oracle = base.intersect(&extra);
        let process = SharedDracoProcess::spawn(ProcessId(1), &base).unwrap();
        process.install_additional(&extra).unwrap();
        let mut t = process.spawn_thread();
        for nr in [0u16, 1, 3, 57, 135, 200] {
            for v in [0u64, 0xffff_ffff] {
                let r = req(nr, &[v, 0, 0]);
                assert_eq!(
                    t.check(&r).action.permits(),
                    oracle.evaluate(&r).permits(),
                    "{r}"
                );
            }
        }
    }

    #[test]
    fn concurrent_threads_agree_with_the_profile_oracle() {
        let profile = docker_default();
        let process = SharedDracoProcess::spawn(ProcessId(1), &profile).unwrap();
        let oracle = profile.clone();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let mut t = process.spawn_thread();
                let oracle = &oracle;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let nr = [(0u16), 1, 135, 101, 999][(i.wrapping_mul(worker + 1) % 5) as usize];
                        let r = req(nr, &[i % 4, 0, 0]);
                        assert_eq!(
                            t.check(&r).action.permits(),
                            oracle.evaluate(&r).permits(),
                            "{r}"
                        );
                    }
                });
            }
        });
        let stats = process.stats();
        assert_eq!(stats.total(), 2000, "every check accounted for");
        // Two of the five syscalls in the mix are always denied (denials
        // are never cached), so the ceiling is well under 1.0 — but the
        // allowed majority must be soaked by the shared tables.
        assert!(stats.cache_hit_rate() > 0.3, "shared tables soak re-hits");
    }

    #[test]
    fn flush_drops_in_flight_validation_effects() {
        let process = SharedDracoProcess::spawn(ProcessId(1), &docker_default()).unwrap();
        let mut t = process.spawn_thread();
        t.check(&req(135, &[0xffff_ffff, 0, 0]));
        assert!(process.metrics().vat.resident_sets > 0);
        process.flush();
        assert_eq!(process.metrics().vat.resident_sets, 0);
        assert_eq!(process.spt_valid_count(), 0);
        assert!(
            !t.check(&req(135, &[0xffff_ffff, 0, 0])).path.is_cache_hit(),
            "flushed"
        );
    }

    #[test]
    fn metrics_report_writer_side_cuckoo_traffic() {
        let process = SharedDracoProcess::spawn(ProcessId(1), &docker_default()).unwrap();
        let mut t = process.spawn_thread();
        t.check(&req(135, &[0xffff_ffff, 0, 0])); // filter + insert
        t.check(&req(135, &[0xffff_ffff, 0, 0])); // vat hit
        t.sync_stats();
        let m = process.metrics();
        assert_eq!(m.checker.vat_hits, 1);
        assert_eq!(m.checker.vat_inserts, 1);
        assert_eq!(m.cuckoo.insertions, 1);
        assert!(m.vat.tables >= 1);
        assert!(m.vat.footprint_bytes > 0);
        assert_eq!(m.replay.checks, 0, "not our section");
    }

    #[test]
    fn capped_tables_bound_memory() {
        let process =
            SharedDracoProcess::spawn_capped(ProcessId(1), &docker_default(), 4).unwrap();
        let mut t = process.spawn_thread();
        for i in 0..64u64 {
            t.check(&req(135, &[0x1234 + (i << 16), 0, 0]));
        }
        assert!(process.metrics().vat.resident_sets <= 4);
    }

    #[test]
    fn display_and_debug_mention_identity() {
        let process = SharedDracoProcess::spawn(ProcessId(42), &docker_default()).unwrap();
        assert!(process.to_string().contains("pid:42"));
        assert!(format!("{process:?}").contains("spt_valid"));
        assert!(format!("{:?}", process.spawn_thread()).contains("pid"));
    }

    /// A mixed trace exercising every batch class: ID-only SPT exits,
    /// argument-checked candidates (with repeats in and across batches),
    /// denials, and an unknown syscall.
    fn mixed_trace() -> Vec<SyscallRequest> {
        let mut reqs = Vec::new();
        for i in 0..40u64 {
            reqs.push(req(0, &[3, 0, 100 + i % 3]));
            reqs.push(req(135, &[0xffff_ffff, 0, i % 2]));
            reqs.push(req(135, &[0x1234 + ((i % 4) << 16), 0, 0]));
            reqs.push(req(999, &[i, 0, 0]));
            reqs.push(req(135, &[0xffff_ffff, 0, i % 2]));
        }
        reqs
    }

    #[test]
    fn batch_matches_a_scalar_shared_loop_exactly() {
        let profile = docker_default();
        let trace = mixed_trace();
        for batch_size in [1usize, 3, 7, 64, trace.len()] {
            let batched = SharedDracoProcess::spawn(ProcessId(1), &profile).unwrap();
            let scalar = SharedDracoProcess::spawn(ProcessId(2), &profile).unwrap();
            let mut tb = batched.spawn_thread();
            let mut ts = scalar.spawn_thread();
            let mut out = vec![CheckResult::KILLED; trace.len()];
            for (chunk, slots) in trace.chunks(batch_size).zip(out.chunks_mut(batch_size)) {
                tb.check_batch(chunk, slots);
            }
            for (r, want) in trace.iter().zip(out.iter()) {
                let got = ts.check(r);
                assert_eq!(got.action, want.action, "batch={batch_size} {r}");
                assert_eq!(got.path, want.path, "batch={batch_size} {r}");
            }
            assert_eq!(
                tb.stats(),
                ts.stats(),
                "single-handle batch stats are byte-identical (batch={batch_size})"
            );
            let b = tb.batch_stats();
            assert_eq!(b.batched_checks, trace.len() as u64);
            assert_eq!(b.batches, trace.len().div_ceil(batch_size) as u64);
            if batch_size < trace.len() {
                assert!(b.prefetch_issued > 0, "warm batches prefetch candidates");
            } else {
                // One fully cold batch: no SPT words at resolve time, so
                // every repeat resolves through the deduplicated miss path.
                assert!(b.miss_dedup_hits > 0, "cold repeats dedup in-batch");
            }
        }
    }

    #[test]
    fn batch_dedups_repeated_misses_through_the_caches() {
        let process = SharedDracoProcess::spawn(ProcessId(1), &docker_default()).unwrap();
        let mut t = process.spawn_thread();
        // Five copies of the same never-seen argument-checked request in
        // one batch: the first runs the filter, the other four resolve
        // from the in-batch insert.
        let reqs = vec![req(135, &[0xffff_ffff, 0, 0]); 5];
        let mut out = vec![CheckResult::KILLED; 5];
        t.check_batch(&reqs, &mut out);
        assert!(out.iter().all(|r| r.action.permits()));
        assert_eq!(t.stats().filter_runs, 1, "filter executed once per distinct key");
        assert_eq!(t.batch_stats().miss_dedup_hits, 4);
    }

    #[test]
    fn batch_kill_terminates_the_group_mid_batch() {
        let profile = gvisor_default(); // default action: kill-process
        let process = SharedDracoProcess::spawn(ProcessId(7), &profile).unwrap();
        let scalar = SharedDracoProcess::spawn(ProcessId(8), &profile).unwrap();
        let mut tb = process.spawn_thread();
        let mut ts = scalar.spawn_thread();
        let trace = [
            req(39, &[]),
            req(101, &[0, 0]), // ptrace: kill
            req(39, &[]),
            req(39, &[]),
        ];
        let mut out = [CheckResult::KILLED; 4];
        tb.syscall_batch(&trace, &mut out);
        for (r, want) in trace.iter().zip(out.iter()) {
            let got = ts.syscall(r);
            assert_eq!(got.action, want.action, "{r}");
            assert_eq!(got.path, want.path, "{r}");
        }
        assert!(!process.is_alive());
        assert_eq!(tb.stats(), ts.stats(), "post-kill slots never reach the tables");
    }

    #[test]
    fn concurrent_batches_agree_with_the_profile_oracle() {
        let profile = docker_default();
        let process = SharedDracoProcess::spawn(ProcessId(1), &profile).unwrap();
        let oracle = profile.clone();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let mut t = process.spawn_thread();
                let oracle = &oracle;
                scope.spawn(move || {
                    let mut reqs = Vec::new();
                    for i in 0..500u64 {
                        let nr =
                            [(0u16), 1, 135, 101, 999][(i.wrapping_mul(worker + 1) % 5) as usize];
                        reqs.push(req(nr, &[i % 4, 0, 0]));
                    }
                    let mut out = vec![CheckResult::KILLED; reqs.len()];
                    for (chunk, slots) in reqs.chunks(17).zip(out.chunks_mut(17)) {
                        t.check_batch(chunk, slots);
                    }
                    for (r, got) in reqs.iter().zip(out.iter()) {
                        assert_eq!(
                            got.action.permits(),
                            oracle.evaluate(r).permits(),
                            "{r}"
                        );
                    }
                });
            }
        });
        let stats = process.stats();
        assert_eq!(stats.total(), 2000, "every batched check accounted for");
    }
}
