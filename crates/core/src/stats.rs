//! Checker traffic counters.

use core::fmt;

/// Counters a [`crate::DracoChecker`] maintains across checks.
///
/// These back the evaluation's hit-rate analyses and the software cost
/// model: `filter_insns` is the total number of cBPF instructions the
/// fallback executed — the work Draco saves is exactly the filter
/// instructions *not* in this counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckerStats {
    /// Checks admitted by the SPT alone (ID-only or empty bitmask).
    pub spt_hits: u64,
    /// Subset of `spt_hits` on syscalls the filter analyzer *proved*
    /// always-allowed — hits that skipped CRC hashing and the VAT
    /// because the installed analysis plan discharged argument checking
    /// statically.
    pub always_allow_hits: u64,
    /// Checks admitted by a VAT probe.
    pub vat_hits: u64,
    /// Checks that fell back to the Seccomp filter.
    pub filter_runs: u64,
    /// Total cBPF instructions executed by fallback runs.
    pub filter_insns: u64,
    /// Checks whose final verdict was a denial.
    pub denials: u64,
    /// Argument-set insertions into the VAT.
    pub vat_inserts: u64,
    /// Seqlock read retries on the shared VAT (a reader collided with an
    /// in-flight writer or saw the slot version change mid-snapshot).
    /// Always zero for per-thread checkers.
    pub seqlock_retries: u64,
    /// Miss-path lock acquisitions that had to wait for another thread
    /// (VAT table writer lock or the shared SPT update lock). Always zero
    /// for per-thread checkers.
    pub vat_lock_waits: u64,
    /// Validations that found their key already resident once the write
    /// lock was held — another thread validated the same argument set
    /// first. Always zero for per-thread checkers.
    pub insert_races_lost: u64,
    /// Hot-reload installs admitted (permissively, or proven safe by
    /// the semantic policy differ under
    /// [`ReloadPolicy::RequireRefinement`](crate::ReloadPolicy)).
    pub reloads_permitted: u64,
    /// Hot-reload installs refused by the `RequireRefinement` gate: the
    /// candidate profile would relax (or is incomparable to) the
    /// installed policy.
    pub reloads_refused: u64,
}

impl CheckerStats {
    /// Total checks observed. Saturating: long-lived checkers whose
    /// counters approach `u64::MAX` must not panic computing a summary.
    pub const fn total(&self) -> u64 {
        self.spt_hits
            .saturating_add(self.vat_hits)
            .saturating_add(self.filter_runs)
    }

    /// Fraction of checks that skipped the filter entirely.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.spt_hits.saturating_add(self.vat_hits) as f64 / total as f64
        }
    }

    /// Accumulates another set of counters (saturating field-wise).
    pub fn accumulate(&mut self, other: &CheckerStats) {
        self.spt_hits = self.spt_hits.saturating_add(other.spt_hits);
        self.always_allow_hits = self.always_allow_hits.saturating_add(other.always_allow_hits);
        self.vat_hits = self.vat_hits.saturating_add(other.vat_hits);
        self.filter_runs = self.filter_runs.saturating_add(other.filter_runs);
        self.filter_insns = self.filter_insns.saturating_add(other.filter_insns);
        self.denials = self.denials.saturating_add(other.denials);
        self.vat_inserts = self.vat_inserts.saturating_add(other.vat_inserts);
        self.seqlock_retries = self.seqlock_retries.saturating_add(other.seqlock_retries);
        self.vat_lock_waits = self.vat_lock_waits.saturating_add(other.vat_lock_waits);
        self.insert_races_lost = self
            .insert_races_lost
            .saturating_add(other.insert_races_lost);
        self.reloads_permitted = self.reloads_permitted.saturating_add(other.reloads_permitted);
        self.reloads_refused = self.reloads_refused.saturating_add(other.reloads_refused);
    }
}

/// Counters for the batched check path
/// ([`crate::DracoChecker::check_batch`] and the shared-thread
/// equivalent).
///
/// Kept separate from [`CheckerStats`] on purpose: a batch produces
/// exactly the same `CheckerStats` as the equivalent scalar loop (the
/// differential test in `tests/equivalence.rs` pins this down), so
/// batch-only bookkeeping must not leak into the shared counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// `check_batch` invocations.
    pub batches: u64,
    /// Checks submitted through batches.
    pub batched_checks: u64,
    /// Software prefetches issued before the probe pass (two per
    /// distinct staged key — one per cuckoo way; in-batch repeats of a
    /// key share one prefetch).
    pub prefetch_issued: u64,
    /// Batch-local misses that resolved from cache in the commit walk
    /// because an earlier request in the same batch validated the key.
    pub miss_dedup_hits: u64,
}

impl BatchStats {
    /// Accumulates another set of counters (saturating field-wise).
    pub fn accumulate(&mut self, other: &BatchStats) {
        self.batches = self.batches.saturating_add(other.batches);
        self.batched_checks = self.batched_checks.saturating_add(other.batched_checks);
        self.prefetch_issued = self.prefetch_issued.saturating_add(other.prefetch_issued);
        self.miss_dedup_hits = self.miss_dedup_hits.saturating_add(other.miss_dedup_hits);
    }
}

impl fmt::Display for BatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} checks in {} batches, {} prefetches, {} dedup-hits",
            self.batched_checks, self.batches, self.prefetch_issued, self.miss_dedup_hits
        )
    }
}

impl fmt::Display for CheckerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} checks: {} spt ({} always-allow), {} vat, {} filter ({} insns), {} denied, {} vat-inserts",
            self.total(),
            self.spt_hits,
            self.always_allow_hits,
            self.vat_hits,
            self.filter_runs,
            self.filter_insns,
            self.denials,
            self.vat_inserts
        )?;
        if self.seqlock_retries > 0 || self.vat_lock_waits > 0 || self.insert_races_lost > 0 {
            write!(
                f,
                ", contention: {} seqlock-retries, {} lock-waits, {} races-lost",
                self.seqlock_retries, self.vat_lock_waits, self.insert_races_lost
            )?;
        }
        if self.reloads_permitted > 0 || self.reloads_refused > 0 {
            write!(
                f,
                ", reloads: {} permitted, {} refused",
                self.reloads_permitted, self.reloads_refused
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let stats = CheckerStats {
            spt_hits: 6,
            always_allow_hits: 3,
            vat_hits: 2,
            filter_runs: 2,
            filter_insns: 100,
            denials: 1,
            vat_inserts: 1,
            ..CheckerStats::default()
        };
        assert_eq!(stats.total(), 10);
        assert!((stats.cache_hit_rate() - 0.8).abs() < 1e-12);
        assert!(stats.to_string().contains("10 checks"));
    }

    #[test]
    fn empty_stats_rate_is_zero() {
        assert_eq!(CheckerStats::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn display_reports_every_counter() {
        let stats = CheckerStats {
            spt_hits: 1,
            always_allow_hits: 1,
            vat_hits: 2,
            filter_runs: 3,
            filter_insns: 40,
            denials: 5,
            vat_inserts: 6,
            seqlock_retries: 7,
            vat_lock_waits: 8,
            insert_races_lost: 9,
            reloads_permitted: 10,
            reloads_refused: 11,
        };
        let s = stats.to_string();
        assert!(s.contains("6 vat-inserts"), "{s}");
        assert!(s.contains("5 denied"), "{s}");
        assert!(s.contains("1 always-allow"), "{s}");
        assert!(s.contains("7 seqlock-retries"), "{s}");
        assert!(s.contains("8 lock-waits"), "{s}");
        assert!(s.contains("9 races-lost"), "{s}");
        assert!(s.contains("10 permitted"), "{s}");
        assert!(s.contains("11 refused"), "{s}");
    }

    #[test]
    fn uncontended_stats_omit_the_contention_clause() {
        let stats = CheckerStats {
            spt_hits: 1,
            ..CheckerStats::default()
        };
        assert!(!stats.to_string().contains("contention"));
    }

    #[test]
    fn accumulate_covers_contention_counters() {
        let mut a = CheckerStats {
            seqlock_retries: 1,
            vat_lock_waits: u64::MAX,
            insert_races_lost: 2,
            ..CheckerStats::default()
        };
        let b = CheckerStats {
            seqlock_retries: 10,
            vat_lock_waits: 1,
            insert_races_lost: 3,
            ..CheckerStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.seqlock_retries, 11);
        assert_eq!(a.vat_lock_waits, u64::MAX, "saturates");
        assert_eq!(a.insert_races_lost, 5);
        assert_eq!(a.total(), 0, "contention counters are not checks");
    }

    #[test]
    fn total_saturates_instead_of_overflowing() {
        let stats = CheckerStats {
            spt_hits: u64::MAX,
            vat_hits: u64::MAX,
            filter_runs: 1,
            ..CheckerStats::default()
        };
        assert_eq!(stats.total(), u64::MAX);
        assert!(stats.cache_hit_rate() <= 1.0);
    }

    #[test]
    fn accumulate_saturates_field_wise() {
        let mut a = CheckerStats {
            spt_hits: u64::MAX - 1,
            vat_inserts: 3,
            ..CheckerStats::default()
        };
        let b = CheckerStats {
            spt_hits: 10,
            vat_inserts: 4,
            ..CheckerStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.spt_hits, u64::MAX);
        assert_eq!(a.vat_inserts, 7);
    }
}
