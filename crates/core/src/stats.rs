//! Checker traffic counters.

use core::fmt;

/// Counters a [`crate::DracoChecker`] maintains across checks.
///
/// These back the evaluation's hit-rate analyses and the software cost
/// model: `filter_insns` is the total number of cBPF instructions the
/// fallback executed — the work Draco saves is exactly the filter
/// instructions *not* in this counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckerStats {
    /// Checks admitted by the SPT alone (ID-only or empty bitmask).
    pub spt_hits: u64,
    /// Checks admitted by a VAT probe.
    pub vat_hits: u64,
    /// Checks that fell back to the Seccomp filter.
    pub filter_runs: u64,
    /// Total cBPF instructions executed by fallback runs.
    pub filter_insns: u64,
    /// Checks whose final verdict was a denial.
    pub denials: u64,
    /// Argument-set insertions into the VAT.
    pub vat_inserts: u64,
}

impl CheckerStats {
    /// Total checks observed.
    pub const fn total(&self) -> u64 {
        self.spt_hits + self.vat_hits + self.filter_runs
    }

    /// Fraction of checks that skipped the filter entirely.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.spt_hits + self.vat_hits) as f64 / total as f64
        }
    }
}

impl fmt::Display for CheckerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} checks: {} spt, {} vat, {} filter ({} insns), {} denied",
            self.total(),
            self.spt_hits,
            self.vat_hits,
            self.filter_runs,
            self.filter_insns,
            self.denials
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let stats = CheckerStats {
            spt_hits: 6,
            vat_hits: 2,
            filter_runs: 2,
            filter_insns: 100,
            denials: 1,
            vat_inserts: 1,
        };
        assert_eq!(stats.total(), 10);
        assert!((stats.cache_hit_rate() - 0.8).abs() < 1e-12);
        assert!(stats.to_string().contains("10 checks"));
    }

    #[test]
    fn empty_stats_rate_is_zero() {
        assert_eq!(CheckerStats::default().cache_hit_rate(), 0.0);
    }
}
