//! The Draco check workflow (paper Fig. 4).

use core::fmt;

use draco_bpf::{SeccompAction, SeccompData};
use draco_cuckoo::{CrcPairHasher, HashPair, Lookup, PairHasher};
use std::sync::Arc;

use draco_obs::{
    AuditDecision, AuditEngine, AuditEvent, AuditProvenance, AuditRing, CheckerMetrics,
    EventRing, FlowClass, FlowEvent, Histogram, MetricsRegistry, SpanTracer, Stage, TraceScope,
};
use draco_profiles::{
    analyze_profile, compile_dag, compile_stacked, ArgPolicy, CompiledStack, DagStack,
    FilterLayout, FilterStack, MaskAgreement, ProfileAnalysis, ProfileSpec, StackOutcome,
    SyscallRule,
};
use draco_syscalls::{
    ArgBitmask, MaskedBytes, SyscallId, SyscallRequest, SyscallTable, MAX_ARGS,
};

use crate::{BatchStats, CheckerStats, DracoError, Spt, Vat};

/// What Draco checks (paper §V-A vs §V-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckMode {
    /// Check system call IDs only (SPT alone).
    IdOnly,
    /// Check IDs and argument set values (SPT + VAT).
    IdAndArgs,
}

/// How the fallback Seccomp filter stack is executed.
#[derive(Debug)]
pub enum FilterEngine {
    /// The reference interpreter (kernel with BPF JIT disabled).
    Interpreted(FilterStack),
    /// The pre-decoded executor (kernel with BPF JIT enabled).
    Compiled(CompiledStack),
    /// The specializing decision DAG (`draco-bpf::dag`): per-syscall
    /// mask/compare chains with exact VM fallback.
    Dag(DagStack),
}

/// Selects a [`FilterEngine`] flavor at construction time
/// ([`DracoChecker::from_profile_with_engine`] and the spawn variants
/// on `DracoProcess` / `SharedDracoProcess`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Interpreted cBPF (kernel with BPF JIT disabled).
    Interpreted,
    /// Pre-decoded cBPF ops (kernel JIT model).
    #[default]
    Compiled,
    /// Specialized decision DAG.
    Dag,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Interpreted => write!(f, "interpreted"),
            EngineKind::Compiled => write!(f, "compiled"),
            EngineKind::Dag => write!(f, "dag"),
        }
    }
}

/// Builds the security-audit event for one denying verdict, or `None`
/// if `action` permits the call (nothing to audit).
///
/// The provenance records whether the specialized decision DAG closed
/// the verdict by itself — a DAG engine that executed zero VM
/// instructions — or the concrete cBPF VM decided (every other case,
/// including DAG nodes that fell back). Used by both the per-process
/// checker and the shared-process miss path so the two paths emit
/// identical events for identical verdicts.
pub fn deny_audit_event(
    source: u16,
    req: &SyscallRequest,
    action: SeccompAction,
    engine: EngineKind,
    insns_executed: u64,
) -> Option<AuditEvent> {
    let decision = match action {
        SeccompAction::Allow | SeccompAction::Log => return None,
        SeccompAction::Errno(e) => AuditDecision::Errno(e),
        SeccompAction::Trap => AuditDecision::Trap,
        SeccompAction::Trace(d) => AuditDecision::Trace(d),
        SeccompAction::KillThread => AuditDecision::KillThread,
        SeccompAction::KillProcess => AuditDecision::KillProcess,
    };
    let engine = match engine {
        EngineKind::Interpreted => AuditEngine::Interpreted,
        EngineKind::Compiled => AuditEngine::Compiled,
        EngineKind::Dag => AuditEngine::Dag,
    };
    let provenance = if engine == AuditEngine::Dag && insns_executed == 0 {
        AuditProvenance::DagClosed
    } else {
        AuditProvenance::Vm
    };
    Some(AuditEvent {
        source,
        syscall: req.id.as_u16(),
        decision,
        engine,
        provenance,
    })
}

impl FilterEngine {
    pub(crate) fn run(&self, data: &SeccompData) -> Result<StackOutcome, draco_bpf::BpfError> {
        match self {
            FilterEngine::Interpreted(stack) => stack.run(data),
            FilterEngine::Compiled(stack) => stack.run(data),
            FilterEngine::Dag(stack) => stack.run(data),
        }
    }

    /// The flavor of this engine, preserved across policy swaps.
    pub const fn kind(&self) -> EngineKind {
        match self {
            FilterEngine::Interpreted(_) => EngineKind::Interpreted,
            FilterEngine::Compiled(_) => EngineKind::Compiled,
            FilterEngine::Dag(_) => EngineKind::Dag,
        }
    }

    /// Builds the engine of the given kind for a profile.
    pub(crate) fn build(profile: &ProfileSpec, kind: EngineKind) -> Result<Self, DracoError> {
        Ok(match kind {
            EngineKind::Interpreted => FilterEngine::Interpreted(
                compile_stacked(profile, FilterLayout::Linear).map_err(DracoError::FilterCompile)?,
            ),
            EngineKind::Compiled => FilterEngine::Compiled(
                compile_stacked(profile, FilterLayout::Linear)
                    .map_err(DracoError::FilterCompile)?
                    .compiled(),
            ),
            EngineKind::Dag => {
                FilterEngine::Dag(compile_dag(profile).map_err(DracoError::FilterCompile)?)
            }
        })
    }
}

/// Which path admitted (or rejected) a check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckPath {
    /// SPT Valid bit sufficed (no argument checking required).
    SptHit,
    /// The VAT held the argument set.
    VatHit,
    /// The Seccomp filter ran (`insns` cBPF instructions executed).
    FilterRun {
        /// Instructions the fallback executed.
        insns: u64,
    },
}

impl CheckPath {
    /// True if the check skipped the filter.
    pub const fn is_cache_hit(self) -> bool {
        matches!(self, CheckPath::SptHit | CheckPath::VatHit)
    }
}

/// The verdict and provenance of one check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckResult {
    /// The final action (cached hits are always `Allow`).
    pub action: SeccompAction,
    /// How the verdict was produced.
    pub path: CheckPath,
}

impl CheckResult {
    /// The verdict a dead process reports without reaching the checker
    /// (also a convenient initializer for batch output slices).
    pub const KILLED: CheckResult = CheckResult {
        action: SeccompAction::KillProcess,
        path: CheckPath::FilterRun { insns: 0 },
    };
}

/// The verdict of one batched check — identical in shape and meaning to
/// [`CheckResult`]; the alias marks slices used as batch outputs.
pub type Decision = CheckResult;

/// Per-request classification produced by the batch's SPT-resolve pass.
#[derive(Clone, Copy, Debug, Default)]
enum BatchClass {
    /// The SPT word alone admits the request (ID-only checking or a
    /// rule without argument checks): a fast exit, no hashing.
    SptExit {
        /// The analyzer proved this syscall always-allowed.
        always_allow: bool,
    },
    /// SPT valid with a VAT table: hash, prefetch, probe.
    Candidate,
    /// No valid SPT word: full scalar check during the commit walk.
    #[default]
    Cold,
}

/// One slot of the batch's direct-mapped key-dedup index.
///
/// `epoch` tags the batch that wrote the slot, so resetting the index
/// is a counter bump instead of a memset. `distinct` indexes the
/// distinct-key arrays of the same batch.
#[derive(Clone, Copy, Debug, Default)]
struct DedupSlot {
    fp: u64,
    epoch: u64,
    distinct: u32,
}

/// Slots in the dedup index. Collisions are sound — a clashing key is
/// simply staged as its own distinct entry — so the table stays small
/// enough to live in L1/L2.
const DEDUP_SLOTS: usize = 256;

/// Ceiling on distinct keys for the bulk commit: past it the pairwise
/// table-distinctness check costs more than the walk it would replace.
const BULK_DISTINCT_LIMIT: usize = 16;

/// True if no VAT table index appears twice — the bulk commit's "one
/// distinct key per table" precondition.
#[inline]
fn tables_pairwise_distinct(cand: &[u32]) -> bool {
    cand.iter()
        .enumerate()
        .all(|(i, &c)| cand[..i].iter().all(|&p| p != c))
}

/// A cheap 64-bit fingerprint of a candidate's (table, masked-words)
/// identity, used only to index the dedup table. Equality of the full
/// mask and masked words is always re-verified before two requests
/// share staged work, so fingerprint quality affects the dedup *rate*,
/// never correctness.
#[inline]
fn words_fingerprint(idx: u32, words: &[u64; MAX_ARGS]) -> u64 {
    const K: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h = (u64::from(idx) ^ 0xa076_1d64_78bd_642f).wrapping_mul(K);
    for &w in words {
        h = (h ^ w).wrapping_mul(K);
        h ^= h >> 29;
    }
    h ^ (h >> 32)
}

/// One slot of the batch's per-syscall resolve cache, indexed by raw
/// syscall number and epoch-tagged like [`DedupSlot`].
///
/// The first request of each syscall ID in a batch resolves its SPT
/// word (and, for candidates, expands the bitmask to per-argument mask
/// words); every later request of the same ID reuses the slot, turning
/// the per-request resolve into six ANDs and an array compare. Caching
/// is sound because all resolves happen in pass 1, before any commit
/// can mutate the SPT — the scalar loop would read the same words.
#[derive(Clone, Copy, Debug, Default)]
struct IdSlot {
    /// Batch that wrote the slot (any other value means vacant).
    epoch: u64,
    /// Resolved classification for this syscall ID.
    class: BatchClass,
    /// VAT table index (candidates only).
    idx: u32,
    /// SPT bitmask (candidates only).
    bitmask: ArgBitmask,
    /// `bitmask` expanded to per-argument byte-mask words.
    mask_words: [u64; MAX_ARGS],
    /// The distinct index this ID's most recent request mapped to, or
    /// `u32::MAX` if none yet — the fast path for straight-line replay
    /// traffic that repeats one argument set per syscall.
    distinct: u32,
}

/// Reusable staging buffers for [`DracoChecker::check_batch_with`].
///
/// All vectors are cleared — never freed — at batch start, so a warm
/// caller-held scratch makes the whole batch hit path allocation-free
/// (`crates/core/tests/zero_alloc_batch.rs` proves it under a counting
/// allocator).
///
/// The staging arrays hold one entry per *distinct* candidate key, not
/// per request: requests whose masked argument bytes match an
/// already-staged key (verified bytewise, not just by fingerprint)
/// share its hash, prefetch, and probe via `slot`.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Pass-1 classification, one per request.
    class: Vec<BatchClass>,
    /// Per candidate, in request order: index into the distinct arrays.
    slot: Vec<u32>,
    /// VAT table index per distinct key.
    cand: Vec<u32>,
    /// SPT bitmask per distinct key (re-verified on dedup hits so two
    /// tables can never alias through equal masked words).
    cand_mask: Vec<ArgBitmask>,
    /// Per-argument masked words per distinct key — the dedup identity.
    cand_masked: Vec<[u64; MAX_ARGS]>,
    /// Requests mapped to each distinct key this batch.
    dups: Vec<u32>,
    /// Masked key bytes per distinct key.
    keys: Vec<MaskedBytes>,
    /// CRC hash pair per distinct key.
    pairs: Vec<HashPair>,
    /// Pass-3 probe result per distinct key.
    probes: Vec<Option<Lookup>>,
    /// Direct-mapped fingerprint → distinct-index map, epoch-tagged so
    /// a batch never sees a previous batch's entries.
    dedup: Vec<DedupSlot>,
    /// Per-syscall resolve cache, indexed by raw syscall number and
    /// epoch-tagged like `dedup`; sized to the SPT on first use.
    idcache: Vec<IdSlot>,
    /// Current batch's epoch (slots with any other epoch are vacant).
    epoch: u64,
}

impl BatchScratch {
    fn reset(&mut self) {
        self.class.clear();
        self.slot.clear();
        self.cand.clear();
        self.cand_mask.clear();
        self.cand_masked.clear();
        self.dups.clear();
        self.keys.clear();
        self.pairs.clear();
        self.probes.clear();
        if self.dedup.is_empty() {
            self.dedup.resize(DEDUP_SLOTS, DedupSlot::default());
        }
        // Epoch 0 is the vacant default, so the first batch starts at 1.
        self.epoch += 1;
    }
}

/// Per-syscall facts proved by the filter analyzer
/// ([`draco_profiles::analyze_profile`]), reshaped for O(1) hot-path
/// consultation: both vectors are indexed by raw syscall number.
///
/// Soundness: the plan only ever *narrows* what gets cached. A syscall
/// marked always-allow was proved (by abstract interpretation, checked
/// against the concrete VM) to take the Allow return for **every**
/// argument vector, so caching it with an empty bitmask replays a
/// verdict the filter is guaranteed to reach. A derived mask is
/// installed only when it matches or is a subset of the authored mask,
/// and covers — by the analyzer's taint proof — every argument byte the
/// filter's decision can depend on.
#[derive(Debug)]
pub(crate) struct AnalysisPlan {
    /// Syscalls proven `Allow` for every argument vector. Hits need
    /// neither CRC hashing nor a VAT probe.
    always_allow: Vec<bool>,
    /// Effective argument bitmask per syscall: analyzer-derived unless
    /// it disagreed with the authored mask (authored wins then).
    masks: Vec<Option<ArgBitmask>>,
    /// Whitelist rules whose derived mask matched or narrowed the
    /// authored one.
    pub(crate) derived_match: u64,
    /// Whitelist rules where the authored mask overrode a disagreeing
    /// derived mask.
    pub(crate) overridden: u64,
}

impl AnalysisPlan {
    pub(crate) fn from_analysis(analysis: &ProfileAnalysis, capacity: usize) -> Self {
        let mut plan = AnalysisPlan {
            always_allow: vec![false; capacity],
            masks: vec![None; capacity],
            derived_match: 0,
            overridden: 0,
        };
        for report in analysis.syscalls() {
            let idx = report.sid.as_u16() as usize;
            if idx >= capacity {
                continue;
            }
            if report.is_always_allow() {
                plan.always_allow[idx] = true;
            }
            plan.masks[idx] = Some(report.effective_mask());
            if report.authored_mask.is_some() {
                match report.agreement {
                    MaskAgreement::Match | MaskAgreement::DerivedNarrower => {
                        plan.derived_match += 1;
                    }
                    MaskAgreement::Disagreement => plan.overridden += 1,
                }
            }
        }
        plan
    }

    pub(crate) fn always_allows(&self, id: SyscallId) -> bool {
        self.always_allow
            .get(id.as_u16() as usize)
            .copied()
            .unwrap_or(false)
    }

    pub(crate) fn mask(&self, id: SyscallId) -> Option<ArgBitmask> {
        self.masks.get(id.as_u16() as usize).copied().flatten()
    }
}

/// Software Draco: SPT + VAT in front of a Seccomp filter.
///
/// The checker is sound because caching only ever stores *positive*
/// verdicts of a stateless profile: a hit replays an earlier `Allow`; a
/// miss runs the real filter. See the crate docs for the workflow diagram
/// and `tests/equivalence.rs` for the machine-checked statement.
#[derive(Debug)]
pub struct DracoChecker {
    spt: Spt,
    vat: Vat,
    profile: ProfileSpec,
    filter: FilterEngine,
    mode: CheckMode,
    stats: CheckerStats,
    /// cBPF instructions per fallback run.
    insns_per_filter_run: Histogram,
    /// Filter instructions a cached hit avoided (the running mean of
    /// fallback cost, recorded at hit time).
    saved_insns_per_hit: Histogram,
    /// Optional bounded trace of recent flow classifications. `None`
    /// (the default) costs one branch per check; enabling pre-allocates
    /// the whole ring, so recording stays allocation-free.
    flow_trace: Option<EventRing>,
    /// Optional sampled stage-span tracer. Boxed so the hot path moves a
    /// pointer, not the tracer's buffers; `None` (the default) costs one
    /// branch per check, and even when installed an *unsampled* check
    /// never reads the clock.
    span_trace: Option<Box<SpanTracer>>,
    /// Monotonic check counter (sequences trace events).
    check_seq: u64,
    /// Optional denial audit stream: `(ring, source id)`. `None` (the
    /// default) costs one branch per *denial* — allowed checks never
    /// consult it. Offering into the ring is lock-free and
    /// allocation-free, so the stream is hot-path safe.
    audit: Option<(Arc<AuditRing>, u16)>,
    /// Optional statically-proved facts about the installed filter.
    /// `None` (the default) costs one branch per SPT hit.
    analysis: Option<AnalysisPlan>,
    /// Batched-path counters (separate from `stats`, which a batch must
    /// advance exactly as the equivalent scalar loop would).
    batch: BatchStats,
    /// Distribution of batch sizes submitted to `check_batch`.
    batch_size: Histogram,
    /// Internal staging buffers for `check_batch` (callers wanting
    /// explicit buffer control use `check_batch_with`).
    batch_scratch: BatchScratch,
}

impl DracoChecker {
    /// Builds a checker for a profile, compiling the fallback filter in
    /// the linear layout with the pre-decoded (JIT-model) executor, and
    /// checking arguments iff the profile does.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError::FilterCompile`] if filter compilation fails.
    pub fn from_profile(profile: &ProfileSpec) -> Result<Self, DracoError> {
        Self::from_profile_with_engine(profile, EngineKind::Compiled)
    }

    /// Builds a checker like [`DracoChecker::from_profile`], but with the
    /// miss path running on the specialized decision DAG
    /// ([`draco_bpf::CompiledDag`] per filter) instead of the cBPF
    /// executor.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError::FilterCompile`] if filter compilation fails.
    pub fn from_profile_dag(profile: &ProfileSpec) -> Result<Self, DracoError> {
        Self::from_profile_with_engine(profile, EngineKind::Dag)
    }

    /// Builds a checker for a profile with an explicit miss-path engine.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError::FilterCompile`] if filter compilation fails.
    pub fn from_profile_with_engine(
        profile: &ProfileSpec,
        kind: EngineKind,
    ) -> Result<Self, DracoError> {
        let mode = if profile.checks_arguments() {
            CheckMode::IdAndArgs
        } else {
            CheckMode::IdOnly
        };
        let engine = FilterEngine::build(profile, kind)?;
        Ok(Self::new(profile.clone(), engine, mode))
    }

    /// Builds a checker with explicit filter engine and mode.
    pub fn new(profile: ProfileSpec, filter: FilterEngine, mode: CheckMode) -> Self {
        let capacity = SyscallTable::shared().capacity();
        DracoChecker {
            spt: Spt::new(capacity),
            vat: Vat::new(),
            profile,
            filter,
            mode,
            stats: CheckerStats::default(),
            insns_per_filter_run: Histogram::default(),
            saved_insns_per_hit: Histogram::default(),
            flow_trace: None,
            span_trace: None,
            check_seq: 0,
            audit: None,
            analysis: None,
            batch: BatchStats::default(),
            batch_size: Histogram::default(),
            batch_scratch: BatchScratch::default(),
        }
    }

    /// Builds a checker like [`DracoChecker::from_profile`], then runs
    /// the filter analyzer over the compiled stack and installs the
    /// resulting plan: syscalls proven always-allowed are cached with an
    /// empty bitmask (pure SPT hits, no CRC/VAT work), and whitelisted
    /// syscalls cache under the analyzer-derived argument mask.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError::FilterCompile`] if filter compilation fails.
    pub fn from_profile_analyzed(profile: &ProfileSpec) -> Result<Self, DracoError> {
        Self::from_profile_analyzed_with_engine(profile, EngineKind::Compiled)
    }

    /// Like [`DracoChecker::from_profile_analyzed`] with an explicit
    /// miss-path engine.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError::FilterCompile`] if filter compilation fails.
    pub fn from_profile_analyzed_with_engine(
        profile: &ProfileSpec,
        kind: EngineKind,
    ) -> Result<Self, DracoError> {
        let mut checker = Self::from_profile_with_engine(profile, kind)?;
        let analysis = analyze_profile(profile).map_err(DracoError::FilterCompile)?;
        checker.install_analysis(&analysis);
        Ok(checker)
    }

    /// The flavor of the miss-path filter engine.
    pub const fn engine_kind(&self) -> EngineKind {
        self.filter.kind()
    }

    /// Installs a precomputed analysis plan (e.g. one shared across
    /// processes running the same profile). The analysis **must** come
    /// from [`draco_profiles::analyze_profile`] /
    /// [`draco_profiles::analyze_stack`] over this checker's profile —
    /// enforced by name here. Cached state is flushed so every resident
    /// entry was keyed consistently with the plan's masks.
    ///
    /// # Panics
    ///
    /// Panics if the analysis was computed for a different profile.
    pub fn install_analysis(&mut self, analysis: &ProfileAnalysis) {
        assert_eq!(
            analysis.name(),
            self.profile.name(),
            "analysis plan must match the installed profile"
        );
        let capacity = SyscallTable::shared().capacity();
        self.analysis = Some(AnalysisPlan::from_analysis(analysis, capacity));
        self.flush();
    }

    /// Whether an analysis plan is installed.
    pub const fn has_analysis(&self) -> bool {
        self.analysis.is_some()
    }

    /// Caps every VAT table at `cap` entries (builder-style): an OS
    /// memory-pressure policy. Evicted argument sets simply revalidate
    /// through the filter on their next use.
    #[must_use]
    pub fn with_vat_capacity_cap(mut self, cap: usize) -> Self {
        self.vat = crate::Vat::new().with_capacity_cap(cap);
        self
    }

    /// The checking mode.
    pub const fn mode(&self) -> CheckMode {
        self.mode
    }

    /// The profile being enforced.
    pub fn profile(&self) -> &ProfileSpec {
        &self.profile
    }

    /// Accumulated counters.
    pub const fn stats(&self) -> CheckerStats {
        self.stats
    }

    /// Accumulated batched-path counters.
    pub const fn batch_stats(&self) -> BatchStats {
        self.batch
    }

    /// This checker's observability snapshot: the `checker` section from
    /// its own counters and histograms, the `cuckoo` and `vat` sections
    /// aggregated from its VAT tables. (The `sim`/`replay` sections stay
    /// zeroed — they belong to other layers.)
    pub fn metrics(&self) -> MetricsRegistry {
        MetricsRegistry {
            checker: CheckerMetrics {
                spt_hits: self.stats.spt_hits,
                always_allow_hits: self.stats.always_allow_hits,
                vat_hits: self.stats.vat_hits,
                filter_runs: self.stats.filter_runs,
                filter_insns: self.stats.filter_insns,
                denials: self.stats.denials,
                vat_inserts: self.stats.vat_inserts,
                seqlock_retries: self.stats.seqlock_retries,
                vat_lock_waits: self.stats.vat_lock_waits,
                insert_races_lost: self.stats.insert_races_lost,
                masks_derived_match: self.analysis.as_ref().map_or(0, |p| p.derived_match),
                masks_overridden: self.analysis.as_ref().map_or(0, |p| p.overridden),
                batches: self.batch.batches,
                batched_checks: self.batch.batched_checks,
                prefetch_issued: self.batch.prefetch_issued,
                miss_dedup_hits: self.batch.miss_dedup_hits,
                reloads_permitted: self.stats.reloads_permitted,
                reloads_refused: self.stats.reloads_refused,
                batch_size: self.batch_size,
                insns_per_filter_run: self.insns_per_filter_run,
                saved_insns_per_hit: self.saved_insns_per_hit,
            },
            cuckoo: self.vat.cuckoo_metrics(),
            vat: self.vat.metrics(),
            ..MetricsRegistry::default()
        }
    }

    /// Enables the bounded flow-classification trace, keeping the most
    /// recent `capacity` events. The ring is fully allocated here, so
    /// recording on the check hot path never touches the heap.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_flow_trace(&mut self, capacity: usize) {
        self.flow_trace = Some(EventRing::with_capacity(capacity));
    }

    /// Disables (and drops) the flow trace.
    pub fn disable_flow_trace(&mut self) {
        self.flow_trace = None;
    }

    /// The flow trace, if enabled.
    pub fn flow_trace(&self) -> Option<&EventRing> {
        self.flow_trace.as_ref()
    }

    /// Attaches a denial audit stream: every denying verdict this
    /// checker produces is offered into `ring` tagged with `source`
    /// (typically the process or replay-shard id). The ring is shared —
    /// many checkers can feed one stream — and offering is lock-free
    /// and allocation-free, so the hot path's zero-allocation contract
    /// holds with auditing enabled.
    pub fn enable_audit(&mut self, ring: Arc<AuditRing>, source: u16) {
        self.audit = Some((ring, source));
    }

    /// Detaches (and releases this checker's handle on) the audit
    /// stream.
    pub fn disable_audit(&mut self) {
        self.audit = None;
    }

    /// The attached audit ring, if any.
    pub fn audit_ring(&self) -> Option<&Arc<AuditRing>> {
        self.audit.as_ref().map(|(ring, _)| ring)
    }

    /// Installs a sampled stage-span tracer (typically one built with a
    /// shared epoch and shard id for cross-shard merging). The tracer's
    /// buffers were pre-allocated at construction, so sampled checks
    /// record without touching the heap.
    pub fn install_span_tracer(&mut self, tracer: SpanTracer) {
        self.span_trace = Some(Box::new(tracer));
    }

    /// Enables span tracing with a fresh tracer holding up to `capacity`
    /// spans and sampling every `sample_interval`-th check (rounded up
    /// to a power of two). See [`SpanTracer::new`].
    pub fn enable_span_trace(&mut self, capacity: usize, sample_interval: u64) {
        self.install_span_tracer(SpanTracer::new(capacity, sample_interval));
    }

    /// Removes and returns the span tracer (e.g. to export its spans).
    pub fn take_span_tracer(&mut self) -> Option<SpanTracer> {
        self.span_trace.take().map(|boxed| *boxed)
    }

    /// The span tracer, if installed.
    pub fn span_tracer(&self) -> Option<&SpanTracer> {
        self.span_trace.as_deref()
    }

    /// Mean fallback cost observed so far, in cBPF instructions — what a
    /// cached hit is credited with saving. Integer division keeps the
    /// hot path float-free; 0 until the first filter run.
    fn mean_filter_cost(&self) -> u64 {
        self.stats.filter_insns / self.stats.filter_runs.max(1)
    }

    /// Records a flow classification into the trace ring (if enabled).
    fn trace_flow(&mut self, req: &SyscallRequest, class: FlowClass) {
        if let Some(ring) = self.flow_trace.as_mut() {
            ring.record(FlowEvent {
                seq: self.check_seq,
                syscall: req.id.as_u16(),
                class,
            });
        }
    }

    /// The SPT (read access for inspection and the simulator).
    pub fn spt(&self) -> &Spt {
        &self.spt
    }

    /// The VAT (read access for inspection and the simulator).
    pub fn vat(&self) -> &Vat {
        &self.vat
    }

    /// Pre-populates the SPT (and VAT structures) from the profile, as an
    /// OS could do at filter-install time. With warm tables, the first
    /// encounter of each ID-only syscall is already a hit.
    pub fn preload_spt(&mut self) {
        let rules: Vec<_> = self
            .profile
            .rules()
            .map(|(id, rule)| (id, rule.clone()))
            .collect();
        for (id, rule) in rules {
            match self.cache_plan(id, &rule) {
                (mask, Some(sets)) => {
                    let idx = self.vat.ensure_table(id, sets);
                    self.spt.set_valid(id, mask, Some(idx));
                }
                (mask, None) => self.spt.set_valid(id, mask, None),
            }
        }
    }

    /// How a validated syscall gets cached: the bitmask to store in the
    /// SPT and, for argument-checked syscalls, the VAT table size.
    ///
    /// Without an analysis plan this is exactly the authored rule. With
    /// one, a proven always-allow syscall caches as ID-only (empty mask,
    /// no VAT) even under a whitelist rule, and whitelisted syscalls key
    /// their VAT entries on the analyzer's effective mask.
    fn cache_plan(&self, id: SyscallId, rule: &SyscallRule) -> (ArgBitmask, Option<usize>) {
        if let Some(plan) = &self.analysis {
            if plan.always_allows(id) {
                return (ArgBitmask::EMPTY, None);
            }
        }
        match (&rule.args, self.mode) {
            (ArgPolicy::Whitelist { mask, sets }, CheckMode::IdAndArgs) => {
                let mask = self
                    .analysis
                    .as_ref()
                    .and_then(|plan| plan.mask(id))
                    .unwrap_or(*mask);
                (mask, Some(sets.len()))
            }
            _ => (ArgBitmask::EMPTY, None),
        }
    }

    /// Checks one system call (paper Fig. 4).
    pub fn check(&mut self, req: &SyscallRequest) -> CheckResult {
        self.check_seq = self.check_seq.saturating_add(1);
        // The tracer leaves `self` while the check borrows both — with no
        // tracer installed this moves a `None` box, with one installed an
        // unsampled check costs the sampling branch inside `begin`.
        let mut tracer = self.span_trace.take();
        let mut scope = TraceScope::begin(tracer.as_deref_mut(), self.check_seq, req.id.as_u16());
        let result = self.check_staged(req, &mut scope);
        self.span_trace = tracer;
        result
    }

    /// Checks a whole batch, amortizing per-check overhead across staged
    /// passes: (1) SPT-word resolve for all requests, partitioning fast
    /// exits from VAT candidates and deduplicating candidates on their
    /// masked key (repeats of a staged key share its staged work);
    /// (2) 4-lane interleaved CRC-64 hashing of the distinct surviving
    /// keys; (3) software prefetch of every distinct key's cuckoo slots
    /// (both ways) followed by a bulk probe pass; (4) an in-order commit
    /// walk that fans decisions out — replaying per-request hit/lookup
    /// bookkeeping — and runs the filter for misses.
    ///
    /// Produces exactly the decisions — and exactly the
    /// [`CheckerStats`] and table metrics — of calling
    /// [`DracoChecker::check`] on each request in order
    /// (`tests/equivalence.rs` pins this differentially). Misses
    /// deduplicate *through the caches*: once an early request validates
    /// a key, later requests in the same batch re-probe and hit instead
    /// of re-running the filter (counted in
    /// [`BatchStats::miss_dedup_hits`]). Denials are never memoized —
    /// every denied request runs the real filter, exactly as the scalar
    /// loop does.
    ///
    /// Writes one [`Decision`] per request into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != reqs.len()`.
    pub fn check_batch(&mut self, reqs: &[SyscallRequest], out: &mut [Decision]) {
        let mut scratch = core::mem::take(&mut self.batch_scratch);
        self.check_batch_with(reqs, out, &mut scratch);
        self.batch_scratch = scratch;
    }

    /// [`DracoChecker::check_batch`] with caller-provided staging
    /// buffers — the zero-allocation form once `scratch` is warm.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != reqs.len()`.
    pub fn check_batch_with(
        &mut self,
        reqs: &[SyscallRequest],
        out: &mut [Decision],
        scratch: &mut BatchScratch,
    ) {
        let committed = self.batch_passes(reqs, out, scratch, false);
        debug_assert_eq!(committed, reqs.len());
    }

    /// Batch segment for process-level callers: commits decisions in
    /// request order but stops immediately after committing a kill
    /// verdict, returning how many decisions were committed. The
    /// pre-commit passes are read-only (SPT accessed bits aside, which
    /// no stat or decision observes), so aborting the walk mid-batch
    /// leaves the checker exactly as a scalar loop that stopped at the
    /// same request.
    pub(crate) fn check_batch_segment(
        &mut self,
        reqs: &[SyscallRequest],
        out: &mut [Decision],
    ) -> usize {
        let mut scratch = core::mem::take(&mut self.batch_scratch);
        let committed = self.batch_passes(reqs, out, &mut scratch, true);
        self.batch_scratch = scratch;
        committed
    }

    /// The four staged passes. Returns the number of decisions
    /// committed (always `reqs.len()` unless `stop_on_kill` cut the
    /// commit walk short).
    fn batch_passes(
        &mut self,
        reqs: &[SyscallRequest],
        out: &mut [Decision],
        scratch: &mut BatchScratch,
        stop_on_kill: bool,
    ) -> usize {
        assert_eq!(reqs.len(), out.len(), "one decision slot per request");
        if reqs.is_empty() {
            return 0;
        }
        self.batch.batches += 1;
        self.batch.batched_checks += reqs.len() as u64;
        self.batch_size.record(reqs.len() as u64);
        let before = self.stats;
        scratch.reset();

        // One trace scope spans the whole batch (sequenced like the
        // batch's first check); each pass records its own stage.
        let mut tracer = self.span_trace.take();
        let mut scope = TraceScope::begin(
            tracer.as_deref_mut(),
            self.check_seq.saturating_add(1),
            reqs.first().map_or(0, |r| r.id.as_u16()),
        );

        // Pass 1 — resolve every request's SPT word, partitioning pure
        // SPT exits from VAT candidates, and deduplicate candidates on
        // their masked argument words: repeats of a key already staged
        // this batch (same table, same mask, equal masked words — which
        // is exactly selected-bytes equality) share its
        // hash/prefetch/probe instead of re-staging it. The per-syscall
        // resolve cache makes a repeat request cost six ANDs and a
        // compare. Hot replay traffic repeats a handful of argument
        // sets per batch, so this is where the batch earns its
        // amortization.
        let t = scope.stage_begin();
        let epoch = scratch.epoch;
        let cap = self.spt.capacity();
        if scratch.idcache.len() < cap {
            scratch.idcache.resize(cap, IdSlot::default());
        }
        let (mut n_spt, mut n_aa, mut n_cold) = (0u64, 0u64, 0u64);
        for req in reqs {
            let sid = req.id.as_u16() as usize;
            if sid >= scratch.idcache.len() {
                // Out of SPT range: the scalar path treats this as a
                // miss; route it through the commit walk unchanged.
                scratch.class.push(BatchClass::Cold);
                n_cold += 1;
                continue;
            }
            let slot = &mut scratch.idcache[sid];
            if slot.epoch != epoch {
                *slot = match self.spt.get(req.id) {
                    None => IdSlot {
                        epoch,
                        ..IdSlot::default()
                    },
                    Some(entry) => match (self.mode, entry.vat_index) {
                        (CheckMode::IdOnly, _) | (CheckMode::IdAndArgs, None) => IdSlot {
                            epoch,
                            class: BatchClass::SptExit {
                                always_allow: self
                                    .analysis
                                    .as_ref()
                                    .is_some_and(|plan| plan.always_allows(req.id)),
                            },
                            ..IdSlot::default()
                        },
                        (CheckMode::IdAndArgs, Some(idx)) => IdSlot {
                            epoch,
                            class: BatchClass::Candidate,
                            idx,
                            bitmask: entry.bitmask,
                            mask_words: entry.bitmask.expand(),
                            distinct: u32::MAX,
                        },
                    },
                };
            }
            let class = slot.class;
            match class {
                BatchClass::Cold => n_cold += 1,
                BatchClass::SptExit { always_allow } => {
                    n_spt += 1;
                    n_aa += u64::from(always_allow);
                }
                BatchClass::Candidate => {
                    let idx = slot.idx;
                    let args = req.args.as_array();
                    let mut w = [0u64; MAX_ARGS];
                    for ((wi, &a), &m) in w.iter_mut().zip(args.iter()).zip(&slot.mask_words) {
                        *wi = a & m;
                    }
                    let distinct = if slot.distinct != u32::MAX
                        && scratch.cand_masked[slot.distinct as usize] == w
                    {
                        slot.distinct
                    } else {
                        let fp = words_fingerprint(idx, &w);
                        let d = &mut scratch.dedup[(fp as usize) & (DEDUP_SLOTS - 1)];
                        let hit = d.epoch == epoch
                            && d.fp == fp
                            && scratch.cand[d.distinct as usize] == idx
                            && scratch.cand_mask[d.distinct as usize] == slot.bitmask
                            && scratch.cand_masked[d.distinct as usize] == w;
                        if hit {
                            d.distinct
                        } else {
                            let fresh = scratch.cand.len() as u32;
                            scratch.cand.push(idx);
                            scratch.cand_mask.push(slot.bitmask);
                            scratch.cand_masked.push(w);
                            scratch.keys.push(slot.bitmask.select_bytes(&req.args));
                            scratch.dups.push(0);
                            *d = DedupSlot {
                                fp,
                                epoch,
                                distinct: fresh,
                            };
                            fresh
                        }
                    };
                    scratch.dups[distinct as usize] += 1;
                    slot.distinct = distinct;
                    scratch.slot.push(distinct);
                }
            }
            scratch.class.push(class);
        }
        scope.stage_end(Stage::BatchSptResolve, t);

        // Pass 2 — CRC-64 both ways for every surviving key, four lanes
        // interleaved (falls back to scalar for the remainder).
        let t = scope.stage_begin();
        let hasher = CrcPairHasher::new();
        let mut lanes = scratch.keys.chunks_exact(4);
        for four in &mut lanes {
            scratch.pairs.extend_from_slice(&hasher.hash_pair4([
                four[0].as_slice(),
                four[1].as_slice(),
                four[2].as_slice(),
                four[3].as_slice(),
            ]));
        }
        for key in lanes.remainder() {
            scratch.pairs.push(hasher.hash_pair(key.as_slice()));
        }
        scope.stage_end(Stage::BatchCrcHash, t);

        // Pass 3 — touch every distinct key's cuckoo slots (both ways)
        // before any probe, overlapping cache fills the way the
        // hardware SLB overlaps probe latency with younger work; then
        // probe once per distinct key. Probes do not count lookups yet —
        // the commit walk replays that bookkeeping per request, in
        // request order.
        let t = scope.stage_begin();
        for (&idx, &pair) in scratch.cand.iter().zip(scratch.pairs.iter()) {
            if self.vat.prefetch(idx, pair) {
                self.batch.prefetch_issued += 2;
            }
        }
        scope.stage_end(Stage::BatchPrefetch, t);
        let t = scope.stage_begin();
        for ((&idx, key), &pair) in scratch
            .cand
            .iter()
            .zip(scratch.keys.iter())
            .zip(scratch.pairs.iter())
        {
            scratch
                .probes
                .push(self.vat.probe_hashed(idx, key.as_slice(), pair));
        }
        scope.stage_end(Stage::BatchProbe, t);

        // Pass 4 — commit. An all-hit batch (no cold requests, every
        // distinct probe hit) with no flow trace attached commits in
        // O(distinct) instead of O(requests): the scalar loop's
        // bookkeeping for n consecutive hits on one entry has a closed
        // form (`Vat::count_hits_bulk`), histograms are order-free
        // bags, and with no filter run possible the recorded
        // saved-insns mean is a single loop-invariant value. The
        // pairwise-distinct table check keeps the closed form exact —
        // one distinct key per table means each table really does see
        // consecutive same-entry hits.
        let t = scope.stage_begin();
        let mut committed = reqs.len();
        let bulk = n_cold == 0
            && self.flow_trace.is_none()
            && scratch.cand.len() <= BULK_DISTINCT_LIMIT
            && scratch.probes.iter().all(Option::is_some)
            && tables_pairwise_distinct(&scratch.cand);
        if bulk {
            self.commit_batch_bulk(reqs, out, scratch, n_spt, n_aa);
            scope.stage_end(Stage::BatchCommit, t);
        } else {
            committed = self.commit_batch_walk(reqs, out, scratch, stop_on_kill);
            scope.stage_end(Stage::BatchCommit, t);
        }

        // Classify the whole batch by its most severe flow (delta over
        // the stats captured at entry).
        let class = if self.stats.denials != before.denials {
            FlowClass::FilterDeny
        } else if self.stats.filter_runs != before.filter_runs {
            FlowClass::FilterAllow
        } else if self.stats.vat_hits != before.vat_hits {
            FlowClass::VatHit
        } else {
            FlowClass::SptHit
        };
        scope.finish(class);
        self.span_trace = tracer;
        committed
    }

    /// O(distinct) commit for a batch that is provably all cache hits.
    ///
    /// Produces byte-identical [`CheckerStats`] and metrics to the
    /// per-request walk (and hence to the scalar loop — the replay and
    /// equivalence suites pin both): counter increments are bulk sums,
    /// per-table lookup bookkeeping goes through
    /// [`Vat::count_hits_bulk`]'s exact closed form, and every hit
    /// records the same loop-invariant filter-cost mean the scalar
    /// loop would. No filter ever runs here, so no kill verdict can
    /// occur and `stop_on_kill` is vacuous.
    fn commit_batch_bulk(
        &mut self,
        reqs: &[SyscallRequest],
        out: &mut [Decision],
        scratch: &BatchScratch,
        n_spt: u64,
        n_aa: u64,
    ) {
        self.check_seq = self.check_seq.saturating_add(reqs.len() as u64);
        self.stats.spt_hits += n_spt;
        self.stats.always_allow_hits += n_aa;
        let cand_requests = scratch.slot.len() as u64;
        self.stats.vat_hits += cand_requests;
        let mean = self.mean_filter_cost();
        self.saved_insns_per_hit.record_n(mean, n_spt + cand_requests);
        for ((&idx, probe), &n) in scratch
            .cand
            .iter()
            .zip(scratch.probes.iter())
            .zip(scratch.dups.iter())
        {
            if let Some(hit) = *probe {
                self.vat.count_hits_bulk(idx, hit, u64::from(n));
            }
        }
        const SPT_HIT: Decision = CheckResult {
            action: SeccompAction::Allow,
            path: CheckPath::SptHit,
        };
        const VAT_HIT: Decision = CheckResult {
            action: SeccompAction::Allow,
            path: CheckPath::VatHit,
        };
        // Uniform batches (the common replay shape) fan out with a
        // single fill; mixed batches walk the class array.
        if n_spt == 0 {
            out.fill(VAT_HIT);
        } else if cand_requests == 0 {
            out.fill(SPT_HIT);
        } else {
            for (slot, class) in out.iter_mut().zip(scratch.class.iter()) {
                *slot = match class {
                    BatchClass::SptExit { .. } => SPT_HIT,
                    BatchClass::Candidate => VAT_HIT,
                    BatchClass::Cold => unreachable!("bulk commit requires a cold-free batch"),
                };
            }
        }
    }

    /// The general per-request commit walk — the reference semantics
    /// every batch must match.
    fn commit_batch_walk(
        &mut self,
        reqs: &[SyscallRequest],
        out: &mut [Decision],
        scratch: &BatchScratch,
        stop_on_kill: bool,
    ) -> usize {
        // `stale` flips once a filter run inserts into the VAT: inserts
        // can relocate or evict entries, so later candidates re-probe
        // with their cached hash pair (a re-probe that now hits is a
        // batch-local dedup).
        let mut stale = false;
        let mut cursor = 0usize;
        let mut committed = reqs.len();
        // Between filter runs `stats.filter_{insns,runs}` cannot change,
        // so the mean a hit records is loop-invariant: hoist it and
        // refresh only after a path that may run the filter. Each hit
        // still records exactly the value the scalar loop would.
        let mut mean = self.mean_filter_cost();
        for (i, req) in reqs.iter().enumerate() {
            self.check_seq = self.check_seq.saturating_add(1);
            let result = match scratch.class[i] {
                BatchClass::SptExit { always_allow } => {
                    self.stats.spt_hits += 1;
                    if always_allow {
                        self.stats.always_allow_hits += 1;
                    }
                    self.saved_insns_per_hit.record(mean);
                    self.trace_flow(req, FlowClass::SptHit);
                    CheckResult {
                        action: SeccompAction::Allow,
                        path: CheckPath::SptHit,
                    }
                }
                BatchClass::Candidate => {
                    let slot = scratch.slot[cursor] as usize;
                    cursor += 1;
                    let idx = scratch.cand[slot];
                    let mut found = scratch.probes[slot];
                    if stale {
                        let fresh = self.vat.probe_hashed(
                            idx,
                            scratch.keys[slot].as_slice(),
                            scratch.pairs[slot],
                        );
                        if found.is_none() && fresh.is_some() {
                            self.batch.miss_dedup_hits += 1;
                        }
                        found = fresh;
                    }
                    self.vat.count_lookup(idx, found);
                    if found.is_some() {
                        self.stats.vat_hits += 1;
                        self.saved_insns_per_hit.record(mean);
                        self.trace_flow(req, FlowClass::VatHit);
                        CheckResult {
                            action: SeccompAction::Allow,
                            path: CheckPath::VatHit,
                        }
                    } else {
                        let inserts = self.stats.vat_inserts;
                        let result = self.run_filter_and_update(req, &mut TraceScope::inactive());
                        stale |= self.stats.vat_inserts != inserts;
                        mean = self.mean_filter_cost();
                        result
                    }
                }
                BatchClass::Cold => {
                    let cached = self.stats.spt_hits + self.stats.vat_hits;
                    let inserts = self.stats.vat_inserts;
                    let result = self.check_staged(req, &mut TraceScope::inactive());
                    if self.stats.spt_hits + self.stats.vat_hits != cached {
                        self.batch.miss_dedup_hits += 1;
                    }
                    stale |= self.stats.vat_inserts != inserts;
                    mean = self.mean_filter_cost();
                    result
                }
            };
            out[i] = result;
            if stop_on_kill
                && matches!(
                    result.action,
                    SeccompAction::KillProcess | SeccompAction::KillThread
                )
            {
                committed = i + 1;
                break;
            }
        }
        committed
    }

    fn check_staged(&mut self, req: &SyscallRequest, scope: &mut TraceScope<'_>) -> CheckResult {
        // 1. SPT lookup by SID.
        let t = scope.stage_begin();
        let entry = self.spt.get(req.id);
        scope.stage_end(Stage::SptLookup, t);
        if let Some(entry) = entry {
            match (self.mode, entry.vat_index) {
                // ID-only checking, or this syscall needs no arg checks.
                (CheckMode::IdOnly, _) | (CheckMode::IdAndArgs, None) => {
                    self.stats.spt_hits += 1;
                    if let Some(plan) = &self.analysis {
                        if plan.always_allows(req.id) {
                            self.stats.always_allow_hits += 1;
                        }
                    }
                    self.saved_insns_per_hit.record(self.mean_filter_cost());
                    self.trace_flow(req, FlowClass::SptHit);
                    scope.finish(FlowClass::SptHit);
                    return CheckResult {
                        action: SeccompAction::Allow,
                        path: CheckPath::SptHit,
                    };
                }
                // 2. VAT probe. The sampled path decomposes the lookup
                // into its hash/per-way stages; both paths produce
                // identical results and counters.
                (CheckMode::IdAndArgs, Some(idx)) => {
                    let hit = if scope.is_active() {
                        self.vat
                            .lookup_traced(idx, entry.bitmask, &req.args, scope)
                    } else {
                        self.vat.lookup(idx, entry.bitmask, &req.args)
                    };
                    if hit.is_some() {
                        self.stats.vat_hits += 1;
                        self.saved_insns_per_hit.record(self.mean_filter_cost());
                        self.trace_flow(req, FlowClass::VatHit);
                        scope.finish(FlowClass::VatHit);
                        return CheckResult {
                            action: SeccompAction::Allow,
                            path: CheckPath::VatHit,
                        };
                    }
                }
            }
        }
        // 3. Fall back to the Seccomp filter.
        self.run_filter_and_update(req, scope)
    }

    fn run_filter_and_update(
        &mut self,
        req: &SyscallRequest,
        scope: &mut TraceScope<'_>,
    ) -> CheckResult {
        let data = SeccompData::from_request(req);
        let t = scope.stage_begin();
        let outcome = self
            .filter
            .run(&data)
            .expect("profile-generated filters cannot fault");
        scope.stage_end(Stage::FilterExec, t);
        self.stats.filter_runs += 1;
        self.stats.filter_insns += outcome.insns_executed;
        self.insns_per_filter_run.record(outcome.insns_executed);
        if outcome.action.permits() {
            let t = scope.stage_begin();
            self.record_validation(req);
            scope.stage_end(Stage::VatInsert, t);
            self.trace_flow(req, FlowClass::FilterAllow);
            scope.finish(FlowClass::FilterAllow);
        } else {
            self.stats.denials += 1;
            if let Some((ring, source)) = &self.audit {
                if let Some(event) = deny_audit_event(
                    *source,
                    req,
                    outcome.action,
                    self.filter.kind(),
                    outcome.insns_executed,
                ) {
                    ring.offer(event);
                }
            }
            self.trace_flow(req, FlowClass::FilterDeny);
            scope.finish(FlowClass::FilterDeny);
        }
        CheckResult {
            action: outcome.action,
            path: CheckPath::FilterRun {
                insns: outcome.insns_executed,
            },
        }
    }

    /// Updates SPT/VAT after a successful filter run ("Update Table" in
    /// paper Fig. 4).
    fn record_validation(&mut self, req: &SyscallRequest) {
        let rule = match self.profile.rule(req.id) {
            Some(rule) => rule.clone(),
            // The filter allowed a syscall the profile has no rule for
            // (cannot happen with generated filters; defensive for custom
            // engines): do not cache.
            None => return,
        };
        match self.cache_plan(req.id, &rule) {
            (mask, Some(sets)) => {
                let idx = self.vat.ensure_table(req.id, sets);
                self.spt.set_valid(req.id, mask, Some(idx));
                self.vat.insert(idx, mask, &req.args);
                self.stats.vat_inserts += 1;
            }
            (mask, None) => self.spt.set_valid(req.id, mask, None),
        }
    }

    /// Clears all cached state (the paper's one-shot clear, §VII-B).
    pub fn flush(&mut self) {
        self.spt.invalidate_all();
        self.vat.clear();
    }

    /// Attaches an additional filter, as `seccomp(2)` allows a running
    /// process to do. The effective policy becomes the intersection
    /// (kernel most-restrictive combining) and every cached validation is
    /// flushed — a pair the old tables admitted may now be denied, so
    /// §VII-B's "filters are not modified" soundness condition is
    /// re-established by starting cold.
    ///
    /// # Errors
    ///
    /// Returns [`DracoError::FilterCompile`] if the combined filter fails
    /// to compile.
    pub fn install_additional(&mut self, extra: &ProfileSpec) -> Result<(), DracoError> {
        let combined = self.profile.intersect(extra);
        // Rebuild with the same engine flavor this checker was created
        // with: a DAG-backed checker stays DAG-backed across policy swaps.
        self.filter = FilterEngine::build(&combined, self.filter.kind())?;
        self.mode = if combined.checks_arguments() {
            CheckMode::IdAndArgs
        } else {
            CheckMode::IdOnly
        };
        self.profile = combined;
        // The old analysis plan proved facts about the *previous* filter;
        // re-derive it for the intersection before any check consults it.
        if self.analysis.take().is_some() {
            let analysis =
                analyze_profile(&self.profile).map_err(DracoError::FilterCompile)?;
            let capacity = SyscallTable::shared().capacity();
            self.analysis = Some(AnalysisPlan::from_analysis(&analysis, capacity));
        }
        self.flush();
        Ok(())
    }
}

impl fmt::Display for DracoChecker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DracoChecker[{}] {}",
            self.profile.name(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_profiles::{docker_default, ProfileGenerator, ProfileKind};
    use draco_syscalls::{ArgSet, SyscallId};

    fn req(nr: u16, args: &[u64]) -> SyscallRequest {
        SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
    }

    #[test]
    fn id_only_profile_uses_spt() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(39, &[]));
        let profile = gen.emit(ProfileKind::SyscallNoargs);
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        assert_eq!(checker.mode(), CheckMode::IdOnly);

        let r1 = checker.check(&req(39, &[]));
        assert!(matches!(r1.path, CheckPath::FilterRun { .. }));
        assert_eq!(r1.action, SeccompAction::Allow);
        let r2 = checker.check(&req(39, &[]));
        assert_eq!(r2.path, CheckPath::SptHit);
        assert_eq!(checker.stats().spt_hits, 1);
        assert_eq!(checker.stats().filter_runs, 1);
    }

    #[test]
    fn arg_checking_profile_uses_vat() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(0, &[3, 0xaaaa, 64]));
        gen.observe(&req(0, &[4, 0xbbbb, 128]));
        let profile = gen.emit(ProfileKind::SyscallComplete);
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        assert_eq!(checker.mode(), CheckMode::IdAndArgs);

        // First encounters run the filter.
        assert!(!checker.check(&req(0, &[3, 1, 64])).path.is_cache_hit());
        assert!(!checker.check(&req(0, &[4, 2, 128])).path.is_cache_hit());
        // Re-encounters hit the VAT (pointer arg may differ).
        let r = checker.check(&req(0, &[3, 999, 64]));
        assert_eq!(r.path, CheckPath::VatHit);
        assert_eq!(r.action, SeccompAction::Allow);
        assert_eq!(checker.stats().vat_hits, 1);
        assert_eq!(checker.stats().vat_inserts, 2);
    }

    #[test]
    fn denied_calls_never_cached() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(0, &[3, 0, 64]));
        let profile = gen.emit(ProfileKind::SyscallComplete);
        let mut checker = DracoChecker::from_profile(&profile).unwrap();

        for _ in 0..3 {
            let r = checker.check(&req(0, &[9, 0, 64]));
            assert!(!r.action.permits());
            assert!(matches!(r.path, CheckPath::FilterRun { .. }));
        }
        assert_eq!(checker.stats().denials, 3);
        assert_eq!(checker.stats().vat_hits, 0);
    }

    #[test]
    fn audit_ring_sees_every_denial_and_nothing_else() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(0, &[3, 0, 64]));
        let profile = gen.emit(ProfileKind::SyscallComplete);
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        let ring = Arc::new(AuditRing::with_capacity(16));
        checker.enable_audit(Arc::clone(&ring), 7);

        checker.check(&req(0, &[3, 0, 64])); // allowed: no event
        checker.check(&req(0, &[9, 0, 64])); // denied
        checker.check(&req(99, &[0, 0, 0])); // denied (unknown syscall)
        assert_eq!(checker.stats().denials, 2);
        assert_eq!(
            ring.events_published() + ring.events_dropped(),
            checker.stats().denials
        );

        let mut events = Vec::new();
        ring.drain(&mut events);
        assert_eq!(events.len(), 2);
        for event in &events {
            assert_eq!(event.source, 7);
            assert_eq!(event.engine, AuditEngine::Compiled);
        }
        assert_eq!(events[0].syscall, 0);
        assert_eq!(events[1].syscall, 99);

        checker.disable_audit();
        checker.check(&req(0, &[9, 0, 64]));
        assert!(ring.is_empty());
    }

    #[test]
    fn audit_batch_path_matches_scalar_denials() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(0, &[3, 0, 64]));
        let profile = gen.emit(ProfileKind::SyscallComplete);
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        let ring = Arc::new(AuditRing::with_capacity(64));
        checker.enable_audit(Arc::clone(&ring), 1);

        let reqs: Vec<SyscallRequest> = (0..32)
            .map(|i| {
                if i % 3 == 0 {
                    req(0, &[9 + i, 0, 64]) // denied: unvalidated fd
                } else {
                    req(0, &[3, 0, 64]) // allowed
                }
            })
            .collect();
        let mut out = vec![
            CheckResult {
                action: SeccompAction::Allow,
                path: CheckPath::SptHit,
            };
            reqs.len()
        ];
        checker.check_batch(&reqs, &mut out);
        let denied = out.iter().filter(|r| !r.action.permits()).count() as u64;
        assert_eq!(checker.stats().denials, denied);
        assert_eq!(ring.events_published() + ring.events_dropped(), denied);
    }

    #[test]
    fn dag_engine_denials_carry_closed_form_provenance() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(39, &[]));
        let profile = gen.emit(ProfileKind::SyscallNoargs);
        let mut checker =
            DracoChecker::from_profile_analyzed_with_engine(&profile, EngineKind::Dag).unwrap();
        let ring = Arc::new(AuditRing::with_capacity(8));
        checker.enable_audit(Arc::clone(&ring), 2);

        let denied = checker.check(&req(99, &[0, 0, 0]));
        assert!(!denied.action.permits());
        let mut events = Vec::new();
        ring.drain(&mut events);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].engine, AuditEngine::Dag);
        if let CheckPath::FilterRun { insns: 0 } = denied.path {
            assert_eq!(events[0].provenance, AuditProvenance::DagClosed);
        } else {
            assert_eq!(events[0].provenance, AuditProvenance::Vm);
        }
    }

    #[test]
    fn cache_verdicts_match_oracle_on_docker() {
        let profile = docker_default();
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        let reqs = [
            req(0, &[3, 0, 100]),
            req(135, &[0xffff_ffff, 0, 0]),
            req(135, &[0x1234, 0, 0]),
            req(101, &[0, 0, 0]),
            req(0, &[3, 0, 100]),
            req(135, &[0xffff_ffff, 0, 0]),
        ];
        for r in &reqs {
            let got = checker.check(r);
            assert_eq!(got.action, profile.evaluate(r), "{r}");
        }
        assert!(checker.stats().cache_hit_rate() > 0.0);
    }

    #[test]
    fn preload_makes_first_check_a_hit() {
        let profile = docker_default();
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        checker.preload_spt();
        // read has no arg checks in docker-default → SPT hit immediately.
        let r = checker.check(&req(0, &[3, 0, 100]));
        assert_eq!(r.path, CheckPath::SptHit);
        // personality has arg checks → first value still needs the filter.
        let r = checker.check(&req(135, &[0xffff_ffff, 0, 0]));
        assert!(matches!(r.path, CheckPath::FilterRun { .. }));
        let r = checker.check(&req(135, &[0xffff_ffff, 0, 0]));
        assert_eq!(r.path, CheckPath::VatHit);
    }

    #[test]
    fn flush_forgets_everything() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(39, &[]));
        let profile = gen.emit(ProfileKind::SyscallNoargs);
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        checker.check(&req(39, &[]));
        checker.flush();
        let r = checker.check(&req(39, &[]));
        assert!(matches!(r.path, CheckPath::FilterRun { .. }));
    }

    #[test]
    fn interpreted_engine_costs_more_same_verdict() {
        let profile = docker_default();
        let stack = compile_stacked(&profile, FilterLayout::Linear).unwrap();
        let compiled_stack = stack.compiled();
        let mut interp = DracoChecker::new(
            profile.clone(),
            FilterEngine::Interpreted(stack),
            CheckMode::IdAndArgs,
        );
        let mut compiled = DracoChecker::new(
            profile,
            FilterEngine::Compiled(compiled_stack),
            CheckMode::IdAndArgs,
        );
        let r = req(231, &[0]);
        let a = interp.check(&r);
        let b = compiled.check(&r);
        assert_eq!(a.action, b.action);
        // Identical instruction counts (the engines are semantically
        // identical; only wall-clock differs).
        assert_eq!(a.path, b.path);
    }

    #[test]
    fn install_additional_restricts_and_flushes() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(0, &[3, 0, 64]));
        gen.observe(&req(1, &[4, 0, 64]));
        let base = gen.emit(ProfileKind::SyscallNoargs);
        let mut checker = DracoChecker::from_profile(&base).unwrap();
        // Warm both syscalls.
        assert!(checker.check(&req(0, &[3, 0, 64])).action.permits());
        assert!(checker.check(&req(1, &[4, 0, 64])).action.permits());
        assert!(checker.check(&req(1, &[4, 0, 64])).path.is_cache_hit());

        // A second filter that only allows read.
        let mut gen2 = ProfileGenerator::new("tighter");
        gen2.observe(&req(0, &[3, 0, 64]));
        let extra = gen2.emit(ProfileKind::SyscallNoargs);
        checker.install_additional(&extra).unwrap();

        // write is now denied — including the previously cached pair.
        assert!(!checker.check(&req(1, &[4, 0, 64])).action.permits());
        // read revalidates from cold, then caches again.
        let r = checker.check(&req(0, &[3, 0, 64]));
        assert!(r.action.permits());
        assert!(!r.path.is_cache_hit(), "tables were flushed");
        assert!(checker.check(&req(0, &[3, 0, 64])).path.is_cache_hit());
        assert!(checker.profile().name().contains('+'));
    }

    #[test]
    fn install_additional_matches_intersection_oracle() {
        let base = docker_default();
        let mut gen = ProfileGenerator::new("app");
        for nr in [0u16, 1, 3, 135] {
            gen.observe(&req(nr, &[0xffff_ffff, 0, 0]));
        }
        let extra = gen.emit(ProfileKind::SyscallComplete);
        let oracle = base.intersect(&extra);
        let mut checker = DracoChecker::from_profile(&base).unwrap();
        checker.install_additional(&extra).unwrap();
        for nr in [0u16, 1, 3, 57, 135, 200] {
            for v in [0u64, 0xffff_ffff] {
                let r = req(nr, &[v, 0, 0]);
                assert_eq!(
                    checker.check(&r).action.permits(),
                    oracle.evaluate(&r).permits(),
                    "{r}"
                );
            }
        }
    }

    #[test]
    fn dag_engine_matches_compiled_engine_decisions() {
        for profile in [
            docker_default(),
            draco_profiles::gvisor_default(),
            draco_profiles::firecracker(),
        ] {
            let mut dag = DracoChecker::from_profile_dag(&profile).unwrap();
            let mut compiled = DracoChecker::from_profile(&profile).unwrap();
            assert_eq!(dag.engine_kind(), EngineKind::Dag);
            assert_eq!(compiled.engine_kind(), EngineKind::Compiled);
            for nr in (0u16..512).step_by(7).chain([0, 1, 56, 57, 101, 135, 435]) {
                for args in [
                    [0u64, 0, 0, 0, 0, 0],
                    [3, 0, 64, 0, 0, 0],
                    [0xffff_ffff, 0, 0, 0, 0, 0],
                    [0x0002_0008, 0, 0, 0, 0, 0],
                    [u64::MAX, u64::MAX, u64::MAX, 0, 0, 0],
                ] {
                    let r = SyscallRequest::new(1, SyscallId::new(nr), ArgSet::from_slice(&args));
                    // Flush both so every check exercises the miss-path
                    // engine, not the SPT/VAT caches.
                    dag.flush();
                    compiled.flush();
                    assert_eq!(
                        dag.check(&r).action,
                        compiled.check(&r).action,
                        "{} {r}",
                        profile.name()
                    );
                }
            }
        }
    }

    #[test]
    fn dag_engine_batch_matches_scalar_compiled() {
        let profile = draco_profiles::gvisor_default();
        let mut dag = DracoChecker::from_profile_dag(&profile).unwrap();
        let mut compiled = DracoChecker::from_profile(&profile).unwrap();
        let reqs: Vec<SyscallRequest> = (0u16..256)
            .flat_map(|nr| {
                [[0u64, 0, 0], [0xffff_ffff, 0, 0], [3, 0, 64]].into_iter().map(move |a| {
                    SyscallRequest::new(1, SyscallId::new(nr), ArgSet::from_slice(&a))
                })
            })
            .collect();
        let mut out = vec![Decision::KILLED; reqs.len()];
        dag.check_batch(&reqs, &mut out);
        for (r, d) in reqs.iter().zip(&out) {
            assert_eq!(d.action, compiled.check(r).action, "{r}");
        }
    }

    #[test]
    fn install_additional_preserves_dag_engine() {
        let mut gen = ProfileGenerator::new("app");
        gen.observe(&req(0, &[3, 0, 64]));
        gen.observe(&req(1, &[4, 0, 64]));
        let base = gen.emit(ProfileKind::SyscallNoargs);
        let mut checker = DracoChecker::from_profile_dag(&base).unwrap();

        let mut gen2 = ProfileGenerator::new("tighter");
        gen2.observe(&req(0, &[3, 0, 64]));
        let extra = gen2.emit(ProfileKind::SyscallNoargs);
        checker.install_additional(&extra).unwrap();

        assert_eq!(checker.engine_kind(), EngineKind::Dag);
        assert!(checker.check(&req(0, &[3, 0, 64])).action.permits());
        assert!(!checker.check(&req(1, &[4, 0, 64])).action.permits());
    }

    #[test]
    fn metrics_reflect_check_traffic() {
        let profile = docker_default();
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        checker.preload_spt();
        checker.check(&req(0, &[3, 0, 100])); // spt hit
        checker.check(&req(135, &[0xffff_ffff, 0, 0])); // filter + insert
        checker.check(&req(135, &[0xffff_ffff, 0, 0])); // vat hit
        let m = checker.metrics();
        assert_eq!(m.checker.spt_hits, checker.stats().spt_hits);
        assert_eq!(m.checker.vat_hits, 1);
        assert_eq!(m.checker.filter_runs, 1);
        assert_eq!(
            m.checker.insns_per_filter_run.count(),
            1,
            "one sample per fallback"
        );
        assert_eq!(
            m.checker.saved_insns_per_hit.count(),
            2,
            "one sample per cached hit"
        );
        assert_eq!(m.cuckoo.hits, 1, "VAT table traffic aggregated");
        assert!(m.vat.tables >= 1);
        assert_eq!(m.sim, draco_obs::SimMetrics::default(), "not our section");
        assert_eq!(m.replay.checks, 0, "not our section");
    }

    #[test]
    fn flow_trace_records_recent_classifications() {
        let profile = docker_default();
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        assert!(checker.flow_trace().is_none(), "off by default");
        checker.enable_flow_trace(4);
        checker.preload_spt();
        checker.check(&req(0, &[3, 0, 100])); // spt hit
        checker.check(&req(135, &[0xffff_ffff, 0, 0])); // filter allow
        checker.check(&req(135, &[0xffff_ffff, 0, 0])); // vat hit
        checker.check(&req(999, &[0, 0, 0])); // deny
        let ring = checker.flow_trace().expect("enabled");
        let classes: Vec<FlowClass> = ring.iter_recent().map(|e| e.class).collect();
        assert_eq!(
            classes,
            vec![
                FlowClass::SptHit,
                FlowClass::FilterAllow,
                FlowClass::VatHit,
                FlowClass::FilterDeny
            ]
        );
        let syscalls: Vec<u16> = ring.iter_recent().map(|e| e.syscall).collect();
        assert_eq!(syscalls, vec![0, 135, 135, 999]);
        checker.disable_flow_trace();
        assert!(checker.flow_trace().is_none());
    }

    #[test]
    fn span_trace_records_staged_check_pipeline() {
        let profile = docker_default();
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        assert!(checker.span_tracer().is_none(), "off by default");
        checker.enable_span_trace(1024, 1); // sample every check
        checker.preload_spt();
        checker.check(&req(0, &[3, 0, 100])); // spt hit
        checker.check(&req(135, &[0xffff_ffff, 0, 0])); // filter + insert
        checker.check(&req(135, &[0xffff_ffff, 0, 0])); // vat hit
        checker.check(&req(999, &[0, 0, 0])); // deny

        let tracer = checker.span_tracer().expect("installed");
        assert_eq!(tracer.sampled_checks(), 4);
        let spans = tracer.spans();
        let stages: Vec<Stage> = spans.iter().map(|s| s.stage).collect();
        // Every check starts at the SPT.
        assert_eq!(spans.iter().filter(|s| s.stage == Stage::SptLookup).count(), 4);
        // The miss ran the filter and refilled the VAT...
        assert!(stages.contains(&Stage::FilterExec));
        assert!(stages.contains(&Stage::VatInsert));
        // ...and the re-encounter hashed and probed.
        assert!(stages.contains(&Stage::CrcHash));
        assert!(stages.contains(&Stage::VatProbeWay1));
        // Spans carry the flow class of their whole check.
        assert!(spans
            .iter()
            .any(|s| s.stage == Stage::SptLookup && s.class == FlowClass::SptHit));
        assert!(spans
            .iter()
            .any(|s| s.stage == Stage::FilterExec && s.class == FlowClass::FilterDeny));
        assert!(spans
            .iter()
            .any(|s| s.stage == Stage::CrcHash && s.class == FlowClass::VatHit));

        // Taking the tracer detaches it; checks keep working untraced.
        let taken = checker.take_span_tracer().expect("taken");
        assert!(!taken.spans().is_empty());
        assert!(checker.span_tracer().is_none());
        assert!(checker.check(&req(0, &[3, 0, 100])).path.is_cache_hit());
    }

    #[test]
    fn traced_and_untraced_checks_agree_on_results_and_metrics() {
        let profile = docker_default();
        let mut plain = DracoChecker::from_profile(&profile).unwrap();
        let mut traced = DracoChecker::from_profile(&profile).unwrap();
        traced.enable_span_trace(4096, 1);
        let reqs = [
            req(0, &[3, 0, 100]),
            req(135, &[0xffff_ffff, 0, 0]),
            req(135, &[0xffff_ffff, 0, 0]),
            req(135, &[0x1234, 0, 0]),
            req(999, &[0, 0, 0]),
            req(0, &[3, 0, 100]),
        ];
        for r in &reqs {
            assert_eq!(traced.check(r), plain.check(r), "{r}");
        }
        assert_eq!(traced.metrics(), plain.metrics(), "identical registries");
    }

    #[test]
    fn saved_insns_tracks_mean_fallback_cost() {
        let profile = docker_default();
        let mut checker = DracoChecker::from_profile(&profile).unwrap();
        checker.preload_spt();
        // Before any filter run the credited saving is 0.
        checker.check(&req(0, &[3, 0, 100]));
        assert_eq!(checker.metrics().checker.saved_insns_per_hit.sum, 0);
        // After a fallback, hits are credited with its mean cost.
        let r = checker.check(&req(135, &[0xffff_ffff, 0, 0]));
        let insns = match r.path {
            CheckPath::FilterRun { insns } => insns,
            other => panic!("expected filter run, got {other:?}"),
        };
        checker.check(&req(135, &[0xffff_ffff, 0, 0])); // vat hit
        let m = checker.metrics();
        assert_eq!(m.checker.saved_insns_per_hit.count(), 2);
        assert_eq!(m.checker.saved_insns_per_hit.sum, insns);
    }

    #[test]
    fn analyzed_checker_agrees_with_plain_and_oracle() {
        let profile = docker_default();
        let mut plain = DracoChecker::from_profile(&profile).unwrap();
        let mut analyzed = DracoChecker::from_profile_analyzed(&profile).unwrap();
        plain.preload_spt();
        analyzed.preload_spt();
        let reqs = [
            req(0, &[3, 0, 100]),
            req(135, &[0xffff_ffff, 0, 0]),
            req(135, &[0x1234, 0, 0]),
            req(135, &[0xffff_ffff, 0, 0]),
            req(101, &[0, 0, 0]),
            req(999, &[0, 0, 0]),
            req(0, &[3, 0, 100]),
        ];
        for r in &reqs {
            let a = analyzed.check(r);
            let b = plain.check(r);
            assert_eq!(a.action, b.action, "{r}");
            assert_eq!(a.action, profile.evaluate(r), "{r}");
        }
    }

    #[test]
    fn analysis_plan_counts_always_allow_hits_and_mask_agreement() {
        let profile = docker_default();
        let mut checker = DracoChecker::from_profile_analyzed(&profile).unwrap();
        assert!(checker.has_analysis());
        checker.preload_spt();
        checker.check(&req(0, &[3, 0, 100])); // read: proven always-allow
        checker.check(&req(135, &[0xffff_ffff, 0, 0])); // filter + insert
        checker.check(&req(135, &[0xffff_ffff, 0, 0])); // vat hit
        let stats = checker.stats();
        assert_eq!(stats.spt_hits, 1);
        assert_eq!(stats.always_allow_hits, 1);
        let m = checker.metrics();
        assert_eq!(m.checker.always_allow_hits, 1);
        assert!(
            m.checker.masks_derived_match > 0,
            "docker's authored arg masks derive exactly"
        );
        assert_eq!(m.checker.masks_overridden, 0);
        // A planless checker reports no analysis counters.
        let plain = DracoChecker::from_profile(&profile).unwrap();
        assert!(!plain.has_analysis());
        assert_eq!(plain.metrics().checker.masks_derived_match, 0);
        assert_eq!(plain.stats().always_allow_hits, 0);
    }

    #[test]
    fn proven_always_allow_whitelist_skips_the_vat_entirely() {
        use draco_profiles::{RuleSource, SyscallRule};
        use draco_syscalls::ArgBitmask;
        // A whitelist whose mask selects no bytes compiles to a filter
        // that allows every argument vector. The analyzer proves it, so
        // the plan caches the syscall ID-only: no VAT table, no CRC.
        let mut profile =
            draco_profiles::ProfileSpec::new("degenerate", SeccompAction::KillProcess);
        profile.allow(
            SyscallId::new(0),
            SyscallRule {
                args: ArgPolicy::whitelist(ArgBitmask::EMPTY, vec![ArgSet::from_slice(&[7])]),
                source: RuleSource::Runtime,
            },
        );
        profile.allow(
            SyscallId::new(1),
            SyscallRule {
                args: ArgPolicy::whitelist(
                    ArgBitmask::from_widths([4, 0, 0, 0, 0, 0]),
                    vec![ArgSet::from_slice(&[7])],
                ),
                source: RuleSource::Runtime,
            },
        );
        let mut analyzed = DracoChecker::from_profile_analyzed(&profile).unwrap();
        analyzed.preload_spt();
        let r = analyzed.check(&req(0, &[123, 9, 9]));
        assert_eq!(r.path, CheckPath::SptHit, "no filter, no VAT probe");
        assert_eq!(analyzed.stats().always_allow_hits, 1);
        assert_eq!(
            analyzed.metrics().vat.tables,
            1,
            "only the argument-dependent syscall owns a VAT table"
        );
        // Planless, the same preloaded check still pays a VAT miss and a
        // filter run before it can cache the argument set.
        let mut plain = DracoChecker::from_profile(&profile).unwrap();
        plain.preload_spt();
        let r = plain.check(&req(0, &[123, 9, 9]));
        assert!(matches!(r.path, CheckPath::FilterRun { .. }));
        assert_eq!(plain.metrics().vat.tables, 2);
    }

    #[test]
    fn install_additional_rederives_the_analysis_plan() {
        let mut checker = DracoChecker::from_profile_analyzed(&docker_default()).unwrap();
        let mut gen = ProfileGenerator::new("tighter");
        gen.observe(&req(0, &[3, 0, 64]));
        let extra = gen.emit(ProfileKind::SyscallNoargs);
        checker.install_additional(&extra).unwrap();
        assert!(checker.has_analysis(), "plan survives filter attach");
        checker.preload_spt();
        // read stays allowed under the intersection and is still proven.
        let r = checker.check(&req(0, &[3, 0, 64]));
        assert_eq!(r.path, CheckPath::SptHit);
        assert_eq!(checker.stats().always_allow_hits, 1);
        // write is outside the intersection.
        assert!(!checker.check(&req(1, &[4, 0, 64])).action.permits());
    }

    #[test]
    #[should_panic(expected = "analysis plan must match")]
    fn installing_a_foreign_analysis_is_rejected() {
        let mut checker = DracoChecker::from_profile(&docker_default()).unwrap();
        let analysis =
            draco_profiles::analyze_profile(&draco_profiles::gvisor_default()).unwrap();
        checker.install_analysis(&analysis);
    }

    #[test]
    fn display_summarizes() {
        let profile = docker_default();
        let checker = DracoChecker::from_profile(&profile).unwrap();
        assert!(checker.to_string().contains("docker-default"));
    }
}
