//! Loom models for the thread-shared checker
//! ([`draco_core::SharedDracoProcess`]).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the `loom` CI job):
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p draco-core --test loom
//! ```
//!
//! Under `--cfg loom` the shared checker's `Arc`/`Mutex`/`RwLock`/atomics
//! come from the `loom` crate, so against upstream loom these models are
//! exhaustively interleaved; against the vendored shim they are repeated
//! stochastic runs on real threads. Invariants:
//! 1. concurrent checks through shared tables always return the
//!    **profile's decision** — a torn SPT word or VAT entry would
//!    surface as a wrong action;
//! 2. a request whose argument set **no thread ever validated** is never
//!    served from the cache;
//! 3. a handle that just validated a request **hits on its re-check**
//!    (its own insert is visible to it), even while a sibling thread
//!    writes other keys;
//! 4. checks racing a **flush** still return the profile's decision;
//! 5. a **batched** check group racing a flush still returns the
//!    profile's decision for every slot — the staged probe pass may see
//!    pre-flush table state, but the commit walk re-validates before
//!    deciding.

#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;

use draco_core::{CheckPath, ProcessId, SharedDracoProcess};
use draco_profiles::{ProfileGenerator, ProfileKind, ProfileSpec};
use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};

fn req(nr: u16, args: &[u64]) -> SyscallRequest {
    SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
}

/// read(2) with two hot argument sets (arg-checked, VAT-backed) plus
/// getpid(2) (ID-only, SPT fast path).
fn profile() -> ProfileSpec {
    let mut gen = ProfileGenerator::new("loom");
    gen.observe(&req(0, &[3, 0xaaaa, 64]));
    gen.observe(&req(0, &[4, 0xbbbb, 128]));
    gen.observe(&req(39, &[]));
    gen.emit(ProfileKind::SyscallComplete)
}

#[test]
fn concurrent_checks_return_the_profile_decision() {
    loom::model(|| {
        let profile = profile();
        let process =
            Arc::new(SharedDracoProcess::spawn(ProcessId(1), &profile).expect("compiles"));
        let reqs = [req(0, &[3, 7, 64]), req(0, &[4, 8, 128]), req(39, &[])];
        let mut joins = Vec::new();
        for _ in 0..2 {
            let process = Arc::clone(&process);
            let profile = profile.clone();
            let reqs = reqs.clone();
            joins.push(thread::spawn(move || {
                let mut handle = process.spawn_thread();
                for r in &reqs {
                    let outcome = handle.check(r);
                    assert_eq!(
                        outcome.action,
                        profile.evaluate(r),
                        "shared tables changed the decision for {r}"
                    );
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    });
}

#[test]
fn unvalidated_argument_sets_are_never_cache_hits() {
    loom::model(|| {
        let profile = profile();
        let process =
            Arc::new(SharedDracoProcess::spawn(ProcessId(2), &profile).expect("compiles"));
        // A sibling validates one argument set; the observer checks a
        // *different* (still-permitted) set. Nobody inserted the
        // observer's key before its own check, so its first check must
        // run the filter, not hit the cache.
        let sibling = {
            let process = Arc::clone(&process);
            thread::spawn(move || {
                process.spawn_thread().check(&req(0, &[3, 1, 64]));
            })
        };
        let observer = {
            let process = Arc::clone(&process);
            thread::spawn(move || {
                let fresh = req(0, &[4, 2, 128]);
                let outcome = process.spawn_thread().check(&fresh);
                assert!(
                    !outcome.path.is_cache_hit(),
                    "cache hit {:?} for an argument set no thread validated",
                    outcome.path
                );
            })
        };
        sibling.join().unwrap();
        observer.join().unwrap();
    });
}

#[test]
fn validating_thread_hits_on_its_recheck() {
    loom::model(|| {
        let profile = profile();
        let process =
            Arc::new(SharedDracoProcess::spawn(ProcessId(3), &profile).expect("compiles"));
        let writer = {
            let process = Arc::clone(&process);
            thread::spawn(move || {
                let mut handle = process.spawn_thread();
                let mine = req(0, &[3, 5, 64]);
                assert!(!handle.check(&mine).path.is_cache_hit());
                // No flush runs in this model, so the validation this
                // handle just published must be visible to itself.
                let again = handle.check(&mine);
                assert!(
                    again.path.is_cache_hit(),
                    "own validation lost: re-check took {:?}",
                    again.path
                );
            })
        };
        let sibling = {
            let process = Arc::clone(&process);
            thread::spawn(move || {
                let mut handle = process.spawn_thread();
                handle.check(&req(0, &[4, 6, 128]));
                handle.check(&req(39, &[]));
            })
        };
        writer.join().unwrap();
        sibling.join().unwrap();
    });
}

#[test]
fn batched_checks_racing_a_flush_keep_the_profile_decision() {
    loom::model(|| {
        let profile = profile();
        let process =
            Arc::new(SharedDracoProcess::spawn(ProcessId(5), &profile).expect("compiles"));
        // Warm one key so the batch's probe pass has a live candidate
        // for the flush to invalidate between staging and commit.
        process.spawn_thread().check(&req(0, &[3, 9, 64]));
        let batcher = {
            let process = Arc::clone(&process);
            let profile = profile.clone();
            thread::spawn(move || {
                let mut handle = process.spawn_thread();
                let reqs = [
                    req(0, &[3, 9, 64]),  // candidate (warmed above)
                    req(39, &[]),         // SPT exit
                    req(0, &[4, 10, 128]), // miss
                    req(0, &[3, 9, 64]),  // duplicate of the candidate
                ];
                let mut out = [draco_core::CheckResult::KILLED; 4];
                handle.check_batch(&reqs, &mut out);
                for (r, got) in reqs.iter().zip(out.iter()) {
                    assert_eq!(
                        got.action,
                        profile.evaluate(r),
                        "batched decision diverged for {r}"
                    );
                }
            })
        };
        let flusher = {
            let process = Arc::clone(&process);
            thread::spawn(move || {
                process.flush();
            })
        };
        batcher.join().unwrap();
        flusher.join().unwrap();
        // The tables stay usable: a fresh batch repopulates and hits.
        let mut handle = process.spawn_thread();
        let reqs = [req(0, &[3, 9, 64]), req(0, &[3, 9, 64])];
        let mut out = [draco_core::CheckResult::KILLED; 2];
        handle.check_batch(&reqs, &mut out);
        handle.check_batch(&reqs, &mut out);
        assert_eq!(out[0].path, CheckPath::VatHit);
        assert_eq!(out[1].path, CheckPath::VatHit);
    });
}

#[test]
fn checks_racing_a_flush_keep_the_profile_decision() {
    loom::model(|| {
        let profile = profile();
        let process =
            Arc::new(SharedDracoProcess::spawn(ProcessId(4), &profile).expect("compiles"));
        let checker = {
            let process = Arc::clone(&process);
            let profile = profile.clone();
            thread::spawn(move || {
                let mut handle = process.spawn_thread();
                let reqs = [req(0, &[3, 9, 64]), req(39, &[]), req(0, &[3, 9, 64])];
                for r in &reqs {
                    assert_eq!(handle.check(r).action, profile.evaluate(r));
                }
            })
        };
        let flusher = {
            let process = Arc::clone(&process);
            thread::spawn(move || {
                process.flush();
            })
        };
        checker.join().unwrap();
        flusher.join().unwrap();
        // After the dust settles a fresh check still agrees and can
        // repopulate the wiped tables.
        let r = req(0, &[3, 9, 64]);
        let mut handle = process.spawn_thread();
        assert_eq!(handle.check(&r).action, profile.evaluate(&r));
        assert_eq!(handle.check(&r).path, CheckPath::VatHit);
    });
}
