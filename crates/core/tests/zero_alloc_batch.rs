//! Machine-checked batch-path performance contract: a warm
//! [`check_batch`] whose every request hits the SPT or the VAT performs
//! **zero heap allocations** — the staging scratch is reused across
//! batches, and the pass buffers only ever grow during warmup.
//!
//! Mirrors `zero_alloc.rs` (same counting allocator, same gating), for
//! the batched entry points of both `DracoChecker` and the thread-shared
//! `SharedThreadHandle`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use draco_core::{CheckPath, CheckResult, DracoChecker, ProcessId, SharedDracoProcess};
use draco_profiles::{ProfileGenerator, ProfileKind, ProfileSpec};
use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// Counting is gated on a thread-local flag so harness threads can never
// be mistaken for batch-path allocations (see zero_alloc.rs).
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_enabled() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn req(nr: u16, args: &[u64]) -> SyscallRequest {
    SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
}

/// An argument-checking profile plus a batch that, once warm, resolves
/// entirely from the tables: VAT hits for the arg-checked calls, SPT
/// exits for getpid.
fn profile_and_batch() -> (ProfileSpec, Vec<SyscallRequest>) {
    let mut gen = ProfileGenerator::new("zero-alloc-batch");
    gen.observe(&req(0, &[3, 0xaaaa, 64]));
    gen.observe(&req(0, &[4, 0xbbbb, 128]));
    gen.observe(&req(1, &[3, 0xcccc, 64]));
    gen.observe(&req(39, &[]));
    let profile = gen.emit(ProfileKind::SyscallComplete);
    // A full batch mixing both fast-path classes, with repeats so the
    // CRC pass exercises the 4-lane chunks AND the scalar remainder.
    let batch: Vec<SyscallRequest> = (0..33)
        .map(|i| match i % 4 {
            0 => req(0, &[3, 1, 64]),
            1 => req(0, &[4, 2, 128]),
            2 => req(1, &[3, 3, 64]),
            _ => req(39, &[]),
        })
        .collect();
    (profile, batch)
}

#[test]
fn warm_batches_do_not_allocate() {
    let (profile, batch) = profile_and_batch();
    let mut checker = DracoChecker::from_profile(&profile).expect("compiles");
    let mut out = vec![CheckResult::KILLED; batch.len()];

    // Warmup: first batch runs the filter and inserts into the VAT
    // (allocation is fine there) and grows the staging scratch to the
    // batch's high-water mark.
    checker.check_batch(&batch, &mut out);
    checker.check_batch(&batch, &mut out);
    for (r, result) in batch.iter().zip(out.iter()) {
        assert!(
            matches!(result.path, CheckPath::SptHit | CheckPath::VatHit),
            "warmed: {r} took {:?}",
            result.path
        );
    }

    // Measured window: every batch below is all-hits and must not touch
    // the heap — the scratch vectors are reused at capacity.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..1_000 {
        checker.check_batch(&batch, &mut out);
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "warm check_batch must perform zero heap allocations"
    );
    for result in &out {
        assert!(matches!(result.path, CheckPath::SptHit | CheckPath::VatHit));
    }
    let stats = checker.batch_stats();
    assert!(stats.batches >= 1_002);
    assert!(stats.prefetch_issued > 0, "candidates were staged: {stats}");

    // Second window: the span tracer's buffers are pre-allocated at
    // install time, so traced batch stages stay allocation-free too.
    checker.enable_span_trace(4096, 4);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..500 {
        checker.check_batch(&batch, &mut out);
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "sampled span tracing must not allocate on the batch path"
    );
}

#[test]
fn warm_shared_batches_do_not_allocate() {
    let (profile, batch) = profile_and_batch();
    let process = SharedDracoProcess::spawn(ProcessId(1), &profile).expect("spawns");
    let mut handle = process.spawn_thread();
    let mut out = vec![CheckResult::KILLED; batch.len()];

    handle.check_batch(&batch, &mut out);
    handle.check_batch(&batch, &mut out);
    for (r, result) in batch.iter().zip(out.iter()) {
        assert!(
            matches!(result.path, CheckPath::SptHit | CheckPath::VatHit),
            "warmed: {r} took {:?}",
            result.path
        );
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..1_000 {
        handle.check_batch(&batch, &mut out);
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "warm shared check_batch must perform zero heap allocations"
    );
    for result in &out {
        assert!(matches!(result.path, CheckPath::SptHit | CheckPath::VatHit));
    }
    let stats = handle.batch_stats();
    assert!(stats.batches >= 1_002);
    assert!(stats.prefetch_issued > 0, "candidates were staged: {stats}");
}
