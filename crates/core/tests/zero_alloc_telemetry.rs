//! Counting-allocator proof for the live-telemetry layer: with an audit
//! ring attached and a metrics window pumping snapshots, the steady
//! state allocates nothing —
//!
//! * cache-hit checks are unchanged (the audit hook is a branch on an
//!   `Option` that deny paths alone enter);
//! * the deny path itself — filter run plus [`draco_obs::AuditRing`]
//!   `offer` — is allocation-free (one packed atomic store);
//! * window pushes ([`draco_obs::MetricsWindow::push`]) subtract
//!   cumulative snapshots into pre-allocated ring slots in place;
//! * draining the audit ring through `drain_with` streams events without
//!   buffering.
//!
//! Same harness discipline as `zero_alloc.rs`: the counter is gated on a
//! thread-local flag so only the measuring thread is attributed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use draco_core::{CheckPath, DracoChecker};
use draco_obs::{AuditRing, Histogram, MetricsWindow};
use draco_profiles::{ProfileGenerator, ProfileKind};
use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_enabled() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn req(nr: u16, args: &[u64]) -> SyscallRequest {
    SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
}

#[test]
fn telemetry_steady_state_does_not_allocate() {
    let mut gen = ProfileGenerator::new("zero-alloc-telemetry");
    gen.observe(&req(0, &[3, 0xaaaa, 64]));
    gen.observe(&req(39, &[]));
    let profile = gen.emit(ProfileKind::SyscallComplete);
    let mut checker = DracoChecker::from_profile(&profile).expect("compiles");

    let ring = Arc::new(AuditRing::with_rate_limit(1024, 512));
    checker.enable_audit(Arc::clone(&ring), 1);

    // Window ring and latency snapshot pre-allocated before measuring.
    let mut window = MetricsWindow::with_capacity(32);
    let latency = Histogram::default();
    window.reset_baseline(&checker.metrics(), 0);

    // Warm: validate the hit requests, touch the deny request once (the
    // cold miss may build VAT state; denials themselves never cache, so
    // the warmed deny path is exactly the measured one).
    let hit_req = req(0, &[3, 1, 64]);
    let spt_req = req(39, &[]);
    let deny_req = req(0, &[9, 0, 64]);
    checker.check(&hit_req);
    checker.check(&spt_req);
    assert!(!checker.check(&deny_req).action.permits());
    assert_eq!(checker.check(&hit_req).path, CheckPath::VatHit);
    assert_eq!(checker.check(&spt_req).path, CheckPath::SptHit);
    let mut seen = 0u64;
    ring.drain_with(|_| seen += 1);
    assert_eq!(seen, 1, "warm denial audited");

    // Measured window: hits, denials (audited), periodic window pushes,
    // token refills, and streaming drains — zero heap traffic.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for round in 0..1_000u64 {
        assert_eq!(checker.check(&hit_req).path, CheckPath::VatHit);
        assert_eq!(checker.check(&spt_req).path, CheckPath::SptHit);
        assert!(!checker.check(&deny_req).action.permits());
        if round % 16 == 0 {
            window.push(&checker.metrics(), &latency, round + 1);
            ring.refill(16);
            ring.drain_with(|_| seen += 1);
        }
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "audit emission, window pushes, and streaming drains must not allocate"
    );

    // The telemetry really observed the traffic.
    ring.refill(u64::MAX);
    ring.drain_with(|_| seen += 1);
    assert_eq!(
        seen + ring.events_dropped(),
        1 + 1_000,
        "every denial is either streamed or explicitly counted as dropped"
    );
    assert_eq!(checker.stats().denials, 1 + 1_000);
    assert!(window.intervals_pushed() >= 32, "window wrapped");
    assert!(window.intervals_dropped() > 0, "wrap accounted");
    let last = window.last_slot().expect("window non-empty");
    assert!(last.cumulative.checker.denials >= 900);
}
