//! Machine-checked hot-path performance contract for the thread-shared
//! checker: a [`draco_core::SharedThreadHandle`] check that hits the
//! shared SPT or the seqlock VAT performs **zero heap allocations** —
//! the same contract `zero_alloc.rs` proves for the per-process checker.
//!
//! The library forbids `unsafe`, so the counting allocator lives here in
//! the test binary. The counter only runs while the measuring thread
//! arms it, so harness threads and the *other* worker thread spun up to
//! prove cross-thread hits can never be mistaken for check-path
//! allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use draco_core::{CheckPath, ProcessId, SharedDracoProcess};
use draco_profiles::{ProfileGenerator, ProfileKind};
use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_enabled() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn req(nr: u16, args: &[u64]) -> SyscallRequest {
    SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
}

#[test]
fn shared_cached_checks_do_not_allocate() {
    // An argument-checking profile: read/write with hot argument sets,
    // plus getpid for the SPT-only (no-VAT) path.
    let mut gen = ProfileGenerator::new("zero-alloc-shared");
    gen.observe(&req(0, &[3, 0xaaaa, 64]));
    gen.observe(&req(0, &[4, 0xbbbb, 128]));
    gen.observe(&req(1, &[3, 0xcccc, 64]));
    gen.observe(&req(39, &[]));
    let profile = gen.emit(ProfileKind::SyscallComplete);
    let process = SharedDracoProcess::spawn(ProcessId(7), &profile).expect("profile compiles");
    let mut handle = process.spawn_thread();

    let vat_reqs = [
        req(0, &[3, 1, 64]),
        req(0, &[4, 2, 128]),
        req(1, &[3, 3, 64]),
    ];
    let spt_req = req(39, &[]);

    // Warm the shared tables from a *different* thread: the measured
    // hits below are genuine cross-thread reads of seqlock-published
    // entries, not same-thread warm state.
    {
        let mut warmer = process.spawn_thread();
        for r in &vat_reqs {
            warmer.check(r);
        }
        warmer.check(&spt_req);
    }
    for r in &vat_reqs {
        assert_eq!(handle.check(r).path, CheckPath::VatHit, "warmed: {r}");
    }
    assert_eq!(handle.check(&spt_req).path, CheckPath::SptHit);

    // Measured window: every check below is a cache hit on the shared
    // tables and must not touch the heap — even though per-handle stats
    // and latency histograms are live (they are inline arrays).
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..1_000 {
        for r in &vat_reqs {
            let result = handle.check(r);
            assert_eq!(result.path, CheckPath::VatHit);
        }
        let result = handle.check(&spt_req);
        assert_eq!(result.path, CheckPath::SptHit);
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "shared VAT/SPT-hit checks must perform zero heap allocations"
    );

    // The metered window really was observed by the handle-local stats.
    let stats = handle.stats();
    assert!(stats.vat_hits >= 3_003);
    assert!(stats.spt_hits >= 1_001);
    drop(handle);
    let merged = process.stats();
    assert!(merged.total() >= 4_000 + 8, "both handles flushed");
}
