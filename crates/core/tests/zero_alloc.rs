//! Machine-checked hot-path performance contract: a check that hits the
//! SPT or the VAT performs **zero heap allocations**.
//!
//! The library forbids `unsafe`, so the counting allocator lives here in
//! the test binary. This file intentionally holds a single test, and the
//! counter only runs while the measuring thread arms it, so harness
//! threads can never be mistaken for check-path allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use draco_core::{CheckPath, DracoChecker};
use draco_profiles::{ProfileGenerator, ProfileKind};
use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// The check path runs entirely on the test thread; allocator traffic
// from harness threads must not be attributed to it, so counting is
// gated on a thread-local flag. `Cell<bool>` has no destructor and the
// const initializer needs no lazy allocation, so reading it inside the
// allocator cannot recurse.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_enabled() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_enabled() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn req(nr: u16, args: &[u64]) -> SyscallRequest {
    SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
}

#[test]
fn cached_checks_do_not_allocate() {
    // An argument-checking profile: read/write with two hot argument
    // sets each, plus getpid for the SPT-only path.
    let mut gen = ProfileGenerator::new("zero-alloc");
    gen.observe(&req(0, &[3, 0xaaaa, 64]));
    gen.observe(&req(0, &[4, 0xbbbb, 128]));
    gen.observe(&req(1, &[3, 0xcccc, 64]));
    gen.observe(&req(39, &[]));
    let profile = gen.emit(ProfileKind::SyscallComplete);
    let mut checker = DracoChecker::from_profile(&profile).expect("compiles");

    // Observability must not weaken the contract: the metrics
    // histograms are inline arrays, and the flow-trace ring is fully
    // allocated at enable time — so we measure with the trace ON.
    checker.enable_flow_trace(64);

    // Warm every path we are about to measure (first encounters run the
    // filter and may insert into the VAT — allocation is fine there).
    let vat_reqs = [
        req(0, &[3, 1, 64]),
        req(0, &[4, 2, 128]),
        req(1, &[3, 3, 64]),
    ];
    let spt_req = req(39, &[]);
    for r in &vat_reqs {
        checker.check(r);
    }
    checker.check(&spt_req);
    for r in &vat_reqs {
        assert_eq!(checker.check(r).path, CheckPath::VatHit, "warmed: {r}");
    }
    assert_eq!(checker.check(&spt_req).path, CheckPath::SptHit);

    // Measured window: every check below is a cache hit and must not
    // touch the heap.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..1_000 {
        for r in &vat_reqs {
            let result = checker.check(r);
            assert_eq!(result.path, CheckPath::VatHit);
        }
        let result = checker.check(&spt_req);
        assert_eq!(result.path, CheckPath::SptHit);
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "VAT/SPT-hit checks must perform zero heap allocations (metrics and flow trace enabled)"
    );

    // The metered window really was observed: histograms and the ring
    // saw every cached check.
    let metrics = checker.metrics();
    assert!(metrics.checker.saved_insns_per_hit.count() >= 4_000);
    assert!(metrics.cuckoo.reuse_distance.count() >= 3_000);
    let ring = checker.flow_trace().expect("trace stayed enabled");
    assert_eq!(ring.len(), 64, "ring full after 4000 recorded events");
    assert!(ring.total_recorded() >= 4_000);

    // Second window: the span tracer's buffers are pre-allocated at
    // install time, so even *sampled* checks (interval 4 here) stay
    // allocation-free; unsampled ones are just a branch.
    checker.enable_span_trace(4096, 4);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..1_000 {
        for r in &vat_reqs {
            assert_eq!(checker.check(r).path, CheckPath::VatHit);
        }
        assert_eq!(checker.check(&spt_req).path, CheckPath::SptHit);
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "sampled span tracing must not allocate on the check path"
    );
    let tracer = checker.span_tracer().expect("tracer installed");
    assert!(tracer.sampled_checks() >= 900, "~1 in 4 of 4000 checks");
    assert!(!tracer.spans().is_empty());
}
