//! The tenant registry and request loop of `dracod`.
//!
//! A **tenant** is one admission-controlled principal (a container, a
//! sandboxed process tree): it owns a seccomp profile, a
//! [`SharedDracoProcess`] (shared SPT/VAT plus the analysis plan when
//! enabled), a submission queue, and a latency histogram. The service
//! multiplexes every tenant over one request loop: callers
//! [`DracoService::submit`] requests at any time, and each
//! [`DracoService::drain`] round walks the registry in tenant order,
//! popping up to `batch` requests per pass into
//! [`SharedThreadHandle::check_batch`] (the staged batch pipeline) until
//! every queue is empty.
//!
//! # Isolation
//!
//! Tenants share *nothing* checkable: each has its own SPT words, VAT
//! tables, policy, and epoch, so tenant A's traffic can neither warm nor
//! evict tenant B's cache, and A's reloads never flush B. The
//! repo's differential tests prove this by replaying each tenant's
//! stream against a standalone checker and requiring byte-equal
//! decisions and counters. The only shared object is the denial-audit
//! ring, where events carry the owning tenant's pid as `source`.
//!
//! # Lifecycle
//!
//! `register` → (`fork` | `exec`)* → `reload`* → `retire`. Tenant ids
//! and process ids come from one monotone allocator and are **never
//! reused**, so a retired tenant's ProcessId can never be confused with
//! a live one's (and audit events stay attributable forever). Hot
//! reloads go through [`SharedDracoProcess::install_additional_with`]
//! under the service's [`ReloadPolicy`]: a refused reload leaves the old
//! filter serving and every cached validation intact.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::time::Instant;

#[cfg(loom)]
use loom::sync::Arc;
#[cfg(not(loom))]
use std::sync::Arc;

use draco_core::{
    CheckResult, CheckerStats, DracoError, EngineKind, ProcessId, ReloadDecision, ReloadPolicy,
    SharedDracoProcess, SharedThreadHandle,
};
use draco_obs::{AuditRing, Histogram, MetricsRegistry, MetricsWindow};
use draco_profiles::ProfileSpec;
use draco_syscalls::SyscallRequest;

/// A tenant's identity within one service. Allocated monotonically and
/// never reused; numerically equal to the tenant's [`ProcessId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant:{}", self.0)
    }
}

/// Why a service call failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// The tenant id is not (or no longer) registered.
    UnknownTenant(TenantId),
    /// The underlying checker operation failed (filter compile error,
    /// or a reload refused by the policy gate).
    Draco(DracoError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTenant(id) => write!(f, "unknown tenant {id}"),
            ServiceError::Draco(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<DracoError> for ServiceError {
    fn from(e: DracoError) -> Self {
        ServiceError::Draco(e)
    }
}

/// Service-wide parameters, fixed at construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum requests drained per tenant per `check_batch` call.
    pub batch: usize,
    /// The gate every [`DracoService::reload`] runs under.
    pub reload_policy: ReloadPolicy,
    /// Miss-path filter engine for every tenant checker.
    pub engine: EngineKind,
    /// Run the PR-4 filter analysis at register/exec time and install
    /// the derived [`AnalysisPlan`](draco_core::checker named) — proven
    /// always-allow syscalls then skip CRC+VAT entirely.
    pub analyzed: bool,
    /// Denial-audit ring capacity (events buffered between drains).
    pub audit_capacity: usize,
    /// Token-bucket burst for the audit ring; `u64::MAX` disables rate
    /// limiting.
    pub audit_burst: u64,
    /// Metrics window ring capacity (intervals retained).
    pub window_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch: 128,
            reload_policy: ReloadPolicy::RequireRefinement,
            engine: EngineKind::Compiled,
            analyzed: false,
            audit_capacity: 4096,
            audit_burst: u64::MAX,
            window_capacity: 64,
        }
    }
}

/// Monotone service-level counters (decision totals are summed over
/// retired tenants too, so they never go backwards).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Tenants created via [`DracoService::register`].
    pub registered: u64,
    /// Tenants created via [`DracoService::fork`].
    pub forked: u64,
    /// Tenants whose process was replaced via [`DracoService::exec`].
    pub execs: u64,
    /// Tenants removed via [`DracoService::retire`].
    pub retired: u64,
    /// Hot reloads admitted by the policy gate.
    pub reloads_permitted: u64,
    /// Hot reloads refused by the policy gate (old filter kept serving).
    pub reloads_refused: u64,
    /// Completed [`DracoService::drain`] rounds.
    pub drain_rounds: u64,
    /// `check_batch` calls issued across all rounds.
    pub batches: u64,
    /// Admission decisions produced.
    pub checks: u64,
    /// Decisions that permitted the call.
    pub allowed: u64,
    /// Decisions that denied the call (the filter ran; cached entries
    /// only ever readmit allowed pairs).
    pub denials: u64,
    /// Decisions served from the tenant's SPT or VAT.
    pub cache_hits: u64,
    /// Requests still queued when their tenant retired (discarded).
    pub dropped_requests: u64,
}

/// What one [`DracoService::drain`] round processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Tenants that had at least one queued request.
    pub tenants_served: u64,
    /// `check_batch` calls issued.
    pub batches: u64,
    /// Decisions produced this round.
    pub checks: u64,
    /// Decisions that permitted the call.
    pub allowed: u64,
    /// Decisions that denied the call.
    pub denials: u64,
    /// Decisions served from SPT/VAT.
    pub cache_hits: u64,
}

/// A point-in-time view of one tenant.
#[derive(Clone, Debug)]
pub struct TenantSnapshot {
    /// The tenant's id.
    pub id: TenantId,
    /// The tenant's (never-reused) process id.
    pub pid: ProcessId,
    /// Installed profile name (post-reload names reflect the
    /// intersection).
    pub profile: String,
    /// The parent tenant, for forked tenants.
    pub parent: Option<TenantId>,
    /// Requests currently queued.
    pub queued: usize,
    /// Decisions produced for this tenant so far.
    pub checks: u64,
    /// Decisions that permitted the call.
    pub allowed: u64,
    /// Decisions that denied the call.
    pub denials: u64,
    /// Decisions served from the tenant's SPT/VAT.
    pub cache_hits: u64,
    /// Per-request service latency (batch wall time over batch length),
    /// nanoseconds.
    pub latency_ns: Histogram,
}

/// One tenant's shard: checker state plus queue and accounting.
struct Tenant {
    process: SharedDracoProcess,
    handle: SharedThreadHandle,
    queue: VecDeque<SyscallRequest>,
    profile_name: String,
    parent: Option<TenantId>,
    latency_ns: Histogram,
    checks: u64,
    allowed: u64,
    denials: u64,
    cache_hits: u64,
    /// Stats of processes this tenant already replaced via `exec`.
    prior_stats: CheckerStats,
    prior_metrics: MetricsRegistry,
}

impl Tenant {
    fn snapshot(&self, id: TenantId) -> TenantSnapshot {
        TenantSnapshot {
            id,
            pid: self.process.pid(),
            profile: self.profile_name.clone(),
            parent: self.parent,
            queued: self.queue.len(),
            checks: self.checks,
            allowed: self.allowed,
            denials: self.denials,
            cache_hits: self.cache_hits,
            latency_ns: self.latency_ns,
        }
    }
}

/// The multi-tenant admission service: a registry of tenant shards
/// multiplexed over one request loop.
///
/// # Example
///
/// ```
/// use draco_dracod::{DracoService, ServiceConfig};
/// use draco_profiles::{ProfileGenerator, ProfileKind};
/// use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};
///
/// let read = SyscallRequest::new(0, SyscallId::new(0), ArgSet::from_slice(&[3, 0, 64]));
/// let mut gen = ProfileGenerator::new("app");
/// gen.observe(&read);
///
/// let mut svc = DracoService::new(ServiceConfig::default());
/// let tenant = svc.register(&gen.emit(ProfileKind::SyscallComplete))?;
/// svc.submit(tenant, read)?;
/// svc.submit(tenant, read)?;
/// let round = svc.drain();
/// assert_eq!(round.checks, 2);
/// assert_eq!(round.allowed, 2);
/// assert_eq!(round.cache_hits, 1, "second check hits the tenant's VAT");
/// # Ok::<(), draco_dracod::ServiceError>(())
/// ```
pub struct DracoService {
    cfg: ServiceConfig,
    tenants: BTreeMap<TenantId, Tenant>,
    /// Next tenant/process id; monotone, never reused.
    next_id: u32,
    audit: Arc<AuditRing>,
    window: MetricsWindow,
    epoch: Instant,
    latency_pool: Histogram,
    counters: ServiceCounters,
    /// Checker stats/metrics of retired tenants, folded in so service
    /// totals stay monotone across departures.
    retired_stats: CheckerStats,
    retired_metrics: MetricsRegistry,
    scratch_reqs: Vec<SyscallRequest>,
    scratch_out: Vec<CheckResult>,
}

impl fmt::Debug for DracoService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DracoService")
            .field("tenants", &self.tenants.len())
            .field("next_id", &self.next_id)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl DracoService {
    /// Creates an empty service.
    pub fn new(cfg: ServiceConfig) -> Self {
        let window_capacity = cfg.window_capacity.max(1);
        DracoService {
            audit: Arc::new(AuditRing::with_rate_limit(
                cfg.audit_capacity.max(1),
                cfg.audit_burst,
            )),
            window: MetricsWindow::with_capacity(window_capacity),
            epoch: Instant::now(),
            cfg,
            tenants: BTreeMap::new(),
            next_id: 1,
            latency_pool: Histogram::default(),
            counters: ServiceCounters::default(),
            retired_stats: CheckerStats::default(),
            retired_metrics: MetricsRegistry::default(),
            scratch_reqs: Vec::new(),
            scratch_out: Vec::new(),
        }
    }

    fn alloc_id(&mut self) -> TenantId {
        let id = TenantId(self.next_id);
        self.next_id += 1;
        id
    }

    fn spawn_process(&self, pid: ProcessId, profile: &ProfileSpec) -> Result<SharedDracoProcess, DracoError> {
        let process = if self.cfg.analyzed {
            let analysis =
                draco_profiles::analyze_profile(profile).map_err(DracoError::FilterCompile)?;
            SharedDracoProcess::spawn_analyzed_with_engine(pid, profile, &analysis, self.cfg.engine)?
        } else {
            SharedDracoProcess::spawn_with_engine(pid, profile, self.cfg.engine)?
        };
        process.enable_audit(Arc::clone(&self.audit));
        Ok(process)
    }

    fn install_tenant(
        &mut self,
        process: SharedDracoProcess,
        profile_name: String,
        parent: Option<TenantId>,
    ) -> TenantId {
        let id = self.alloc_id();
        let handle = process.spawn_thread();
        self.tenants.insert(
            id,
            Tenant {
                process,
                handle,
                queue: VecDeque::new(),
                profile_name,
                parent,
                latency_ns: Histogram::default(),
                checks: 0,
                allowed: 0,
                denials: 0,
                cache_hits: 0,
                prior_stats: CheckerStats::default(),
                prior_metrics: MetricsRegistry::default(),
            },
        );
        id
    }

    /// Registers a new tenant with the given profile installed.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Draco`] if the profile's filter (or its
    /// analysis, under [`ServiceConfig::analyzed`]) fails to compile. No
    /// id is consumed on failure.
    pub fn register(&mut self, profile: &ProfileSpec) -> Result<TenantId, ServiceError> {
        let pid = ProcessId(self.next_id);
        let process = self.spawn_process(pid, profile)?;
        let id = self.install_tenant(process, profile.name().to_owned(), None);
        self.counters.registered += 1;
        Ok(id)
    }

    /// Forks a tenant: the child is a new tenant (fresh never-reused
    /// pid) inheriting the parent's effective profile with cold,
    /// unshared tables — fork shares no Draco state (paper §VII-B).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownTenant`] for an unregistered
    /// parent, or [`ServiceError::Draco`] if recompiling the inherited
    /// profile fails.
    pub fn fork(&mut self, parent: TenantId) -> Result<TenantId, ServiceError> {
        let parent_tenant = self
            .tenants
            .get(&parent)
            .ok_or(ServiceError::UnknownTenant(parent))?;
        let pid = ProcessId(self.next_id);
        let child = parent_tenant.process.fork(pid)?;
        child.enable_audit(Arc::clone(&self.audit));
        let name = parent_tenant.profile_name.clone();
        let id = self.install_tenant(child, name, Some(parent));
        self.counters.forked += 1;
        Ok(id)
    }

    /// Execs a tenant: replaces its process with a fresh spawn of a new
    /// profile under the *same* tenant/process id (exec keeps the pid
    /// but resets every table — paper §VII-B). Counters and queued
    /// requests carry over; cached validations do not.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownTenant`] for an unregistered
    /// tenant, or [`ServiceError::Draco`] if the new profile fails to
    /// compile (the old process keeps serving).
    pub fn exec(&mut self, id: TenantId, profile: &ProfileSpec) -> Result<(), ServiceError> {
        let pid = self
            .tenants
            .get(&id)
            .ok_or(ServiceError::UnknownTenant(id))?
            .process
            .pid();
        // Spawn first: a compile failure must leave the tenant serving.
        let process = self.spawn_process(pid, profile)?;
        let tenant = self.tenants.get_mut(&id).expect("checked above");
        tenant.handle.sync_stats();
        tenant.prior_stats.accumulate(&tenant.process.stats());
        tenant.prior_metrics.merge(&tenant.process.metrics());
        tenant.handle = process.spawn_thread();
        tenant.process = process;
        tenant.profile_name = profile.name().to_owned();
        self.counters.execs += 1;
        Ok(())
    }

    /// Hot-reloads a tenant: attaches `extra` as an additional filter
    /// through the epoch protocol, vetted by the service's
    /// [`ReloadPolicy`]. On success every cached validation of that
    /// tenant (and only that tenant) is flushed; on refusal the old
    /// filter keeps serving and the tenant's caches stay intact.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownTenant`] for an unregistered
    /// tenant, [`DracoError::ReloadRejected`] (wrapped) when the gate
    /// refuses the candidate, or a compile error for the combined
    /// filter.
    pub fn reload(
        &mut self,
        id: TenantId,
        extra: &ProfileSpec,
    ) -> Result<ReloadDecision, ServiceError> {
        let policy = self.cfg.reload_policy;
        let tenant = self
            .tenants
            .get_mut(&id)
            .ok_or(ServiceError::UnknownTenant(id))?;
        match tenant.process.install_additional_with(extra, policy) {
            Ok(decision) => {
                tenant.profile_name = tenant.process.profile().name().to_owned();
                self.counters.reloads_permitted += 1;
                Ok(decision)
            }
            Err(e @ DracoError::ReloadRejected { .. }) => {
                self.counters.reloads_refused += 1;
                Err(ServiceError::Draco(e))
            }
            Err(e) => Err(ServiceError::Draco(e)),
        }
    }

    /// Queues one admission request for a tenant.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownTenant`] for an unregistered
    /// tenant.
    pub fn submit(&mut self, id: TenantId, req: SyscallRequest) -> Result<(), ServiceError> {
        self.tenants
            .get_mut(&id)
            .ok_or(ServiceError::UnknownTenant(id))?
            .queue
            .push_back(req);
        Ok(())
    }

    /// Queues a slice of requests for a tenant, in order.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownTenant`] for an unregistered
    /// tenant.
    pub fn submit_all(
        &mut self,
        id: TenantId,
        reqs: &[SyscallRequest],
    ) -> Result<(), ServiceError> {
        let tenant = self
            .tenants
            .get_mut(&id)
            .ok_or(ServiceError::UnknownTenant(id))?;
        tenant.queue.extend(reqs.iter().copied());
        Ok(())
    }

    /// Drains every tenant's queue through `check_batch`, then seals one
    /// metrics-window interval. See [`DracoService::drain_with`].
    pub fn drain(&mut self) -> DrainSummary {
        self.drain_with(|_, _, _| {})
    }

    /// Drains every tenant's queue, invoking `sink` with each decision
    /// in service order (tenants ascending; each tenant's requests in
    /// submission order). Tenants are walked in id order and popped in
    /// `batch`-sized passes, so one noisy tenant cannot starve the rest
    /// of a round. After the round, one interval is pushed into the
    /// metrics window.
    pub fn drain_with(
        &mut self,
        mut sink: impl FnMut(TenantId, &SyscallRequest, CheckResult),
    ) -> DrainSummary {
        let mut summary = DrainSummary::default();
        let batch = self.cfg.batch.max(1);
        let ids: Vec<TenantId> = self.tenants.keys().copied().collect();
        for id in ids {
            let tenant = self.tenants.get_mut(&id).expect("registry unchanged");
            if tenant.queue.is_empty() {
                continue;
            }
            summary.tenants_served += 1;
            while !tenant.queue.is_empty() {
                let take = batch.min(tenant.queue.len());
                self.scratch_reqs.clear();
                self.scratch_reqs.extend(tenant.queue.drain(..take));
                self.scratch_out.resize(take, CheckResult::KILLED);
                let start = Instant::now();
                tenant
                    .handle
                    .check_batch(&self.scratch_reqs, &mut self.scratch_out[..take]);
                let elapsed = start.elapsed().as_nanos() as u64;
                let per_req = elapsed / take as u64;
                tenant.latency_ns.record_n(per_req, take as u64);
                self.latency_pool.record_n(per_req, take as u64);
                summary.batches += 1;
                for (req, decision) in self.scratch_reqs.iter().zip(self.scratch_out.iter()) {
                    summary.checks += 1;
                    summary.allowed += u64::from(decision.action.permits());
                    summary.denials += u64::from(!decision.action.permits());
                    summary.cache_hits += u64::from(decision.path.is_cache_hit());
                    tenant.checks += 1;
                    tenant.allowed += u64::from(decision.action.permits());
                    tenant.denials += u64::from(!decision.action.permits());
                    tenant.cache_hits += u64::from(decision.path.is_cache_hit());
                    sink(id, req, *decision);
                }
            }
            // Fold the handle's session counters into the process
            // aggregate so `stats()`/`metrics()` are complete at round
            // boundaries.
            tenant.handle.sync_stats();
        }
        self.counters.drain_rounds += 1;
        self.counters.batches += summary.batches;
        self.counters.checks += summary.checks;
        self.counters.allowed += summary.allowed;
        self.counters.denials += summary.denials;
        self.counters.cache_hits += summary.cache_hits;
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        let merged = self.metrics();
        self.window.push(&merged, &self.latency_pool, now_ns);
        summary
    }

    /// Retires a tenant: removes it from the registry, folds its checker
    /// stats and metrics into the service totals, and discards anything
    /// still queued (counted in
    /// [`ServiceCounters::dropped_requests`]). The tenant's id and pid
    /// are never reused.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownTenant`] for an unregistered
    /// tenant.
    pub fn retire(&mut self, id: TenantId) -> Result<TenantSnapshot, ServiceError> {
        let mut tenant = self
            .tenants
            .remove(&id)
            .ok_or(ServiceError::UnknownTenant(id))?;
        tenant.handle.sync_stats();
        let snapshot = tenant.snapshot(id);
        self.retired_stats.accumulate(&tenant.prior_stats);
        self.retired_stats.accumulate(&tenant.process.stats());
        self.retired_metrics.merge(&tenant.prior_metrics);
        self.retired_metrics.merge(&tenant.process.metrics());
        self.counters.dropped_requests += tenant.queue.len() as u64;
        self.counters.retired += 1;
        Ok(snapshot)
    }

    /// Spawns an extra checking worker on a tenant's shared tables —
    /// external threads can admit syscalls concurrently with the
    /// service loop (paper §VI: all threads share the SPT/VAT).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownTenant`] for an unregistered
    /// tenant.
    pub fn spawn_worker(&self, id: TenantId) -> Result<SharedThreadHandle, ServiceError> {
        self.tenants
            .get(&id)
            .map(|t| t.process.spawn_thread())
            .ok_or(ServiceError::UnknownTenant(id))
    }

    /// Live tenant count.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// True when the tenant is registered.
    pub fn contains(&self, id: TenantId) -> bool {
        self.tenants.contains_key(&id)
    }

    /// Live tenant ids, ascending.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants.keys().copied().collect()
    }

    /// The next id the allocator would hand out (monotone; ids below
    /// this are spent forever).
    pub fn next_allocation(&self) -> u32 {
        self.next_id
    }

    /// A snapshot of one live tenant.
    pub fn snapshot(&self, id: TenantId) -> Option<TenantSnapshot> {
        self.tenants.get(&id).map(|t| t.snapshot(id))
    }

    /// Snapshots of every live tenant, ascending by id.
    pub fn snapshots(&self) -> Vec<TenantSnapshot> {
        self.tenants.iter().map(|(id, t)| t.snapshot(*id)).collect()
    }

    /// One live tenant's accumulated checker stats (complete at round
    /// boundaries — `drain` syncs the service handle).
    pub fn tenant_stats(&self, id: TenantId) -> Option<CheckerStats> {
        self.tenants.get(&id).map(|t| {
            let mut stats = t.prior_stats;
            stats.accumulate(&t.process.stats());
            stats
        })
    }

    /// One live tenant's valid shared-SPT entry count (isolation probes:
    /// another tenant's traffic must never change this).
    pub fn spt_valid_count(&self, id: TenantId) -> Option<usize> {
        self.tenants.get(&id).map(|t| t.process.spt_valid_count())
    }

    /// Checker stats summed over every tenant, live and retired
    /// (complete at round boundaries).
    pub fn stats(&self) -> CheckerStats {
        let mut total = self.retired_stats;
        for tenant in self.tenants.values() {
            total.accumulate(&tenant.prior_stats);
            total.accumulate(&tenant.process.stats());
        }
        total
    }

    /// The merged observability registry over every tenant, live and
    /// retired (complete at round boundaries).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut merged = self.retired_metrics;
        for tenant in self.tenants.values() {
            merged.merge(&tenant.prior_metrics);
            merged.merge(&tenant.process.metrics());
        }
        merged
    }

    /// The service-wide denial-audit ring (drain it to consume events;
    /// `refill` it if rate-limited).
    pub fn audit_ring(&self) -> &Arc<AuditRing> {
        &self.audit
    }

    /// The metrics window (one interval sealed per drain round).
    pub fn window(&self) -> &MetricsWindow {
        &self.window
    }

    /// Service-level counters.
    pub fn counters(&self) -> ServiceCounters {
        self.counters
    }

    /// The pooled per-request service latency across all tenants,
    /// nanoseconds.
    pub fn latency_pool(&self) -> &Histogram {
        &self.latency_pool
    }

    /// Total requests currently queued across tenants.
    pub fn queued_total(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_bpf::SeccompAction;
    use draco_profiles::{ProfileGenerator, ProfileKind};
    use draco_syscalls::{ArgSet, SyscallId};

    fn req(nr: u16, args: &[u64]) -> SyscallRequest {
        SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
    }

    /// A complete profile admitting read(3,*,64), read(5,*,128), getpid.
    fn base_profile(app: &str) -> ProfileSpec {
        let mut gen = ProfileGenerator::new(app);
        gen.observe(&req(0, &[3, 0xaaaa, 64]));
        gen.observe(&req(0, &[5, 0xbbbb, 128]));
        gen.observe(&req(39, &[]));
        gen.emit(ProfileKind::SyscallComplete)
    }

    /// A refinement of [`base_profile`]: only getpid remains allowed.
    fn tightened(app: &str) -> ProfileSpec {
        let mut gen = ProfileGenerator::new(app);
        gen.observe(&req(39, &[]));
        gen.emit(ProfileKind::SyscallComplete)
    }

    /// A relaxation of [`base_profile`]: an extra, never-observed
    /// syscall joins the whitelist.
    fn relaxed(app: &str) -> ProfileSpec {
        let mut gen = ProfileGenerator::new(app);
        gen.observe(&req(0, &[3, 0xaaaa, 64]));
        gen.observe(&req(0, &[5, 0xbbbb, 128]));
        gen.observe(&req(39, &[]));
        gen.observe(&req(41, &[2, 1, 6])); // socket: not in base
        gen.emit(ProfileKind::SyscallComplete)
    }

    #[test]
    fn decisions_match_the_profile_oracle() {
        let profile = base_profile("app");
        let mut svc = DracoService::new(ServiceConfig::default());
        let id = svc.register(&profile).unwrap();
        let stream = [
            req(0, &[3, 0x1, 64]),
            req(0, &[4, 0x1, 64]), // unobserved fd: denied
            req(39, &[]),
            req(0, &[3, 0x2, 64]),
            req(2, &[1, 2, 3]), // unobserved syscall: denied
        ];
        svc.submit_all(id, &stream).unwrap();
        let mut decisions = Vec::new();
        svc.drain_with(|_, _, d| decisions.push(d));
        for (r, d) in stream.iter().zip(&decisions) {
            assert_eq!(d.action, profile.evaluate(r), "{r:?}");
        }
        // The repeated read(3) pair is a cache hit the second time.
        assert!(decisions[3].path.is_cache_hit());
        let snap = svc.snapshot(id).unwrap();
        assert_eq!(snap.checks, 5);
        assert_eq!(snap.allowed, 3);
        assert_eq!(snap.denials, 2);
    }

    #[test]
    fn tenants_do_not_share_tables() {
        let mut svc = DracoService::new(ServiceConfig::default());
        let a = svc.register(&base_profile("a")).unwrap();
        let b = svc.register(&base_profile("b")).unwrap();
        // Warm tenant A only.
        svc.submit_all(a, &[req(0, &[3, 0x1, 64]), req(39, &[])]).unwrap();
        svc.drain();
        assert!(svc.spt_valid_count(a).unwrap() > 0);
        assert_eq!(
            svc.spt_valid_count(b).unwrap(),
            0,
            "B's SPT is untouched by A's traffic"
        );
        // B's first identical request misses: nothing leaked across.
        let mut first = None;
        svc.submit(b, req(0, &[3, 0x1, 64])).unwrap();
        svc.drain_with(|_, _, d| first = Some(d));
        assert!(!first.unwrap().path.is_cache_hit());
    }

    #[test]
    fn fork_children_are_cold_and_independent() {
        let mut svc = DracoService::new(ServiceConfig::default());
        let parent = svc.register(&base_profile("p")).unwrap();
        svc.submit(parent, req(0, &[3, 0x1, 64])).unwrap();
        svc.drain();
        let child = svc.fork(parent).unwrap();
        assert_ne!(child, parent);
        assert_eq!(svc.snapshot(child).unwrap().parent, Some(parent));
        assert_eq!(svc.spt_valid_count(child).unwrap(), 0, "cold tables");
        // The child decides like the parent's profile regardless.
        let mut d = None;
        svc.submit(child, req(0, &[3, 0x9, 64])).unwrap();
        svc.drain_with(|_, _, r| d = Some(r));
        assert_eq!(d.unwrap().action, SeccompAction::Allow);
    }

    #[test]
    fn exec_keeps_the_pid_but_resets_tables() {
        let mut svc = DracoService::new(ServiceConfig::default());
        let id = svc.register(&base_profile("app")).unwrap();
        let pid = svc.snapshot(id).unwrap().pid;
        svc.submit(id, req(0, &[3, 0x1, 64])).unwrap();
        svc.drain();
        assert!(svc.spt_valid_count(id).unwrap() > 0);
        svc.exec(id, &tightened("app2")).unwrap();
        let snap = svc.snapshot(id).unwrap();
        assert_eq!(snap.pid, pid, "exec keeps the pid");
        assert_eq!(svc.spt_valid_count(id).unwrap(), 0, "exec resets tables");
        // Decisions now follow the new profile.
        let mut d = None;
        svc.submit(id, req(0, &[3, 0x1, 64])).unwrap();
        svc.drain_with(|_, _, r| d = Some(r));
        assert!(!d.unwrap().action.permits(), "read no longer allowed");
        assert_eq!(svc.counters().execs, 1);
        // Stats from before the exec still count.
        assert!(svc.tenant_stats(id).unwrap().total() >= 2);
    }

    #[test]
    fn refused_reload_keeps_old_filter_and_cache() {
        let mut svc = DracoService::new(ServiceConfig::default());
        let id = svc.register(&base_profile("app")).unwrap();
        svc.submit(id, req(0, &[3, 0x1, 64])).unwrap();
        svc.drain();
        let err = svc.reload(id, &relaxed("app")).unwrap_err();
        assert!(
            matches!(err, ServiceError::Draco(DracoError::ReloadRejected { .. })),
            "{err}"
        );
        assert_eq!(svc.counters().reloads_refused, 1);
        assert_eq!(svc.counters().reloads_permitted, 0);
        // The cache was not flushed: the warmed pair still hits.
        let mut d = None;
        svc.submit(id, req(0, &[3, 0x1, 64])).unwrap();
        svc.drain_with(|_, _, r| d = Some(r));
        assert!(d.unwrap().path.is_cache_hit(), "no flush on refusal");
        let stats = svc.tenant_stats(id).unwrap();
        assert_eq!(stats.reloads_refused, 1);
        assert_eq!(stats.reloads_permitted, 0);
    }

    #[test]
    fn permitted_reload_flushes_and_tightens() {
        let mut svc = DracoService::new(ServiceConfig::default());
        let id = svc.register(&base_profile("app")).unwrap();
        svc.submit(id, req(0, &[3, 0x1, 64])).unwrap();
        svc.drain();
        svc.reload(id, &tightened("app")).unwrap();
        assert_eq!(svc.counters().reloads_permitted, 1);
        assert_eq!(svc.spt_valid_count(id).unwrap(), 0, "reload flushes");
        let mut decisions = Vec::new();
        svc.submit_all(id, &[req(0, &[3, 0x1, 64]), req(39, &[])])
            .unwrap();
        svc.drain_with(|_, _, r| decisions.push(r));
        assert!(!decisions[0].action.permits(), "read denied after tighten");
        assert!(decisions[1].action.permits(), "getpid survives");
    }

    #[test]
    fn ids_are_monotone_and_never_reused() {
        let mut svc = DracoService::new(ServiceConfig::default());
        let a = svc.register(&base_profile("a")).unwrap();
        let b = svc.register(&base_profile("b")).unwrap();
        assert!(b > a);
        svc.retire(a).unwrap();
        let c = svc.register(&base_profile("c")).unwrap();
        assert!(c > b, "retired ids are spent forever");
        assert!(!svc.contains(a));
        let pids: Vec<u32> = svc.snapshots().iter().map(|s| s.pid.0).collect();
        assert_eq!(pids, vec![b.0, c.0], "pid == tenant id, 1:1");
    }

    #[test]
    fn retire_folds_stats_and_drops_queue() {
        let mut svc = DracoService::new(ServiceConfig::default());
        let id = svc.register(&base_profile("app")).unwrap();
        svc.submit_all(id, &[req(0, &[3, 0x1, 64]), req(39, &[])]).unwrap();
        svc.drain();
        let before = svc.stats();
        svc.submit(id, req(39, &[])).unwrap(); // left queued
        let snap = svc.retire(id).unwrap();
        assert_eq!(snap.checks, 2);
        assert_eq!(svc.counters().dropped_requests, 1);
        assert!(svc.is_empty());
        let after = svc.stats();
        assert_eq!(after, before, "retirement loses no counters");
        assert!(after.total() >= 2);
    }

    #[test]
    fn denials_flow_into_the_shared_audit_ring() {
        let mut svc = DracoService::new(ServiceConfig::default());
        let a = svc.register(&base_profile("a")).unwrap();
        let b = svc.register(&base_profile("b")).unwrap();
        svc.submit(a, req(7, &[])).unwrap(); // denied
        svc.submit(b, req(8, &[])).unwrap(); // denied
        svc.submit(b, req(39, &[])).unwrap(); // allowed
        svc.drain();
        let mut events = Vec::new();
        svc.audit_ring().drain(&mut events);
        assert_eq!(events.len(), 2);
        let sources: Vec<u16> = events.iter().map(|e| e.source).collect();
        assert_eq!(sources, vec![a.0 as u16, b.0 as u16], "pid-tagged");
        let stats = svc.stats();
        assert_eq!(stats.denials, 2);
        assert_eq!(
            svc.audit_ring().events_published() + svc.audit_ring().events_dropped(),
            stats.denials,
            "every denial accounted"
        );
    }

    #[test]
    fn drain_seals_window_intervals() {
        let mut svc = DracoService::new(ServiceConfig::default());
        let id = svc.register(&base_profile("app")).unwrap();
        for _ in 0..3 {
            svc.submit(id, req(39, &[])).unwrap();
            svc.drain();
        }
        let dump = svc.window().dump();
        assert_eq!(dump.intervals_pushed, 3);
        let total: u64 = dump
            .intervals
            .iter()
            .map(|s| s.delta.checker.spt_hits + s.delta.checker.always_allow_hits
                + s.delta.checker.vat_hits + s.delta.checker.filter_runs)
            .sum();
        assert_eq!(total, 3, "window deltas cover every check");
    }

    #[test]
    fn unknown_tenant_errors_everywhere() {
        let mut svc = DracoService::new(ServiceConfig::default());
        let ghost = TenantId(99);
        assert!(matches!(
            svc.submit(ghost, req(0, &[])),
            Err(ServiceError::UnknownTenant(t)) if t == ghost
        ));
        assert!(svc.fork(ghost).is_err());
        assert!(svc.retire(ghost).is_err());
        assert!(svc.reload(ghost, &base_profile("x")).is_err());
        assert!(svc.exec(ghost, &base_profile("x")).is_err());
        assert!(svc.spawn_worker(ghost).is_err());
        assert_eq!(format!("{}", ServiceError::UnknownTenant(ghost)), "unknown tenant tenant:99");
    }

    #[test]
    fn analyzed_tenants_preload_proven_fast_paths() {
        let cfg = ServiceConfig {
            analyzed: true,
            ..ServiceConfig::default()
        };
        let mut svc = DracoService::new(cfg);
        let id = svc.register(&base_profile("app")).unwrap();
        assert!(svc.spt_valid_count(id).unwrap() > 0, "preloaded");
        let mut d = None;
        svc.submit(id, req(39, &[])).unwrap();
        svc.drain_with(|_, _, r| d = Some(r));
        assert!(d.unwrap().path.is_cache_hit(), "proven syscall hits cold");
    }
}
