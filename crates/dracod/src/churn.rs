//! The churn scenario: a seeded multi-tenant lifecycle storm.
//!
//! This is the service-level counterpart of the replay benchmarks: a
//! deterministic schedule of tenant arrivals, departures, fork storms,
//! and hot reloads (both admitted flush-heavy reloads and
//! policy-refused relaxations) interleaved with admission traffic, all
//! driven from one seeded RNG. Determinism is a deliverable, not a
//! convenience — the same `(ChurnConfig, seed)` must produce an
//! identical decision stream, identical counters, and an identical
//! [`ChurnReport::decision_digest`], which is what the churn
//! determinism test pins down.
//!
//! The per-tenant traffic comes from the workload catalog
//! (`pipe`/`nginx`/`redis`/`httpd`/`fifo` round-robin), each tenant
//! running under a `syscall-complete` profile generated from its own
//! trace. Every `deny_every`-th request is XOR-perturbed
//! ([`draco_workloads::live`]'s trick) so it misses the whitelist and
//! exercises the deny path into the audit ring.

use std::collections::BTreeMap;
use std::time::Instant;

#[cfg(loom)]
use loom::sync::Arc;
#[cfg(not(loom))]
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use draco_core::CheckerStats;
use draco_obs::Histogram;
use draco_profiles::{ProfileKind, ProfileSpec};
use draco_syscalls::{ArgSet, SyscallRequest};
use draco_workloads::timing::profile_for_trace;
use draco_workloads::{catalog, TraceGenerator};

use crate::service::{DracoService, ServiceConfig, ServiceCounters, TenantId};

/// Workloads cycled over as tenants arrive.
const WORKLOADS: [&str; 5] = ["pipe", "nginx", "redis", "httpd", "fifo"];

/// XOR perturbation applied to every `deny_every`-th request's
/// arguments, guaranteeing a whitelist miss under `syscall-complete`
/// profiles (mirrors `draco_workloads::live`).
const DENY_PERTURBATION: u64 = 0xdead_0000_0000;

/// Parameters of one churn run. All schedule decisions derive from
/// `seed`, so equal configs replay identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnConfig {
    /// Total tenants ever admitted (arrivals + fork children stop once
    /// this many ids have been spent).
    pub tenants: u32,
    /// Tenants registered before round 0.
    pub initial: u32,
    /// Scheduler rounds (each: arrivals, retirements, forks, reloads,
    /// traffic, drain).
    pub rounds: u32,
    /// Requests submitted per live tenant per round.
    pub ops_per_round: u32,
    /// Length of each workload trace tenants draw traffic from.
    pub trace_ops: usize,
    /// A fork storm runs every this-many rounds.
    pub fork_every: u32,
    /// Children spawned per fork storm (off one rng-chosen parent).
    pub fork_storm: u32,
    /// A reload pair (one equivalent/admitted + one relaxed/refused)
    /// runs every this-many rounds.
    pub reload_every: u32,
    /// A retirement runs every this-many rounds.
    pub retire_every: u32,
    /// Every n-th request per tenant is perturbed into a denial.
    pub deny_every: u32,
    /// RNG seed for the whole schedule.
    pub seed: u64,
    /// Service batch size.
    pub batch: usize,
    /// Retirements never shrink the registry below this.
    pub min_live: usize,
}

impl ChurnConfig {
    /// The full churn scenario: ≥100 tenants with arrivals, fork
    /// storms, flush-heavy reloads, and refused relaxations.
    pub fn standard() -> Self {
        ChurnConfig {
            tenants: 128,
            initial: 32,
            rounds: 24,
            ops_per_round: 96,
            trace_ops: 384,
            fork_every: 6,
            fork_storm: 8,
            reload_every: 4,
            retire_every: 3,
            deny_every: 17,
            seed: 2020,
            batch: 128,
            min_live: 8,
        }
    }

    /// A seconds-scale scenario for smoke tests and `--quick`.
    pub fn quick() -> Self {
        ChurnConfig {
            tenants: 24,
            initial: 8,
            rounds: 8,
            ops_per_round: 32,
            trace_ops: 96,
            fork_every: 3,
            fork_storm: 3,
            reload_every: 2,
            retire_every: 2,
            deny_every: 11,
            seed: 2020,
            batch: 64,
            min_live: 4,
        }
    }

    /// Scales the scenario to roughly `ops_per_shard` decisions — the
    /// knob `repro throughput` sections share, so the bench's tiny test
    /// config stays fast while the tracked run clears 100 tenants.
    pub fn for_ops(ops_per_shard: usize, seed: u64, batch: usize) -> Self {
        let tenants = (ops_per_shard / 1800).clamp(8, 128) as u32;
        let quickish = tenants < 32;
        ChurnConfig {
            tenants,
            initial: (tenants / 4).max(2),
            rounds: if quickish { 8 } else { 24 },
            ops_per_round: if quickish { 32 } else { 96 },
            trace_ops: if quickish { 96 } else { 384 },
            fork_every: if quickish { 3 } else { 6 },
            fork_storm: if quickish { 3 } else { 8 },
            reload_every: if quickish { 2 } else { 4 },
            retire_every: if quickish { 2 } else { 3 },
            deny_every: if quickish { 11 } else { 17 },
            seed,
            batch: batch.max(1),
            min_live: (tenants as usize / 8).max(2),
        }
    }
}

/// One arrival archetype: a trace-derived profile plus the request
/// stream tenants of this archetype draw from.
struct Archetype {
    profile: ProfileSpec,
    stream: Arc<Vec<SyscallRequest>>,
}

/// Per-tenant traffic state.
struct Feed {
    archetype: usize,
    cursor: usize,
    submitted: u64,
}

/// Per-tenant quantile summary for the report.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct TenantLatency {
    /// Tenant id (monotone; equal to the pid).
    pub id: u32,
    /// Installed profile name at the end of the run (or retirement).
    pub profile: String,
    /// Decisions produced for this tenant.
    pub checks: u64,
    /// Denied decisions.
    pub denials: u64,
    /// p50 service latency upper bound, ns (0 when unsampled).
    pub p50_ns: u64,
    /// p95 service latency upper bound, ns.
    pub p95_ns: u64,
    /// p99 service latency upper bound, ns.
    pub p99_ns: u64,
}

/// Everything one churn run produced.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// The driving config.
    pub config: ChurnConfig,
    /// Final service counters.
    pub counters: ServiceCounters,
    /// Checker stats summed over every tenant, live and retired.
    pub stats: CheckerStats,
    /// Pooled per-request service latency, ns.
    pub latency: Histogram,
    /// Per-tenant summaries (every tenant ever admitted, ascending id).
    pub per_tenant: Vec<TenantLatency>,
    /// Denial-audit events published into the ring.
    pub audit_published: u64,
    /// Denial-audit events dropped (ring full or rate-limited).
    pub audit_dropped: u64,
    /// Metrics-window intervals sealed (one per drain round).
    pub intervals_pushed: u64,
    /// Wall time of the run, ns.
    pub wall_ns: u64,
    /// FNV-1a digest over the full (tenant, syscall, decision) stream —
    /// the determinism witness.
    pub decision_digest: u64,
}

impl ChurnReport {
    /// Condenses the run into the serializable bench section,
    /// asserting the audit-accounting invariant on the way.
    pub fn section(&self) -> ServiceThroughput {
        assert_eq!(
            self.audit_published + self.audit_dropped,
            self.stats.denials,
            "every denial must be published or counted dropped"
        );
        let secs = (self.wall_ns as f64 / 1e9).max(1e-9);
        ServiceThroughput {
            schema: SERVICE_SCHEMA.to_owned(),
            tenants: self.counters.registered + self.counters.forked,
            rounds: u64::from(self.config.rounds),
            forks: self.counters.forked,
            reloads_permitted: self.counters.reloads_permitted,
            reloads_refused: self.counters.reloads_refused,
            retired: self.counters.retired,
            checks: self.counters.checks,
            denials: self.counters.denials,
            audit_published: self.audit_published,
            audit_dropped: self.audit_dropped,
            cache_hit_rate: self.stats.cache_hit_rate(),
            deny_rate: if self.counters.checks == 0 {
                0.0
            } else {
                self.counters.denials as f64 / self.counters.checks as f64
            },
            checks_per_sec: self.counters.checks as f64 / secs,
            p50_latency_ns: self.latency.p50().unwrap_or(0),
            p95_latency_ns: self.latency.p95().unwrap_or(0),
            p99_latency_ns: self.latency.p99().unwrap_or(0),
            intervals_pushed: self.intervals_pushed,
            decision_digest: self.decision_digest,
        }
    }
}

/// Schema tag of [`ServiceThroughput`].
pub const SERVICE_SCHEMA: &str = "draco-service/v1";

/// The `service` section embedded in throughput reports (schema v8):
/// aggregate numbers of one churn run.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ServiceThroughput {
    /// Always [`SERVICE_SCHEMA`] when produced by this crate.
    pub schema: String,
    /// Tenants ever admitted (arrivals + fork children).
    pub tenants: u64,
    /// Scheduler rounds run.
    pub rounds: u64,
    /// Fork-storm children spawned.
    pub forks: u64,
    /// Hot reloads admitted by the policy gate (each flushes the
    /// tenant's caches).
    pub reloads_permitted: u64,
    /// Hot reloads refused (old filter kept serving).
    pub reloads_refused: u64,
    /// Tenants retired mid-run.
    pub retired: u64,
    /// Admission decisions produced.
    pub checks: u64,
    /// Denied decisions.
    pub denials: u64,
    /// Denial-audit events published.
    pub audit_published: u64,
    /// Denial-audit events dropped with accounting.
    pub audit_dropped: u64,
    /// SPT+VAT hits over total checks.
    pub cache_hit_rate: f64,
    /// Denials over total checks.
    pub deny_rate: f64,
    /// Aggregate admission throughput.
    pub checks_per_sec: f64,
    /// Pooled p50 per-request service latency upper bound, ns.
    pub p50_latency_ns: u64,
    /// Pooled p95 per-request service latency upper bound, ns.
    pub p95_latency_ns: u64,
    /// Pooled p99 per-request service latency upper bound, ns.
    pub p99_latency_ns: u64,
    /// Metrics-window intervals sealed (one per drain round).
    pub intervals_pushed: u64,
    /// Determinism witness over the decision stream (seed-stable;
    /// excluded from cross-run comparisons only if configs differ).
    pub decision_digest: u64,
}

fn fnv1a(digest: u64, word: u64) -> u64 {
    let mut d = digest;
    for byte in word.to_le_bytes() {
        d ^= u64::from(byte);
        d = d.wrapping_mul(0x0000_0100_0000_01b3);
    }
    d
}

fn encode_decision(d: draco_core::CheckResult) -> u64 {
    use draco_bpf::SeccompAction;
    match d.action {
        SeccompAction::Allow => 1,
        SeccompAction::Log => 2,
        SeccompAction::Trace(v) => 0x100 | u64::from(v),
        SeccompAction::Trap => 4,
        SeccompAction::Errno(v) => 0x2_0000 | u64::from(v),
        SeccompAction::KillThread => 5,
        SeccompAction::KillProcess => 6,
    }
}

fn build_archetypes(cfg: &ChurnConfig) -> Vec<Archetype> {
    WORKLOADS
        .iter()
        .map(|name| {
            let spec = catalog::by_name(name)
                .unwrap_or_else(|| panic!("workload {name} missing from catalog"));
            let trace = TraceGenerator::new(&spec, cfg.seed ^ 0x5eed).generate(cfg.trace_ops);
            let profile = profile_for_trace(&trace, ProfileKind::SyscallComplete);
            let stream: Vec<SyscallRequest> = trace.requests().collect();
            Archetype {
                profile,
                stream: Arc::new(stream),
            }
        })
        .collect()
}

fn perturb(req: SyscallRequest) -> SyscallRequest {
    let mut args = [0u64; 6];
    for (i, slot) in args.iter_mut().enumerate() {
        *slot = req.args.get(i) ^ DENY_PERTURBATION;
    }
    SyscallRequest::new(req.pc, req.id, ArgSet::new(args))
}

/// A relaxation of `profile` guaranteed to be refused under
/// `RequireRefinement`: one never-observed syscall joins the whitelist.
fn relaxed_candidate(profile: &ProfileSpec) -> ProfileSpec {
    use draco_profiles::{ArgPolicy, RuleSource, SyscallRule};
    use draco_syscalls::SyscallId;
    let mut candidate = profile.clone();
    // Pick a syscall number the catalog never emits (999 < 1024 table
    // bound, unused by every workload trace).
    candidate.allow(
        SyscallId::new(999),
        SyscallRule {
            args: ArgPolicy::AnyArgs,
            source: RuleSource::Application,
        },
    );
    candidate
}

/// Runs the churn scenario and returns its report. Deterministic for a
/// fixed config: the decision stream, counters, and digest depend only
/// on the seed (wall-clock fields aside).
pub fn run_churn(cfg: &ChurnConfig) -> ChurnReport {
    let archetypes = build_archetypes(cfg);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let service_cfg = ServiceConfig {
        batch: cfg.batch,
        // Size the ring so the deny stream fits between drains; drops
        // would still be accounted, but a lossless run is a stronger
        // differential oracle.
        audit_capacity: 1 << 16,
        window_capacity: (cfg.rounds as usize).max(1),
        ..ServiceConfig::default()
    };
    let mut svc = DracoService::new(service_cfg);
    let mut feeds: BTreeMap<TenantId, Feed> = BTreeMap::new();
    let mut finished: BTreeMap<u32, TenantLatency> = BTreeMap::new();
    let mut admitted: u32 = 0;
    let mut next_archetype = 0usize;
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis

    let register_one = |svc: &mut DracoService,
                            feeds: &mut BTreeMap<TenantId, Feed>,
                            rng: &mut SmallRng,
                            admitted: &mut u32,
                            next_archetype: &mut usize| {
        let idx = *next_archetype % archetypes.len();
        *next_archetype += 1;
        let id = svc
            .register(&archetypes[idx].profile)
            .expect("catalog profiles always compile");
        let cursor = rng.gen_range(0..archetypes[idx].stream.len());
        feeds.insert(
            id,
            Feed {
                archetype: idx,
                cursor,
                submitted: 0,
            },
        );
        *admitted += 1;
        id
    };

    let start = Instant::now();
    for _ in 0..cfg.initial.min(cfg.tenants) {
        register_one(
            &mut svc,
            &mut feeds,
            &mut rng,
            &mut admitted,
            &mut next_archetype,
        );
    }

    for round in 0..cfg.rounds {
        // Arrivals: trickle the remaining budget in evenly.
        let remaining_rounds = cfg.rounds - round;
        let budget = cfg.tenants.saturating_sub(admitted);
        let arrivals = (budget / remaining_rounds.max(1)).min(budget);
        for _ in 0..arrivals {
            register_one(
                &mut svc,
                &mut feeds,
                &mut rng,
                &mut admitted,
                &mut next_archetype,
            );
        }

        // Retirement: one rng-chosen victim, never draining the pool.
        if cfg.retire_every > 0 && round % cfg.retire_every == cfg.retire_every - 1 {
            let ids = svc.tenant_ids();
            if ids.len() > cfg.min_live {
                let victim = ids[rng.gen_range(0..ids.len())];
                let snap = svc.retire(victim).expect("victim is live");
                feeds.remove(&victim);
                finished.insert(
                    victim.0,
                    TenantLatency {
                        id: victim.0,
                        profile: snap.profile,
                        checks: snap.checks,
                        denials: snap.denials,
                        p50_ns: snap.latency_ns.p50().unwrap_or(0),
                        p95_ns: snap.latency_ns.p95().unwrap_or(0),
                        p99_ns: snap.latency_ns.p99().unwrap_or(0),
                    },
                );
            }
        }

        // Fork storm: children inherit the parent's profile cold and
        // draw from the same stream at rng-offset cursors.
        if cfg.fork_every > 0
            && round % cfg.fork_every == cfg.fork_every - 1
            && admitted < cfg.tenants
        {
            let ids = svc.tenant_ids();
            if !ids.is_empty() {
                let parent = ids[rng.gen_range(0..ids.len())];
                let parent_feed_src = feeds.get(&parent).map_or(0, |f| f.archetype);
                let storm = cfg.fork_storm.min(cfg.tenants - admitted);
                for _ in 0..storm {
                    let child = svc.fork(parent).expect("parent is live");
                    let cursor =
                        rng.gen_range(0..archetypes[parent_feed_src].stream.len());
                    feeds.insert(
                        child,
                        Feed {
                            archetype: parent_feed_src,
                            cursor,
                            submitted: 0,
                        },
                    );
                    admitted += 1;
                }
            }
        }

        // Reload pair: an equivalent reload (admitted under
        // RequireRefinement — the intersection is the profile itself —
        // and flush-heavy: every cached validation of that tenant is
        // dropped, decisions unchanged) and a relaxed candidate
        // (refused; old filter keeps serving).
        if cfg.reload_every > 0 && round % cfg.reload_every == cfg.reload_every - 1 {
            let ids = svc.tenant_ids();
            if !ids.is_empty() {
                let flushee = ids[rng.gen_range(0..ids.len())];
                if let Some(feed) = feeds.get(&flushee) {
                    let own = archetypes[feed.archetype].profile.clone();
                    svc.reload(flushee, &own)
                        .expect("equivalent reload is always admitted");
                }
                let refusee = ids[rng.gen_range(0..ids.len())];
                if let Some(feed) = feeds.get(&refusee) {
                    let relaxed = relaxed_candidate(&archetypes[feed.archetype].profile);
                    let err = svc.reload(refusee, &relaxed);
                    assert!(err.is_err(), "relaxation must be refused");
                }
            }
        }

        // Traffic: every live tenant submits a contiguous window of its
        // stream, with every deny_every-th request perturbed.
        for (&id, feed) in feeds.iter_mut() {
            let stream = &archetypes[feed.archetype].stream;
            for _ in 0..cfg.ops_per_round {
                let req = stream[feed.cursor % stream.len()];
                feed.cursor = feed.cursor.wrapping_add(1);
                feed.submitted += 1;
                let req = if cfg.deny_every > 0 && feed.submitted % u64::from(cfg.deny_every) == 0
                {
                    perturb(req)
                } else {
                    req
                };
                svc.submit(id, req).expect("tenant is live");
            }
        }

        // Drain, folding the decision stream into the digest.
        svc.drain_with(|tenant, req, decision| {
            digest = fnv1a(digest, u64::from(tenant.0));
            digest = fnv1a(digest, u64::from(req.id.as_u16()));
            digest = fnv1a(digest, encode_decision(decision));
        });
    }
    let wall_ns = start.elapsed().as_nanos() as u64;

    // Final sweep: snapshot every still-live tenant.
    for snap in svc.snapshots() {
        finished.insert(
            snap.id.0,
            TenantLatency {
                id: snap.id.0,
                profile: snap.profile,
                checks: snap.checks,
                denials: snap.denials,
                p50_ns: snap.latency_ns.p50().unwrap_or(0),
                p95_ns: snap.latency_ns.p95().unwrap_or(0),
                p99_ns: snap.latency_ns.p99().unwrap_or(0),
            },
        );
    }

    let ring = svc.audit_ring();
    ChurnReport {
        config: *cfg,
        counters: svc.counters(),
        stats: svc.stats(),
        latency: *svc.latency_pool(),
        per_tenant: finished.into_values().collect(),
        audit_published: ring.events_published(),
        audit_dropped: ring.events_dropped(),
        intervals_pushed: svc.window().dump().intervals_pushed,
        wall_ns,
        decision_digest: digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One tenant row of [`deterministic_view`]: id, profile, checks,
    /// denials.
    type TenantRow = (u32, String, u64, u64);

    /// Strips the wall-clock-derived fields (latency quantiles) a
    /// determinism comparison must ignore.
    fn deterministic_view(
        r: &ChurnReport,
    ) -> (ServiceCounters, CheckerStats, u64, Vec<TenantRow>) {
        let tenants = r
            .per_tenant
            .iter()
            .map(|t| (t.id, t.profile.clone(), t.checks, t.denials))
            .collect();
        (r.counters, r.stats, r.decision_digest, tenants)
    }

    #[test]
    fn quick_churn_exercises_every_lifecycle_edge() {
        let report = run_churn(&ChurnConfig::quick());
        let c = report.counters;
        assert!(c.registered >= 8, "arrivals ran: {c:?}");
        assert!(c.forked > 0, "fork storms ran");
        assert!(c.retired > 0, "retirements ran");
        assert!(c.reloads_permitted > 0, "flush-heavy reloads admitted");
        assert!(c.reloads_refused > 0, "relaxations refused");
        assert!(c.denials > 0, "perturbed traffic denied");
        assert!(c.cache_hits > 0, "steady-state traffic hits");
        assert_eq!(
            report.audit_published + report.audit_dropped,
            report.stats.denials,
            "audit accounting"
        );
        assert_eq!(report.intervals_pushed, u64::from(report.config.rounds));
        assert_eq!(
            report.per_tenant.len() as u64,
            c.registered + c.forked,
            "every tenant ever admitted is reported"
        );
    }

    #[test]
    fn churn_is_deterministic_for_a_fixed_seed() {
        let cfg = ChurnConfig::quick();
        let a = run_churn(&cfg);
        let b = run_churn(&cfg);
        assert_eq!(deterministic_view(&a), deterministic_view(&b));
    }

    #[test]
    fn seed_changes_the_schedule() {
        let a = run_churn(&ChurnConfig::quick());
        let b = run_churn(&ChurnConfig {
            seed: 9999,
            ..ChurnConfig::quick()
        });
        assert_ne!(a.decision_digest, b.decision_digest);
    }

    #[test]
    fn standard_config_admits_at_least_100_tenants() {
        let cfg = ChurnConfig::standard();
        assert!(cfg.tenants >= 100);
        // for_ops at the tracked bench scale also clears the bar.
        assert!(ChurnConfig::for_ops(200_000, 7, 128).tenants >= 100);
        // ...and the tiny bench config stays small.
        assert!(ChurnConfig::for_ops(300, 7, 32).tenants <= 8);
    }

    #[test]
    fn section_shape_and_round_trip() {
        let report = run_churn(&ChurnConfig::quick());
        let section = report.section();
        assert_eq!(section.schema, SERVICE_SCHEMA);
        assert!(section.checks_per_sec.is_finite());
        assert!(section.cache_hit_rate > 0.0 && section.cache_hit_rate <= 1.0);
        assert!(section.deny_rate > 0.0 && section.deny_rate < 1.0);
        let json = serde_json::to_string(&section).unwrap();
        let back: ServiceThroughput = serde_json::from_str(&json).unwrap();
        assert_eq!(back, section);
    }
}
