//! `dracod`: a multi-tenant syscall-admission service over shared
//! Draco checkers.
//!
//! The rest of the workspace exercises checkers one process at a time;
//! this crate runs them as shards of a long-running service (ROADMAP
//! item 1, the "millions of users" deployment shape from paper §VII).
//! A [`DracoService`] owns a registry of tenants — each with its own
//! profile, [`SharedDracoProcess`](draco_core::SharedDracoProcess)
//! (shared SPT/VAT plus optional analysis plan), submission queue, and
//! latency histogram — and multiplexes them over one request loop that
//! drains queues into `check_batch` calls (the staged batch pipeline).
//!
//! | Module | Contents |
//! |---|---|
//! | [`service`] | Tenant registry, lifecycle (`register`/`fork`/`exec`/`reload`/`retire`), request loop |
//! | [`churn`] | Seeded churn scenario (arrivals, fork storms, flush-heavy reloads) + the bench `service` section |
//!
//! The lifecycle guarantees are the point: tenants share no checkable
//! state (isolation proven by differential replay in the repo's test
//! battery), ids/pids are monotone and never reused, hot reloads run
//! through the epoch protocol under
//! [`ReloadPolicy`](draco_core::ReloadPolicy), and a refused reload
//! leaves the old filter serving with every cached validation intact.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod churn;
pub mod service;

pub use churn::{
    run_churn, ChurnConfig, ChurnReport, ServiceThroughput, TenantLatency, SERVICE_SCHEMA,
};
pub use service::{
    DracoService, DrainSummary, ServiceConfig, ServiceCounters, ServiceError, TenantId,
    TenantSnapshot,
};
