//! Loom models for tenant hot-reload through the service path.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the `loom` CI job):
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p draco-dracod --test loom
//! ```
//!
//! The race under test is the one the epoch protocol exists for: one
//! thread is mid-`check_batch` on a tenant's shared tables (it may have
//! staged a validation against the *old* policy) while another thread
//! drives [`DracoService::reload`] — `install_additional` plus flush —
//! through the service. The invariant: **no stale-epoch validation ever
//! commits**. Concretely, once the reload returns, an argument set the
//! old policy allowed but the new policy denies must (a) be denied and
//! (b) never be served from the cache — a stale commit would surface as
//! a cached allow after the flush.

#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use loom::thread;

use draco_core::CheckResult;
use draco_dracod::{DracoService, ServiceConfig};
use draco_profiles::{ProfileGenerator, ProfileKind, ProfileSpec};
use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};

fn req(nr: u16, args: &[u64]) -> SyscallRequest {
    SyscallRequest::new(0x1000, SyscallId::new(nr), ArgSet::from_slice(args))
}

/// read(2) with two argument sets (VAT-backed) plus getpid(2) (SPT).
fn base_profile() -> ProfileSpec {
    let mut gen = ProfileGenerator::new("loom");
    gen.observe(&req(0, &[3, 0xaaaa, 64]));
    gen.observe(&req(0, &[4, 0xbbbb, 128]));
    gen.observe(&req(39, &[]));
    gen.emit(ProfileKind::SyscallComplete)
}

/// A refinement of [`base_profile`]: only getpid survives. Admitted by
/// `RequireRefinement`, and the install flushes every cached
/// validation of the tenant.
fn tightened() -> ProfileSpec {
    let mut gen = ProfileGenerator::new("loom-tight");
    gen.observe(&req(39, &[]));
    gen.emit(ProfileKind::SyscallComplete)
}

#[test]
fn batched_checks_racing_a_service_reload_never_commit_stale_epochs() {
    loom::model(|| {
        let mut svc = DracoService::new(ServiceConfig::default());
        let tenant = svc.register(&base_profile()).expect("compiles");
        // Warm the doomed argument set so the racing batch has a live
        // cached validation for the reload's flush to invalidate
        // between its probe pass and its commit walk.
        let doomed = req(0, &[3, 0xaaaa, 64]);
        svc.submit(tenant, doomed).unwrap();
        svc.drain();
        // A worker handle checks on the tenant's shared tables without
        // holding the service lock — exactly how an external admission
        // thread rides alongside the service loop.
        let worker = svc.spawn_worker(tenant).expect("tenant is live");
        let svc = Arc::new(Mutex::new(svc));

        let old = base_profile();
        let new = tightened();
        let batcher = {
            let old = old.clone();
            let new = new.clone();
            thread::spawn(move || {
                let mut handle = worker;
                let reqs = [
                    doomed,                // cached under the old policy
                    req(39, &[]),          // allowed under both
                    req(0, &[4, 0xbbbb, 128]), // old-allowed miss
                    doomed,                // duplicate of the candidate
                ];
                let mut out = [CheckResult::KILLED; 4];
                handle.check_batch(&reqs, &mut out);
                for (r, got) in reqs.iter().zip(out.iter()) {
                    // Racing the reload, each decision must be exactly
                    // the old policy's or the new policy's verdict —
                    // never a third thing stitched from both epochs.
                    let old_says = old.evaluate(r);
                    let new_says = new.evaluate(r);
                    assert!(
                        got.action == old_says || got.action == new_says,
                        "{r}: got {:?}, old {:?}, new {:?}",
                        got.action,
                        old_says,
                        new_says
                    );
                }
            })
        };
        let reloader = {
            let svc = Arc::clone(&svc);
            thread::spawn(move || {
                let mut svc = svc.lock().unwrap();
                svc.reload(tenant, &tightened())
                    .expect("refinement is admitted");
            })
        };
        batcher.join().unwrap();
        reloader.join().unwrap();

        // The reload has fully returned: the new policy owns the
        // tables. If any stale-epoch validation had committed, this
        // probe would be a cached allow — it must be a filtered denial.
        let mut svc = svc.lock().unwrap();
        let mut decisions = Vec::new();
        svc.submit(tenant, doomed).unwrap();
        svc.submit(tenant, req(39, &[])).unwrap();
        svc.drain_with(|_, _, d| decisions.push(d));
        assert!(
            !decisions[0].action.permits(),
            "stale-epoch validation survived the reload: {:?}",
            decisions[0]
        );
        assert!(
            !decisions[0].path.is_cache_hit(),
            "denied request served from cache: {:?}",
            decisions[0].path
        );
        assert!(decisions[1].action.permits(), "getpid survives the tighten");
    });
}

#[test]
fn worker_checks_racing_a_refused_reload_keep_the_old_policy_and_cache() {
    loom::model(|| {
        let mut svc = DracoService::new(ServiceConfig::default());
        let tenant = svc.register(&base_profile()).expect("compiles");
        let warmed = req(0, &[3, 0xaaaa, 64]);
        svc.submit(tenant, warmed).unwrap();
        svc.drain();
        let worker = svc.spawn_worker(tenant).expect("tenant is live");
        let svc = Arc::new(Mutex::new(svc));

        // A *relaxation* of the installed policy: refused by
        // RequireRefinement, so no flush may happen.
        let relaxed = {
            let mut gen = ProfileGenerator::new("loom-relaxed");
            gen.observe(&req(0, &[3, 0xaaaa, 64]));
            gen.observe(&req(0, &[4, 0xbbbb, 128]));
            gen.observe(&req(39, &[]));
            gen.observe(&req(41, &[2, 1, 6])); // socket: never observed
            gen.emit(ProfileKind::SyscallComplete)
        };

        let old = base_profile();
        let checker = {
            let old = old.clone();
            thread::spawn(move || {
                let mut handle = worker;
                for r in [warmed, req(39, &[]), warmed] {
                    assert_eq!(
                        handle.check(&r).action,
                        old.evaluate(&r),
                        "refused reload must not change decisions"
                    );
                }
            })
        };
        let reloader = {
            let svc = Arc::clone(&svc);
            let relaxed = relaxed.clone();
            thread::spawn(move || {
                let mut svc = svc.lock().unwrap();
                svc.reload(tenant, &relaxed)
                    .expect_err("relaxation is refused");
            })
        };
        checker.join().unwrap();
        reloader.join().unwrap();

        // No flush happened: the warmed key still hits, decisions obey
        // the old policy, and the refusal is counted.
        let mut svc = svc.lock().unwrap();
        let mut d = None;
        svc.submit(tenant, warmed).unwrap();
        svc.drain_with(|_, _, r| d = Some(r));
        let d = d.unwrap();
        assert!(d.action.permits());
        assert!(d.path.is_cache_hit(), "refusal must not flush: {:?}", d.path);
        assert_eq!(svc.counters().reloads_refused, 1);
        assert_eq!(svc.counters().reloads_permitted, 0);
    });
}
