//! The tenant-lifecycle test battery: registry proptests.
//!
//! Two statements, machine-checked over arbitrary interleavings:
//!
//! 1. **Registry soundness** — any register/fork/retire/traffic
//!    sequence leaves the registry exactly in sync with a trivial
//!    model: no leaked shards, no resurrection of retired tenants, and
//!    tenant/process ids are strictly monotone and never reused.
//! 2. **Cross-tenant isolation** — a tenant's decision stream, checker
//!    stats, and SPT occupancy are byte-identical whether it is served
//!    alone or multiplexed with arbitrary co-tenant traffic; co-tenants
//!    can neither warm nor evict its tables.

use std::collections::BTreeSet;

use draco_core::CheckResult;
use draco_dracod::{DracoService, ServiceConfig, TenantId};
use draco_profiles::{ProfileGenerator, ProfileKind, ProfileSpec};
use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = SyscallRequest> {
    (0u16..436, proptest::array::uniform6(0u64..12), 0u64..8).prop_map(|(nr, args, pc)| {
        SyscallRequest::new(0x1000 + pc * 8, SyscallId::new(nr), ArgSet::new(args))
    })
}

fn profile_from(observations: &[SyscallRequest], name: &str) -> ProfileSpec {
    let mut gen = ProfileGenerator::new(name);
    for req in observations {
        gen.observe(req);
    }
    gen.emit(ProfileKind::SyscallComplete)
}

/// One lifecycle step. Tenant-picking indices are reduced modulo the
/// live set so every generated sequence is applicable.
#[derive(Clone, Debug)]
enum Op {
    Register,
    Fork(usize),
    Retire(usize),
    Traffic(usize, Vec<SyscallRequest>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Register),
        (0usize..64).prop_map(Op::Fork),
        (0usize..64).prop_map(Op::Retire),
        ((0usize..64), proptest::collection::vec(arb_request(), 1..8))
            .prop_map(|(i, reqs)| Op::Traffic(i, reqs)),
    ]
}

fn pick(ids: &[TenantId], raw: usize) -> Option<TenantId> {
    if ids.is_empty() {
        None
    } else {
        Some(ids[raw % ids.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite 3: register/fork/retire interleavings never leak
    /// shards, never reuse a retired tenant's ProcessId, and keep the
    /// registry in lockstep with a set-model.
    #[test]
    fn registry_tracks_the_model_and_never_reuses_ids(
        seed_observed in proptest::collection::vec(arb_request(), 1..8),
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let profile = profile_from(&seed_observed, "prop");
        let mut svc = DracoService::new(ServiceConfig::default());
        let mut model: BTreeSet<TenantId> = BTreeSet::new();
        let mut ever_allocated: Vec<TenantId> = Vec::new();
        let mut retired: BTreeSet<TenantId> = BTreeSet::new();

        for op in ops {
            let live: Vec<TenantId> = model.iter().copied().collect();
            match op {
                Op::Register => {
                    let id = svc.register(&profile).unwrap();
                    prop_assert!(model.insert(id), "id already live: {id}");
                    ever_allocated.push(id);
                }
                Op::Fork(raw) => {
                    if let Some(parent) = pick(&live, raw) {
                        let child = svc.fork(parent).unwrap();
                        prop_assert!(model.insert(child), "id already live: {child}");
                        ever_allocated.push(child);
                    } else {
                        prop_assert!(svc.fork(TenantId(7)).is_err());
                    }
                }
                Op::Retire(raw) => {
                    if let Some(victim) = pick(&live, raw) {
                        svc.retire(victim).unwrap();
                        model.remove(&victim);
                        retired.insert(victim);
                        // Resurrection attempts fail on every entry point.
                        prop_assert!(svc.submit(victim, SyscallRequest::new(
                            0, SyscallId::new(0), ArgSet::empty())).is_err());
                        prop_assert!(svc.retire(victim).is_err());
                    } else {
                        prop_assert!(svc.retire(TenantId(7)).is_err());
                    }
                }
                Op::Traffic(raw, reqs) => {
                    if let Some(id) = pick(&live, raw) {
                        svc.submit_all(id, &reqs).unwrap();
                        svc.drain();
                    }
                }
            }
            // Registry == model after every step: no leaked shards.
            prop_assert_eq!(svc.tenant_ids(), model.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(svc.len(), model.len());
        }

        // Ids are strictly monotone — allocation order is id order —
        // hence never reused, retired or not.
        for pair in ever_allocated.windows(2) {
            prop_assert!(pair[1] > pair[0], "allocation went backwards: {pair:?}");
        }
        let distinct: BTreeSet<TenantId> = ever_allocated.iter().copied().collect();
        prop_assert_eq!(distinct.len(), ever_allocated.len(), "an id was handed out twice");
        // Pids mirror tenant ids 1:1, so pid uniqueness follows; check
        // the live ones anyway against the snapshots.
        for snap in svc.snapshots() {
            prop_assert_eq!(snap.pid.0, snap.id.0);
            prop_assert!(!retired.contains(&snap.id), "retired tenant still live");
        }
        // The allocator never rewinds below what was handed out.
        if let Some(last) = ever_allocated.last() {
            prop_assert!(svc.next_allocation() > last.0);
        }
        let counters = svc.counters();
        prop_assert_eq!(counters.registered + counters.forked, ever_allocated.len() as u64);
        prop_assert_eq!(counters.retired, retired.len() as u64);
    }

    /// Tentpole battery: tenant A's decisions, stats, and SPT occupancy
    /// are byte-unaffected by arbitrary co-tenant traffic.
    #[test]
    fn co_tenant_traffic_never_changes_a_tenants_behavior(
        a_observed in proptest::collection::vec(arb_request(), 1..10),
        a_stream in proptest::collection::vec(arb_request(), 1..30),
        b_observed in proptest::collection::vec(arb_request(), 1..10),
        b_stream in proptest::collection::vec(arb_request(), 1..30),
        b_tenants in 1usize..4,
    ) {
        let a_profile = profile_from(&a_observed, "tenant-a");
        let b_profile = profile_from(&b_observed, "tenant-b");

        // Solo run: A alone, its stream split over two drain rounds.
        let mut solo = DracoService::new(ServiceConfig::default());
        let a_solo = solo.register(&a_profile).unwrap();
        let mut solo_decisions: Vec<CheckResult> = Vec::new();
        let split = a_stream.len() / 2;
        for half in [&a_stream[..split], &a_stream[split..]] {
            solo.submit_all(a_solo, half).unwrap();
            solo.drain_with(|_, _, d| solo_decisions.push(d));
        }

        // Duo run: same A, plus co-tenants hammering their own tables
        // in the same drain rounds (and churning: the last co-tenant
        // retires between rounds).
        let mut duo = DracoService::new(ServiceConfig::default());
        let a_duo = duo.register(&a_profile).unwrap();
        let bs: Vec<TenantId> = (0..b_tenants)
            .map(|_| duo.register(&b_profile).unwrap())
            .collect();
        let mut duo_decisions: Vec<CheckResult> = Vec::new();
        for (round, half) in [&a_stream[..split], &a_stream[split..]].into_iter().enumerate() {
            duo.submit_all(a_duo, half).unwrap();
            for &b in &bs {
                if duo.contains(b) {
                    duo.submit_all(b, &b_stream).unwrap();
                }
            }
            duo.drain_with(|tenant, _, d| {
                if tenant == a_duo {
                    duo_decisions.push(d);
                }
            });
            if round == 0 {
                duo.retire(*bs.last().unwrap()).unwrap();
            }
        }

        // Decision streams are identical, including the cache path
        // taken — co-tenants could only diverge A by touching A's
        // tables, and they cannot.
        prop_assert_eq!(&solo_decisions, &duo_decisions);
        prop_assert_eq!(
            solo.tenant_stats(a_solo).unwrap(),
            duo.tenant_stats(a_duo).unwrap(),
            "A's checker counters moved under co-tenant traffic"
        );
        prop_assert_eq!(
            solo.spt_valid_count(a_solo).unwrap(),
            duo.spt_valid_count(a_duo).unwrap(),
            "A's SPT occupancy moved under co-tenant traffic"
        );
        let solo_snap = solo.snapshot(a_solo).unwrap();
        let duo_snap = duo.snapshot(a_duo).unwrap();
        prop_assert_eq!(solo_snap.checks, duo_snap.checks);
        prop_assert_eq!(solo_snap.allowed, duo_snap.allowed);
        prop_assert_eq!(solo_snap.denials, duo_snap.denials);
        prop_assert_eq!(solo_snap.cache_hits, duo_snap.cache_hits);
    }
}
