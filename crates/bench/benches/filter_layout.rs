//! §XII ablation in wall-clock: linear vs binary-tree filter layout as a
//! function of the target syscall's position in the whitelist.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use draco::bpf::SeccompData;
use draco::profiles::{compile_stacked, docker_default, FilterLayout};

fn bench_layouts(c: &mut Criterion) {
    let profile = docker_default();
    let linear = compile_stacked(&profile, FilterLayout::Linear)
        .expect("compiles")
        .compiled();
    let tree = compile_stacked(&profile, FilterLayout::BinaryTree)
        .expect("compiles")
        .compiled();

    let mut group = c.benchmark_group("filter_layout");
    // read(0): front of the chain; pidfd_open(434): the far end.
    for (label, nr) in [("front_read", 0i32), ("back_pidfd_open", 434)] {
        let data = SeccompData::for_syscall(nr, &[0; 6]);
        group.bench_function(BenchmarkId::new("linear", label), |b| {
            b.iter(|| black_box(linear.run(black_box(&data)).expect("runs")));
        });
        group.bench_function(BenchmarkId::new("tree", label), |b| {
            b.iter(|| black_box(tree.run(black_box(&data)).expect("runs")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
