//! Wall-clock cost of one Seccomp check under the paper's profiles
//! (the real-time companion to `repro fig2`): per-syscall filter
//! execution for docker-default and the generated application profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use draco::bpf::SeccompData;
use draco::profiles::{compile_stacked, docker_default, FilterLayout, ProfileKind};
use draco::workloads::{catalog, timing, TraceGenerator};

fn bench_profiles(c: &mut Criterion) {
    let spec = catalog::by_name("nginx").expect("nginx");
    let trace = TraceGenerator::new(&spec, 7).generate(4_096);
    let data: Vec<SeccompData> = trace
        .requests()
        .map(|r| SeccompData::from_request(&r))
        .collect();

    let mut group = c.benchmark_group("seccomp_check");
    let cases = [
        ("docker-default", docker_default()),
        (
            "syscall-noargs",
            timing::profile_for_trace(&trace, ProfileKind::SyscallNoargs),
        ),
        (
            "syscall-complete",
            timing::profile_for_trace(&trace, ProfileKind::SyscallComplete),
        ),
        (
            "syscall-complete-2x",
            timing::profile_for_trace(&trace, ProfileKind::SyscallComplete2x),
        ),
    ];
    for (label, profile) in cases {
        let stack = compile_stacked(&profile, FilterLayout::Linear).expect("compiles");
        let compiled = stack.compiled();
        group.bench_function(BenchmarkId::new("compiled", label), |b| {
            let mut i = 0;
            b.iter(|| {
                let d = &data[i & 4095];
                i += 1;
                black_box(compiled.run(black_box(d)).expect("runs"))
            });
        });
        group.bench_function(BenchmarkId::new("interpreted", label), |b| {
            let mut i = 0;
            b.iter(|| {
                let d = &data[i & 4095];
                i += 1;
                black_box(stack.run(black_box(d)).expect("runs"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_profiles);
criterion_main!(benches);
