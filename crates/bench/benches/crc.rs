//! CRC-64 hashing microbenchmarks: the hardware-shaped bit-serial LFSR
//! vs the classic one-table (slice-by-1) loop vs the slice-by-8 hot
//! path, across Draco-typical input sizes (selected argument bytes are
//! at most 48 bytes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use draco::cuckoo::Crc64;

fn bench_crc(c: &mut Criterion) {
    let ecma = Crc64::ecma();
    let not_ecma = Crc64::not_ecma();
    let mut group = c.benchmark_group("crc64");
    for &len in &[8usize, 16, 48] {
        let data: Vec<u8> = (0..len as u8).collect();
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_function(BenchmarkId::new("bitwise_lfsr", len), |b| {
            b.iter(|| black_box(ecma.checksum_bitwise(black_box(&data))));
        });
        group.bench_function(BenchmarkId::new("slice_by_1", len), |b| {
            b.iter(|| black_box(ecma.checksum_slice1(black_box(&data))));
        });
        group.bench_function(BenchmarkId::new("slice_by_8", len), |b| {
            b.iter(|| black_box(ecma.checksum(black_box(&data))));
        });
        group.bench_function(BenchmarkId::new("pair_h1_h2", len), |b| {
            b.iter(|| {
                let h1 = ecma.checksum(black_box(&data));
                let h2 = not_ecma.checksum(black_box(&data));
                black_box((h1, h2))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crc);
criterion_main!(benches);
