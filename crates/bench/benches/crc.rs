//! CRC-64 hashing microbenchmarks: the hardware-shaped bit-serial LFSR
//! vs the classic one-table (slice-by-1) loop vs the slice-by-8 hot
//! path, across Draco-typical input sizes (selected argument bytes are
//! at most 48 bytes) — plus the batch-path engines: the 4-lane
//! interleaved `checksum4`, the carry-less-multiply folding variant,
//! and the full `hash_pair4` both-polynomial staging hash.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use draco::cuckoo::{clmul_detected, Crc64, Crc64Fold, CrcPairHasher, PairHasher};

fn bench_crc(c: &mut Criterion) {
    let ecma = Crc64::ecma();
    let not_ecma = Crc64::not_ecma();
    let mut group = c.benchmark_group("crc64");
    for &len in &[8usize, 16, 48] {
        let data: Vec<u8> = (0..len as u8).collect();
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_function(BenchmarkId::new("bitwise_lfsr", len), |b| {
            b.iter(|| black_box(ecma.checksum_bitwise(black_box(&data))));
        });
        group.bench_function(BenchmarkId::new("slice_by_1", len), |b| {
            b.iter(|| black_box(ecma.checksum_slice1(black_box(&data))));
        });
        group.bench_function(BenchmarkId::new("slice_by_8", len), |b| {
            b.iter(|| black_box(ecma.checksum(black_box(&data))));
        });
        group.bench_function(BenchmarkId::new("pair_h1_h2", len), |b| {
            b.iter(|| {
                let h1 = ecma.checksum(black_box(&data));
                let h2 = not_ecma.checksum(black_box(&data));
                black_box((h1, h2))
            });
        });
    }
    group.finish();
}

/// The batch staging engines, measured per *batch of four keys* so the
/// scalar loop and the interleaved/folding variants are comparable:
/// throughput is total bytes across all four lanes.
fn bench_crc_batch(c: &mut Criterion) {
    let ecma = Crc64::ecma_shared();
    let fold = Crc64Fold::ecma_shared();
    let hasher = CrcPairHasher::new();
    let mut group = c.benchmark_group("crc64-batch");
    for &len in &[8usize, 16, 48] {
        let lanes: Vec<Vec<u8>> = (0..4u8)
            .map(|lane| (0..len as u8).map(|b| b.wrapping_mul(lane + 1)).collect())
            .collect();
        let keys: [&[u8]; 4] = [&lanes[0], &lanes[1], &lanes[2], &lanes[3]];
        group.throughput(Throughput::Bytes(4 * len as u64));
        group.bench_function(BenchmarkId::new("scalar_x4", len), |b| {
            b.iter(|| {
                let mut out = [0u64; 4];
                for (slot, key) in out.iter_mut().zip(black_box(keys)) {
                    *slot = ecma.checksum(key);
                }
                black_box(out)
            });
        });
        group.bench_function(BenchmarkId::new("interleaved4", len), |b| {
            b.iter(|| black_box(ecma.checksum4(black_box(keys))));
        });
        group.bench_function(BenchmarkId::new("clmul_fold_x4", len), |b| {
            b.iter(|| {
                let mut out = [0u64; 4];
                for (slot, key) in out.iter_mut().zip(black_box(keys)) {
                    *slot = fold.checksum_auto(key);
                }
                black_box(out)
            });
        });
        group.bench_function(BenchmarkId::new("pair_scalar_x4", len), |b| {
            b.iter(|| {
                let mut out = [draco::cuckoo::HashPair { h1: 0, h2: 0 }; 4];
                for (slot, key) in out.iter_mut().zip(black_box(keys)) {
                    *slot = hasher.hash_pair(&key);
                }
                black_box(out)
            });
        });
        group.bench_function(BenchmarkId::new("pair4", len), |b| {
            b.iter(|| black_box(hasher.hash_pair4(black_box(keys))));
        });
    }
    group.finish();
    eprintln!(
        "note: clmul folding is {} on this host",
        if clmul_detected() { "hardware (pclmulqdq)" } else { "the table fallback" }
    );
}

criterion_group!(benches, bench_crc, bench_crc_batch);
criterion_main!(benches);
