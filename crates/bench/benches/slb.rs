//! Hardware-model microbenchmarks: the simulator's per-syscall cost on
//! hit and miss paths, and whole-trace simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use draco::profiles::ProfileKind;
use draco::sim::{DracoHwCore, SimConfig};
use draco::workloads::{catalog, timing, SyscallTrace, TraceGenerator};

fn bench_hw(c: &mut Criterion) {
    let spec = catalog::by_name("httpd").expect("httpd");
    let trace = TraceGenerator::new(&spec, 7).generate(20_000);
    let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);

    let mut group = c.benchmark_group("hw_sim");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("run_20k_syscalls_warm", |b| {
        let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile).expect("core");
        core.run(&trace); // warm
        b.iter(|| black_box(core.run(black_box(&trace))));
    });
    group.finish();

    let mut group = c.benchmark_group("hw_sim_single");
    let one = SyscallTrace::from_ops("one", vec![trace.ops()[0]]);
    group.bench_function("steady_hit_path", |b| {
        let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile).expect("core");
        core.run(&trace);
        b.iter(|| black_box(core.run(black_box(&one))));
    });
    group.bench_function("post_context_switch_path", |b| {
        let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile).expect("core");
        core.run(&trace);
        b.iter(|| {
            core.inject_context_switch();
            black_box(core.run(black_box(&one)))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hw);
criterion_main!(benches);
