//! Wall-clock cost of a software-Draco check (the real-time companion to
//! `repro fig11`): steady-state table hits vs the Seccomp fallback.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use draco::core::DracoChecker;
use draco::profiles::ProfileKind;
use draco::workloads::{catalog, timing, TraceGenerator};

fn bench_draco_sw(c: &mut Criterion) {
    let spec = catalog::by_name("nginx").expect("nginx");
    let trace = TraceGenerator::new(&spec, 7).generate(8_192);
    let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
    let reqs: Vec<_> = trace.requests().collect();

    let mut group = c.benchmark_group("draco_sw_check");
    group.bench_function("steady_state_stream", |b| {
        let mut checker = DracoChecker::from_profile(&profile).expect("checker");
        // Warm the tables first.
        for req in &reqs {
            checker.check(req);
        }
        let mut i = 0;
        b.iter(|| {
            let req = &reqs[i & 8191];
            i += 1;
            black_box(checker.check(black_box(req)))
        });
    });
    group.bench_function("spt_hit", |b| {
        let noargs = timing::profile_for_trace(&trace, ProfileKind::SyscallNoargs);
        let mut checker = DracoChecker::from_profile(&noargs).expect("checker");
        let req = reqs[0];
        checker.check(&req);
        b.iter(|| black_box(checker.check(black_box(&req))));
    });
    group.bench_function("vat_hit", |b| {
        let mut checker = DracoChecker::from_profile(&profile).expect("checker");
        let req = reqs
            .iter()
            .find(|r| {
                // An argument-checked syscall (read).
                r.id.as_u16() == 0
            })
            .copied()
            .expect("trace contains read");
        checker.check(&req);
        b.iter(|| black_box(checker.check(black_box(&req))));
    });
    group.bench_function("cold_miss_filter_fallback", |b| {
        let mut checker = DracoChecker::from_profile(&profile).expect("checker");
        let req = reqs[0];
        b.iter(|| {
            checker.flush();
            black_box(checker.check(black_box(&req)))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_draco_sw);
criterion_main!(benches);
