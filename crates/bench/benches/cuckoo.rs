//! VAT substrate microbenchmarks: 2-ary cuckoo lookup and insert.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use draco::cuckoo::{CrcPairHasher, CuckooTable};

fn bench_cuckoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("cuckoo");
    for &size in &[8usize, 64, 512] {
        let mut table: CuckooTable<Vec<u8>, u64> =
            CuckooTable::with_capacity(size * 2, CrcPairHasher::default());
        let keys: Vec<Vec<u8>> = (0..size as u64).map(|i| i.to_le_bytes().to_vec()).collect();
        for (i, k) in keys.iter().enumerate() {
            table.insert(k.clone(), i as u64);
        }
        group.bench_function(BenchmarkId::new("lookup_hit", size), |b| {
            let mut i = 0;
            b.iter(|| {
                let k = &keys[i % keys.len()];
                i += 1;
                black_box(table.lookup(black_box(k)))
            });
        });
        let miss = 0xffff_ffff_u64.to_le_bytes().to_vec();
        group.bench_function(BenchmarkId::new("lookup_miss", size), |b| {
            b.iter(|| black_box(table.lookup(black_box(&miss))));
        });
    }
    group.bench_function("insert_with_pressure", |b| {
        let mut table: CuckooTable<Vec<u8>, u64> =
            CuckooTable::with_capacity(64, CrcPairHasher::default());
        let mut i: u64 = 0;
        b.iter(|| {
            i += 1;
            black_box(table.insert(i.to_le_bytes().to_vec(), i))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cuckoo);
criterion_main!(benches);
