//! Throughput history and the regression gate behind `repro compare`.
//!
//! Every tracked `repro throughput` run appends one summary line to
//! `BENCH_history.jsonl` (JSON Lines: one self-contained entry per
//! line, so the file grows append-only and merges trivially). The
//! `repro compare` gate then checks the current report's software-Draco
//! single-thread rate — the number PR work on the hot path moves —
//! against the best comparable entry in the history and fails when it
//! regresses past a threshold. CI runs the gate with `--warn-only`
//! (shared runners are noisy); locally it is a hard gate.

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::throughput::ThroughputReport;

/// Schema tag carried by every history line (bump on breaking changes).
pub const HISTORY_SCHEMA: &str = "draco-history/v1";

/// Default regression threshold: fail when the current rate drops more
/// than this fraction below the best comparable baseline.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// One appended summary of a tracked throughput run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistoryEntry {
    /// Schema tag ([`HISTORY_SCHEMA`]).
    pub schema: String,
    /// Replayed workload.
    pub workload: String,
    /// Shard count of the multi-thread runs.
    pub shards: u64,
    /// Measured checks per shard.
    pub ops_per_shard: u64,
    /// Software Draco, one shard on one thread (the gated rate).
    pub draco_sw_single_checks_per_sec: f64,
    /// Software Draco, aggregate across shards.
    pub draco_sw_multi_checks_per_sec: f64,
    /// Seccomp interpreter baseline, single-thread.
    pub seccomp_interp_single_checks_per_sec: f64,
    /// Seccomp pre-decoded baseline, single-thread.
    pub seccomp_compiled_single_checks_per_sec: f64,
    /// Thread-shared process, skewed mix, aggregate across all worker
    /// threads (schema v4 reports; zero for entries appended before the
    /// shared section existed).
    #[serde(default)]
    pub draco_shared_multi_checks_per_sec: f64,
    /// Multi-worker over 1-worker scaling of the shared process, skewed
    /// mix (hardware-dependent; recorded, not gated).
    #[serde(default)]
    pub draco_shared_scaling: f64,
    /// Batched check path, one shard on one thread (schema v5 reports;
    /// zero for entries appended before the batch section existed).
    #[serde(default)]
    pub draco_batch_single_checks_per_sec: f64,
    /// Batch single-thread rate over the same run's scalar draco-sw
    /// single-thread rate (recorded, not gated — the scalar rate stays
    /// the gated number so batching cannot mask a scalar regression).
    #[serde(default)]
    pub draco_batch_speedup_vs_scalar: f64,
    /// Decision-DAG engine rate on the deny-heavy stream (schema v6
    /// reports; zero for entries appended before the dag section
    /// existed).
    #[serde(default)]
    pub draco_dag_checks_per_sec: f64,
    /// DAG engine rate over the cBPF interpreter rate on the same
    /// deny-heavy stream (recorded, not gated).
    #[serde(default)]
    pub draco_dag_speedup_vs_interp: f64,
    /// Aggregate admission throughput of the `dracod` churn scenario
    /// (schema v8 reports; zero for entries appended before the service
    /// section existed). Recorded, not gated.
    #[serde(default)]
    pub draco_service_checks_per_sec: f64,
    /// Pooled p99 per-request service latency upper bound in
    /// nanoseconds (schema v8 reports; zero before the section
    /// existed). Recorded, not gated.
    #[serde(default)]
    pub draco_service_p99_latency_ns: f64,
}

impl HistoryEntry {
    /// Summarizes a throughput report into one history line.
    ///
    /// Missing backends record a zero rate (a zero baseline never gates,
    /// so a malformed report cannot fail the comparison by accident).
    pub fn from_report(report: &ThroughputReport) -> Self {
        let single = |label: &str| {
            report
                .backend(label)
                .map_or(0.0, |b| b.single_thread_checks_per_sec)
        };
        HistoryEntry {
            schema: HISTORY_SCHEMA.to_owned(),
            workload: report.workload.clone(),
            shards: report.shards,
            ops_per_shard: report.ops_per_shard,
            draco_sw_single_checks_per_sec: single("draco-sw"),
            draco_sw_multi_checks_per_sec: report
                .backend("draco-sw")
                .map_or(0.0, |b| b.multi_thread_checks_per_sec),
            seccomp_interp_single_checks_per_sec: single("seccomp-interp"),
            seccomp_compiled_single_checks_per_sec: single("seccomp-compiled"),
            draco_shared_multi_checks_per_sec: report
                .shared_threads
                .first()
                .map_or(0.0, |s| s.multi_thread_checks_per_sec),
            draco_shared_scaling: report
                .shared_threads
                .first()
                .map_or(0.0, |s| s.scaling),
            draco_batch_single_checks_per_sec: report
                .batch
                .as_ref()
                .map_or(0.0, |b| b.single_thread_checks_per_sec),
            draco_batch_speedup_vs_scalar: report
                .batch
                .as_ref()
                .map_or(0.0, |b| b.speedup_vs_scalar_single),
            draco_dag_checks_per_sec: report
                .dag
                .as_ref()
                .map_or(0.0, |d| d.dag_checks_per_sec),
            draco_dag_speedup_vs_interp: report
                .dag
                .as_ref()
                .map_or(0.0, |d| d.speedup_vs_interp),
            draco_service_checks_per_sec: report
                .service
                .as_ref()
                .map_or(0.0, |s| s.checks_per_sec),
            draco_service_p99_latency_ns: report
                .service
                .as_ref()
                .map_or(0.0, |s| s.p99_latency_ns as f64),
        }
    }

    /// Whether `other` measured the same experiment (same workload and
    /// per-shard op count — rates from different run lengths are not
    /// comparable).
    pub fn comparable_to(&self, other: &HistoryEntry) -> bool {
        self.workload == other.workload && self.ops_per_shard == other.ops_per_shard
    }
}

/// The verdict of one history comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct CompareOutcome {
    /// The gated rate from the current report (draco-sw single-thread).
    pub current_checks_per_sec: f64,
    /// The best comparable baseline rate, if the history has one.
    pub baseline_checks_per_sec: Option<f64>,
    /// `(baseline - current) / baseline * 100`; negative when the
    /// current run is faster. `None` without a baseline.
    pub regression_pct: Option<f64>,
    /// The threshold the gate applied.
    pub threshold_pct: f64,
    /// Comparable history entries considered.
    pub baselines_considered: usize,
    /// True when the current rate fell more than `threshold_pct` below
    /// the baseline. Always false without a baseline.
    pub regressed: bool,
}

impl fmt::Display for CompareOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.baseline_checks_per_sec, self.regression_pct) {
            (Some(base), Some(pct)) => write!(
                f,
                "draco-sw single-thread: {:.0} checks/s vs best baseline {:.0} ({}{:.1}% {}, threshold {:.1}%, {} baseline{})",
                self.current_checks_per_sec,
                base,
                if pct >= 0.0 { "-" } else { "+" },
                pct.abs(),
                if pct >= 0.0 { "slower" } else { "faster" },
                self.threshold_pct,
                self.baselines_considered,
                if self.baselines_considered == 1 { "" } else { "s" },
            ),
            _ => write!(
                f,
                "draco-sw single-thread: {:.0} checks/s (no comparable baseline in history)",
                self.current_checks_per_sec
            ),
        }
    }
}

/// Compares a report's draco-sw single-thread rate against the best
/// comparable entry in `history`.
///
/// The *best* (not latest) baseline gates: a slow run appended to the
/// history must not lower the bar for the runs after it. Entries for a
/// different workload or op count, and zero-rate entries, are skipped.
pub fn compare(
    history: &[HistoryEntry],
    report: &ThroughputReport,
    threshold_pct: f64,
) -> CompareOutcome {
    let current = HistoryEntry::from_report(report);
    let comparable: Vec<&HistoryEntry> = history
        .iter()
        .filter(|e| e.comparable_to(&current) && e.draco_sw_single_checks_per_sec > 0.0)
        .collect();
    let baseline = comparable
        .iter()
        .map(|e| e.draco_sw_single_checks_per_sec)
        .fold(None, |best: Option<f64>, rate| {
            Some(best.map_or(rate, |b| b.max(rate)))
        });
    let regression_pct =
        baseline.map(|base| (base - current.draco_sw_single_checks_per_sec) / base * 100.0);
    CompareOutcome {
        current_checks_per_sec: current.draco_sw_single_checks_per_sec,
        baseline_checks_per_sec: baseline,
        regression_pct,
        threshold_pct,
        baselines_considered: comparable.len(),
        regressed: regression_pct.is_some_and(|pct| pct > threshold_pct),
    }
}

/// How long a sidecar lock may exist before a waiter presumes its owner
/// crashed and steals it.
const LOCK_STALE_AFTER: Duration = Duration::from_secs(2);

/// Poll interval while waiting for the sidecar lock.
const LOCK_RETRY_EVERY: Duration = Duration::from_millis(10);

/// An advisory append lock implemented as a `<path>.lock` sidecar file
/// created with `create_new` (atomic on every platform and filesystem,
/// unlike `flock`, which this toolchain has no bindings for). The lock
/// is released by deleting the sidecar on drop; a sidecar older than
/// [`LOCK_STALE_AFTER`] is presumed orphaned by a crashed writer and
/// stolen.
struct HistoryLock {
    path: PathBuf,
}

impl HistoryLock {
    fn acquire(target: &Path) -> std::io::Result<HistoryLock> {
        let mut path = target.as_os_str().to_owned();
        path.push(".lock");
        let path = PathBuf::from(path);
        let mut waited = Duration::ZERO;
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    // Owner pid, for humans inspecting a stuck lock.
                    let _ = write!(file, "{}", std::process::id());
                    return Ok(HistoryLock { path });
                }
                Err(err) if err.kind() == std::io::ErrorKind::AlreadyExists => {
                    if waited >= LOCK_STALE_AFTER {
                        // Steal: remove and retry with create_new, so of
                        // N stealers exactly one wins the next round.
                        let _ = std::fs::remove_file(&path);
                        waited = Duration::ZERO;
                        continue;
                    }
                    std::thread::sleep(LOCK_RETRY_EVERY);
                    waited += LOCK_RETRY_EVERY;
                }
                Err(err) => return Err(err),
            }
        }
    }
}

impl Drop for HistoryLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Appends one entry to a JSONL history file (created if missing).
///
/// The append is atomic against concurrent appenders: the whole line —
/// JSON plus trailing newline — is staged into one buffer and handed to
/// the kernel as a **single `write_all` on an `O_APPEND` descriptor**,
/// under the `<path>.lock` sidecar advisory lock. Two racing `repro
/// throughput` runs therefore cannot interleave bytes mid-line (which
/// previously could split a line into `serde_json` output and a
/// separately written `\n`, corrupting both entries for
/// [`load_history`]).
///
/// # Errors
///
/// Returns any I/O error from locking, opening, or writing the file.
pub fn append_history(path: &Path, entry: &HistoryEntry) -> std::io::Result<()> {
    let mut line = serde_json::to_string(entry).expect("history entries always serialize");
    line.push('\n');
    let _lock = HistoryLock::acquire(path)?;
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(line.as_bytes())?;
    file.flush()
}

/// Loads every parseable entry from a JSONL history file. A missing
/// file is an empty history; malformed or foreign-schema lines are
/// skipped (an old or hand-edited history must not wedge the gate).
///
/// # Errors
///
/// Returns any I/O error other than the file not existing.
pub fn load_history(path: &Path) -> std::io::Result<Vec<HistoryEntry>> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(err) => return Err(err),
    };
    Ok(text
        .lines()
        .filter(|line| !line.trim().is_empty())
        .filter_map(|line| serde_json::from_str::<HistoryEntry>(line).ok())
        .filter(|entry| entry.schema == HISTORY_SCHEMA)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput::{run_throughput, ThroughputConfig};

    fn tiny_report() -> ThroughputReport {
        run_throughput(&ThroughputConfig {
            workload: "pipe".to_owned(),
            ops_per_shard: 200,
            warmup_ops: 20,
            seed: 11,
            shards: 2,
            shared_threads: 2,
            batch: 32,
        })
    }

    fn entry_with_rate(report: &ThroughputReport, rate: f64) -> HistoryEntry {
        HistoryEntry {
            draco_sw_single_checks_per_sec: rate,
            ..HistoryEntry::from_report(report)
        }
    }

    #[test]
    fn entry_summarizes_report() {
        let report = tiny_report();
        let entry = HistoryEntry::from_report(&report);
        assert_eq!(entry.schema, HISTORY_SCHEMA);
        assert_eq!(entry.workload, "pipe");
        assert_eq!(entry.ops_per_shard, 200);
        assert!(entry.draco_sw_single_checks_per_sec > 0.0);
        assert!(entry.seccomp_interp_single_checks_per_sec > 0.0);
    }

    #[test]
    fn empty_history_never_regresses() {
        let report = tiny_report();
        let outcome = compare(&[], &report, DEFAULT_THRESHOLD_PCT);
        assert!(!outcome.regressed);
        assert_eq!(outcome.baseline_checks_per_sec, None);
        assert_eq!(outcome.baselines_considered, 0);
        assert!(outcome.to_string().contains("no comparable baseline"));
    }

    #[test]
    fn synthetic_regression_trips_the_gate() {
        let report = tiny_report();
        let current = HistoryEntry::from_report(&report).draco_sw_single_checks_per_sec;
        // A baseline 2x faster than the current run: a 50% regression.
        let fast = entry_with_rate(&report, current * 2.0);
        let outcome = compare(&[fast], &report, 10.0);
        assert!(outcome.regressed, "{outcome}");
        assert!((outcome.regression_pct.unwrap() - 50.0).abs() < 1e-9);
        assert!(outcome.to_string().contains("slower"));
    }

    #[test]
    fn comparable_baseline_within_threshold_passes() {
        let report = tiny_report();
        let current = HistoryEntry::from_report(&report).draco_sw_single_checks_per_sec;
        // Baseline 5% above current: inside the 10% default threshold.
        let close = entry_with_rate(&report, current * 1.05);
        let outcome = compare(&[close], &report, DEFAULT_THRESHOLD_PCT);
        assert!(!outcome.regressed, "{outcome}");
        // A faster current run reads as negative regression.
        let slow = entry_with_rate(&report, current * 0.5);
        let outcome = compare(&[slow], &report, DEFAULT_THRESHOLD_PCT);
        assert!(!outcome.regressed);
        assert!(outcome.regression_pct.unwrap() < 0.0);
        assert!(outcome.to_string().contains("faster"));
    }

    #[test]
    fn best_baseline_gates_not_latest() {
        let report = tiny_report();
        let current = HistoryEntry::from_report(&report).draco_sw_single_checks_per_sec;
        // The latest entry is slow, but an earlier fast entry still gates.
        let history = vec![
            entry_with_rate(&report, current * 3.0),
            entry_with_rate(&report, current * 0.1),
        ];
        let outcome = compare(&history, &report, 10.0);
        assert!(outcome.regressed);
        assert_eq!(outcome.baselines_considered, 2);
        assert!((outcome.baseline_checks_per_sec.unwrap() - current * 3.0).abs() < 1e-6);
    }

    #[test]
    fn incomparable_entries_are_skipped() {
        let report = tiny_report();
        let current = HistoryEntry::from_report(&report).draco_sw_single_checks_per_sec;
        let mut other_workload = entry_with_rate(&report, current * 100.0);
        other_workload.workload = "nginx".to_owned();
        let mut other_ops = entry_with_rate(&report, current * 100.0);
        other_ops.ops_per_shard = 999_999;
        let zero_rate = entry_with_rate(&report, 0.0);
        let outcome = compare(
            &[other_workload, other_ops, zero_rate],
            &report,
            DEFAULT_THRESHOLD_PCT,
        );
        assert!(!outcome.regressed);
        assert_eq!(outcome.baselines_considered, 0);
        assert_eq!(outcome.baseline_checks_per_sec, None);
    }

    #[test]
    fn jsonl_round_trip_and_append() {
        let report = tiny_report();
        let entry = HistoryEntry::from_report(&report);
        let dir = std::env::temp_dir().join("draco-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("history-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert_eq!(load_history(&path).unwrap(), Vec::new(), "missing = empty");
        append_history(&path, &entry).unwrap();
        append_history(&path, &entry).unwrap();
        // Garbage and foreign-schema lines are tolerated.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "not json at all").unwrap();
            writeln!(f, "{{\"schema\":\"other/v9\"}}").unwrap();
        }
        let loaded = load_history(&path).unwrap();
        assert_eq!(loaded, vec![entry.clone(), entry]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn entry_carries_shared_rates_and_tolerates_their_absence() {
        let report = tiny_report();
        let entry = HistoryEntry::from_report(&report);
        assert!(
            entry.draco_shared_multi_checks_per_sec > 0.0,
            "v4 reports populate the shared rate"
        );
        assert!(entry.draco_shared_scaling > 0.0);
        // Entries appended before schema v4 lack the shared keys entirely;
        // they are the last two fields, so truncating the serialized line
        // at the first of them yields a faithful pre-v4 entry.
        let json = serde_json::to_string(&entry).unwrap();
        let cut = json
            .find(",\"draco_shared_multi_checks_per_sec\"")
            .expect("shared keys serialize");
        let old: HistoryEntry = serde_json::from_str(&format!("{}}}", &json[..cut])).unwrap();
        assert_eq!(old.draco_shared_multi_checks_per_sec, 0.0);
        assert_eq!(old.draco_shared_scaling, 0.0);
    }

    #[test]
    fn entry_carries_batch_rates_and_tolerates_their_absence() {
        let report = tiny_report();
        let entry = HistoryEntry::from_report(&report);
        assert!(
            entry.draco_batch_single_checks_per_sec > 0.0,
            "v5 reports populate the batch rate"
        );
        assert!(entry.draco_batch_speedup_vs_scalar > 0.0);
        // Entries appended before schema v5 lack the batch keys; they are
        // the last two fields, so truncating the serialized line at the
        // first of them yields a faithful pre-v5 entry.
        let json = serde_json::to_string(&entry).unwrap();
        let cut = json
            .find(",\"draco_batch_single_checks_per_sec\"")
            .expect("batch keys serialize");
        let old: HistoryEntry = serde_json::from_str(&format!("{}}}", &json[..cut])).unwrap();
        assert_eq!(old.draco_batch_single_checks_per_sec, 0.0);
        assert_eq!(old.draco_batch_speedup_vs_scalar, 0.0);
    }

    #[test]
    fn entry_carries_dag_rates_and_tolerates_their_absence() {
        let report = tiny_report();
        let entry = HistoryEntry::from_report(&report);
        assert!(
            entry.draco_dag_checks_per_sec > 0.0,
            "v6 reports populate the dag rate"
        );
        assert!(entry.draco_dag_speedup_vs_interp > 0.0);
        // Entries appended before schema v6 lack the dag keys; truncating
        // the serialized line at the first of them yields a faithful
        // pre-v6 entry.
        let json = serde_json::to_string(&entry).unwrap();
        let cut = json
            .find(",\"draco_dag_checks_per_sec\"")
            .expect("dag keys serialize");
        let old: HistoryEntry = serde_json::from_str(&format!("{}}}", &json[..cut])).unwrap();
        assert_eq!(old.draco_dag_checks_per_sec, 0.0);
        assert_eq!(old.draco_dag_speedup_vs_interp, 0.0);
    }

    #[test]
    fn entry_carries_service_rates_and_tolerates_their_absence() {
        let report = tiny_report();
        let entry = HistoryEntry::from_report(&report);
        assert!(
            entry.draco_service_checks_per_sec > 0.0,
            "v8 reports populate the service rate"
        );
        assert!(entry.draco_service_p99_latency_ns > 0.0);
        // Entries appended before schema v8 lack the service keys;
        // truncating the serialized line at the first of them yields a
        // faithful pre-v8 entry.
        let json = serde_json::to_string(&entry).unwrap();
        let cut = json
            .find(",\"draco_service_checks_per_sec\"")
            .expect("service keys serialize");
        let old: HistoryEntry = serde_json::from_str(&format!("{}}}", &json[..cut])).unwrap();
        assert_eq!(old.draco_service_checks_per_sec, 0.0);
        assert_eq!(old.draco_service_p99_latency_ns, 0.0);
    }

    #[test]
    fn mixed_version_history_compares_without_loss() {
        // A real history mixes entries appended by v3/v4 builds (no
        // shared/batch keys) with v5 entries. The gate must consider all
        // of them — no panic, no silent skip of old lines.
        let report = tiny_report();
        let current = HistoryEntry::from_report(&report);
        let v5_line = serde_json::to_string(&current).unwrap();
        let pre_v5 = {
            let cut = v5_line.find(",\"draco_batch_single_checks_per_sec\"").unwrap();
            format!("{}}}", &v5_line[..cut])
        };
        let pre_v4 = {
            let cut = v5_line.find(",\"draco_shared_multi_checks_per_sec\"").unwrap();
            format!("{}}}", &v5_line[..cut])
        };
        let dir = std::env::temp_dir().join("draco-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("history-mixed-{}.jsonl", std::process::id()));
        std::fs::write(&path, format!("{pre_v4}\n{pre_v5}\n{v5_line}\n")).unwrap();
        let history = load_history(&path).unwrap();
        assert_eq!(history.len(), 3, "every version of the entry loads");
        let outcome = compare(&history, &report, DEFAULT_THRESHOLD_PCT);
        assert_eq!(outcome.baselines_considered, 3);
        assert!(!outcome.regressed, "{outcome}");
        std::fs::remove_file(&path).unwrap();
    }

    /// Regression test for the non-atomic append: the old implementation
    /// wrote the JSON and the trailing newline as two syscalls with no
    /// lock, so concurrent appenders could interleave and corrupt both
    /// lines. Hammer the file from many threads and require every line
    /// to parse back intact.
    #[test]
    fn concurrent_appends_never_tear_lines() {
        let report = tiny_report();
        let dir = std::env::temp_dir().join("draco-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("history-race-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        const WRITERS: usize = 8;
        const APPENDS_EACH: u64 = 16;
        std::thread::scope(|scope| {
            for writer in 0..WRITERS {
                let path = &path;
                let report = &report;
                scope.spawn(move || {
                    for i in 0..APPENDS_EACH {
                        let mut entry = HistoryEntry::from_report(report);
                        // Tag each line so loss would also be detectable.
                        entry.ops_per_shard = (writer as u64) * APPENDS_EACH + i;
                        append_history(path, &entry).unwrap();
                    }
                });
            }
        });

        // Every appended line must parse; none may be torn or lost.
        let raw = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = raw.lines().collect();
        assert_eq!(lines.len(), WRITERS * APPENDS_EACH as usize);
        let mut tags: Vec<u64> = lines
            .iter()
            .map(|line| {
                serde_json::from_str::<HistoryEntry>(line)
                    .unwrap_or_else(|err| panic!("torn line {line:?}: {err}"))
                    .ops_per_shard
            })
            .collect();
        tags.sort_unstable();
        let expected: Vec<u64> = (0..WRITERS as u64 * APPENDS_EACH).collect();
        assert_eq!(tags, expected, "no append may be lost");
        assert!(
            !std::path::Path::new(&format!("{}.lock", path.display())).exists(),
            "the sidecar lock is released after every append"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_sidecar_locks_are_stolen() {
        let dir = std::env::temp_dir().join("draco-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("history-stale-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let lock_path = PathBuf::from(format!("{}.lock", path.display()));
        // Simulate a crashed writer that left its lock behind.
        std::fs::write(&lock_path, b"dead").unwrap();
        let report = tiny_report();
        let entry = HistoryEntry::from_report(&report);
        append_history(&path, &entry).unwrap();
        assert_eq!(load_history(&path).unwrap(), vec![entry]);
        assert!(!lock_path.exists());
        std::fs::remove_file(&path).unwrap();
    }
}
