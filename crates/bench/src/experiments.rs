//! One driver per paper figure/table (see `DESIGN.md` §4).

use draco::profiles::{
    docker_default, firecracker, gvisor_default, FilterLayout, ProfileKind,
    ProfileSpec, ProfileStats,
};
use draco::sim::{energy, DracoHwCore, SimConfig};
use draco::syscalls::SyscallTable;
use draco::workloads::{
    catalog, timing, LocalityReport, SyscallTrace, TraceGenerator, WorkloadClass, WorkloadSpec,
};

use crate::geomean;

/// Short configuration label for table columns.
fn short(kind: ProfileKind) -> &'static str {
    match kind {
        ProfileKind::SyscallNoargs => "noargs",
        ProfileKind::SyscallComplete => "complete",
        ProfileKind::SyscallComplete2x => "complete-2x",
    }
}

/// Shared experiment parameters.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Trace length per workload.
    pub ops: usize,
    /// Warm-up prefix excluded from measurement.
    pub warmup: usize,
    /// Trace seed.
    pub seed: u64,
    /// Kernel cost model for the software figures.
    pub model: timing::KernelCostModel,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            ops: crate::DEFAULT_OPS,
            warmup: crate::DEFAULT_WARMUP,
            seed: crate::DEFAULT_SEED,
            model: timing::KernelCostModel::ubuntu_18_04(),
        }
    }
}

impl RunConfig {
    fn trace(&self, spec: &WorkloadSpec) -> SyscallTrace {
        TraceGenerator::new(spec, self.seed).generate(self.ops)
    }
}

/// One workload's normalized execution times under several
/// configurations.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Workload label.
    pub workload: String,
    /// Macro or micro.
    pub class: WorkloadClass,
    /// `(configuration label, time normalized to insecure)` pairs.
    pub values: Vec<(String, f64)>,
}

/// Appends the macro/micro geomean rows the paper quotes in its abstract.
pub fn append_averages(rows: &mut Vec<OverheadRow>) {
    for (label, class) in [
        ("average-macro", WorkloadClass::Macro),
        ("average-micro", WorkloadClass::Micro),
    ] {
        let group: Vec<&OverheadRow> = rows.iter().filter(|r| r.class == class).collect();
        if group.is_empty() {
            continue;
        }
        let labels: Vec<String> = group[0].values.iter().map(|(l, _)| l.clone()).collect();
        let values = labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let vals: Vec<f64> = group.iter().map(|r| r.values[i].1).collect();
                (l.clone(), geomean(&vals))
            })
            .collect();
        rows.push(OverheadRow {
            workload: label.to_owned(),
            class,
            values,
        });
    }
}

fn seccomp_normalized(
    trace: &SyscallTrace,
    profile: &ProfileSpec,
    cfg: &RunConfig,
) -> f64 {
    let measured = trace.skip(cfg.warmup);
    let base = timing::run_insecure(&measured, &cfg.model);
    timing::run_seccomp(&measured, profile, &cfg.model)
        .expect("seccomp run")
        .normalized_to(&base)
}

fn draco_sw_normalized(trace: &SyscallTrace, profile: &ProfileSpec, cfg: &RunConfig) -> f64 {
    let measured = trace.skip(cfg.warmup);
    let base = timing::run_insecure(&measured, &cfg.model);
    timing::run_draco_sw_with_warmup(trace, profile, &cfg.model, cfg.warmup)
        .expect("draco run")
        .normalized_to(&base)
}

/// Fig. 2 — Seccomp overhead under the five §IV-A profiles.
pub fn fig2(cfg: &RunConfig) -> Vec<OverheadRow> {
    let docker = docker_default();
    let mut rows = Vec::new();
    for spec in catalog::all() {
        let trace = cfg.trace(&spec);
        let noargs = timing::profile_for_trace(&trace, ProfileKind::SyscallNoargs);
        let complete = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let complete2x = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete2x);
        rows.push(OverheadRow {
            workload: spec.name.to_owned(),
            class: spec.class,
            values: vec![
                ("insecure".into(), 1.0),
                ("docker-default".into(), seccomp_normalized(&trace, &docker, cfg)),
                ("syscall-noargs".into(), seccomp_normalized(&trace, &noargs, cfg)),
                (
                    "syscall-complete".into(),
                    seccomp_normalized(&trace, &complete, cfg),
                ),
                (
                    "syscall-complete-2x".into(),
                    seccomp_normalized(&trace, &complete2x, cfg),
                ),
            ],
        });
    }
    append_averages(&mut rows);
    rows
}

/// Fig. 11 — software Draco vs Seccomp under the application-specific
/// profiles.
pub fn fig11(cfg: &RunConfig) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for spec in catalog::all() {
        let trace = cfg.trace(&spec);
        let mut values = vec![];
        for kind in [
            ProfileKind::SyscallNoargs,
            ProfileKind::SyscallComplete,
            ProfileKind::SyscallComplete2x,
        ] {
            let profile = timing::profile_for_trace(&trace, kind);
            values.push((
                format!("{}(seccomp)", short(kind)),
                seccomp_normalized(&trace, &profile, cfg),
            ));
            values.push((
                format!("{}(draco-sw)", short(kind)),
                draco_sw_normalized(&trace, &profile, cfg),
            ));
        }
        rows.push(OverheadRow {
            workload: spec.name.to_owned(),
            class: spec.class,
            values,
        });
    }
    append_averages(&mut rows);
    rows
}

/// Fig. 12 — hardware Draco normalized execution time.
pub fn fig12(cfg: &RunConfig) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for spec in catalog::all() {
        let trace = cfg.trace(&spec);
        let mut values = vec![("insecure".into(), 1.0)];
        for kind in [
            ProfileKind::SyscallNoargs,
            ProfileKind::SyscallComplete,
            ProfileKind::SyscallComplete2x,
        ] {
            let profile = timing::profile_for_trace(&trace, kind);
            let mut core =
                DracoHwCore::new(SimConfig::table_ii(), &profile).expect("core builds");
            let report = core.run_measured(&trace, cfg.warmup);
            values.push((
                format!("{}(draco-hw)", short(kind)),
                report.normalized_overhead(),
            ));
        }
        rows.push(OverheadRow {
            workload: spec.name.to_owned(),
            class: spec.class,
            values,
        });
    }
    append_averages(&mut rows);
    rows
}

/// Fig. 16 (appendix) — Fig. 2 rerun under the CentOS 7.6 / Linux 3.10
/// cost model, without the `-2x` profiles.
pub fn fig16(cfg: &RunConfig) -> Vec<OverheadRow> {
    let old = RunConfig {
        model: timing::KernelCostModel::centos_7_linux_3_10(),
        ..cfg.clone()
    };
    let docker = docker_default();
    let mut rows = Vec::new();
    for spec in catalog::all() {
        let trace = old.trace(&spec);
        let noargs = timing::profile_for_trace(&trace, ProfileKind::SyscallNoargs);
        let complete = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        rows.push(OverheadRow {
            workload: spec.name.to_owned(),
            class: spec.class,
            values: vec![
                ("insecure".into(), 1.0),
                (
                    "docker-default".into(),
                    seccomp_normalized(&trace, &docker, &old),
                ),
                (
                    "syscall-noargs".into(),
                    seccomp_normalized(&trace, &noargs, &old),
                ),
                (
                    "syscall-complete".into(),
                    seccomp_normalized(&trace, &complete, &old),
                ),
            ],
        });
    }
    append_averages(&mut rows);
    rows
}

/// Fig. 17 (appendix) — Fig. 11 rerun under the old-kernel cost model,
/// without the `-2x` profiles.
pub fn fig17(cfg: &RunConfig) -> Vec<OverheadRow> {
    let old = RunConfig {
        model: timing::KernelCostModel::centos_7_linux_3_10(),
        ..cfg.clone()
    };
    let mut rows = Vec::new();
    for spec in catalog::all() {
        let trace = old.trace(&spec);
        let mut values = vec![];
        for kind in [ProfileKind::SyscallNoargs, ProfileKind::SyscallComplete] {
            let profile = timing::profile_for_trace(&trace, kind);
            values.push((
                format!("{}(seccomp)", short(kind)),
                seccomp_normalized(&trace, &profile, &old),
            ));
            values.push((
                format!("{}(draco-sw)", short(kind)),
                draco_sw_normalized(&trace, &profile, &old),
            ));
        }
        rows.push(OverheadRow {
            workload: spec.name.to_owned(),
            class: spec.class,
            values,
        });
    }
    append_averages(&mut rows);
    rows
}

/// Fig. 3 — locality of the merged macro-benchmark stream.
pub fn fig3(cfg: &RunConfig) -> LocalityReport {
    let traces: Vec<SyscallTrace> = catalog::macro_benchmarks()
        .iter()
        .map(|w| TraceGenerator::new(w, cfg.seed).generate(cfg.ops))
        .collect();
    LocalityReport::analyze_merged(&traces)
}

/// One workload's hit rates (Fig. 13).
#[derive(Clone, Debug)]
pub struct Fig13Row {
    /// Workload label.
    pub workload: String,
    /// STB hit rate.
    pub stb: f64,
    /// SLB access hit rate.
    pub slb_access: f64,
    /// SLB preload hit rate.
    pub slb_preload: f64,
}

/// Fig. 13 — STB and SLB hit rates under `syscall-complete`.
pub fn fig13(cfg: &RunConfig) -> Vec<Fig13Row> {
    catalog::all()
        .iter()
        .map(|spec| {
            let trace = cfg.trace(spec);
            let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
            let mut core =
                DracoHwCore::new(SimConfig::table_ii(), &profile).expect("core builds");
            let report = core.run_measured(&trace, cfg.warmup);
            Fig13Row {
                workload: spec.name.to_owned(),
                stb: report.stb_hit_rate,
                slb_access: report.slb_access_hit_rate,
                slb_preload: report.slb_preload_hit_rate,
            }
        })
        .collect()
}

/// Fig. 14 — distribution of checkable argument counts: the Linux
/// interface plus the per-workload call-weighted distributions.
pub fn fig14(cfg: &RunConfig) -> Vec<(String, [f64; 7])> {
    let mut rows = Vec::new();
    let table = SyscallTable::shared();
    let dist = table.arg_count_distribution();
    let total: usize = dist.iter().sum();
    let mut linux = [0.0; 7];
    for (slot, count) in linux.iter_mut().zip(dist) {
        *slot = count as f64 / total as f64;
    }
    rows.push(("linux".to_owned(), linux));
    for spec in catalog::all() {
        let trace = cfg.trace(&spec);
        let report = LocalityReport::analyze(&trace);
        let mut fractions = [0.0; 7];
        for (n, slot) in fractions.iter_mut().enumerate() {
            *slot = report.arg_count_fraction(n);
        }
        rows.push((spec.name.to_owned(), fractions));
    }
    rows
}

/// One profile's security statistics (Fig. 15).
#[derive(Clone, Debug)]
pub struct Fig15Row {
    /// Profile label.
    pub name: String,
    /// The statistics.
    pub stats: ProfileStats,
}

/// Fig. 15 — security statistics: the Linux interface, the published
/// profiles, and every workload's `syscall-complete` profile.
pub fn fig15(cfg: &RunConfig) -> Vec<Fig15Row> {
    let mut rows = vec![Fig15Row {
        name: "linux".into(),
        stats: ProfileStats {
            allowed_syscalls: SyscallTable::shared().len(),
            ..Default::default()
        },
    }];
    for profile in [docker_default(), gvisor_default(), firecracker()] {
        rows.push(Fig15Row {
            name: profile.name().to_owned(),
            stats: ProfileStats::for_profile(&profile),
        });
    }
    for spec in catalog::all() {
        let trace = cfg.trace(&spec);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        rows.push(Fig15Row {
            name: spec.name.to_owned(),
            stats: ProfileStats::for_profile(&profile),
        });
    }
    rows
}

/// One execution flow's observed behaviour (Table I).
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Flow label.
    pub flow: &'static str,
    /// STB access outcome.
    pub stb: &'static str,
    /// SLB preload outcome.
    pub preload: &'static str,
    /// SLB access outcome.
    pub access: &'static str,
    /// Table I's classification.
    pub speed: &'static str,
    /// Occurrences in the measured run.
    pub count: u64,
    /// Mean check cycles measured for this flow (`NaN` if absent).
    pub mean_cycles: f64,
}

/// Table I — flow occupancy of one representative workload run.
pub fn table1(cfg: &RunConfig) -> Vec<Table1Row> {
    let spec = catalog::by_name("elasticsearch").expect("in catalog");
    let trace = cfg.trace(&spec);
    let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
    let mut core = DracoHwCore::new(SimConfig::table_ii(), &profile).expect("core builds");
    let report = core.run_measured(&trace, cfg.warmup);
    use draco::sim::Flow;
    let meta: [(&str, &str, &str, &str, &str, Flow); 8] = [
        ("spt-only", "-", "-", "-", "fast", Flow::SptOnly),
        ("1", "hit", "hit", "hit", "fast", Flow::F1),
        ("2", "hit", "hit", "miss", "slow", Flow::F2),
        ("3", "hit", "miss", "hit", "fast", Flow::F3),
        ("4", "hit", "miss", "miss", "slow", Flow::F4),
        ("5", "miss", "n/a", "hit", "fast", Flow::F5),
        ("6", "miss", "n/a", "miss", "slow", Flow::F6),
        ("fallback", "-", "-", "miss", "slowest", Flow::Fallback),
    ];
    meta.into_iter()
        .map(|(flow, stb, preload, access, speed, f)| Table1Row {
            flow,
            stb,
            preload,
            access,
            speed,
            count: report.flows.count(f),
            mean_cycles: report.mean_cycles_for(f),
        })
        .collect()
}

/// Table II — the architectural configuration as `(parameter, value)`
/// pairs.
pub fn table2() -> Vec<(String, String)> {
    let c = SimConfig::table_ii();
    vec![
        ("cores".into(), "10 OOO (per-core Draco structures)".into()),
        ("frequency".into(), format!("{} GHz", c.freq_ghz)),
        ("rob".into(), format!("{}-entry", c.rob_entries)),
        (
            "l1".into(),
            format!("{} KB, {}-way, {} cycles", c.l1.size_bytes / 1024, c.l1.ways, c.l1.latency_cycles),
        ),
        (
            "l2".into(),
            format!("{} KB, {}-way, {} cycles", c.l2.size_bytes / 1024, c.l2.ways, c.l2.latency_cycles),
        ),
        (
            "l3".into(),
            format!("{} MB, {}-way, {} cycles", c.l3.size_bytes / (1024 * 1024), c.l3.ways, c.l3.latency_cycles),
        ),
        ("dram".into(), format!("{} cycles", c.dram_cycles)),
        ("stb".into(), format!("{} entries, {}-way, {} cycles", c.stb_entries, c.stb_ways, c.draco_struct_cycles)),
        (
            "slb".into(),
            format!(
                "1-6 args: {:?} entries, 4-way, {} cycles",
                c.slb.iter().map(|s| s.entries).collect::<Vec<_>>(),
                c.draco_struct_cycles
            ),
        ),
        ("temporary buffer".into(), format!("{} entries", c.temp_buffer_entries)),
        ("spt".into(), format!("{} entries, direct-mapped", c.spt_entries)),
        ("crc hash".into(), format!("{} cycles", c.crc_cycles)),
    ]
}

/// Table III — the published area/time/energy constants.
pub fn table3() -> Vec<energy::UnitCosts> {
    energy::ALL_UNITS.to_vec()
}

/// Per-workload VAT footprint (§XI-C; paper geomean 6.98 KB).
pub fn vat_footprints(cfg: &RunConfig) -> (Vec<(String, f64)>, f64) {
    let mut rows = Vec::new();
    for spec in catalog::all() {
        let trace = cfg.trace(&spec);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let mut checker = draco::core::DracoChecker::from_profile(&profile).expect("checker");
        for req in trace.requests() {
            checker.check(&req);
        }
        rows.push((
            spec.name.to_owned(),
            checker.vat().footprint_bytes() as f64 / 1024.0,
        ));
    }
    let gm = geomean(&rows.iter().map(|(_, v)| *v).collect::<Vec<_>>());
    (rows, gm)
}

/// §XII ablation — linear vs binary-tree filter layout.
pub fn ablate_tree(cfg: &RunConfig) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for spec in catalog::all() {
        let trace = cfg.trace(&spec);
        let measured = trace.skip(cfg.warmup);
        let base = timing::run_insecure(&measured, &cfg.model);
        let mut values = Vec::new();
        for kind in [ProfileKind::SyscallNoargs, ProfileKind::SyscallComplete] {
            let profile = timing::profile_for_trace(&trace, kind);
            for layout in [FilterLayout::Linear, FilterLayout::BinaryTree] {
                let label = format!(
                    "{}({})",
                    short(kind),
                    match layout {
                        FilterLayout::Linear => "linear",
                        FilterLayout::BinaryTree => "tree",
                    }
                );
                let r = timing::run_seccomp_layout(&measured, &profile, &cfg.model, layout)
                    .expect("runs");
                values.push((label, r.normalized_to(&base)));
            }
        }
        rows.push(OverheadRow {
            workload: spec.name.to_owned(),
            class: spec.class,
            values,
        });
    }
    append_averages(&mut rows);
    rows
}

/// Filter-optimizer ablation (software-only alternative to Draco): the
/// peephole pass vs raw codegen vs software Draco, under
/// `syscall-complete`.
pub fn ablate_opt(cfg: &RunConfig) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for spec in catalog::all() {
        let trace = cfg.trace(&spec);
        let measured = trace.skip(cfg.warmup);
        let base = timing::run_insecure(&measured, &cfg.model);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let raw = timing::run_seccomp_layout_opt(
            &measured, &profile, &cfg.model, FilterLayout::Linear, false,
        )
        .expect("runs");
        let opt = timing::run_seccomp_layout_opt(
            &measured, &profile, &cfg.model, FilterLayout::Linear, true,
        )
        .expect("runs");
        let draco = timing::run_draco_sw_with_warmup(&trace, &profile, &cfg.model, cfg.warmup)
            .expect("runs");
        rows.push(OverheadRow {
            workload: spec.name.to_owned(),
            class: spec.class,
            values: vec![
                ("seccomp(raw)".into(), raw.normalized_to(&base)),
                ("seccomp(optimized)".into(), opt.normalized_to(&base)),
                ("draco-sw".into(), draco.normalized_to(&base)),
            ],
        });
    }
    append_averages(&mut rows);
    rows
}

/// SMT ablation: dedicated cores vs time-sharing (invalidate per swap)
/// vs SMT co-run (partitioned structures, §VII-B). Returns
/// `(pair, check_cycles_dedicated, check_cycles_timeshared,
/// check_cycles_smt)`.
pub fn ablate_smt(cfg: &RunConfig) -> Vec<(String, u64, u64, u64)> {
    use draco::sim::{Job, Machine};
    let mut rows = Vec::new();
    for pair in [["pipe", "fifo"], ["httpd", "nginx"]] {
        let jobs: Vec<Job> = pair
            .iter()
            .map(|name| {
                let spec = catalog::by_name(name).expect("in catalog");
                let trace = TraceGenerator::new(&spec, cfg.seed).generate(cfg.ops);
                let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
                Job {
                    name: (*name).to_owned(),
                    profile,
                    trace,
                }
            })
            .collect();
        let mut config = SimConfig::table_ii();
        config.ctx_quantum_cycles = 0;
        let machine = Machine::new(config, jobs);
        let check = |r: &draco::sim::MachineReport| -> u64 {
            r.jobs.iter().map(|(_, x)| x.check_cycles).sum()
        };
        let dedicated = check(&machine.run_dedicated(0).expect("runs"));
        let timeshared = check(&machine.run_timeshared(200).expect("runs"));
        let smt = check(&machine.run_smt(200).expect("runs"));
        rows.push((pair.join("+"), dedicated, timeshared, smt));
    }
    rows
}

/// Rule-ordering ablation: number-ordered vs first-observed vs
/// profile-guided (hottest-first) linear chains.
pub fn ablate_order(cfg: &RunConfig) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for spec in catalog::all() {
        let trace = cfg.trace(&spec);
        let measured = trace.skip(cfg.warmup);
        let base = timing::run_insecure(&measured, &cfg.model);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        // Observation order (the toolkit default).
        let observed = profile.clone();
        // Hottest-first, guided by the trace's own locality.
        let report = LocalityReport::analyze(&trace);
        let guided = profile.with_priority_order(&report.hottest_first());
        // Syscall-number order (a BTreeMap-style compiler).
        let mut by_nr: Vec<_> = profile.rules().map(|(id, _)| id).collect();
        by_nr.sort_unstable();
        let numeric = profile.with_priority_order(&by_nr);
        let mut values = Vec::new();
        for (label, p) in [
            ("by-number", &numeric),
            ("first-observed", &observed),
            ("hottest-first", &guided),
        ] {
            let r = timing::run_seccomp(&measured, p, &cfg.model).expect("runs");
            values.push((label.to_owned(), r.normalized_to(&base)));
        }
        rows.push(OverheadRow {
            workload: spec.name.to_owned(),
            class: spec.class,
            values,
        });
    }
    append_averages(&mut rows);
    rows
}

/// One SLB-sizing point: `(downscale factor, access hit rate, overhead)`.
pub type SlbPoint = (usize, f64, f64);

/// SLB-sizing ablation: scale every subtable and watch hit rates and
/// overhead move.
pub fn ablate_slb(cfg: &RunConfig) -> Vec<(String, Vec<SlbPoint>)> {
    let mut rows = Vec::new();
    for name in ["httpd", "elasticsearch", "redis"] {
        let spec = catalog::by_name(name).expect("in catalog");
        let trace = cfg.trace(&spec);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let mut points = Vec::new();
        for scale in [4usize, 2, 1] {
            let mut config = SimConfig::table_ii();
            for s in &mut config.slb {
                s.entries = (s.entries / scale).max(s.ways);
            }
            let mut core = DracoHwCore::new(config, &profile).expect("core builds");
            let report = core.run_measured(&trace, cfg.warmup);
            points.push((
                scale,
                report.slb_access_hit_rate,
                report.normalized_overhead(),
            ));
        }
        rows.push((name.to_owned(), points));
    }
    rows
}

/// Context-switch ablation (§VII-B): quantum sweep with the Accessed-bit
/// SPT save/restore on and off. Returns
/// `(workload, quantum_us, fallbacks_with, fallbacks_without,
/// check_cycles_with, check_cycles_without)`.
pub fn ablate_ctx(cfg: &RunConfig) -> Vec<(String, u64, u64, u64, u64, u64)> {
    let mut rows = Vec::new();
    for name in ["httpd", "unixbench-syscall"] {
        let spec = catalog::by_name(name).expect("in catalog");
        let trace = cfg.trace(&spec);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallNoargs);
        for quantum_us in [100u64, 500, 4000] {
            let run = |save_restore: bool| {
                let mut config = SimConfig::table_ii();
                config.ctx_quantum_cycles = quantum_us * 2_000; // 2 GHz
                config.spt_save_restore = save_restore;
                let mut core = DracoHwCore::new(config, &profile).expect("core builds");
                core.run_measured(&trace, cfg.warmup)
            };
            let with = run(true);
            let without = run(false);
            rows.push((
                name.to_owned(),
                quantum_us,
                with.filter_runs,
                without.filter_runs,
                with.check_cycles,
                without.check_cycles,
            ));
        }
    }
    rows
}

/// Microarchitecture ablation: the full §VI design vs preloading
/// disabled (flows 5/6 only) vs the §V-D initial design (no SLB at all).
/// Returns `(workload, check_cycles_full, check_cycles_no_preload,
/// check_cycles_initial)`.
pub fn ablate_preload(cfg: &RunConfig) -> Vec<(String, u64, u64, u64)> {
    let mut rows = Vec::new();
    for name in ["nginx", "mysql", "cassandra"] {
        let spec = catalog::by_name(name).expect("in catalog");
        let trace = cfg.trace(&spec);
        let profile = timing::profile_for_trace(&trace, ProfileKind::SyscallComplete);
        let run = |preload: bool, slb: bool| {
            let mut config = SimConfig::table_ii();
            config.preload_enabled = preload;
            config.slb_enabled = slb;
            let mut core = DracoHwCore::new(config, &profile).expect("core builds");
            core.run_measured(&trace, cfg.warmup)
        };
        let full = run(true, true);
        let no_preload = run(false, true);
        let initial = run(false, false);
        rows.push((
            name.to_owned(),
            full.check_cycles,
            no_preload.check_cycles,
            initial.check_cycles,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RunConfig {
        RunConfig {
            ops: 6_000,
            warmup: 2_000,
            seed: 1,
            model: timing::KernelCostModel::ubuntu_18_04(),
        }
    }

    #[test]
    fn fig2_has_paper_shape() {
        let rows = fig2(&small());
        assert_eq!(rows.len(), 17, "15 workloads + 2 averages");
        let avg = |label: &str, idx: usize| {
            rows.iter()
                .find(|r| r.workload == label)
                .map(|r| r.values[idx].1)
                .unwrap()
        };
        // Ordering within each class: insecure < noargs ≤ complete < 2x.
        for class in ["average-macro", "average-micro"] {
            let noargs = avg(class, 2);
            let complete = avg(class, 3);
            let twox = avg(class, 4);
            assert!(noargs > 1.0, "{class} noargs {noargs}");
            assert!(complete > noargs, "{class}");
            assert!(twox > complete, "{class}");
        }
        // Micro overheads exceed macro.
        assert!(avg("average-micro", 3) > avg("average-macro", 3));
    }

    #[test]
    fn fig11_draco_beats_seccomp() {
        let rows = fig11(&small());
        let avg_micro = rows.iter().find(|r| r.workload == "average-micro").unwrap();
        // values: [noargs(seccomp), noargs(draco), complete(seccomp),
        // complete(draco), 2x(seccomp), 2x(draco)]
        assert!(avg_micro.values[3].1 < avg_micro.values[2].1, "complete");
        assert!(avg_micro.values[5].1 < avg_micro.values[4].1, "2x");
        // Draco absorbs 2x: its overhead grows much less than Seccomp's.
        let seccomp_growth = avg_micro.values[4].1 - avg_micro.values[2].1;
        let draco_growth = avg_micro.values[5].1 - avg_micro.values[3].1;
        assert!(draco_growth < seccomp_growth * 0.6);
    }

    #[test]
    fn fig12_hw_is_within_one_percent() {
        let rows = fig12(&small());
        for row in &rows {
            for (label, v) in &row.values {
                assert!(*v < 1.02, "{}/{label}: {v}", row.workload);
            }
        }
    }

    #[test]
    fn fig13_rates_are_sane() {
        let rows = fig13(&small());
        assert_eq!(rows.len(), 15);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.stb), "{}", r.workload);
            assert!(r.stb > 0.5, "{} stb {}", r.workload, r.stb);
        }
    }

    #[test]
    fn fig15_matches_paper_counts() {
        let rows = fig15(&small());
        assert_eq!(rows[0].stats.allowed_syscalls, 403);
        assert_eq!(rows[1].stats.allowed_syscalls, 358);
        assert_eq!(rows[2].stats.allowed_syscalls, 74);
        assert_eq!(rows[3].stats.allowed_syscalls, 37);
    }

    #[test]
    fn table1_counts_cover_flows() {
        let rows = table1(&small());
        assert_eq!(rows.len(), 8);
        let total: u64 = rows.iter().map(|r| r.count).sum();
        assert_eq!(total as usize, 6_000 - 2_000);
    }

    #[test]
    fn microarch_ablation_full_design_wins() {
        // §V-D initial design (no SLB) ≫ no-preload ≥ full §VI design.
        // Needs enough steady state for the per-call difference to
        // dominate the (design-independent) warm-up fallbacks.
        let rows = ablate_preload(&RunConfig {
            ops: 16_000,
            warmup: 6_000,
            seed: 1,
            model: timing::KernelCostModel::ubuntu_18_04(),
        });
        for (name, full, no_preload, initial) in &rows {
            assert!(full <= no_preload, "{name}: {full} vs {no_preload}");
            assert!(no_preload <= initial, "{name}: {no_preload} vs {initial}");
            // At this small test scale warm-up fallbacks (identical in
            // all designs) dominate the absolute cycle counts; the full
            // reference run (EXPERIMENTS.md) shows ~2x. Here we only
            // require a clear margin.
            assert!(
                *initial as f64 > 1.15 * *full as f64,
                "{name}: initial design {initial} vs full {full}"
            );
        }
    }

    #[test]
    fn optimizer_helps_but_draco_still_wins() {
        let rows = ablate_opt(&small());
        let micro = rows.iter().find(|r| r.workload == "average-micro").unwrap();
        let raw = micro.values[0].1;
        let opt = micro.values[1].1;
        let draco = micro.values[2].1;
        assert!(opt < raw, "optimizer reduces filter cost");
        assert!(draco < opt, "caching beats compiler optimization");
    }

    #[test]
    fn smt_ablation_shows_both_sides_of_the_trade() {
        let rows = ablate_smt(&small());
        for (pair, dedicated, timeshared, smt) in &rows {
            assert!(dedicated <= timeshared, "{pair}");
            assert!(dedicated <= smt, "{pair}");
        }
        // Small working sets favor SMT partitions over invalidation.
        let ipc = rows.iter().find(|r| r.0 == "pipe+fifo").unwrap();
        assert!(ipc.3 < ipc.2, "partitions beat invalidation for IPC");
    }

    #[test]
    fn order_ablation_hottest_first_wins() {
        let rows = ablate_order(&small());
        let micro = rows.iter().find(|r| r.workload == "average-micro").unwrap();
        let by_number = micro.values[0].1;
        let observed = micro.values[1].1;
        let guided = micro.values[2].1;
        assert!(guided <= observed + 1e-9, "guided {guided} vs observed {observed}");
        assert!(guided < by_number, "guided {guided} vs numeric {by_number}");
    }

    #[test]
    fn ctx_ablation_save_restore_pays_off_under_fast_switching() {
        let rows = ablate_ctx(&small());
        // At the smallest quantum, save/restore must cut fallbacks.
        let fast = rows.iter().find(|r| r.1 == 100).unwrap();
        assert!(fast.2 < fast.3, "with {} vs without {}", fast.2, fast.3);
    }

    #[test]
    fn tree_ablation_helps_but_does_not_eliminate() {
        let cfg = small();
        let rows = ablate_tree(&cfg);
        let micro = rows.iter().find(|r| r.workload == "average-micro").unwrap();
        // noargs: tree < linear; both > 1.0 (§XII: "does not
        // fundamentally address the overhead").
        assert!(micro.values[1].1 < micro.values[0].1);
        assert!(micro.values[1].1 > 1.0);
    }
}
