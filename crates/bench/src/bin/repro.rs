//! `repro` — regenerate every figure and table of the Draco paper.
//!
//! ```text
//! repro <experiment> [--ops N] [--warmup N] [--seed N] [--json]
//!
//! experiments:
//!   fig2 fig3 fig11 fig12 fig13 fig14 fig15 fig16 fig17
//!   table1 table2 table3 vat
//!   ablate-tree ablate-slb ablate-preload
//!   all
//! ```

use draco_bench::experiments::{self, OverheadRow, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        usage();
        return;
    }
    if args[0] == "throughput" {
        run_throughput_cmd(&args[1..]);
        return;
    }
    if args[0] == "compare" {
        run_compare_cmd(&args[1..]);
        return;
    }
    let mut cfg = RunConfig::default();
    let mut json = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--ops" => {
                cfg.ops = parse(&args, &mut i, "--ops");
            }
            "--warmup" => {
                cfg.warmup = parse(&args, &mut i, "--warmup");
            }
            "--seed" => {
                cfg.seed = parse(&args, &mut i, "--seed");
            }
            "--json" => json = true,
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(cfg.warmup < cfg.ops, "--warmup must be below --ops");

    let experiment = args[0].as_str();
    let known: &[&str] = &[
        "fig2", "fig3", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "table1", "table2", "table3", "vat", "ablate-tree", "ablate-order", "ablate-slb",
        "ablate-preload", "ablate-ctx", "ablate-smt", "ablate-opt",
    ];
    let selected: Vec<&str> = if experiment == "all" {
        known.to_vec()
    } else if known.contains(&experiment) {
        vec![experiment]
    } else {
        eprintln!("unknown experiment `{experiment}`");
        usage();
        std::process::exit(2);
    };

    for (n, exp) in selected.iter().enumerate() {
        if n > 0 {
            println!();
        }
        run_experiment(exp, &cfg, json);
    }
}

/// Default path of the tracked throughput history (JSONL, repo root).
const HISTORY_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_history.jsonl");

/// `repro throughput [--quick] [--ops N] [--warmup N] [--seed N]
/// [--shards N] [--batch N] [--workload W] [--out PATH] [--trace PATH]
/// [--folded PATH] [--timeseries PATH] [--sample N] [--json] [--stats]`
/// — the wall-clock harness. Always writes the JSON report. Standard
/// runs default to the
/// tracked `BENCH_throughput.json` at the repo root and append a summary
/// line to `BENCH_history.jsonl` for the `repro compare` gate; `--quick`
/// runs default to the untracked `target/BENCH_throughput.quick.json`
/// and leave the history alone. `--trace`/`--folded` run the Draco
/// multi-thread replay under a sampled span tracer and export the spans
/// as Chrome trace JSON / folded flamegraph stacks. `--timeseries`
/// writes the v7 live-replay window ring as a standalone
/// `draco-timeseries/v1` JSON document (tracked bench files are
/// unaffected). `--json` echoes the
/// report to stdout instead of the human table; `--stats` appends
/// latency quantiles and the merged metrics snapshot.
fn run_throughput_cmd(args: &[String]) {
    use draco::obs::{chrome_trace_json, folded_stacks};
    use draco::workloads::replay::TraceConfig;
    use draco_bench::history::{append_history, HistoryEntry};
    use draco_bench::throughput::{run_throughput_full, ThroughputConfig};

    let mut cfg = ThroughputConfig::standard();
    let mut json = false;
    let mut stats = false;
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut folded_out: Option<String> = None;
    let mut timeseries_out: Option<String> = None;
    let mut trace_cfg = TraceConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                let preset = ThroughputConfig::quick();
                cfg.ops_per_shard = preset.ops_per_shard;
                cfg.warmup_ops = preset.warmup_ops;
            }
            "--ops" => cfg.ops_per_shard = parse(args, &mut i, "--ops"),
            "--warmup" => cfg.warmup_ops = parse(args, &mut i, "--warmup"),
            "--seed" => cfg.seed = parse(args, &mut i, "--seed"),
            "--shards" => cfg.shards = parse(args, &mut i, "--shards"),
            "--shared-threads" => cfg.shared_threads = parse(args, &mut i, "--shared-threads"),
            "--batch" => cfg.batch = parse(args, &mut i, "--batch"),
            "--workload" => cfg.workload = parse(args, &mut i, "--workload"),
            "--out" => out = Some(parse(args, &mut i, "--out")),
            "--trace" => trace_out = Some(parse(args, &mut i, "--trace")),
            "--folded" => folded_out = Some(parse(args, &mut i, "--folded")),
            "--timeseries" => timeseries_out = Some(parse(args, &mut i, "--timeseries")),
            "--sample" => trace_cfg.sample_interval = parse(args, &mut i, "--sample"),
            "--json" => json = true,
            "--stats" => stats = true,
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(cfg.warmup_ops < cfg.ops_per_shard, "--warmup must be below --ops");
    assert!(cfg.shards > 0, "--shards must be nonzero");
    assert!(cfg.shared_threads > 0, "--shared-threads must be nonzero");
    assert!(cfg.batch > 0, "--batch must be nonzero");
    assert!(trace_cfg.sample_interval > 0, "--sample must be nonzero");

    let tracing = trace_out.is_some() || folded_out.is_some();
    let (report, spans, timeseries) =
        run_throughput_full(&cfg, tracing.then_some(&trace_cfg));
    let text = serde_json::to_string_pretty(&report).expect("report serializes")
        + "\n";
    // Quick runs are smoke tests: keep them away from the tracked
    // baseline unless the caller explicitly routes them with --out.
    let tracked = !quick && out.is_none();
    let path = out.unwrap_or_else(|| {
        if quick {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_throughput.quick.json")
                .to_owned()
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json").to_owned()
        }
    });
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    }
    std::fs::write(&path, &text)
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    let mut wrote = vec![path.clone()];
    if let Some(trace_path) = &trace_out {
        std::fs::write(trace_path, chrome_trace_json(&spans))
            .unwrap_or_else(|e| panic!("cannot write {trace_path}: {e}"));
        wrote.push(trace_path.clone());
    }
    if let Some(folded_path) = &folded_out {
        std::fs::write(folded_path, folded_stacks(&spans))
            .unwrap_or_else(|e| panic!("cannot write {folded_path}: {e}"));
        wrote.push(folded_path.clone());
    }
    if let Some(ts_path) = &timeseries_out {
        let ts_text =
            serde_json::to_string_pretty(&timeseries).expect("timeseries serializes") + "\n";
        std::fs::write(ts_path, ts_text)
            .unwrap_or_else(|e| panic!("cannot write {ts_path}: {e}"));
        wrote.push(ts_path.clone());
    }
    if tracked {
        let history = std::path::Path::new(HISTORY_PATH);
        append_history(history, &HistoryEntry::from_report(&report))
            .unwrap_or_else(|e| panic!("cannot append {}: {e}", history.display()));
        wrote.push(HISTORY_PATH.to_owned());
    }

    if json {
        print!("{text}");
        return;
    }
    println!(
        "Throughput — wall-clock checks/second ({}, {} ops/shard, {} shards)",
        report.workload, report.ops_per_shard, report.shards
    );
    println!(
        "{:<18} {:>14} {:>14} {:>9} {:>9}",
        "backend", "1-thread", "N-thread", "speedup", "hit-rate"
    );
    for b in &report.backends {
        println!(
            "{:<18} {:>14.0} {:>14.0} {:>8.2}x {:>8.1}%",
            b.backend,
            b.single_thread_checks_per_sec,
            b.multi_thread_checks_per_sec,
            b.parallel_speedup,
            b.cache_hit_rate * 100.0
        );
    }
    if let Some(b) = &report.batch {
        println!(
            "{:<18} {:>14.0} {:>14.0} {:>8.2}x {:>8.1}%  (batch={}, vs scalar single)",
            "draco-batch",
            b.single_thread_checks_per_sec,
            b.multi_thread_checks_per_sec,
            b.speedup_vs_scalar_single,
            b.cache_hit_rate * 100.0,
            b.batch
        );
    }
    if let Some(d) = &report.dag {
        println!();
        println!(
            "Filter engines, deny-heavy stream — {} checks, {:.1}% denied (no cache in front)",
            d.checks,
            d.deny_rate * 100.0
        );
        println!(
            "{:<18} {:>14} {:>12}",
            "engine", "checks/sec", "vs interp"
        );
        println!("{:<18} {:>14.0} {:>11.2}x", "interp", d.interp_checks_per_sec, 1.0);
        println!(
            "{:<18} {:>14.0} {:>11.2}x",
            "compiled",
            d.compiled_checks_per_sec,
            if d.interp_checks_per_sec > 0.0 {
                d.compiled_checks_per_sec / d.interp_checks_per_sec
            } else {
                0.0
            }
        );
        println!(
            "{:<18} {:>14.0} {:>11.2}x  ({} nodes, {}/{} entries closed)",
            "dag",
            d.dag_checks_per_sec,
            d.speedup_vs_interp,
            d.nodes,
            d.closed_entries,
            d.table_entries
        );
    }
    if let Some(ts) = &report.timeseries {
        println!();
        println!(
            "Live timeseries — {} rounds over a deny-every-{} stream ({} checks, {:.1}% denied)",
            ts.rounds,
            ts.deny_every,
            ts.checks,
            ts.deny_rate * 100.0
        );
        println!(
            "  window: {} intervals held ({} dropped); audit: {} published, {} dropped of {} denials",
            ts.intervals, ts.intervals_dropped, ts.audit_published, ts.audit_dropped, ts.denials
        );
    }
    if let Some(s) = &report.service {
        println!();
        println!(
            "Admission service (dracod) — {} tenants over {} rounds ({} forks, {} retired)",
            s.tenants, s.rounds, s.forks, s.retired
        );
        println!(
            "  {:.0} checks/s over {} checks, {:.1}% hit-rate, {:.1}% denied; reloads {} ok / {} refused",
            s.checks_per_sec,
            s.checks,
            s.cache_hit_rate * 100.0,
            s.deny_rate * 100.0,
            s.reloads_permitted,
            s.reloads_refused
        );
        println!(
            "  latency p50/p95/p99: {}/{}/{} ns; audit: {} published, {} dropped of {} denials",
            s.p50_latency_ns,
            s.p95_latency_ns,
            s.p99_latency_ns,
            s.audit_published,
            s.audit_dropped,
            s.denials
        );
    }
    if !report.shared_threads.is_empty() {
        println!();
        println!(
            "Thread-shared process — one SPT/VAT, {} worker threads (lock-free reads)",
            report.shared_threads[0].threads
        );
        println!(
            "{:<10} {:>14} {:>14} {:>9} {:>9} {:>24}",
            "key mix", "1-worker", "N-worker", "scaling", "hit-rate", "retries/waits/races"
        );
        for s in &report.shared_threads {
            println!(
                "{:<10} {:>14.0} {:>14.0} {:>8.2}x {:>8.1}% {:>24}",
                s.mix,
                s.single_thread_checks_per_sec,
                s.multi_thread_checks_per_sec,
                s.scaling,
                s.cache_hit_rate * 100.0,
                format!(
                    "{}/{}/{}",
                    s.seqlock_retries, s.lock_waits, s.insert_races_lost
                )
            );
        }
    }
    if tracing {
        println!("traced {} spans from the draco-sw multi-thread run", spans.len());
    }
    if stats {
        println!();
        println!("sampled check latency, multi-thread (ns):");
        for b in &report.backends {
            println!("  {:<18} {}", b.backend, b.check_latency_ns.quantile_summary());
        }
        println!();
        println!("{}", report.metrics);
    }
    for p in &wrote {
        println!("wrote {p}");
    }
}

/// `repro compare [--report PATH] [--history PATH] [--threshold-pct P]
/// [--warn-only]` — the throughput regression gate. Compares the
/// report's draco-sw single-thread rate against the best comparable
/// entry in the history; exits 1 on a regression beyond the threshold
/// unless `--warn-only` (the CI mode — shared runners are too noisy for
/// a hard gate).
fn run_compare_cmd(args: &[String]) {
    use draco_bench::history::{compare, load_history, DEFAULT_THRESHOLD_PCT};
    use draco_bench::throughput::ThroughputReport;

    let mut report_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json").to_owned();
    let mut history_path = HISTORY_PATH.to_owned();
    let mut threshold_pct = DEFAULT_THRESHOLD_PCT;
    let mut warn_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--report" => report_path = parse(args, &mut i, "--report"),
            "--history" => history_path = parse(args, &mut i, "--history"),
            "--threshold-pct" => threshold_pct = parse(args, &mut i, "--threshold-pct"),
            "--warn-only" => warn_only = true,
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(threshold_pct >= 0.0, "--threshold-pct must be non-negative");

    let text = std::fs::read_to_string(&report_path)
        .unwrap_or_else(|e| panic!("cannot read {report_path}: {e}"));
    let report: ThroughputReport = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{report_path} is not a throughput report: {e}"));
    let history = load_history(std::path::Path::new(&history_path))
        .unwrap_or_else(|e| panic!("cannot read {history_path}: {e}"));
    let outcome = compare(&history, &report, threshold_pct);
    println!("{outcome}");
    if outcome.regressed {
        if warn_only {
            println!("regression beyond threshold (warn-only mode, not failing)");
        } else {
            eprintln!("FAIL: throughput regressed beyond {threshold_pct}%");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a numeric value");
            std::process::exit(2);
        })
}

fn usage() {
    println!(
        "repro — regenerate the Draco paper's figures and tables\n\n\
         usage: repro <experiment> [--ops N] [--warmup N] [--seed N] [--json]\n\n\
         experiments:\n\
         \x20 fig2          Seccomp overhead per profile (paper Fig. 2)\n\
         \x20 fig3          system call locality (Fig. 3)\n\
         \x20 fig11         software Draco vs Seccomp (Fig. 11)\n\
         \x20 fig12         hardware Draco overhead (Fig. 12)\n\
         \x20 fig13         STB/SLB hit rates (Fig. 13)\n\
         \x20 fig14         #arguments per syscall (Fig. 14)\n\
         \x20 fig15         profile security statistics (Fig. 15)\n\
         \x20 fig16, fig17  appendix reruns on the old-kernel model\n\
         \x20 table1        execution-flow occupancy (Table I)\n\
         \x20 table2        architectural configuration (Table II)\n\
         \x20 table3        area/time/energy constants (Table III)\n\
         \x20 vat           VAT memory footprints (§XI-C)\n\
         \x20 ablate-tree   linear vs binary-tree filters (§XII)\n\
         \x20 ablate-order  filter-chain rule ordering\n\
         \x20 ablate-slb    SLB sizing sweep\n\
         \x20 ablate-preload  STB-driven preloading on/off\n\
         \x20 ablate-ctx    context-switch quantum + SPT save/restore\n\
         \x20 ablate-smt    dedicated vs time-shared vs SMT co-run\n\
         \x20 ablate-opt    peephole-optimized filters vs raw vs draco-sw\n\
         \x20 all           everything above\n\
         \x20 throughput    wall-clock checks/sec per backend, 1 and N threads,\n\
         \x20               plus the dracod multi-tenant service churn section\n\
         \x20               (writes BENCH_throughput.json and appends to\n\
         \x20               BENCH_history.jsonl; --quick writes the untracked\n\
         \x20               target/BENCH_throughput.quick.json; flags: --shards N\n\
         \x20               --shared-threads N --batch N --workload W --out PATH\n\
         \x20               --trace PATH --folded PATH --timeseries PATH\n\
         \x20               --sample N --stats)\n\
         \x20 compare       regression gate: report vs BENCH_history.jsonl\n\
         \x20               (flags: --report PATH --history PATH\n\
         \x20               --threshold-pct P --warn-only; exits 1 on regression)"
    );
}

fn run_experiment(name: &str, cfg: &RunConfig, json: bool) {
    match name {
        "fig2" => overhead_table(
            "Fig. 2 — latency/execution time under Seccomp profiles (normalized to insecure)",
            &experiments::fig2(cfg),
            json,
        ),
        "fig11" => overhead_table(
            "Fig. 11 — software Draco vs Seccomp (normalized to insecure)",
            &experiments::fig11(cfg),
            json,
        ),
        "fig12" => overhead_table(
            "Fig. 12 — hardware Draco (normalized to insecure; paper: within 1%)",
            &experiments::fig12(cfg),
            json,
        ),
        "fig16" => overhead_table(
            "Fig. 16 (appendix) — Seccomp overhead, CentOS 7.6 / Linux 3.10 model",
            &experiments::fig16(cfg),
            json,
        ),
        "fig17" => overhead_table(
            "Fig. 17 (appendix) — software Draco vs Seccomp, old-kernel model",
            &experiments::fig17(cfg),
            json,
        ),
        "fig3" => fig3(cfg, json),
        "fig13" => fig13(cfg, json),
        "fig14" => fig14(cfg, json),
        "fig15" => fig15(cfg, json),
        "table1" => table1(cfg, json),
        "table2" => table2(json),
        "table3" => table3(json),
        "vat" => vat(cfg, json),
        "ablate-tree" => overhead_table(
            "Ablation (§XII) — linear vs binary-tree filter layout",
            &experiments::ablate_tree(cfg),
            json,
        ),
        "ablate-opt" => overhead_table(
            "Ablation — peephole-optimized filters vs raw vs software Draco",
            &experiments::ablate_opt(cfg),
            json,
        ),
        "ablate-order" => overhead_table(
            "Ablation — filter-chain rule ordering (syscall-complete, linear)",
            &experiments::ablate_order(cfg),
            json,
        ),
        "ablate-slb" => ablate_slb(cfg, json),
        "ablate-ctx" => ablate_ctx(cfg, json),
        "ablate-smt" => ablate_smt(cfg, json),
        "ablate-preload" => ablate_preload(cfg, json),
        other => unreachable!("validated experiment {other}"),
    }
}

fn overhead_table(title: &str, rows: &[OverheadRow], json: bool) {
    if json {
        let value = serde_json::json!({
            "title": title,
            "rows": rows.iter().map(|r| serde_json::json!({
                "workload": r.workload,
                "class": r.class.to_string(),
                "values": r.values.iter()
                    .map(|(k, v)| serde_json::json!({"config": k, "normalized": v}))
                    .collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("{title}");
    let labels: Vec<&str> = rows[0].values.iter().map(|(l, _)| l.as_str()).collect();
    print!("{:<22}", "workload");
    for l in &labels {
        print!(" {:>21}", truncate(l, 21));
    }
    println!();
    let mut last_class = None;
    for row in rows {
        if last_class.is_some() && last_class != Some(row.class) && !row.workload.starts_with("average") {
            println!("{:-<22}", "");
        }
        if !row.workload.starts_with("average") {
            last_class = Some(row.class);
        }
        print!("{:<22}", row.workload);
        for (_, v) in &row.values {
            print!(" {:>20.3}x", v);
        }
        println!();
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[s.len() - n..]
    }
}

fn fig3(cfg: &RunConfig, json: bool) {
    let report = experiments::fig3(cfg);
    if json {
        let value = serde_json::json!({
            "title": "Fig. 3",
            "total_calls": report.total_calls(),
            "top20_coverage": report.top_n_coverage(20),
            "rows": report.rows().iter().take(20).map(|r| serde_json::json!({
                "syscall": r.name,
                "fraction": r.fraction,
                "distinct_sets": r.breakdown.distinct_sets,
                "hot_reuse_distance": r.hot_mean_reuse_distance,
            })).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("Fig. 3 — frequency of top system calls and reuse distance (macro union)");
    println!(
        "{:<16} {:>7} {:>6} {:>6} {:>6} {:>7} {:>6} {:>6}",
        "syscall", "freq", "set1", "set2", "set3", "other", "#sets", "dist"
    );
    for r in report.rows().iter().take(20) {
        let b = &r.breakdown;
        println!(
            "{:<16} {:>6.2}% {:>6.2} {:>6.2} {:>6.2} {:>7.2} {:>6} {:>6.0}",
            r.name,
            r.fraction * 100.0,
            if b.no_arg > 0.0 { b.no_arg } else { b.top_sets[0] },
            b.top_sets[1],
            b.top_sets[2],
            b.top_sets[3] + b.top_sets[4] + b.other,
            b.distinct_sets,
            r.hot_mean_reuse_distance,
        );
    }
    println!(
        "top-20 coverage: {:.1}% of {} calls (paper: ~86%)",
        report.top_n_coverage(20) * 100.0,
        report.total_calls()
    );
}

fn fig13(cfg: &RunConfig, json: bool) {
    let rows = experiments::fig13(cfg);
    if json {
        let value = serde_json::json!(rows.iter().map(|r| serde_json::json!({
            "workload": r.workload, "stb": r.stb,
            "slb_access": r.slb_access, "slb_preload": r.slb_preload,
        })).collect::<Vec<_>>());
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("Fig. 13 — hit rates of STB and SLB (access and preload), syscall-complete");
    println!(
        "{:<20} {:>8} {:>12} {:>13}",
        "workload", "STB", "SLB access", "SLB preload"
    );
    for r in &rows {
        println!(
            "{:<20} {:>7.1}% {:>11.1}% {:>12.1}%",
            r.workload,
            r.stb * 100.0,
            r.slb_access * 100.0,
            r.slb_preload * 100.0
        );
    }
}

fn fig14(cfg: &RunConfig, json: bool) {
    let rows = experiments::fig14(cfg);
    if json {
        let value = serde_json::json!(rows.iter().map(|(n, d)| serde_json::json!({
            "name": n, "fractions": d.to_vec(),
        })).collect::<Vec<_>>());
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("Fig. 14 — number of checkable arguments of system calls");
    println!(
        "{:<20} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  mean",
        "name", "0", "1", "2", "3", "4", "5", "6"
    );
    for (name, d) in &rows {
        let mean: f64 = d.iter().enumerate().map(|(n, f)| n as f64 * f).sum();
        print!("{:<20}", name);
        for f in d {
            print!(" {:>5.1}%", f * 100.0);
        }
        println!("  {mean:.2}");
    }
}

fn fig15(cfg: &RunConfig, json: bool) {
    let rows = experiments::fig15(cfg);
    if json {
        let value = serde_json::json!(rows.iter().map(|r| serde_json::json!({
            "name": r.name,
            "allowed_syscalls": r.stats.allowed_syscalls,
            "runtime_required": r.stats.runtime_required,
            "application_specific": r.stats.application_specific,
            "args_checked": r.stats.args_checked,
            "values_allowed": r.stats.distinct_values_allowed,
        })).collect::<Vec<_>>());
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("Fig. 15 — security statistics of the profiles");
    println!(
        "{:<32} {:>9} {:>8} {:>8} {:>9} {:>8}",
        "profile", "#syscalls", "runtime", "app", "args-chk", "values"
    );
    for r in &rows {
        println!(
            "{:<32} {:>9} {:>8} {:>8} {:>9} {:>8}",
            r.name,
            r.stats.allowed_syscalls,
            r.stats.runtime_required,
            r.stats.application_specific,
            r.stats.args_checked,
            r.stats.distinct_values_allowed
        );
    }
}

fn table1(cfg: &RunConfig, json: bool) {
    let rows = experiments::table1(cfg);
    if json {
        let value = serde_json::json!(rows.iter().map(|r| serde_json::json!({
            "flow": r.flow, "stb": r.stb, "preload": r.preload,
            "access": r.access, "speed": r.speed, "count": r.count,
            "mean_cycles": if r.mean_cycles.is_nan() { None } else { Some(r.mean_cycles) },
        })).collect::<Vec<_>>());
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("Table I — Draco execution flows (measured occupancy, elasticsearch)");
    println!(
        "{:<10} {:>8} {:>9} {:>8} {:>8} {:>10} {:>12}",
        "flow", "STB", "preload", "access", "speed", "count", "avg cycles"
    );
    for r in &rows {
        println!(
            "{:<10} {:>8} {:>9} {:>8} {:>8} {:>10} {:>12.1}",
            r.flow, r.stb, r.preload, r.access, r.speed, r.count, r.mean_cycles
        );
    }
}

fn table2(json: bool) {
    let rows = experiments::table2();
    if json {
        let value = serde_json::json!(rows
            .iter()
            .map(|(k, v)| serde_json::json!({"parameter": k, "value": v}))
            .collect::<Vec<_>>());
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("Table II — architectural configuration");
    for (k, v) in &rows {
        println!("  {:<18} {}", k, v);
    }
}

fn table3(json: bool) {
    let rows = experiments::table3();
    if json {
        let value = serde_json::json!(rows.iter().map(|u| serde_json::json!({
            "unit": u.name, "area_mm2": u.area_mm2, "access_ps": u.access_ps,
            "dyn_read_pj": u.dyn_read_pj, "leak_mw": u.leak_mw,
        })).collect::<Vec<_>>());
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("Table III — Draco hardware analysis at 22 nm (published constants)");
    println!(
        "{:<10} {:>12} {:>14} {:>16} {:>14}",
        "unit", "area (mm2)", "access (ps)", "dyn rd (pJ)", "leak (mW)"
    );
    for u in &rows {
        println!(
            "{:<10} {:>12.4} {:>14.2} {:>16.2} {:>14.3}",
            u.name, u.area_mm2, u.access_ps, u.dyn_read_pj, u.leak_mw
        );
    }
}

fn vat(cfg: &RunConfig, json: bool) {
    let (rows, gm) = experiments::vat_footprints(cfg);
    if json {
        let value = serde_json::json!({
            "rows": rows.iter().map(|(n, kb)| serde_json::json!({
                "workload": n, "kb": kb,
            })).collect::<Vec<_>>(),
            "geomean_kb": gm,
        });
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("VAT memory footprint per process (§XI-C; paper geomean 6.98 KB)");
    for (name, kb) in &rows {
        println!("  {:<20} {:>8.2} KB", name, kb);
    }
    println!("  {:<20} {:>8.2} KB", "geomean", gm);
}

fn ablate_slb(cfg: &RunConfig, json: bool) {
    let rows = experiments::ablate_slb(cfg);
    if json {
        let value = serde_json::json!(rows.iter().map(|(n, pts)| serde_json::json!({
            "workload": n,
            "points": pts.iter().map(|(s, hit, ov)| serde_json::json!({
                "downscale": s, "slb_access_hit": hit, "overhead": ov,
            })).collect::<Vec<_>>(),
        })).collect::<Vec<_>>());
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("Ablation — SLB sizing (syscall-complete)");
    println!(
        "{:<16} {:>10} {:>12} {:>10}",
        "workload", "size", "SLB access", "overhead"
    );
    for (name, points) in &rows {
        for (scale, hit, ov) in points {
            println!(
                "{:<16} {:>9}x {:>11.1}% {:>9.4}x",
                name,
                format!("1/{scale}"),
                hit * 100.0,
                ov
            );
        }
    }
}

fn ablate_ctx(cfg: &RunConfig, json: bool) {
    let rows = experiments::ablate_ctx(cfg);
    if json {
        let value = serde_json::json!(rows.iter().map(|(n, q, fw, fo, cw, co)| {
            serde_json::json!({
                "workload": n, "quantum_us": q,
                "fallbacks_save_restore": fw, "fallbacks_cold": fo,
                "check_cycles_save_restore": cw, "check_cycles_cold": co,
            })
        }).collect::<Vec<_>>());
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("Ablation (§VII-B) — context-switch quantum and SPT save/restore");
    println!(
        "{:<20} {:>9} {:>16} {:>12} {:>16} {:>12}",
        "workload", "quantum", "fallbacks(s/r)", "(cold)", "cycles(s/r)", "(cold)"
    );
    for (name, q, fw, fo, cw, co) in &rows {
        println!(
            "{:<20} {:>7}us {:>16} {:>12} {:>16} {:>12}",
            name, q, fw, fo, cw, co
        );
    }
}

fn ablate_smt(cfg: &RunConfig, json: bool) {
    let rows = experiments::ablate_smt(cfg);
    if json {
        let value = serde_json::json!(rows.iter().map(|(p, d, t, s)| serde_json::json!({
            "pair": p, "check_cycles_dedicated": d,
            "check_cycles_timeshared": t, "check_cycles_smt": s,
        })).collect::<Vec<_>>());
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("Ablation — core sharing: dedicated / time-shared / SMT partitions (check cycles)");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "job pair", "dedicated", "timeshared", "smt"
    );
    for (pair, d, t, s) in &rows {
        println!("{:<16} {:>12} {:>12} {:>12}", pair, d, t, s);
    }
}

fn ablate_preload(cfg: &RunConfig, json: bool) {
    let rows = experiments::ablate_preload(cfg);
    if json {
        let value = serde_json::json!(rows.iter().map(|(n, full, nopre, initial)| {
            serde_json::json!({
                "workload": n, "check_cycles_full": full,
                "check_cycles_no_preload": nopre,
                "check_cycles_initial_design": initial,
            })
        }).collect::<Vec<_>>());
        println!("{}", serde_json::to_string_pretty(&value).expect("json"));
        return;
    }
    println!("Ablation — microarchitecture: full §VI design / no preload / §V-D initial (check cycles)");
    println!(
        "{:<16} {:>14} {:>14} {:>16}",
        "workload", "full", "no-preload", "initial (no SLB)"
    );
    for (name, full, nopre, initial) in &rows {
        println!("{:<16} {:>14} {:>14} {:>16}", name, full, nopre, initial);
    }
}
