//! The tracked wall-clock throughput harness behind `repro throughput`.
//!
//! Unlike the modeled-nanosecond experiments, this measures how many
//! real checks per second each backend sustains on the host machine,
//! single-threaded and across N parallel shards, and serializes the
//! result as `BENCH_throughput.json` so throughput is tracked in-repo
//! across changes to the hot path.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use draco::bpf::SeccompData;
use draco::dracod::{run_churn, ChurnConfig, ServiceThroughput};
use draco::obs::{Histogram, MetricsRegistry, Span, TimeseriesDump};
use draco::profiles::{compile_dag, compile_stacked, FilterLayout, ProfileKind};
use draco::workloads::catalog;
use draco::workloads::live::{replay_live, LiveConfig};
use draco::workloads::timing::profile_for_trace;
use draco::workloads::TraceGenerator;
use draco::workloads::replay::{
    replay_parallel, replay_parallel_traced, ReplayBackend, ReplayConfig, ReplayReport,
    TraceConfig,
};
use draco::workloads::shared_replay::{replay_shared, KeyMix, SharedReplayConfig};
use draco::workloads::WorkloadSpec;

/// Schema tag written into every report (bump on breaking changes).
/// v2 added the `metrics` observability section; v3 added per-backend
/// sampled check-latency histograms (`check_latency_ns`); v4 added the
/// `shared_threads` section (thread-shared SPT/VAT scaling, paper §VI);
/// v5 added the `batch` section (the staged batched check path against
/// the same-run scalar draco-sw rate); v6 adds the `draco-dag` backend
/// to the standard comparison set and the `dag` section (filter-engine
/// rates on a deny-heavy, cache-defeating stream); v7 adds the
/// `timeseries` section (a rounds-sliced deny-heavy live replay with
/// window-ring and audit-stream accounting; the full window dump is
/// exported by `repro throughput --timeseries PATH`); v8 adds the
/// `service` section (the `dracod` multi-tenant churn scenario:
/// tenant arrivals/departures, fork storms, and policy hot-reloads
/// multiplexed through one admission service).
pub const SCHEMA: &str = "draco-throughput/v8";

/// Harness parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThroughputConfig {
    /// Workload to replay (must exist in the catalog).
    pub workload: String,
    /// Measured checks per shard.
    pub ops_per_shard: usize,
    /// Unmeasured warm-up checks per shard.
    pub warmup_ops: usize,
    /// Base seed; shard `i` replays seed `base + i`.
    pub seed: u64,
    /// Shard (thread) count for the multi-thread run.
    pub shards: usize,
    /// Worker-thread count for the shared-process runs
    /// (the `shared_threads` report section).
    pub shared_threads: usize,
    /// Requests per `syscall_batch` call in the batch-backend runs (the
    /// `batch` report section).
    pub batch: usize,
}

impl ThroughputConfig {
    /// Default batch size for the batch-backend section: big enough to
    /// amortize per-batch staging (the commit fast path makes staging
    /// O(distinct), so larger batches keep paying off), small enough
    /// that requests plus staging stay cache-resident.
    pub const DEFAULT_BATCH: usize = 128;

    /// Defaults sized for a stable measurement (a few seconds total).
    pub fn standard() -> Self {
        ThroughputConfig {
            workload: "pipe".to_owned(),
            ops_per_shard: 200_000,
            warmup_ops: 20_000,
            seed: 2020,
            shards: default_shards(),
            shared_threads: default_shards(),
            batch: Self::DEFAULT_BATCH,
        }
    }

    /// A sub-second configuration for smoke tests (`--quick`).
    pub fn quick() -> Self {
        ThroughputConfig {
            ops_per_shard: 5_000,
            warmup_ops: 1_000,
            ..ThroughputConfig::standard()
        }
    }
}

/// Worker count for the multi-thread run: available parallelism, capped
/// so the harness behaves on large machines.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map_or(2, std::num::NonZero::get)
        .clamp(2, 8)
}

/// One backend's measured throughput.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BackendThroughput {
    /// Backend label (`seccomp-interp`, `seccomp-compiled`, `draco-sw`).
    pub backend: String,
    /// Checks/second with one shard on one thread.
    pub single_thread_checks_per_sec: f64,
    /// Aggregate checks/second across all shards.
    pub multi_thread_checks_per_sec: f64,
    /// Multi-thread over single-thread throughput.
    pub parallel_speedup: f64,
    /// Fraction of measured checks the SPT/VAT absorbed (zero for the
    /// Seccomp backends).
    pub cache_hit_rate: f64,
    /// Measured checks per shard in the multi-thread run — a pure
    /// function of `(workload, seed, shard)`, so identical across
    /// same-seed runs.
    pub shard_checks: Vec<u64>,
    /// Allowed verdicts per shard in the multi-thread run (also
    /// deterministic).
    pub shard_allowed: Vec<u64>,
    /// Sampled per-check wall-clock latency of the multi-thread run,
    /// pooled across shards (nanoseconds; every
    /// [`draco::workloads::replay::LATENCY_SAMPLE_INTERVAL`]th check).
    /// Defaults to empty when parsing pre-v3 reports.
    #[serde(default)]
    pub check_latency_ns: Histogram,
}

/// One key mix's thread-shared scaling measurement (schema v4): N
/// worker threads of a single [`draco::core::SharedDracoProcess`]
/// against the 1-worker rate of the same shared code path.
///
/// The contention counters come from the N-worker run's merged checker
/// section. They are interleaving-dependent (unlike everything in
/// [`ThroughputReport::metrics`]), which is why this section carries
/// them itself and is excluded from the deterministic registry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SharedThroughput {
    /// Key mix label (`skewed` or `uniform`).
    pub mix: String,
    /// Worker-thread count of the multi-worker run.
    pub threads: u64,
    /// Checks/second with one worker on the shared process.
    pub single_thread_checks_per_sec: f64,
    /// Aggregate checks/second with `threads` workers on the shared
    /// process.
    pub multi_thread_checks_per_sec: f64,
    /// Multi-worker over single-worker throughput. Hardware-dependent:
    /// near-linear on enough free cores, ~1.0 on a single-CPU host.
    pub scaling: f64,
    /// Fraction of measured checks the shared SPT/VAT absorbed.
    pub cache_hit_rate: f64,
    /// Seqlock read retries across all workers of the multi-worker run.
    pub seqlock_retries: u64,
    /// Miss-path lock waits across all workers.
    pub lock_waits: u64,
    /// Validation races lost (another worker validated the same
    /// argument set first).
    pub insert_races_lost: u64,
}

/// The batched check path's measurement (schema v5): the draco-batch
/// backend over the same workload/seed as the scalar backends, plus the
/// key headline number — its single-thread rate relative to the **same
/// run's** scalar draco-sw rate (cross-run comparisons would fold host
/// noise into the speedup).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchThroughput {
    /// Requests per `syscall_batch` call.
    pub batch: u64,
    /// Checks/second with one shard on one thread.
    pub single_thread_checks_per_sec: f64,
    /// Aggregate checks/second across all shards.
    pub multi_thread_checks_per_sec: f64,
    /// Batch single-thread rate over the same run's scalar draco-sw
    /// single-thread rate.
    pub speedup_vs_scalar_single: f64,
    /// Fraction of measured checks the SPT/VAT absorbed (identical to
    /// the scalar draco-sw rate on the same seed).
    pub cache_hit_rate: f64,
    /// Measured checks per shard in the multi-thread run
    /// (deterministic).
    pub shard_checks: Vec<u64>,
    /// Allowed verdicts per shard in the multi-thread run (identical to
    /// scalar draco-sw — the differential tests pin this).
    pub shard_allowed: Vec<u64>,
    /// Sampled per-check wall-clock latency of the multi-thread run
    /// (nanoseconds; one sample per sampled batch, batch wall time over
    /// batch length).
    #[serde(default)]
    pub check_latency_ns: Histogram,
    /// Batches executed across both runs (from the merged checker
    /// section of the batch runs).
    pub batches: u64,
    /// Software prefetches issued before probe passes.
    pub prefetch_issued: u64,
    /// Misses resolved by an earlier in-batch validation of the same
    /// key instead of a second filter run.
    pub miss_dedup_hits: u64,
}

/// The specializing-compiler measurement (schema v6): raw filter-engine
/// rates on a **deny-heavy** stream — the workload's trace with every
/// argument value perturbed outside the recorded whitelists, so each
/// check would miss the VAT and fall through to the filter engine. This
/// is the regime the decision DAG targets: the cached fast path never
/// absorbs the check, and the engine itself is the whole cost.
///
/// All three engines are driven directly (no SPT/VAT in front), over the
/// identical stream, in the same process — so the speedups compare
/// engines, not runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DagThroughput {
    /// Checks per engine in the measured pass.
    pub checks: u64,
    /// Fraction of checks denied (deterministic; near 1.0 for
    /// argument-checking profiles — the stream is built to miss).
    pub deny_rate: f64,
    /// cBPF reference interpreter checks/second.
    pub interp_checks_per_sec: f64,
    /// Pre-decoded cBPF executor checks/second.
    pub compiled_checks_per_sec: f64,
    /// Decision-DAG checks/second.
    pub dag_checks_per_sec: f64,
    /// DAG rate over the interpreter rate (the headline number; the
    /// acceptance floor is 2×).
    pub speedup_vs_interp: f64,
    /// DAG rate over the pre-decoded executor rate.
    pub speedup_vs_compiled: f64,
    /// Total DAG nodes across the profile's filter chunks.
    pub nodes: u64,
    /// Fallback leaves (paths the specializer could not close).
    pub fallback_nodes: u64,
    /// Dispatch-table entries (distinct specialized syscall numbers).
    pub table_entries: u64,
    /// Table entries whose subgraph is fallback-free.
    pub closed_entries: u64,
}

/// The live-telemetry measurement (schema v7): a rounds-sliced
/// deny-heavy replay of the draco-sw backend with a [`MetricsWindow`]
/// pump and an attached audit ring — the same machinery behind
/// `dracoctl top`/`audit`. Every 8th measured request is perturbed into
/// a guaranteed denial, so the section exercises (and pins, via the
/// accounting invariant `audit_published + audit_dropped == denials`)
/// the denial-audit stream under load. The full interval-by-interval
/// window dump is not embedded here — `repro throughput --timeseries
/// PATH` writes it as a standalone `draco-timeseries/v1` document.
///
/// [`MetricsWindow`]: draco::obs::MetricsWindow
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeseriesThroughput {
    /// Schema tag of the window dump (`draco-timeseries/v1`).
    pub schema: String,
    /// Rounds the measured region was sliced into (one window interval
    /// each).
    pub rounds: u64,
    /// Every Nth measured request perturbed into a denial.
    pub deny_every: u64,
    /// Intervals held in the window ring at the end of the run.
    pub intervals: u64,
    /// Intervals pushed over the run (equals `rounds`).
    pub intervals_pushed: u64,
    /// Intervals lost to window wraparound (zero — the section sizes
    /// the ring to hold every round).
    pub intervals_dropped: u64,
    /// Measured checks across all shards.
    pub checks: u64,
    /// Filter-path denials (registry counter — the audit accounting
    /// below must add up to exactly this).
    pub denials: u64,
    /// Denial events published into the audit ring.
    pub audit_published: u64,
    /// Denial events dropped by the ring (full or rate-limited), still
    /// explicitly counted.
    pub audit_dropped: u64,
    /// Wall-clock checks/second of the live replay (single-threaded,
    /// interleaved shards — not comparable to the backend rates above).
    pub checks_per_sec: f64,
    /// Fraction of measured checks the SPT/VAT absorbed.
    pub cache_hit_rate: f64,
    /// Fraction of measured checks denied (deterministic).
    pub deny_rate: f64,
}

/// The full report `repro throughput` prints and writes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Replayed workload.
    pub workload: String,
    /// Measured checks per shard.
    pub ops_per_shard: u64,
    /// Warm-up checks per shard.
    pub warmup_ops: u64,
    /// Base seed.
    pub seed: u64,
    /// Shard count of the multi-thread runs.
    pub shards: u64,
    /// Per-backend measurements, in [`ReplayBackend::ALL`] order.
    pub backends: Vec<BackendThroughput>,
    /// Merged observability registry of every backend's multi-thread
    /// replay: the `replay` section covers all backends' measured
    /// checks; the `checker`/`cuckoo`/`vat` sections come from the
    /// Draco shards (the Seccomp backends have no tables to feed).
    /// Deterministic for a given `(workload, seed, shards)`.
    pub metrics: MetricsRegistry,
    /// Thread-shared SPT/VAT scaling (one entry per key mix, in
    /// [`KeyMix::ALL`] order). Empty when parsing pre-v4 reports.
    #[serde(default)]
    pub shared_threads: Vec<SharedThroughput>,
    /// Batched check path measurement. `None` when parsing pre-v5
    /// reports (and omitted from the JSON entirely when absent).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub batch: Option<BatchThroughput>,
    /// Deny-heavy filter-engine comparison. `None` when parsing pre-v6
    /// reports (and omitted from the JSON entirely when absent).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dag: Option<DagThroughput>,
    /// Live-telemetry (window + audit) measurement. `None` when parsing
    /// pre-v7 reports (and omitted from the JSON entirely when absent).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub timeseries: Option<TimeseriesThroughput>,
    /// Multi-tenant admission-service churn measurement (`dracod`).
    /// `None` when parsing pre-v8 reports (and omitted from the JSON
    /// entirely when absent).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub service: Option<ServiceThroughput>,
}

impl ThroughputReport {
    /// The entry for a backend label, if present.
    pub fn backend(&self, label: &str) -> Option<&BackendThroughput> {
        self.backends.iter().find(|b| b.backend == label)
    }
}

/// Clamps a rate to a finite value. On degenerate runs (zero measured
/// ops, or a measured loop faster than the clock tick) a division can
/// produce `inf`/`NaN`, which the JSON writer emits as `null` — breaking
/// every consumer that parses the rate as a number. Zero is the honest
/// stand-in: the run measured nothing.
fn finite_or_zero(rate: f64) -> f64 {
    if rate.is_finite() {
        rate
    } else {
        0.0
    }
}

fn summarize(single: &ReplayReport, multi: &ReplayReport) -> BackendThroughput {
    let st = finite_or_zero(single.checks_per_sec());
    let mt = finite_or_zero(multi.checks_per_sec());
    BackendThroughput {
        backend: single.backend.label().to_owned(),
        single_thread_checks_per_sec: st,
        multi_thread_checks_per_sec: mt,
        parallel_speedup: if st > 0.0 {
            finite_or_zero(mt / st)
        } else {
            0.0
        },
        cache_hit_rate: finite_or_zero(multi.cache_hit_rate()),
        shard_checks: multi.shard_checks(),
        shard_allowed: multi.shards.iter().map(|s| s.allowed).collect(),
        check_latency_ns: multi.latency_hist(),
    }
}

/// The shared-process scaling section: for each key mix, a 1-worker and
/// a `cfg.shared_threads`-worker run of the same shared code path.
fn run_shared_section(spec: &WorkloadSpec, cfg: &ThroughputConfig) -> Vec<SharedThroughput> {
    KeyMix::ALL
        .iter()
        .map(|&mix| {
            let base = SharedReplayConfig {
                threads: 1,
                ops_per_thread: cfg.ops_per_shard,
                warmup_ops: cfg.warmup_ops,
                base_seed: cfg.seed,
                mix,
            };
            let single = replay_shared(spec, ProfileKind::SyscallComplete, &base);
            let multi = replay_shared(
                spec,
                ProfileKind::SyscallComplete,
                &SharedReplayConfig {
                    threads: cfg.shared_threads,
                    ..base
                },
            );
            let st = finite_or_zero(single.checks_per_sec());
            let mt = finite_or_zero(multi.checks_per_sec());
            let c = &multi.metrics.checker;
            SharedThroughput {
                mix: mix.label().to_owned(),
                threads: cfg.shared_threads as u64,
                single_thread_checks_per_sec: st,
                multi_thread_checks_per_sec: mt,
                scaling: if st > 0.0 { finite_or_zero(mt / st) } else { 0.0 },
                cache_hit_rate: finite_or_zero(multi.cache_hit_rate()),
                seqlock_retries: c.seqlock_retries,
                lock_waits: c.vat_lock_waits,
                insert_races_lost: c.insert_races_lost,
            }
        })
        .collect()
}

/// Runs the harness: for each backend, one single-shard replay and one
/// `cfg.shards`-shard replay over the same workload.
///
/// # Panics
///
/// Panics if the workload is not in the catalog or `cfg.shards == 0`.
pub fn run_throughput(cfg: &ThroughputConfig) -> ThroughputReport {
    run_throughput_inner(cfg, None).0
}

/// Like [`run_throughput`], but also returns the interval-by-interval
/// window dump behind the report's `timeseries` summary section —
/// the `repro throughput --timeseries PATH` payload.
///
/// # Panics
///
/// Panics if the workload is not in the catalog or `cfg.shards == 0`.
pub fn run_throughput_full(
    cfg: &ThroughputConfig,
    trace: Option<&TraceConfig>,
) -> (ThroughputReport, Vec<Span>, TimeseriesDump) {
    run_throughput_inner(cfg, trace)
}

/// Like [`run_throughput`], but the multi-thread Draco run carries a
/// sampled span tracer; the merged spans come back alongside the report
/// for export via [`draco::obs::chrome_trace_json`] /
/// [`draco::obs::folded_stacks`].
///
/// # Panics
///
/// Panics if the workload is not in the catalog or `cfg.shards == 0`.
pub fn run_throughput_traced(
    cfg: &ThroughputConfig,
    trace: &TraceConfig,
) -> (ThroughputReport, Vec<Span>) {
    let (report, spans, _) = run_throughput_inner(cfg, Some(trace));
    (report, spans)
}

fn run_throughput_inner(
    cfg: &ThroughputConfig,
    trace: Option<&TraceConfig>,
) -> (ThroughputReport, Vec<Span>, TimeseriesDump) {
    let spec = catalog::by_name(&cfg.workload)
        .unwrap_or_else(|| panic!("unknown workload `{}`", cfg.workload));
    let kind = ProfileKind::SyscallComplete;
    let base = ReplayConfig {
        shards: 1,
        ops_per_shard: cfg.ops_per_shard,
        warmup_ops: cfg.warmup_ops,
        base_seed: cfg.seed,
    };
    let multi_cfg = ReplayConfig {
        shards: cfg.shards,
        ..base
    };
    let mut metrics = MetricsRegistry::default();
    let mut spans = Vec::new();
    let backends: Vec<BackendThroughput> = ReplayBackend::ALL
        .iter()
        .map(|&backend| {
            let single = replay_parallel(&spec, kind, backend, &base);
            // Only the Draco backend has staged pipeline spans; tracing
            // the Seccomp runs would yield nothing, so don't pay for it.
            let multi = match trace {
                Some(tc) if backend == ReplayBackend::DracoSw => {
                    let (multi, traced) =
                        replay_parallel_traced(&spec, kind, backend, &multi_cfg, tc);
                    spans = traced;
                    multi
                }
                _ => replay_parallel(&spec, kind, backend, &multi_cfg),
            };
            metrics.merge(&multi.metrics);
            summarize(&single, &multi)
        })
        .collect();
    let shared_threads = run_shared_section(&spec, cfg);
    let batch = run_batch_section(&spec, cfg, &base, &multi_cfg, &backends, &mut metrics);
    let dag = run_dag_section(&spec, cfg);
    let (timeseries, dump) = run_timeseries_section(&spec, cfg);
    let service = run_service_section(cfg);
    let report = ThroughputReport {
        schema: SCHEMA.to_owned(),
        workload: cfg.workload.clone(),
        ops_per_shard: cfg.ops_per_shard as u64,
        warmup_ops: cfg.warmup_ops as u64,
        seed: cfg.seed,
        shards: cfg.shards as u64,
        backends,
        metrics,
        shared_threads,
        batch: Some(batch),
        dag: Some(dag),
        timeseries: Some(timeseries),
        service: Some(service),
    };
    (report, spans, dump)
}

/// The service section (schema v8): the `dracod` churn scenario sized
/// to the configured op budget — tenant arrivals and departures, fork
/// storms, admitted and refused hot-reloads, all multiplexed through
/// one admission service. Counters, stats, and the decision digest are
/// deterministic for a given `(ops_per_shard, seed, batch)`; only the
/// wall-clock rates and latency quantiles vary run to run.
fn run_service_section(cfg: &ThroughputConfig) -> ServiceThroughput {
    let churn = ChurnConfig::for_ops(cfg.ops_per_shard, cfg.seed, cfg.batch);
    run_churn(&churn).section()
}

/// The timeseries section (schema v7): one deny-heavy live replay of
/// the draco-sw backend, rounds-sliced through the window pump with an
/// unthrottled audit ring attached. Two shards, interleaved on one
/// thread — deterministic counters for a given `(workload, seed)`.
fn run_timeseries_section(
    spec: &WorkloadSpec,
    cfg: &ThroughputConfig,
) -> (TimeseriesThroughput, TimeseriesDump) {
    const ROUNDS: usize = 16;
    const DENY_EVERY: usize = 8;
    let live_cfg = LiveConfig {
        replay: ReplayConfig {
            shards: 2,
            ops_per_shard: cfg.ops_per_shard,
            warmup_ops: cfg.warmup_ops,
            base_seed: cfg.seed,
        },
        rounds: ROUNDS,
        // Hold every round: the dump is the complete series.
        window_capacity: ROUNDS,
        audit_capacity: 8192,
        audit_burst: u64::MAX,
        audit_refill_per_round: 0,
        deny_every: DENY_EVERY,
    };
    let live = replay_live(
        spec,
        ProfileKind::SyscallComplete,
        ReplayBackend::DracoSw,
        &live_cfg,
        |_| {},
    );
    let checks = live.total_checks();
    let denials = live.metrics.checker.denials;
    // The tentpole invariant: the stream's losses are accounted, never
    // silent. Hard assert — a mismatch is a telemetry bug, not noise.
    assert_eq!(
        live.audit_published + live.audit_dropped,
        denials,
        "audit accounting must cover every denial"
    );
    let summary = TimeseriesThroughput {
        schema: live.timeseries.schema.clone(),
        rounds: live.rounds as u64,
        deny_every: DENY_EVERY as u64,
        intervals: live.timeseries.intervals.len() as u64,
        intervals_pushed: live.timeseries.intervals_pushed,
        intervals_dropped: live.timeseries.intervals_dropped,
        checks,
        denials,
        audit_published: live.audit_published,
        audit_dropped: live.audit_dropped,
        checks_per_sec: if live.wall_ns > 0 {
            finite_or_zero(checks as f64 * 1e9 / live.wall_ns as f64)
        } else {
            0.0
        },
        cache_hit_rate: if checks > 0 {
            finite_or_zero(live.metrics.replay.cache_hits as f64 / checks as f64)
        } else {
            0.0
        },
        deny_rate: if checks > 0 {
            finite_or_zero(denials as f64 / checks as f64)
        } else {
            0.0
        },
    };
    (summary, live.timeseries)
}

/// The dag section (schema v6): every filter engine timed over a
/// deny-heavy stream built by perturbing the trace's argument values
/// outside the whitelists the profile recorded from that same trace.
///
/// # Panics
///
/// Panics if the engines ever disagree on a verdict — the differential
/// suites prove they cannot, so a disagreement here is a harness bug.
fn run_dag_section(spec: &WorkloadSpec, cfg: &ThroughputConfig) -> DagThroughput {
    let trace = TraceGenerator::new(spec, cfg.seed).generate(cfg.ops_per_shard);
    let profile = profile_for_trace(&trace, ProfileKind::SyscallComplete);
    // Linear layout, matching the seccomp replay backends (and real
    // kernel filters — the binary-tree layout is the §XII libseccomp
    // optimization the `repro ablate-opt` study covers separately).
    let interp = compile_stacked(&profile, FilterLayout::Linear)
        .expect("generated profiles always compile");
    let compiled = interp.compiled();
    let dag = compile_dag(&profile).expect("generated profiles always compile");
    // Perturb every argument outside the recorded whitelists: XOR with a
    // constant no recorded value uses, so argument-checked syscalls are
    // denied and nothing upstream could have cached the pair.
    let stream: Vec<SeccompData> = trace
        .requests()
        .map(|req| {
            let mut args = [0u64; 6];
            for (i, slot) in args.iter_mut().enumerate() {
                *slot = req.args.get(i) ^ 0xdead_0000_0000;
            }
            SeccompData::for_syscall(i32::from(req.id.as_u16()), &args)
        })
        .collect();
    let warm = cfg.warmup_ops.min(stream.len());
    let time_engine = |run: &mut dyn FnMut(&SeccompData) -> bool| -> (f64, u64) {
        for data in &stream[..warm] {
            std::hint::black_box(run(data));
        }
        let mut denied = 0u64;
        let start = Instant::now();
        for data in &stream {
            if !run(data) {
                denied += 1;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            stream.len() as f64 / elapsed
        } else {
            0.0
        };
        (finite_or_zero(rate), denied)
    };
    let (interp_rate, interp_denied) = time_engine(&mut |data| {
        interp
            .run(data)
            .expect("generated filters cannot fault")
            .action
            .permits()
    });
    let (compiled_rate, compiled_denied) = time_engine(&mut |data| {
        compiled
            .run(data)
            .expect("generated filters cannot fault")
            .action
            .permits()
    });
    let (dag_rate, dag_denied) = time_engine(&mut |data| {
        dag.run(data)
            .expect("generated filters cannot fault")
            .action
            .permits()
    });
    assert_eq!(interp_denied, compiled_denied, "engines must agree");
    assert_eq!(interp_denied, dag_denied, "engines must agree");
    let stats = dag.stats();
    DagThroughput {
        checks: stream.len() as u64,
        deny_rate: finite_or_zero(interp_denied as f64 / stream.len() as f64),
        interp_checks_per_sec: interp_rate,
        compiled_checks_per_sec: compiled_rate,
        dag_checks_per_sec: dag_rate,
        speedup_vs_interp: if interp_rate > 0.0 {
            finite_or_zero(dag_rate / interp_rate)
        } else {
            0.0
        },
        speedup_vs_compiled: if compiled_rate > 0.0 {
            finite_or_zero(dag_rate / compiled_rate)
        } else {
            0.0
        },
        nodes: stats.nodes as u64,
        fallback_nodes: stats.fallback as u64,
        table_entries: stats.table_entries as u64,
        closed_entries: stats.closed_entries as u64,
    }
}

/// The batch section (schema v5): one single-shard and one multi-shard
/// run of the draco-batch backend, with the speedup computed against the
/// same run's scalar draco-sw single-thread rate.
fn run_batch_section(
    spec: &WorkloadSpec,
    cfg: &ThroughputConfig,
    base: &ReplayConfig,
    multi_cfg: &ReplayConfig,
    backends: &[BackendThroughput],
    metrics: &mut MetricsRegistry,
) -> BatchThroughput {
    let backend = ReplayBackend::DracoBatch { batch: cfg.batch };
    let kind = ProfileKind::SyscallComplete;
    let single = replay_parallel(spec, kind, backend, base);
    let multi = replay_parallel(spec, kind, backend, multi_cfg);
    let st = finite_or_zero(single.checks_per_sec());
    let scalar_single = backends
        .iter()
        .find(|b| b.backend == ReplayBackend::DracoSw.label())
        .map_or(0.0, |b| b.single_thread_checks_per_sec);
    let mut batch_counters = single.metrics.checker;
    batch_counters.merge(&multi.metrics.checker);
    metrics.merge(&multi.metrics);
    BatchThroughput {
        batch: cfg.batch as u64,
        single_thread_checks_per_sec: st,
        multi_thread_checks_per_sec: finite_or_zero(multi.checks_per_sec()),
        speedup_vs_scalar_single: if scalar_single > 0.0 {
            finite_or_zero(st / scalar_single)
        } else {
            0.0
        },
        cache_hit_rate: finite_or_zero(multi.cache_hit_rate()),
        shard_checks: multi.shard_checks(),
        shard_allowed: multi.shards.iter().map(|s| s.allowed).collect(),
        check_latency_ns: multi.latency_hist(),
        batches: batch_counters.batches,
        prefetch_issued: batch_counters.prefetch_issued,
        miss_dedup_hits: batch_counters.miss_dedup_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ThroughputConfig {
        ThroughputConfig {
            workload: "pipe".to_owned(),
            ops_per_shard: 300,
            warmup_ops: 50,
            seed: 7,
            shards: 2,
            shared_threads: 2,
            batch: 32,
        }
    }

    #[test]
    fn report_shape() {
        let report = run_throughput(&tiny());
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.backends.len(), 4);
        for b in &report.backends {
            assert_eq!(b.shard_checks, vec![300, 300]);
            assert!(b.single_thread_checks_per_sec > 0.0);
            assert!(b.multi_thread_checks_per_sec > 0.0);
        }
        let draco = report.backend("draco-sw").expect("draco-sw present");
        assert!(draco.cache_hit_rate > 0.5);
        assert_eq!(report.backend("seccomp-interp").unwrap().cache_hit_rate, 0.0);
        assert!(report.backend("nope").is_none());
        // v3: every backend carries a sampled latency histogram
        // (ceil(300/256) = 2 samples per shard here).
        for b in &report.backends {
            assert_eq!(b.check_latency_ns.count(), 4, "{}", b.backend);
        }
        // v4: one shared-process entry per key mix.
        assert_eq!(report.shared_threads.len(), 2);
        for (s, mix) in report.shared_threads.iter().zip(KeyMix::ALL) {
            assert_eq!(s.mix, mix.label());
            assert_eq!(s.threads, 2);
            assert!(s.single_thread_checks_per_sec > 0.0, "{}", s.mix);
            assert!(s.multi_thread_checks_per_sec > 0.0, "{}", s.mix);
            assert!(s.scaling > 0.0, "{}", s.mix);
        }
        let skewed = &report.shared_threads[0];
        assert!(skewed.cache_hit_rate > 0.5, "shared hot keys re-hit");
        // v5: the batch section measures the batched path against the
        // same-seed scalar run.
        let batch = report.batch.as_ref().expect("v5 reports carry batch");
        assert_eq!(batch.batch, 32);
        assert!(batch.single_thread_checks_per_sec > 0.0);
        assert!(batch.multi_thread_checks_per_sec > 0.0);
        assert!(batch.speedup_vs_scalar_single > 0.0);
        assert_eq!(batch.shard_checks, vec![300, 300]);
        assert_eq!(
            batch.shard_allowed,
            report.backend("draco-sw").unwrap().shard_allowed,
            "batched decisions are identical to scalar"
        );
        assert_eq!(batch.cache_hit_rate, draco.cache_hit_rate);
        assert!(batch.batches > 0);
        assert!(batch.prefetch_issued > 0);
        // v6: the draco-dag backend joins the standard set and agrees
        // with draco-sw on every deterministic counter.
        let dag_backend = report.backend("draco-dag").expect("draco-dag present");
        assert_eq!(dag_backend.shard_allowed, draco.shard_allowed);
        assert_eq!(dag_backend.cache_hit_rate, draco.cache_hit_rate);
        // v6: the dag section measures raw engines on a deny-heavy
        // stream — no cache in front, so denials dominate.
        let dag = report.dag.as_ref().expect("v6 reports carry dag");
        assert_eq!(dag.checks, 300);
        assert!(dag.deny_rate > 0.5, "stream built to miss: {}", dag.deny_rate);
        assert!(dag.interp_checks_per_sec > 0.0);
        assert!(dag.compiled_checks_per_sec > 0.0);
        assert!(dag.dag_checks_per_sec > 0.0);
        assert!(dag.table_entries > 0);
        assert!(dag.closed_entries > 0, "specializer closed some syscalls");
        assert!(dag.nodes > dag.fallback_nodes);
        // v7: the timeseries section summarizes a live deny-heavy replay
        // with exact audit accounting.
        let ts = report.timeseries.as_ref().expect("v7 reports carry timeseries");
        assert_eq!(ts.schema, "draco-timeseries/v1");
        assert_eq!(ts.rounds, 16);
        assert_eq!(ts.intervals_pushed, 16);
        assert_eq!(ts.intervals_dropped, 0, "ring sized to hold every round");
        assert_eq!(ts.intervals, 16);
        assert_eq!(ts.checks, 600, "two shards of 300 measured checks");
        assert!(ts.denials > 0, "every 8th request perturbed into a denial");
        assert_eq!(ts.audit_published + ts.audit_dropped, ts.denials);
        assert!(ts.deny_rate > 0.0 && ts.deny_rate < 0.5);
        // v8: the service section runs the dracod churn scenario sized
        // to the op budget (300 ops → the 8-tenant quick schedule).
        let svc = report.service.as_ref().expect("v8 reports carry service");
        assert_eq!(svc.schema, "draco-service/v1");
        assert!(svc.tenants >= 8, "quick schedule admits 8+: {}", svc.tenants);
        assert_eq!(svc.rounds, 8);
        assert!(svc.forks > 0, "fork storms fired");
        assert!(svc.retired > 0, "departures fired");
        assert!(svc.reloads_permitted > 0, "refinements admitted");
        assert!(svc.reloads_refused > 0, "relaxations refused");
        assert!(svc.checks > 0);
        assert_eq!(svc.audit_published + svc.audit_dropped, svc.denials);
        assert!(svc.deny_rate > 0.0 && svc.deny_rate < 0.5);
        assert!(svc.cache_hit_rate > 0.0);
        assert!(svc.intervals_pushed > 0, "each drain seals a window slot");
        assert_ne!(svc.decision_digest, 0, "digest witnesses the stream");
    }

    #[test]
    fn service_section_deterministic_fields_are_stable() {
        let a = run_throughput(&tiny());
        let b = run_throughput(&tiny());
        let (x, y) = (a.service.unwrap(), b.service.unwrap());
        assert_eq!(x.tenants, y.tenants);
        assert_eq!(x.forks, y.forks);
        assert_eq!(x.retired, y.retired);
        assert_eq!(x.reloads_permitted, y.reloads_permitted);
        assert_eq!(x.reloads_refused, y.reloads_refused);
        assert_eq!(x.checks, y.checks);
        assert_eq!(x.denials, y.denials);
        assert_eq!(x.audit_published, y.audit_published);
        assert_eq!(x.cache_hit_rate, y.cache_hit_rate);
        assert_eq!(x.decision_digest, y.decision_digest);
    }

    #[test]
    fn timeseries_dump_reconstructs_the_section_totals() {
        let (report, _, dump) = run_throughput_full(&tiny(), None);
        let ts = report.timeseries.as_ref().unwrap();
        assert_eq!(dump.schema, "draco-timeseries/v1");
        assert_eq!(dump.intervals.len() as u64, ts.intervals);
        assert_eq!(dump.intervals_pushed, ts.intervals_pushed);
        let replayed: u64 = dump.intervals.iter().map(|s| s.delta.replay.checks).sum();
        assert_eq!(replayed, ts.checks, "window deltas cover every check");
        let denied: u64 = dump.intervals.iter().map(|s| s.delta.checker.denials).sum();
        assert_eq!(denied, ts.denials, "window deltas cover every denial");
        assert_eq!(
            dump.intervals.last().unwrap().cumulative.checker.denials,
            ts.denials
        );
        // The dump is a valid draco-timeseries/v1 document.
        let json = serde_json::to_string(&dump).expect("serializes");
        let back: TimeseriesDump = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, dump);
    }

    #[test]
    fn traced_run_yields_spans_and_same_shape() {
        let trace = TraceConfig {
            capacity_per_shard: 1 << 12,
            sample_interval: 1,
        };
        let (report, spans) = run_throughput_traced(&tiny(), &trace);
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.backends.len(), 4);
        assert!(!spans.is_empty(), "draco-sw multi run produced spans");
        // Spans come from the multi-thread run: both shards appear.
        let shards: std::collections::BTreeSet<u32> =
            spans.iter().map(|s| s.shard).collect();
        assert_eq!(shards.len(), 2, "{shards:?}");
        // At least the acceptance-criteria floor of distinct stages.
        let stages: std::collections::BTreeSet<&str> =
            spans.iter().map(|s| s.stage.label()).collect();
        assert!(stages.len() >= 4, "{stages:?}");
    }

    #[test]
    fn pre_v3_reports_without_latency_still_parse() {
        let report = run_throughput(&tiny());
        let mut json = serde_json::to_string(&report).expect("serializes");
        // Simulate a v2 report: no check_latency_ns field at all.
        json = json.replace("\"check_latency_ns\"", "\"unknown_field\"");
        let back: ThroughputReport = serde_json::from_str(&json).expect("parses");
        for b in &back.backends {
            assert!(b.check_latency_ns.is_empty(), "defaulted");
        }
    }

    #[test]
    fn pre_v4_reports_without_shared_section_still_parse() {
        let report = run_throughput(&tiny());
        let mut json = serde_json::to_string(&report).expect("serializes");
        json = json.replace("\"shared_threads\"", "\"renamed_away\"");
        let back: ThroughputReport = serde_json::from_str(&json).expect("parses");
        assert!(back.shared_threads.is_empty(), "defaulted");
    }

    #[test]
    fn pre_v5_reports_without_batch_section_still_parse() {
        let report = run_throughput(&tiny());
        let mut json = serde_json::to_string(&report).expect("serializes");
        json = json.replace("\"batch\":", "\"renamed_away\":");
        let back: ThroughputReport = serde_json::from_str(&json).expect("parses");
        assert!(back.batch.is_none(), "defaulted");
    }

    #[test]
    fn pre_v6_reports_without_dag_section_still_parse() {
        let report = run_throughput(&tiny());
        let mut json = serde_json::to_string(&report).expect("serializes");
        json = json.replace("\"dag\":", "\"renamed_away\":");
        let back: ThroughputReport = serde_json::from_str(&json).expect("parses");
        assert!(back.dag.is_none(), "defaulted");
    }

    #[test]
    fn pre_v7_reports_without_timeseries_section_still_parse() {
        let report = run_throughput(&tiny());
        let mut json = serde_json::to_string(&report).expect("serializes");
        json = json.replace("\"timeseries\":", "\"renamed_away\":");
        let back: ThroughputReport = serde_json::from_str(&json).expect("parses");
        assert!(back.timeseries.is_none(), "defaulted");
    }

    #[test]
    fn pre_v8_reports_without_service_section_still_parse() {
        let report = run_throughput(&tiny());
        let mut json = serde_json::to_string(&report).expect("serializes");
        json = json.replace("\"service\":", "\"renamed_away\":");
        let back: ThroughputReport = serde_json::from_str(&json).expect("parses");
        assert!(back.service.is_none(), "defaulted");
    }

    #[test]
    fn dag_section_deterministic_fields_are_stable() {
        let a = run_throughput(&tiny());
        let b = run_throughput(&tiny());
        let (x, y) = (a.dag.unwrap(), b.dag.unwrap());
        assert_eq!(x.checks, y.checks);
        assert_eq!(x.deny_rate, y.deny_rate);
        assert_eq!(x.nodes, y.nodes);
        assert_eq!(x.fallback_nodes, y.fallback_nodes);
        assert_eq!(x.table_entries, y.table_entries);
        assert_eq!(x.closed_entries, y.closed_entries);
    }

    #[test]
    fn json_round_trip_preserves_deterministic_fields() {
        let report = run_throughput(&tiny());
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        let back: ThroughputReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn same_seed_runs_share_deterministic_fields() {
        let a = run_throughput(&tiny());
        let b = run_throughput(&tiny());
        for (x, y) in a.backends.iter().zip(&b.backends) {
            assert_eq!(x.shard_checks, y.shard_checks);
            assert_eq!(x.shard_allowed, y.shard_allowed);
            assert_eq!(x.cache_hit_rate, y.cache_hit_rate);
        }
        assert_eq!(a.metrics, b.metrics, "registry holds no wall-clock data");
    }

    #[test]
    fn metrics_section_is_populated() {
        let report = run_throughput(&tiny());
        let m = &report.metrics;
        // replay covers the four standard backends' multi-thread runs
        // plus the batch backend's (the dag *section* drives raw engines
        // outside the replay harness and feeds no registry).
        assert_eq!(m.replay.checks, 5 * 2 * 300);
        assert_eq!(m.replay.shards, 5 * 2);
        // checker/cuckoo come from the Draco shards.
        assert!(m.checker.total() > 0);
        assert!(m.checker.vat_hits > 0);
        assert!(m.cuckoo.probe_length.count() > 0, "histogram populated");
        assert!(m.cuckoo.reuse_distance.count() > 0, "histogram populated");
        assert!(m.vat.tables > 0);
        // And survive the JSON surface intact.
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"reuse_distance\""));
    }

    #[test]
    fn degenerate_runs_produce_finite_rates_and_valid_json() {
        use draco::workloads::replay::{ReplayBackend, ReplayReport};
        // A report whose measured loop registered no time and no checks:
        // every rate must clamp to a finite value, not inf/NaN.
        let empty = ReplayReport {
            backend: ReplayBackend::DracoSw,
            workload: "tiny".to_owned(),
            shards: Vec::new(),
            wall_ns: 0,
            metrics: MetricsRegistry::default(),
        };
        let summary = summarize(&empty, &empty);
        assert_eq!(summary.single_thread_checks_per_sec, 0.0);
        assert_eq!(summary.multi_thread_checks_per_sec, 0.0);
        assert_eq!(summary.parallel_speedup, 0.0);
        assert_eq!(summary.cache_hit_rate, 0.0);
        let report = ThroughputReport {
            schema: SCHEMA.to_owned(),
            workload: "tiny".to_owned(),
            ops_per_shard: 0,
            warmup_ops: 0,
            seed: 0,
            shards: 0,
            backends: vec![summary],
            metrics: MetricsRegistry::default(),
            shared_threads: Vec::new(),
            batch: None,
            dag: None,
            timeseries: None,
            service: None,
        };
        let json = serde_json::to_string(&report).expect("serializes");
        assert!(!json.contains("null"), "no non-finite rate leaked: {json}");
        let back: ThroughputReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn finite_or_zero_clamps_only_non_finite() {
        assert_eq!(finite_or_zero(12.5), 12.5);
        assert_eq!(finite_or_zero(f64::INFINITY), 0.0);
        assert_eq!(finite_or_zero(f64::NEG_INFINITY), 0.0);
        assert_eq!(finite_or_zero(f64::NAN), 0.0);
    }

    #[test]
    fn default_shards_bounded() {
        let n = default_shards();
        assert!((2..=8).contains(&n));
    }
}
