//! Experiment drivers behind the `repro` harness and the Criterion
//! benches.
//!
//! Each function regenerates the data behind one figure or table of the
//! paper's evaluation (the mapping lives in `DESIGN.md` §4). All drivers
//! are deterministic in `(seed, ops)`; the `repro` binary prints their
//! output, and `EXPERIMENTS.md` records a reference run against the
//! paper's numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod history;
pub mod throughput;

/// Default operations per workload trace (a fraction of the catalog's
/// full default, chosen so `repro all` finishes in tens of seconds).
pub const DEFAULT_OPS: usize = 30_000;

/// Default warm-up prefix excluded from measurement (paper §X-C warms the
/// architectural state before measuring).
pub const DEFAULT_WARMUP: usize = 6_000;

/// Default trace seed.
pub const DEFAULT_SEED: u64 = 2020;

/// Geometric mean of a non-empty slice.
///
/// The paper's "average" normalized execution times aggregate ratios, for
/// which the geometric mean is the right operator.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of no values");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.14]) - 1.14).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn geomean_rejects_empty() {
        let _ = geomean(&[]);
    }
}
