//! End-to-end smoke tests of `repro throughput`.

use std::process::Command;

use draco_bench::throughput::ThroughputReport;

fn run_quick(out: &std::path::Path, extra: &[&str]) -> ThroughputReport {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["throughput", "--quick", "--json", "--out"])
        .arg(out)
        .args(extra)
        .output()
        .expect("repro runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    serde_json::from_str(&stdout).expect("stdout is a schema-valid report")
}

#[test]
fn quick_run_emits_schema_valid_json() {
    let out = std::env::temp_dir().join("draco_throughput_smoke.json");
    let report = run_quick(&out, &["--shards", "2", "--seed", "11"]);

    assert_eq!(report.schema, draco_bench::throughput::SCHEMA);
    assert_eq!(report.shards, 2);
    assert_eq!(report.seed, 11);
    assert_eq!(report.backends.len(), 4);
    for backend in &report.backends {
        assert_eq!(backend.shard_checks.len(), 2);
        assert!(backend.single_thread_checks_per_sec > 0.0);
        assert!(backend.multi_thread_checks_per_sec > 0.0);
    }
    assert!(report.backend("draco-sw").unwrap().cache_hit_rate > 0.5);
    assert_eq!(
        report.backend("draco-dag").unwrap().shard_allowed,
        report.backend("draco-sw").unwrap().shard_allowed,
        "dag-backed checker decisions must match the compiled-backed ones"
    );

    // The batch section rode along with real numbers and the same
    // deterministic per-shard tallies as the scalar draco-sw replay.
    let batch = report.batch.as_ref().expect("v5 reports carry a batch section");
    assert!(batch.batch > 0);
    assert_eq!(batch.shard_checks.len(), 2);
    assert!(batch.single_thread_checks_per_sec > 0.0);
    assert!(batch.multi_thread_checks_per_sec > 0.0);
    assert!(batch.speedup_vs_scalar_single > 0.0);
    assert!(batch.batches > 0 && batch.prefetch_issued > 0);
    assert_eq!(
        batch.shard_allowed,
        report.backend("draco-sw").unwrap().shard_allowed,
        "batched decisions must match the scalar replay"
    );

    // The dag section rode along: a deny-heavy stream with all three
    // filter engines timed over it.
    let dag = report.dag.as_ref().expect("v6 reports carry a dag section");
    assert!(dag.checks > 0);
    assert!(dag.deny_rate > 0.5, "stream built to miss: {}", dag.deny_rate);
    assert!(dag.interp_checks_per_sec > 0.0);
    assert!(dag.compiled_checks_per_sec > 0.0);
    assert!(dag.dag_checks_per_sec > 0.0);
    assert!(dag.speedup_vs_interp > 0.0);
    assert!(dag.table_entries > 0 && dag.closed_entries > 0);

    // The file mirrors stdout and survives a serde round-trip.
    let on_disk = std::fs::read_to_string(&out).expect("report written");
    let parsed: ThroughputReport = serde_json::from_str(&on_disk).expect("file parses");
    assert_eq!(parsed, report);
    let reserialized = serde_json::to_string_pretty(&report).expect("serializes");
    let round: ThroughputReport = serde_json::from_str(&reserialized).expect("round-trips");
    assert_eq!(round, report);
    let _ = std::fs::remove_file(&out);
}

#[test]
fn same_seed_runs_have_identical_shard_counts() {
    let out_a = std::env::temp_dir().join("draco_throughput_det_a.json");
    let out_b = std::env::temp_dir().join("draco_throughput_det_b.json");
    let flags = ["--shards", "2", "--seed", "42"];
    let a = run_quick(&out_a, &flags);
    let b = run_quick(&out_b, &flags);

    for (x, y) in a.backends.iter().zip(&b.backends) {
        assert_eq!(x.backend, y.backend);
        assert_eq!(x.shard_checks, y.shard_checks, "{}", x.backend);
        assert_eq!(x.shard_allowed, y.shard_allowed, "{}", x.backend);
        assert_eq!(x.cache_hit_rate, y.cache_hit_rate, "{}", x.backend);
    }
    let (ba, bb) = (a.batch.as_ref().unwrap(), b.batch.as_ref().unwrap());
    assert_eq!(ba.shard_checks, bb.shard_checks, "batch");
    assert_eq!(ba.shard_allowed, bb.shard_allowed, "batch");
    assert_eq!(ba.cache_hit_rate, bb.cache_hit_rate, "batch");
    assert_eq!(
        (ba.batches, ba.prefetch_issued, ba.miss_dedup_hits),
        (bb.batches, bb.prefetch_issued, bb.miss_dedup_hits),
        "batch counters are deterministic"
    );
    let _ = std::fs::remove_file(&out_a);
    let _ = std::fs::remove_file(&out_b);
}

#[test]
fn warmup_at_least_ops_is_rejected() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["throughput", "--ops", "100", "--warmup", "100"])
        .output()
        .expect("repro runs");
    assert!(!output.status.success());
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("--warmup must be below --ops")
    );
}
