//! End-to-end tests of the `repro` harness binary.

use std::process::Command;

fn repro(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const SMALL: &[&str] = &["--ops", "3000", "--warmup", "1000"];

#[test]
fn help_lists_every_experiment() {
    let (code, out, _) = repro(&["--help"]);
    assert_eq!(code, 0);
    for exp in [
        "fig2", "fig3", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "table1", "table2", "table3", "vat", "ablate-tree", "ablate-order", "ablate-slb",
        "ablate-preload", "ablate-ctx", "ablate-smt", "ablate-opt",
    ] {
        assert!(out.contains(exp), "{exp} missing from help");
    }
}

#[test]
fn unknown_experiment_fails() {
    let (code, _, err) = repro(&["fig99"]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown experiment"));
}

#[test]
fn fig2_table_shape() {
    let (code, out, _) = repro(&[&["fig2"], SMALL].concat());
    assert_eq!(code, 0);
    assert!(out.contains("Fig. 2"));
    assert!(out.contains("average-macro"));
    assert!(out.contains("average-micro"));
    // 15 workloads + header + separator + 2 averages.
    assert!(out.lines().count() >= 19);
}

#[test]
fn json_output_parses() {
    let (code, out, _) = repro(&[&["fig13"], SMALL, &["--json"]].concat());
    assert_eq!(code, 0);
    let value: serde_json::Value = serde_json::from_str(&out).expect("valid json");
    let rows = value.as_array().expect("array");
    assert_eq!(rows.len(), 15);
    assert!(rows[0]["stb"].as_f64().is_some());
}

#[test]
fn table2_and_table3_are_constant_time() {
    let (code, out, _) = repro(&["table2"]);
    assert_eq!(code, 0);
    assert!(out.contains("2 GHz"));
    let (code, out, _) = repro(&["table3"]);
    assert_eq!(code, 0);
    assert!(out.contains("CRC Hash"));
    assert!(out.contains("964.00"));
}

#[test]
fn deterministic_across_invocations() {
    let a = repro(&[&["fig15"], SMALL].concat());
    let b = repro(&[&["fig15"], SMALL].concat());
    assert_eq!(a, b);
}

#[test]
fn warmup_must_be_below_ops() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig2", "--ops", "100", "--warmup", "100"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}
