//! Loom models for the seqlock cuckoo table ([`ConcurrentTable`]).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the `loom` CI job):
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p draco-cuckoo --test loom
//! ```
//!
//! Against the vendored shim each model body runs many times with real
//! OS threads (stochastic interleaving smoke); against upstream loom the
//! same source explores every interleaving the C11 memory model allows.
//! The models are deliberately tiny — two threads, a handful of keys —
//! because real loom's state space is exponential in operations.
//!
//! Invariants checked:
//! 1. a reader racing a writer never observes a **torn entry** — every
//!    hit's value words satisfy the writer's self-consistency stamp;
//! 2. a key that was **never inserted** never produces a hit, no matter
//!    how writers rearrange (or clear) the ways around the probe;
//! 3. a thread that inserted a key **reads it back** (its own writes are
//!    never lost to it).
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;

use draco_cuckoo::{ConcurrentTable, InsertOutcome};

/// A value stamped so any torn mix of two entries is detectable: word i
/// must equal `seed + i`, and every word shares the same seed.
fn stamped(seed: u64) -> [u64; 6] {
    [seed, seed + 1, seed + 2, seed + 3, seed + 4, seed + 5]
}

fn assert_untorn(value: [u64; 6]) {
    let seed = value[0];
    for (i, w) in value.iter().enumerate() {
        assert_eq!(
            *w,
            seed + i as u64,
            "torn entry: {value:?} mixes two writers' stamps"
        );
    }
}

#[test]
fn reader_never_observes_a_torn_entry() {
    loom::model(|| {
        let table = Arc::new(ConcurrentTable::with_capacity(4));
        // Same key, two writers with different stamps: the reader must
        // see stamp A, stamp B, or nothing — never a mix.
        let t1 = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                table.insert(b"key-a", stamped(100));
            })
        };
        let t2 = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                table.insert(b"key-a", stamped(200));
            })
        };
        let reader = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                for _ in 0..2 {
                    if let Some(hit) = table.probe(b"key-a").hit {
                        assert_untorn(hit.value);
                        assert!(hit.value[0] == 100 || hit.value[0] == 200);
                    }
                }
            })
        };
        t1.join().unwrap();
        t2.join().unwrap();
        reader.join().unwrap();
        // Quiescent state: the entry is whole and one of the two stamps.
        let hit = table.probe(b"key-a").hit.expect("entry resident");
        assert_untorn(hit.value);
    });
}

#[test]
fn never_inserted_keys_never_hit() {
    loom::model(|| {
        let table = Arc::new(ConcurrentTable::with_capacity(4));
        // A writer churns *other* keys (forcing relocations and slot
        // rewrites in the ways the phantom key hashes into) and clears.
        let writer = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                table.insert(b"real-1", stamped(1));
                table.insert(b"real-2", stamped(7));
                table.clear();
                table.insert(b"real-3", stamped(13));
            })
        };
        let reader = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                for _ in 0..3 {
                    let outcome = table.probe(b"phantom");
                    assert!(
                        outcome.hit.is_none(),
                        "hit for a key no writer ever inserted"
                    );
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    });
}

#[test]
fn inserting_thread_reads_its_key_back() {
    loom::model(|| {
        let table = Arc::new(ConcurrentTable::with_capacity(4));
        let mine = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                let (outcome, _contended) = table.insert(b"mine", stamped(42));
                assert!(matches!(
                    outcome,
                    InsertOutcome::Inserted | InsertOutcome::Updated
                ));
                // Program order: the inserting thread must observe its
                // own publish regardless of the sibling writer.
                let hit = table.probe(b"mine").hit.expect("own insert visible");
                assert_untorn(hit.value);
                assert_eq!(hit.value[0], 42);
            })
        };
        let sibling = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                table.insert(b"theirs", stamped(9));
            })
        };
        mine.join().unwrap();
        sibling.join().unwrap();
    });
}
