//! Hashing and cuckoo-table substrate for Draco's Validated Argument Table.
//!
//! The paper stores validated argument sets in per-syscall hash tables with
//! **2-ary cuckoo hashing** (§V-B) so a lookup is exactly two parallel
//! probes, and computes the two hash functions as **CRC codes using the
//! ECMA-182 polynomial and its complement** (§VII-A). This crate provides
//! both pieces:
//!
//! * [`Crc64`] — a CRC-64 engine (bitwise LFSR reference and table-driven
//!   fast path) with the [`Crc64::ECMA`] and [`Crc64::NOT_ECMA`]
//!   polynomials used by Draco;
//! * [`CuckooTable`] — a bounded two-way cuckoo hash table with relocation
//!   on insert and explicit eviction when relocation exceeds a threshold
//!   (paper §VII-A: "if the cuckoo hashing fails after a threshold number
//!   of attempts, the OS makes room by evicting one entry").
//!
//! # Example
//!
//! ```
//! use draco_cuckoo::{CrcPairHasher, CuckooTable};
//!
//! let mut vat = CuckooTable::with_capacity(8, CrcPairHasher::default());
//! vat.insert(b"argset-1".to_vec(), ());
//! assert!(vat.lookup(&b"argset-1".to_vec()).is_some());
//! assert!(vat.lookup(&b"argset-2".to_vec()).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod concurrent;
mod crc;
mod table;

pub use concurrent::{
    ConcurrentHit, ConcurrentTable, ConcurrentTableStats, ConcurrentWriteGuard, InsertOutcome,
    ProbeOutcome, MAX_KEY_BYTES, VALUE_WORDS,
};
pub use crc::{clmul_detected, Crc64, Crc64Fold, HashPair};
pub use table::{CrcPairHasher, CuckooTable, Lookup, PairHasher, TableStats, Way};
