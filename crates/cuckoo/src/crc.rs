//! CRC-64 hash functions.
//!
//! Draco hashes the selected argument bytes with two CRC functions: one
//! using the ECMA-182 polynomial and one using its bitwise complement
//! (paper §VII-A). The hardware implementation is a linear-feedback shift
//! register (paper §XI-C, 964 ps at 22 nm); [`Crc64::checksum_bitwise`] is
//! a faithful software rendering of that LFSR, [`Crc64::checksum_slice1`]
//! the classic one-table equivalent, and [`Crc64::checksum`] the
//! slice-by-8 variant used on hot paths — it folds eight message bytes
//! per step through eight precomputed tables, the software analogue of
//! the LFSR consuming a wide word per cycle. All three agree bit-for-bit
//! (property-tested).

use core::fmt;
use std::sync::OnceLock;

/// A CRC-64 engine for a fixed generator polynomial.
///
/// The engine is MSB-first (non-reflected) with zero initial value and zero
/// output XOR — the classic CRC-64/ECMA-182 configuration.
///
/// # Example
///
/// ```
/// use draco_cuckoo::Crc64;
///
/// let crc = Crc64::ecma();
/// // Published CRC-64/ECMA-182 check value for "123456789".
/// assert_eq!(crc.checksum(b"123456789"), 0x6c40_df5f_0b49_7347);
/// ```
#[derive(Clone)]
pub struct Crc64 {
    poly: u64,
    /// Slice-by-8 tables: `tables[0]` is the classic byte-at-a-time
    /// table; `tables[k][i]` advances the CRC by byte `i` followed by
    /// `k` zero bytes, so eight table reads fold a whole 64-bit word.
    tables: Box<[[u64; 256]; 8]>,
}

impl Crc64 {
    /// The ECMA-182 generator polynomial (paper's `H1`).
    pub const ECMA: u64 = 0x42f0_e1eb_a9ea_3693;

    /// The complemented ECMA-182 polynomial (paper's `H2`, "¬ECMA").
    ///
    /// The complement keeps the x^64 term implicit and inverts the
    /// remaining coefficients, giving a second, independent hash function
    /// with the same LFSR datapath.
    pub const NOT_ECMA: u64 = !Self::ECMA;

    /// Creates an engine for an arbitrary polynomial.
    pub fn new(poly: u64) -> Self {
        let mut tables = Box::new([[0u64; 256]; 8]);
        for i in 0..256usize {
            let mut crc = (i as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ poly
                } else {
                    crc << 1
                };
            }
            tables[0][i] = crc;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = tables[k - 1][i];
                tables[k][i] = (prev << 8) ^ tables[0][(prev >> 56) as usize];
            }
        }
        Crc64 { poly, tables }
    }

    /// The ECMA-182 engine.
    pub fn ecma() -> Self {
        Self::ecma_shared().clone()
    }

    /// The complemented-polynomial engine.
    pub fn not_ecma() -> Self {
        Self::not_ecma_shared().clone()
    }

    /// The process-wide ECMA-182 engine. The 16 KiB of slice-by-8 tables
    /// are built once and shared, so constructing a hasher per VAT table
    /// costs a pointer copy, not a table build.
    pub fn ecma_shared() -> &'static Crc64 {
        static ENGINE: OnceLock<Crc64> = OnceLock::new();
        ENGINE.get_or_init(|| Crc64::new(Self::ECMA))
    }

    /// The process-wide complemented-polynomial engine.
    pub fn not_ecma_shared() -> &'static Crc64 {
        static ENGINE: OnceLock<Crc64> = OnceLock::new();
        ENGINE.get_or_init(|| Crc64::new(Self::NOT_ECMA))
    }

    /// The generator polynomial.
    pub const fn poly(&self) -> u64 {
        self.poly
    }

    /// Computes the CRC of `data`, folding eight bytes per step
    /// (slice-by-8) with a byte-at-a-time tail.
    pub fn checksum(&self, data: &[u8]) -> u64 {
        self.update(0, data)
    }

    /// Advances an in-flight CRC state over `data` (slice-by-8 body,
    /// byte-at-a-time tail). `checksum` is `update(0, data)`; the batch
    /// engines use nonzero states to resume after their lockstep body.
    #[inline]
    fn update(&self, state: u64, data: &[u8]) -> u64 {
        let mut crc = state;
        let mut chunks = data.chunks_exact(8);
        for chunk in chunks.by_ref() {
            crc = self.fold8(crc, chunk);
        }
        for &b in chunks.remainder() {
            let idx = ((crc >> 56) as u8 ^ b) as usize;
            crc = (crc << 8) ^ self.tables[0][idx];
        }
        crc
    }

    /// One slice-by-8 step: absorbs an aligned 8-byte chunk into `crc`.
    #[inline(always)]
    fn fold8(&self, crc: u64, chunk: &[u8]) -> u64 {
        let word = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        let x = crc ^ word;
        // The byte consumed first (MSB) still has seven message bytes
        // after it, so it needs the most zero-byte advancement.
        self.tables[7][(x >> 56) as usize]
            ^ self.tables[6][(x >> 48) as usize & 0xff]
            ^ self.tables[5][(x >> 40) as usize & 0xff]
            ^ self.tables[4][(x >> 32) as usize & 0xff]
            ^ self.tables[3][(x >> 24) as usize & 0xff]
            ^ self.tables[2][(x >> 16) as usize & 0xff]
            ^ self.tables[1][(x >> 8) as usize & 0xff]
            ^ self.tables[0][x as usize & 0xff]
    }

    /// Computes four CRCs at once, interleaving the slice-by-8 folds of
    /// the four lanes so they form independent dependency chains.
    ///
    /// A single CRC is a serial recurrence — each fold waits on the
    /// previous one — so the scalar loop leaves most of the core's
    /// load/ALU ports idle. Interleaving four lanes (the batch check
    /// path runs this on both polynomials, eight chains total) gives
    /// the out-of-order engine independent work per cycle, the same
    /// trick hardware Draco plays by overlapping SLB hashing with the
    /// pipeline. Bit-for-bit equal to four [`Crc64::checksum`] calls.
    pub fn checksum4(&self, lanes: [&[u8]; 4]) -> [u64; 4] {
        let lockstep = lanes.iter().map(|lane| lane.len()).min().unwrap_or(0) / 8 * 8;
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        let mut off = 0;
        while off < lockstep {
            c0 = self.fold8(c0, &lanes[0][off..off + 8]);
            c1 = self.fold8(c1, &lanes[1][off..off + 8]);
            c2 = self.fold8(c2, &lanes[2][off..off + 8]);
            c3 = self.fold8(c3, &lanes[3][off..off + 8]);
            off += 8;
        }
        [
            self.update(c0, &lanes[0][off..]),
            self.update(c1, &lanes[1][off..]),
            self.update(c2, &lanes[2][off..]),
            self.update(c3, &lanes[3][off..]),
        ]
    }

    /// Computes the CRC one byte (one table read) at a time — the classic
    /// single-table formulation, kept as a mid-speed reference point
    /// between [`Crc64::checksum_bitwise`] and [`Crc64::checksum`].
    pub fn checksum_slice1(&self, data: &[u8]) -> u64 {
        let mut crc = 0u64;
        for &b in data {
            let idx = ((crc >> 56) as u8 ^ b) as usize;
            crc = (crc << 8) ^ self.tables[0][idx];
        }
        crc
    }

    /// Computes the CRC bit-serially, mirroring the hardware LFSR.
    ///
    /// Slower than [`Crc64::checksum`]; used as the reference
    /// implementation in tests and available for callers that want the
    /// hardware-shaped path.
    pub fn checksum_bitwise(&self, data: &[u8]) -> u64 {
        let mut crc = 0u64;
        for &byte in data {
            crc ^= u64::from(byte) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ self.poly
                } else {
                    crc << 1
                };
            }
        }
        crc
    }
}

impl fmt::Debug for Crc64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Crc64(poly={:#018x})", self.poly)
    }
}

/// Whether this CPU reports the carry-less-multiply instruction the
/// folding engine models (`pclmulqdq` on x86-64).
///
/// [`Crc64Fold`] itself is pure safe code and works everywhere; this
/// gate exists so callers can mirror the deployment shape of a real
/// CLMUL implementation — take the folding path only where the
/// instruction exists, fall back to slice-by-8 elsewhere (see
/// [`Crc64Fold::checksum_auto`]). Always `false` on non-x86-64 targets
/// and under Miri.
pub fn clmul_detected() -> bool {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        std::arch::is_x86_feature_detected!("pclmulqdq")
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        false
    }
}

/// Carry-less multiplication of a 64-bit variable by a fixed 64-bit
/// constant, four bits of the variable per table read.
///
/// `nibble[d]` holds the carry-less product `d(x) · C(x)` (degree
/// ≤ 66, so the shifted partials stay inside a `u128`); a full
/// multiply XORs sixteen shifted partials — the safe-code stand-in
/// for one `pclmulqdq`.
#[derive(Clone, Copy)]
struct ClmulByConst {
    nibble: [u128; 16],
}

impl ClmulByConst {
    fn new(constant: u64) -> Self {
        let mut nibble = [0u128; 16];
        for (d, slot) in nibble.iter_mut().enumerate() {
            let mut acc = 0u128;
            for bit in 0..4 {
                if d & (1 << bit) != 0 {
                    acc ^= u128::from(constant) << bit;
                }
            }
            *slot = acc;
        }
        ClmulByConst { nibble }
    }

    #[inline(always)]
    fn mul(&self, mut v: u64) -> u128 {
        let mut acc = 0u128;
        let mut shift = 0u32;
        for _ in 0..16 {
            acc ^= self.nibble[(v & 0xf) as usize] << shift;
            v >>= 4;
            shift += 4;
        }
        acc
    }
}

/// The CLMUL-style folding CRC engine: 128-bit blocks reduced with two
/// carry-less multiplies per step, exactly the schedule a `pclmulqdq`
/// implementation uses — rendered in safe code so the crate's
/// `forbid(unsafe_code)` holds.
///
/// The running 128-bit state `S` stays *congruent* to the message
/// polynomial mod `P` instead of being reduced every step: folding one
/// block computes `S·x¹²⁸ mod P = hi(S)·(x¹⁹² mod P) ⊕ lo(S)·(x¹²⁸ mod
/// P)` with two multiplies, then XORs in the next block. Finalization
/// feeds the state's 16 bytes through the table engine (the state *is*
/// a 16-byte message with the same CRC) and streams any tail bytes.
///
/// Inputs shorter than one block fall back to [`Crc64::checksum`].
/// Property-tested bit-for-bit against the scalar engines on all
/// lengths 0..=256 and random long inputs.
pub struct Crc64Fold {
    base: &'static Crc64,
    /// Multiplies by `x^192 mod P` (folds the state's high half).
    fold_hi: ClmulByConst,
    /// Multiplies by `x^128 mod P` (folds the state's low half).
    fold_lo: ClmulByConst,
}

impl Crc64Fold {
    /// Builds a folding engine over a shared table engine, deriving the
    /// two folding constants from its polynomial.
    pub fn new(base: &'static Crc64) -> Self {
        let poly = base.poly();
        Crc64Fold {
            base,
            fold_hi: ClmulByConst::new(x_pow_mod(poly, 192)),
            fold_lo: ClmulByConst::new(x_pow_mod(poly, 128)),
        }
    }

    /// The process-wide ECMA-182 folding engine.
    pub fn ecma_shared() -> &'static Crc64Fold {
        static ENGINE: OnceLock<Crc64Fold> = OnceLock::new();
        ENGINE.get_or_init(|| Crc64Fold::new(Crc64::ecma_shared()))
    }

    /// The process-wide complemented-polynomial folding engine.
    pub fn not_ecma_shared() -> &'static Crc64Fold {
        static ENGINE: OnceLock<Crc64Fold> = OnceLock::new();
        ENGINE.get_or_init(|| Crc64Fold::new(Crc64::not_ecma_shared()))
    }

    /// The underlying table engine (and polynomial).
    pub fn base(&self) -> &'static Crc64 {
        self.base
    }

    /// Computes the CRC by 128-bit folding. Bit-for-bit equal to
    /// [`Crc64::checksum`] on the same data.
    pub fn checksum(&self, data: &[u8]) -> u64 {
        let mut chunks = data.chunks_exact(16);
        let Some(first) = chunks.next() else {
            return self.base.checksum(data);
        };
        let mut state = u128::from_be_bytes(first.try_into().expect("16-byte block"));
        for chunk in chunks.by_ref() {
            let block = u128::from_be_bytes(chunk.try_into().expect("16-byte block"));
            state = self.fold_hi.mul((state >> 64) as u64) ^ self.fold_lo.mul(state as u64) ^ block;
        }
        let crc = self.base.checksum(&state.to_be_bytes());
        self.base.update(crc, chunks.remainder())
    }

    /// Folding where the CPU reports the modelled instruction
    /// ([`clmul_detected`]), falling back cleanly to the scalar
    /// slice-by-8 engine everywhere else. Identical results either way.
    pub fn checksum_auto(&self, data: &[u8]) -> u64 {
        if clmul_detected() {
            self.checksum(data)
        } else {
            self.base.checksum(data)
        }
    }
}

impl fmt::Debug for Crc64Fold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Crc64Fold(poly={:#018x})", self.base.poly())
    }
}

/// `x^n mod P` over GF(2), for deriving folding constants.
fn x_pow_mod(poly: u64, n: u32) -> u64 {
    let mut r = 1u64;
    for _ in 0..n {
        r = if r & (1 << 63) != 0 {
            (r << 1) ^ poly
        } else {
            r << 1
        };
    }
    r
}

/// The two hash values Draco computes per argument set (`H1`, `H2`).
///
/// The SLB and STB store the *one* hash that located the entry in the VAT
/// (paper §VI-A), so the pair keeps its components addressable by
/// [`Way`](crate::Way).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HashPair {
    /// The ECMA-polynomial hash (indexes way 0).
    pub h1: u64,
    /// The complement-polynomial hash (indexes way 1).
    pub h2: u64,
}

impl HashPair {
    /// Returns the hash for the given way.
    pub const fn for_way(&self, way: crate::Way) -> u64 {
        match way {
            crate::Way::H1 => self.h1,
            crate::Way::H2 => self.h2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecma_check_value() {
        // CRC-64/ECMA-182: poly 0x42f0e1eba9ea3693, init 0, non-reflected,
        // xorout 0, check("123456789") = 0x6c40df5f0b497347.
        assert_eq!(Crc64::ecma().checksum(b"123456789"), 0x6c40_df5f_0b49_7347);
    }

    #[test]
    fn bitwise_matches_table_on_check_string() {
        for crc in [Crc64::ecma(), Crc64::not_ecma(), Crc64::new(0x1b)] {
            assert_eq!(
                crc.checksum(b"123456789"),
                crc.checksum_bitwise(b"123456789"),
                "poly {:#x}",
                crc.poly()
            );
        }
    }

    #[test]
    fn empty_input_hashes_to_zero() {
        assert_eq!(Crc64::ecma().checksum(&[]), 0);
        assert_eq!(Crc64::not_ecma().checksum_bitwise(&[]), 0);
    }

    #[test]
    fn polynomials_are_complements() {
        assert_eq!(Crc64::ECMA ^ Crc64::NOT_ECMA, u64::MAX);
    }

    #[test]
    fn different_polys_give_independent_hashes() {
        let a = Crc64::ecma().checksum(b"futex(0x7f..., 128, 2)");
        let b = Crc64::not_ecma().checksum(b"futex(0x7f..., 128, 2)");
        assert_ne!(a, b);
    }

    #[test]
    fn single_bit_input_difference_changes_hash() {
        let crc = Crc64::ecma();
        assert_ne!(crc.checksum(&[0, 0, 0, 1]), crc.checksum(&[0, 0, 0, 0]));
    }

    #[test]
    fn hash_pair_way_selection() {
        let pair = HashPair { h1: 11, h2: 22 };
        assert_eq!(pair.for_way(crate::Way::H1), 11);
        assert_eq!(pair.for_way(crate::Way::H2), 22);
    }

    #[test]
    fn debug_shows_polynomial() {
        assert!(format!("{:?}", Crc64::ecma()).contains("0x42f0e1eba9ea3693"));
        assert!(format!("{:?}", Crc64Fold::ecma_shared()).contains("0x42f0e1eba9ea3693"));
    }

    /// Every engine variant — bitwise, slice-by-1, slice-by-8, 4-lane
    /// interleaved, and CLMUL folding — agrees on *every* length
    /// 0..=256 (the satellite's exhaustive sweep; proptest covers the
    /// random long inputs).
    #[test]
    fn all_lengths_up_to_256_agree_across_all_variants() {
        for (crc, fold) in [
            (Crc64::ecma_shared(), Crc64Fold::ecma_shared()),
            (Crc64::not_ecma_shared(), Crc64Fold::not_ecma_shared()),
        ] {
            for len in 0..=256usize {
                let data: Vec<u8> = (0..len).map(|i| (i * 31 + len * 7) as u8).collect();
                let want = crc.checksum_bitwise(&data);
                assert_eq!(crc.checksum_slice1(&data), want, "slice1 len {len}");
                assert_eq!(crc.checksum(&data), want, "slice8 len {len}");
                assert_eq!(fold.checksum(&data), want, "fold len {len}");
                assert_eq!(fold.checksum_auto(&data), want, "auto len {len}");
                let lanes = crc.checksum4([&data, &data, &data, &data]);
                assert_eq!(lanes, [want; 4], "interleaved len {len}");
            }
        }
    }

    #[test]
    fn interleaved_lanes_of_unequal_lengths_agree_with_scalar() {
        let crc = Crc64::ecma_shared();
        let a: Vec<u8> = (0..3).collect();
        let b: Vec<u8> = (0..17).collect();
        let c: Vec<u8> = vec![];
        let d: Vec<u8> = (0..48).map(|i| i * 5).collect();
        let got = crc.checksum4([&a, &b, &c, &d]);
        assert_eq!(
            got,
            [
                crc.checksum(&a),
                crc.checksum(&b),
                crc.checksum(&c),
                crc.checksum(&d)
            ]
        );
    }

    #[test]
    fn fold_constants_match_first_principles() {
        // x^64 mod P is P's low word by definition, and folding a block
        // of zeros must leave the congruence class unchanged.
        assert_eq!(super::x_pow_mod(Crc64::ECMA, 64), Crc64::ECMA);
        assert_eq!(super::x_pow_mod(Crc64::ECMA, 0), 1);
        let fold = Crc64Fold::ecma_shared();
        let msg = [0xabu8; 32];
        assert_eq!(fold.checksum(&msg), fold.base().checksum(&msg));
    }

    #[test]
    fn detection_is_stable_and_auto_always_matches_scalar() {
        // Whatever the CPU reports, the gate must answer consistently
        // and `checksum_auto` must land on the same bits as the scalar
        // engine — i.e. the fallback is clean on both kinds of machine.
        assert_eq!(clmul_detected(), clmul_detected());
        let fold = Crc64Fold::not_ecma_shared();
        for len in [0usize, 5, 16, 23, 64, 200] {
            let data: Vec<u8> = (0..len).map(|i| (i * 13) as u8).collect();
            assert_eq!(fold.checksum_auto(&data), fold.base().checksum(&data));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn table_and_bitwise_agree(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let crc = Crc64::ecma();
            prop_assert_eq!(crc.checksum(&data), crc.checksum_bitwise(&data));
            let crc2 = Crc64::not_ecma();
            prop_assert_eq!(crc2.checksum(&data), crc2.checksum_bitwise(&data));
        }

        /// All three implementations — bit-serial LFSR, slice-by-1, and
        /// slice-by-8 — agree bit-for-bit on every input, including the
        /// lengths around the 8-byte folding boundary.
        #[test]
        fn all_three_variants_agree(data in proptest::collection::vec(any::<u8>(), 0..80)) {
            for crc in [Crc64::ecma(), Crc64::not_ecma(), Crc64::new(0x1b)] {
                let bitwise = crc.checksum_bitwise(&data);
                prop_assert_eq!(crc.checksum_slice1(&data), bitwise);
                prop_assert_eq!(crc.checksum(&data), bitwise);
            }
        }

        /// The 4-lane interleaved engine is four independent scalar
        /// CRCs, for arbitrary (and unequal) lane lengths.
        #[test]
        fn interleaved_agrees_with_scalar(
            a in proptest::collection::vec(any::<u8>(), 0..257),
            b in proptest::collection::vec(any::<u8>(), 0..257),
            c in proptest::collection::vec(any::<u8>(), 0..257),
            d in proptest::collection::vec(any::<u8>(), 0..257),
        ) {
            for crc in [Crc64::ecma_shared(), Crc64::not_ecma_shared()] {
                let got = crc.checksum4([&a, &b, &c, &d]);
                let want = [
                    crc.checksum(&a),
                    crc.checksum(&b),
                    crc.checksum(&c),
                    crc.checksum(&d),
                ];
                prop_assert_eq!(got, want);
            }
        }

        /// The CLMUL folding engine agrees with the scalar engines on
        /// short inputs (0..=256, straddling its 16-byte block edge).
        #[test]
        fn fold_agrees_with_scalar(data in proptest::collection::vec(any::<u8>(), 0..257)) {
            for fold in [Crc64Fold::ecma_shared(), Crc64Fold::not_ecma_shared()] {
                let want = fold.base().checksum(&data);
                prop_assert_eq!(fold.checksum(&data), want);
                prop_assert_eq!(fold.checksum_auto(&data), want);
            }
        }

        /// ... and on random long inputs, where the folding loop does
        /// the bulk of the work.
        #[test]
        fn fold_agrees_on_long_inputs(data in proptest::collection::vec(any::<u8>(), 1024..4096)) {
            for fold in [Crc64Fold::ecma_shared(), Crc64Fold::not_ecma_shared()] {
                prop_assert_eq!(fold.checksum(&data), fold.base().checksum(&data));
            }
            let ecma = Crc64::ecma_shared();
            let lanes = ecma.checksum4([&data, &data[1..], &data[..16], &data]);
            prop_assert_eq!(lanes[0], ecma.checksum(&data));
            prop_assert_eq!(lanes[1], ecma.checksum(&data[1..]));
            prop_assert_eq!(lanes[2], ecma.checksum(&data[..16]));
            prop_assert_eq!(lanes[3], lanes[0]);
        }

        #[test]
        fn crc_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let a = Crc64::ecma().checksum(&data);
            let b = Crc64::ecma().checksum(&data);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn crc_linearity(data in proptest::collection::vec(any::<u8>(), 1..64)) {
            // CRC is linear over GF(2): crc(a) ^ crc(b) == crc(a ^ b) for
            // equal-length messages (with init = xorout = 0).
            let crc = Crc64::ecma();
            let zeros = vec![0u8; data.len()];
            let x: Vec<u8> = data.iter().map(|b| b ^ 0xa5).collect();
            let a5: Vec<u8> = vec![0xa5; data.len()];
            prop_assert_eq!(crc.checksum(&zeros), 0);
            prop_assert_eq!(
                crc.checksum(&data) ^ crc.checksum(&a5),
                crc.checksum(&x)
            );
        }
    }
}
