//! CRC-64 hash functions.
//!
//! Draco hashes the selected argument bytes with two CRC functions: one
//! using the ECMA-182 polynomial and one using its bitwise complement
//! (paper §VII-A). The hardware implementation is a linear-feedback shift
//! register (paper §XI-C, 964 ps at 22 nm); [`Crc64::checksum_bitwise`] is
//! a faithful software rendering of that LFSR, [`Crc64::checksum_slice1`]
//! the classic one-table equivalent, and [`Crc64::checksum`] the
//! slice-by-8 variant used on hot paths — it folds eight message bytes
//! per step through eight precomputed tables, the software analogue of
//! the LFSR consuming a wide word per cycle. All three agree bit-for-bit
//! (property-tested).

use core::fmt;
use std::sync::OnceLock;

/// A CRC-64 engine for a fixed generator polynomial.
///
/// The engine is MSB-first (non-reflected) with zero initial value and zero
/// output XOR — the classic CRC-64/ECMA-182 configuration.
///
/// # Example
///
/// ```
/// use draco_cuckoo::Crc64;
///
/// let crc = Crc64::ecma();
/// // Published CRC-64/ECMA-182 check value for "123456789".
/// assert_eq!(crc.checksum(b"123456789"), 0x6c40_df5f_0b49_7347);
/// ```
#[derive(Clone)]
pub struct Crc64 {
    poly: u64,
    /// Slice-by-8 tables: `tables[0]` is the classic byte-at-a-time
    /// table; `tables[k][i]` advances the CRC by byte `i` followed by
    /// `k` zero bytes, so eight table reads fold a whole 64-bit word.
    tables: Box<[[u64; 256]; 8]>,
}

impl Crc64 {
    /// The ECMA-182 generator polynomial (paper's `H1`).
    pub const ECMA: u64 = 0x42f0_e1eb_a9ea_3693;

    /// The complemented ECMA-182 polynomial (paper's `H2`, "¬ECMA").
    ///
    /// The complement keeps the x^64 term implicit and inverts the
    /// remaining coefficients, giving a second, independent hash function
    /// with the same LFSR datapath.
    pub const NOT_ECMA: u64 = !Self::ECMA;

    /// Creates an engine for an arbitrary polynomial.
    pub fn new(poly: u64) -> Self {
        let mut tables = Box::new([[0u64; 256]; 8]);
        for i in 0..256usize {
            let mut crc = (i as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ poly
                } else {
                    crc << 1
                };
            }
            tables[0][i] = crc;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = tables[k - 1][i];
                tables[k][i] = (prev << 8) ^ tables[0][(prev >> 56) as usize];
            }
        }
        Crc64 { poly, tables }
    }

    /// The ECMA-182 engine.
    pub fn ecma() -> Self {
        Self::ecma_shared().clone()
    }

    /// The complemented-polynomial engine.
    pub fn not_ecma() -> Self {
        Self::not_ecma_shared().clone()
    }

    /// The process-wide ECMA-182 engine. The 16 KiB of slice-by-8 tables
    /// are built once and shared, so constructing a hasher per VAT table
    /// costs a pointer copy, not a table build.
    pub fn ecma_shared() -> &'static Crc64 {
        static ENGINE: OnceLock<Crc64> = OnceLock::new();
        ENGINE.get_or_init(|| Crc64::new(Self::ECMA))
    }

    /// The process-wide complemented-polynomial engine.
    pub fn not_ecma_shared() -> &'static Crc64 {
        static ENGINE: OnceLock<Crc64> = OnceLock::new();
        ENGINE.get_or_init(|| Crc64::new(Self::NOT_ECMA))
    }

    /// The generator polynomial.
    pub const fn poly(&self) -> u64 {
        self.poly
    }

    /// Computes the CRC of `data`, folding eight bytes per step
    /// (slice-by-8) with a byte-at-a-time tail.
    pub fn checksum(&self, data: &[u8]) -> u64 {
        let mut crc = 0u64;
        let mut chunks = data.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let word = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
            let x = crc ^ word;
            // The byte consumed first (MSB) still has seven message bytes
            // after it, so it needs the most zero-byte advancement.
            crc = self.tables[7][(x >> 56) as usize]
                ^ self.tables[6][(x >> 48) as usize & 0xff]
                ^ self.tables[5][(x >> 40) as usize & 0xff]
                ^ self.tables[4][(x >> 32) as usize & 0xff]
                ^ self.tables[3][(x >> 24) as usize & 0xff]
                ^ self.tables[2][(x >> 16) as usize & 0xff]
                ^ self.tables[1][(x >> 8) as usize & 0xff]
                ^ self.tables[0][x as usize & 0xff];
        }
        for &b in chunks.remainder() {
            let idx = ((crc >> 56) as u8 ^ b) as usize;
            crc = (crc << 8) ^ self.tables[0][idx];
        }
        crc
    }

    /// Computes the CRC one byte (one table read) at a time — the classic
    /// single-table formulation, kept as a mid-speed reference point
    /// between [`Crc64::checksum_bitwise`] and [`Crc64::checksum`].
    pub fn checksum_slice1(&self, data: &[u8]) -> u64 {
        let mut crc = 0u64;
        for &b in data {
            let idx = ((crc >> 56) as u8 ^ b) as usize;
            crc = (crc << 8) ^ self.tables[0][idx];
        }
        crc
    }

    /// Computes the CRC bit-serially, mirroring the hardware LFSR.
    ///
    /// Slower than [`Crc64::checksum`]; used as the reference
    /// implementation in tests and available for callers that want the
    /// hardware-shaped path.
    pub fn checksum_bitwise(&self, data: &[u8]) -> u64 {
        let mut crc = 0u64;
        for &byte in data {
            crc ^= (byte as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ self.poly
                } else {
                    crc << 1
                };
            }
        }
        crc
    }
}

impl fmt::Debug for Crc64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Crc64(poly={:#018x})", self.poly)
    }
}

/// The two hash values Draco computes per argument set (`H1`, `H2`).
///
/// The SLB and STB store the *one* hash that located the entry in the VAT
/// (paper §VI-A), so the pair keeps its components addressable by
/// [`Way`](crate::Way).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HashPair {
    /// The ECMA-polynomial hash (indexes way 0).
    pub h1: u64,
    /// The complement-polynomial hash (indexes way 1).
    pub h2: u64,
}

impl HashPair {
    /// Returns the hash for the given way.
    pub const fn for_way(&self, way: crate::Way) -> u64 {
        match way {
            crate::Way::H1 => self.h1,
            crate::Way::H2 => self.h2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecma_check_value() {
        // CRC-64/ECMA-182: poly 0x42f0e1eba9ea3693, init 0, non-reflected,
        // xorout 0, check("123456789") = 0x6c40df5f0b497347.
        assert_eq!(Crc64::ecma().checksum(b"123456789"), 0x6c40_df5f_0b49_7347);
    }

    #[test]
    fn bitwise_matches_table_on_check_string() {
        for crc in [Crc64::ecma(), Crc64::not_ecma(), Crc64::new(0x1b)] {
            assert_eq!(
                crc.checksum(b"123456789"),
                crc.checksum_bitwise(b"123456789"),
                "poly {:#x}",
                crc.poly()
            );
        }
    }

    #[test]
    fn empty_input_hashes_to_zero() {
        assert_eq!(Crc64::ecma().checksum(&[]), 0);
        assert_eq!(Crc64::not_ecma().checksum_bitwise(&[]), 0);
    }

    #[test]
    fn polynomials_are_complements() {
        assert_eq!(Crc64::ECMA ^ Crc64::NOT_ECMA, u64::MAX);
    }

    #[test]
    fn different_polys_give_independent_hashes() {
        let a = Crc64::ecma().checksum(b"futex(0x7f..., 128, 2)");
        let b = Crc64::not_ecma().checksum(b"futex(0x7f..., 128, 2)");
        assert_ne!(a, b);
    }

    #[test]
    fn single_bit_input_difference_changes_hash() {
        let crc = Crc64::ecma();
        assert_ne!(crc.checksum(&[0, 0, 0, 1]), crc.checksum(&[0, 0, 0, 0]));
    }

    #[test]
    fn hash_pair_way_selection() {
        let pair = HashPair { h1: 11, h2: 22 };
        assert_eq!(pair.for_way(crate::Way::H1), 11);
        assert_eq!(pair.for_way(crate::Way::H2), 22);
    }

    #[test]
    fn debug_shows_polynomial() {
        assert!(format!("{:?}", Crc64::ecma()).contains("0x42f0e1eba9ea3693"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn table_and_bitwise_agree(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let crc = Crc64::ecma();
            prop_assert_eq!(crc.checksum(&data), crc.checksum_bitwise(&data));
            let crc2 = Crc64::not_ecma();
            prop_assert_eq!(crc2.checksum(&data), crc2.checksum_bitwise(&data));
        }

        /// All three implementations — bit-serial LFSR, slice-by-1, and
        /// slice-by-8 — agree bit-for-bit on every input, including the
        /// lengths around the 8-byte folding boundary.
        #[test]
        fn all_three_variants_agree(data in proptest::collection::vec(any::<u8>(), 0..80)) {
            for crc in [Crc64::ecma(), Crc64::not_ecma(), Crc64::new(0x1b)] {
                let bitwise = crc.checksum_bitwise(&data);
                prop_assert_eq!(crc.checksum_slice1(&data), bitwise);
                prop_assert_eq!(crc.checksum(&data), bitwise);
            }
        }

        #[test]
        fn crc_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let a = Crc64::ecma().checksum(&data);
            let b = Crc64::ecma().checksum(&data);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn crc_linearity(data in proptest::collection::vec(any::<u8>(), 1..64)) {
            // CRC is linear over GF(2): crc(a) ^ crc(b) == crc(a ^ b) for
            // equal-length messages (with init = xorout = 0).
            let crc = Crc64::ecma();
            let zeros = vec![0u8; data.len()];
            let x: Vec<u8> = data.iter().map(|b| b ^ 0xa5).collect();
            let a5: Vec<u8> = vec![0xa5; data.len()];
            prop_assert_eq!(crc.checksum(&zeros), 0);
            prop_assert_eq!(
                crc.checksum(&data) ^ crc.checksum(&a5),
                crc.checksum(&x)
            );
        }
    }
}
