//! Bounded two-way cuckoo hash tables.
//!
//! A Draco VAT structure is one such table per allowed system call: two
//! ways, each indexed by one hash function, so a lookup is exactly two
//! probes that can proceed in parallel in hardware (paper §V-B). Insertion
//! uses the classic cuckoo relocation loop; when relocation exceeds a
//! threshold the table *evicts* a resident entry instead of growing —
//! mirroring the OS behaviour of §VII-A and keeping VAT memory bounded.

use core::borrow::Borrow;
use core::fmt;

use draco_obs::{CuckooMetrics, Histogram};

use crate::{Crc64, HashPair};

/// Which hash function / way located an entry.
///
/// The paper's SLB and STB record "the one hash value (of the two possible)
/// that fetched this argument set from the VAT" — `Way` plus the hash value
/// is exactly that record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Way {
    /// The ECMA-polynomial hash, indexing way 0.
    H1,
    /// The complement-polynomial hash, indexing way 1.
    H2,
}

impl Way {
    /// The opposite way.
    #[must_use]
    pub const fn other(self) -> Way {
        match self {
            Way::H1 => Way::H2,
            Way::H2 => Way::H1,
        }
    }

    /// Way index (0 or 1).
    pub const fn index(self) -> usize {
        match self {
            Way::H1 => 0,
            Way::H2 => 1,
        }
    }
}

/// Computes the two hash values of a key.
///
/// Implementations must be deterministic: equal keys yield equal pairs.
pub trait PairHasher<K: ?Sized> {
    /// Returns `(h1, h2)` for the key.
    fn hash_pair(&self, key: &K) -> HashPair;
}

/// The Draco hasher: CRC-64 with the ECMA polynomial for `H1` and its
/// complement for `H2` (paper §VII-A).
///
/// Borrows the process-wide CRC engines, so constructing one per VAT
/// table is two pointer copies — the slice-by-8 tables are built once.
#[derive(Clone, Copy, Debug)]
pub struct CrcPairHasher {
    h1: &'static Crc64,
    h2: &'static Crc64,
}

impl CrcPairHasher {
    /// Creates the standard ECMA / ¬ECMA hasher pair.
    pub fn new() -> Self {
        CrcPairHasher {
            h1: Crc64::ecma_shared(),
            h2: Crc64::not_ecma_shared(),
        }
    }

    /// Hashes four keys at once with the interleaved engine
    /// ([`Crc64::checksum4`]) on both polynomials — eight independent
    /// CRC chains instead of the scalar path's one-at-a-time
    /// recurrence. Bit-for-bit equal to four [`PairHasher::hash_pair`]
    /// calls; the batch check path hashes its VAT candidates through
    /// this in groups of four.
    pub fn hash_pair4(&self, keys: [&[u8]; 4]) -> [HashPair; 4] {
        let h1 = self.h1.checksum4(keys);
        let h2 = self.h2.checksum4(keys);
        [
            HashPair { h1: h1[0], h2: h2[0] },
            HashPair { h1: h1[1], h2: h2[1] },
            HashPair { h1: h1[2], h2: h2[2] },
            HashPair { h1: h1[3], h2: h2[3] },
        ]
    }
}

impl Default for CrcPairHasher {
    fn default() -> Self {
        CrcPairHasher::new()
    }
}

impl<K: AsRef<[u8]> + ?Sized> PairHasher<K> for CrcPairHasher {
    fn hash_pair(&self, key: &K) -> HashPair {
        let bytes = key.as_ref();
        HashPair {
            h1: self.h1.checksum(bytes),
            h2: self.h2.checksum(bytes),
        }
    }
}

/// Result of a successful lookup: where the key lives and which hash found
/// it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lookup {
    /// The way holding the entry.
    pub way: Way,
    /// The slot index within that way.
    pub slot: usize,
    /// The hash value that indexed the slot (what the SLB/STB cache).
    pub hash: u64,
}

/// Occupancy and traffic counters for a table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Entries currently resident.
    pub occupied: usize,
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Insertions that found a free slot (directly or via relocation).
    pub insertions: u64,
    /// Insertions that replaced an existing key's value.
    pub updates: u64,
    /// Entries forcibly evicted because relocation exceeded the threshold.
    pub evictions: u64,
    /// Total relocation steps performed across all insertions.
    pub relocations: u64,
}

#[derive(Clone, Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    pair: HashPair,
    /// Lookup tick of the last hit (or the insertion), for reuse-distance
    /// measurement.
    last_tick: u64,
}

/// A bounded 2-ary cuckoo hash table.
///
/// Capacity is fixed at construction (the OS over-provisions VAT tables to
/// twice the expected number of argument sets, paper §VII-A — that policy
/// lives in `draco-core`; this type just honours whatever bound it is
/// given). Inserting into a full neighbourhood relocates residents; after
/// [`CuckooTable::max_relocations`] displacements the final homeless entry
/// is dropped and counted as an eviction.
///
/// # Example
///
/// ```
/// use draco_cuckoo::{CrcPairHasher, CuckooTable};
///
/// let mut t: CuckooTable<Vec<u8>, u32> =
///     CuckooTable::with_capacity(16, CrcPairHasher::default());
/// t.insert(vec![1, 2, 3], 7);
/// let hit = t.lookup(&vec![1, 2, 3]).expect("present");
/// assert_eq!(*t.value_at(hit).unwrap(), 7);
/// ```
#[derive(Clone)]
pub struct CuckooTable<K, V, H = CrcPairHasher> {
    ways: [Vec<Option<Entry<K, V>>>; 2],
    slots_per_way: usize,
    max_relocations: usize,
    hasher: H,
    stats: TableStats,
    /// Counted lookups so far — the clock for reuse distances.
    tick: u64,
    probe_length: Histogram,
    relocation_steps: Histogram,
    reuse_distance: Histogram,
}

impl<K, V, H> CuckooTable<K, V, H>
where
    K: Eq + Clone,
    H: PairHasher<K>,
{
    /// Default relocation budget before eviction.
    pub const DEFAULT_MAX_RELOCATIONS: usize = 16;

    /// Creates a table with room for `capacity` entries total (split across
    /// the two ways; odd capacities round up).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize, hasher: H) -> Self {
        assert!(capacity > 0, "cuckoo table capacity must be nonzero");
        let slots_per_way = capacity.div_ceil(2);
        CuckooTable {
            ways: [
                (0..slots_per_way).map(|_| None).collect(),
                (0..slots_per_way).map(|_| None).collect(),
            ],
            slots_per_way,
            max_relocations: Self::DEFAULT_MAX_RELOCATIONS,
            hasher,
            stats: TableStats::default(),
            tick: 0,
            probe_length: Histogram::default(),
            relocation_steps: Histogram::default(),
            reuse_distance: Histogram::default(),
        }
    }

    /// Sets the relocation budget (builder-style).
    #[must_use]
    pub fn with_max_relocations(mut self, max: usize) -> Self {
        self.max_relocations = max;
        self
    }

    /// The relocation budget before an insertion evicts.
    pub const fn max_relocations(&self) -> usize {
        self.max_relocations
    }

    /// Total entry capacity.
    pub const fn capacity(&self) -> usize {
        self.slots_per_way * 2
    }

    /// Number of resident entries.
    pub const fn len(&self) -> usize {
        self.stats.occupied
    }

    /// True if no entries are resident.
    pub const fn is_empty(&self) -> bool {
        self.stats.occupied == 0
    }

    /// Traffic counters.
    pub const fn stats(&self) -> TableStats {
        self.stats
    }

    /// This table's observability section: the raw counters plus the
    /// probe-length, relocation-step, and reuse-distance histograms.
    /// Callers holding many tables (the VAT) merge the sections.
    pub fn metrics(&self) -> CuckooMetrics {
        CuckooMetrics {
            hits: self.stats.hits,
            misses: self.stats.misses,
            insertions: self.stats.insertions,
            updates: self.stats.updates,
            evictions: self.stats.evictions,
            relocations: self.stats.relocations,
            probe_length: self.probe_length,
            relocation_steps: self.relocation_steps,
            reuse_distance: self.reuse_distance,
        }
    }

    /// The hash pair the table computes for `key`.
    ///
    /// Accepts any borrowed form of the key type (e.g. `&[u8]` for
    /// byte-string keys), so callers need not materialize an owned `K`
    /// just to hash. The `Borrow` contract guarantees the borrowed form
    /// hashes and compares like the owned key.
    pub fn hash_pair<Q>(&self, key: &Q) -> HashPair
    where
        K: Borrow<Q>,
        Q: ?Sized,
        H: PairHasher<Q>,
    {
        self.hasher.hash_pair(key)
    }

    /// Derives a slot index from a 64-bit hash value.
    ///
    /// The CRC of short messages concentrates its entropy in the high-order
    /// bits (trailing zero bytes leave the low bits untouched), so the
    /// index mixes the whole word (Fibonacci folding) before reduction —
    /// the hardware equivalent is simply tapping different LFSR bits.
    fn slot_for(&self, hash: u64) -> usize {
        let folded = hash.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((folded >> 32) % self.slots_per_way as u64) as usize
    }

    /// Looks up a key; on a hit returns where it lives and which hash
    /// found it. Exactly two probes, like the hardware.
    ///
    /// Like [`CuckooTable::hash_pair`], accepts any borrowed form of the
    /// key — probing with `&[u8]` against owned byte-string keys
    /// allocates nothing.
    pub fn lookup<Q>(&mut self, key: &Q) -> Option<Lookup>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
        H: PairHasher<Q>,
    {
        let pair = self.hasher.hash_pair(key);
        let found = self.probe(key, pair);
        self.count_lookup(found);
        found
    }

    /// Applies the counter updates of one counted lookup whose probing
    /// was performed externally — the staged/traced path hashes and
    /// probes per way itself (to time each stage) and then calls this,
    /// so traced and untraced lookups produce identical statistics.
    /// `found` must be the result of probing *this* table for the key.
    pub fn count_lookup(&mut self, found: Option<Lookup>) {
        self.tick = self.tick.saturating_add(1);
        match found {
            Some(hit) => {
                self.stats.hits += 1;
                self.probe_length.record(1 + hit.way.index() as u64);
                if let Some(entry) = self.ways[hit.way.index()][hit.slot].as_mut() {
                    self.reuse_distance
                        .record(self.tick.saturating_sub(entry.last_tick));
                    entry.last_tick = self.tick;
                }
            }
            None => {
                self.stats.misses += 1;
                // A miss always cost both probes.
                self.probe_length.record(2);
            }
        }
    }

    /// Applies the counter updates of `n` consecutive counted lookups
    /// that all hit the same entry — `hit` must come from probing
    /// *this* table — producing exactly the state of `n` successive
    /// `count_lookup(Some(hit))` calls with no other lookup of this
    /// table in between: the tick advances by `n`, the first lookup
    /// records the entry's pending reuse distance, and the remaining
    /// `n - 1` each record a reuse distance of 1. `n == 0` is a no-op.
    ///
    /// Batch commit paths use this to fold a run of repeated keys into
    /// O(1) bookkeeping; `hashed_bulk_hits_match_serial_count_lookup`
    /// pins the equivalence.
    pub fn count_hits_bulk(&mut self, hit: Lookup, n: u64) {
        if n == 0 {
            return;
        }
        self.tick = self.tick.saturating_add(n);
        self.stats.hits += n;
        self.probe_length.record_n(1 + hit.way.index() as u64, n);
        if let Some(entry) = self.ways[hit.way.index()][hit.slot].as_mut() {
            // The tick after the first of the n lookups.
            let first_tick = self.tick - (n - 1);
            self.reuse_distance
                .record(first_tick.saturating_sub(entry.last_tick));
            self.reuse_distance.record_n(1, n - 1);
            entry.last_tick = self.tick;
        }
    }

    /// Software-prefetches the two slots a hash pair indexes, pulling
    /// both candidate cache lines before any probe compares keys.
    ///
    /// Hardware Draco hides VAT latency by overlapping the SLB walk
    /// with the pipeline; the software batch path gets the same overlap
    /// by touching every candidate slot of a whole batch first, so the
    /// loads are all in flight (or resident) by the time the probe pass
    /// runs. The crate forbids `unsafe`, so this is a bounds-checked
    /// read wrapped in [`core::hint::black_box`] rather than a
    /// `prefetcht0` — it genuinely populates the cache, at the cost of
    /// being a demand load.
    #[inline]
    pub fn prefetch(&self, pair: HashPair) {
        let s1 = self.slot_for(pair.h1);
        let s2 = self.slot_for(pair.h2);
        core::hint::black_box(self.ways[0][s1].is_some());
        core::hint::black_box(self.ways[1][s2].is_some());
    }

    /// Non-counting lookup (used by read-only paths and tests).
    pub fn probe<Q>(&self, key: &Q, pair: HashPair) -> Option<Lookup>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        self.probe_way(key, pair, Way::H1)
            .or_else(|| self.probe_way(key, pair, Way::H2))
    }

    /// Probes a single way (non-counting). [`CuckooTable::probe`] is
    /// exactly `probe_way(H1).or_else(probe_way(H2))`; the traced check
    /// path uses the ways separately to time each probe on its own.
    pub fn probe_way<Q>(&self, key: &Q, pair: HashPair, way: Way) -> Option<Lookup>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
    {
        let hash = pair.for_way(way);
        let slot = self.slot_for(hash);
        match &self.ways[way.index()][slot] {
            Some(entry) if entry.key.borrow() == key => Some(Lookup { way, slot, hash }),
            _ => None,
        }
    }

    /// Returns the value at a lookup position, if still resident.
    pub fn value_at(&self, at: Lookup) -> Option<&V> {
        self.ways[at.way.index()][at.slot].as_ref().map(|e| &e.value)
    }

    /// Returns the key at a lookup position, if still resident.
    pub fn key_at(&self, at: Lookup) -> Option<&K> {
        self.ways[at.way.index()][at.slot].as_ref().map(|e| &e.key)
    }

    /// Inserts a key/value pair.
    ///
    /// * If the key is resident its value is replaced (counted as an
    ///   update).
    /// * Otherwise the entry is placed via cuckoo relocation; if the
    ///   relocation budget is exhausted the displaced entry is dropped and
    ///   returned as `Some((key, value))` (counted as an eviction).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        let pair = self.hasher.hash_pair(&key);
        if let Some(found) = self.probe(&key, pair) {
            self.ways[found.way.index()][found.slot]
                .as_mut()
                .expect("probe returned occupied slot")
                .value = value;
            self.stats.updates += 1;
            return None;
        }

        let mut homeless = Entry {
            key,
            value,
            pair,
            last_tick: self.tick,
        };
        let mut way = Way::H1;
        for step in 0..=self.max_relocations {
            let slot = self.slot_for(homeless.pair.for_way(way));
            let cell = &mut self.ways[way.index()][slot];
            match cell.take() {
                None => {
                    *cell = Some(homeless);
                    self.stats.insertions += 1;
                    self.stats.occupied += 1;
                    self.stats.relocations += step as u64;
                    self.relocation_steps.record(step as u64);
                    return None;
                }
                Some(displaced) => {
                    *cell = Some(homeless);
                    homeless = displaced;
                    // The displaced entry tries its home in the other way.
                    way = way.other();
                }
            }
        }
        // Relocation budget exhausted: the last homeless entry is evicted.
        self.stats.insertions += 1;
        self.stats.evictions += 1;
        self.stats.relocations += self.max_relocations as u64;
        self.relocation_steps.record(self.max_relocations as u64);
        Some((homeless.key, homeless.value))
    }

    /// Removes a key, returning its value if it was resident.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + ?Sized,
        H: PairHasher<Q>,
    {
        let pair = self.hasher.hash_pair(key);
        let found = self.probe(key, pair)?;
        let entry = self.ways[found.way.index()][found.slot].take()?;
        self.stats.occupied -= 1;
        Some(entry.value)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        for way in &mut self.ways {
            for slot in way.iter_mut() {
                *slot = None;
            }
        }
        self.stats.occupied = 0;
    }

    /// Iterates over resident `(key, value)` pairs in way/slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.ways
            .iter()
            .flat_map(|w| w.iter())
            .filter_map(|e| e.as_ref().map(|e| (&e.key, &e.value)))
    }

    /// Approximate resident-set bytes for footprint accounting
    /// (paper §XI-C reports VAT geomean footprints).
    pub fn footprint_bytes(&self, entry_bytes: usize) -> usize {
        self.capacity() * entry_bytes
    }
}

impl<K, V, H> fmt::Debug for CuckooTable<K, V, H> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CuckooTable")
            .field("capacity", &(self.slots_per_way * 2))
            .field("occupied", &self.stats.occupied)
            .field("evictions", &self.stats.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(cap: usize) -> CuckooTable<Vec<u8>, u64> {
        CuckooTable::with_capacity(cap, CrcPairHasher::default())
    }

    fn key(i: u64) -> Vec<u8> {
        i.to_le_bytes().to_vec()
    }

    #[test]
    fn insert_then_lookup() {
        let mut t = table(8);
        assert!(t.is_empty());
        t.insert(key(1), 100);
        let hit = t.lookup(&key(1)).expect("hit");
        assert_eq!(t.value_at(hit), Some(&100));
        assert_eq!(t.key_at(hit), Some(&key(1)));
        assert_eq!(t.len(), 1);
        assert!(t.lookup(&key(2)).is_none());
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn hashed_bulk_hits_match_serial_count_lookup() {
        // Two tables driven identically except one folds runs of
        // repeated hits through count_hits_bulk: every counter,
        // histogram, and entry tick must come out byte-identical.
        let mut bulk = table(8);
        let mut serial = table(8);
        for i in 0..4 {
            bulk.insert(key(i), i);
            serial.insert(key(i), i);
        }
        // Interleave runs on different keys with ordinary counted
        // lookups (including a miss) between them.
        let runs: [(u64, u64); 4] = [(1, 5), (2, 1), (1, 3), (3, 64)];
        for (k, n) in runs {
            let hasher = CrcPairHasher::default();
            let hit = bulk.probe(&key(k), hasher.hash_pair(&key(k))).unwrap();
            bulk.count_hits_bulk(hit, n);
            for _ in 0..n {
                let hit = serial.probe(&key(k), hasher.hash_pair(&key(k))).unwrap();
                serial.count_lookup(Some(hit));
            }
            assert!(bulk.lookup(&key(99)).is_none());
            assert!(serial.lookup(&key(99)).is_none());
        }
        assert_eq!(bulk.stats(), serial.stats());
        assert_eq!(bulk.metrics(), serial.metrics());
        // A zero-length run is a no-op.
        let before = bulk.metrics();
        let hasher = CrcPairHasher::default();
        let hit = bulk.probe(&key(2), hasher.hash_pair(&key(2))).unwrap();
        bulk.count_hits_bulk(hit, 0);
        assert_eq!(bulk.metrics(), before);
    }

    #[test]
    fn insert_same_key_updates_value() {
        let mut t = table(8);
        t.insert(key(1), 1);
        t.insert(key(1), 2);
        assert_eq!(t.len(), 1);
        let hit = t.lookup(&key(1)).unwrap();
        assert_eq!(t.value_at(hit), Some(&2));
        assert_eq!(t.stats().updates, 1);
    }

    #[test]
    fn remove_clears_entry() {
        let mut t = table(8);
        t.insert(key(5), 55);
        assert_eq!(t.remove(&key(5)), Some(55));
        assert_eq!(t.remove(&key(5)), None);
        assert!(t.lookup(&key(5)).is_none());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn lookup_is_two_probe() {
        // A present key is always found via one of its two home slots.
        let mut t = table(32);
        for i in 0..16 {
            t.insert(key(i), i);
        }
        for i in 0..16 {
            if let Some(hit) = t.lookup(&key(i)) {
                let pair = t.hash_pair(&key(i));
                assert_eq!(hit.hash, pair.for_way(hit.way));
                assert!(hit.slot < 16);
            }
        }
    }

    #[test]
    fn overfull_table_evicts_rather_than_grows() {
        let mut t = table(4).with_max_relocations(8);
        let mut evicted = 0;
        for i in 0..32 {
            if t.insert(key(i), i).is_some() {
                evicted += 1;
            }
        }
        assert!(t.len() <= t.capacity());
        assert!(evicted > 0, "pressure must cause evictions");
        assert_eq!(t.stats().evictions, evicted as u64);
        // Residents are still findable.
        let resident: Vec<u64> = t.iter().map(|(_, v)| *v).collect();
        for v in resident {
            assert!(t.lookup(&key(v)).is_some(), "resident {v} must hit");
        }
    }

    #[test]
    fn borrowed_slice_probe_matches_owned() {
        let mut t = table(8);
        t.insert(key(9), 99);
        let owned = t.lookup(&key(9)).expect("owned hit");
        let borrowed = t.lookup(key(9).as_slice()).expect("borrowed hit");
        assert_eq!(owned, borrowed);
        assert_eq!(t.hash_pair(&key(9)), t.hash_pair(key(9).as_slice()));
        assert!(t.lookup(b"missing".as_slice()).is_none());
        assert_eq!(t.remove(key(9).as_slice()), Some(99));
    }

    #[test]
    fn clear_empties_table() {
        let mut t = table(8);
        for i in 0..4 {
            t.insert(key(i), i);
        }
        t.clear();
        assert!(t.is_empty());
        for i in 0..4 {
            assert!(t.lookup(&key(i)).is_none());
        }
    }

    #[test]
    fn capacity_rounds_up_to_even() {
        let t = table(5);
        assert_eq!(t.capacity(), 6);
        assert_eq!(table(1).capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = table(0);
    }

    #[test]
    fn footprint_scales_with_capacity() {
        let t = table(64);
        assert_eq!(t.footprint_bytes(56), 64 * 56);
    }

    #[test]
    fn iter_visits_all_residents() {
        let mut t = table(16);
        for i in 0..8 {
            t.insert(key(i), i * 10);
        }
        let mut vals: Vec<u64> = t.iter().map(|(_, v)| *v).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn way_helpers() {
        assert_eq!(Way::H1.other(), Way::H2);
        assert_eq!(Way::H2.other(), Way::H1);
        assert_eq!(Way::H1.index(), 0);
        assert_eq!(Way::H2.index(), 1);
    }

    #[test]
    fn metrics_mirror_stats_and_fill_histograms() {
        let mut t = table(8);
        t.insert(key(1), 1);
        t.insert(key(2), 2);
        t.lookup(&key(1)); // hit
        t.lookup(&key(1)); // hit again: reuse distance 1
        t.lookup(&key(9)); // miss
        let m = t.metrics();
        assert_eq!(m.hits, t.stats().hits);
        assert_eq!(m.misses, t.stats().misses);
        assert_eq!(m.insertions, 2);
        assert_eq!(m.probe_length.count(), 3, "one sample per counted lookup");
        assert_eq!(
            m.relocation_steps.count(),
            2,
            "one sample per placing insertion"
        );
        assert_eq!(m.reuse_distance.count(), 2, "one sample per hit");
        // The second hit of key 1 came one lookup after the first.
        assert!(m.reuse_distance.counts[1] >= 1, "{:?}", m.reuse_distance);
    }

    #[test]
    fn reuse_distance_counts_intervening_lookups() {
        let mut t = table(8);
        t.insert(key(1), 1);
        t.lookup(&key(1)); // first hit: distance measured from insertion
        for i in 10..14 {
            t.lookup(&key(i)); // 4 intervening misses
        }
        t.lookup(&key(1)); // distance 5 (4 misses + this lookup)
        let m = t.metrics();
        assert_eq!(m.reuse_distance.count(), 2);
        let b = draco_obs::Histogram::bucket_of(5);
        assert!(m.reuse_distance.counts[b] >= 1, "{:?}", m.reuse_distance);
    }

    #[test]
    fn staged_per_way_lookup_matches_counted_lookup() {
        // Two identical tables: one driven via lookup(), the other via
        // the staged hash_pair + probe_way + count_lookup decomposition
        // the traced path uses. Results and metrics must be identical.
        let mut plain = table(16);
        let mut staged = table(16);
        for i in 0..6 {
            plain.insert(key(i), i);
            staged.insert(key(i), i);
        }
        for i in 0..10 {
            let expected = plain.lookup(&key(i));
            let pair = staged.hash_pair(&key(i));
            let found = staged
                .probe_way(&key(i), pair, Way::H1)
                .or_else(|| staged.probe_way(&key(i), pair, Way::H2));
            staged.count_lookup(found);
            assert_eq!(found, expected, "key {i}");
        }
        assert_eq!(staged.stats(), plain.stats());
        assert_eq!(staged.metrics(), plain.metrics());
    }

    #[test]
    fn hash_pair4_matches_four_scalar_pairs() {
        let hasher = CrcPairHasher::new();
        let keys: Vec<Vec<u8>> = (0u64..4).map(|i| (i * 77).to_le_bytes().to_vec()).collect();
        let got = hasher.hash_pair4([&keys[0], &keys[1], &keys[2], &keys[3]]);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(got[i], hasher.hash_pair(k.as_slice()), "lane {i}");
        }
    }

    #[test]
    fn prefetch_is_pure() {
        // Prefetching must not perturb results, occupancy, or counters.
        let mut t = table(16);
        for i in 0..6 {
            t.insert(key(i), i);
        }
        let before = (t.stats(), t.metrics());
        for i in 0..10 {
            let pair = t.hash_pair(&key(i));
            t.prefetch(pair);
        }
        assert_eq!((t.stats(), t.metrics()), before);
        assert!(t.lookup(&key(0)).is_some());
    }

    #[test]
    fn debug_mentions_occupancy() {
        let mut t = table(8);
        t.insert(key(1), 1);
        let s = format!("{t:?}");
        assert!(s.contains("occupied"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        /// Keys never silently vanish: after any insert sequence, every key
        /// that was inserted and neither evicted nor overwritten is found.
        #[test]
        fn no_silent_loss(keys in proptest::collection::vec(any::<u32>(), 1..200)) {
            let mut t: CuckooTable<Vec<u8>, u32> =
                CuckooTable::with_capacity(512, CrcPairHasher::default());
            let mut model: HashMap<Vec<u8>, u32> = HashMap::new();
            for (i, k) in keys.iter().enumerate() {
                let kb = k.to_le_bytes().to_vec();
                let evicted = t.insert(kb.clone(), i as u32);
                model.insert(kb, i as u32);
                if let Some((ek, _)) = evicted {
                    model.remove(&ek);
                }
            }
            for (k, v) in &model {
                let hit = t.lookup(k);
                prop_assert!(hit.is_some(), "lost key {k:?}");
                prop_assert_eq!(t.value_at(hit.unwrap()), Some(v));
            }
        }

        /// Occupancy never exceeds capacity, whatever the pressure.
        #[test]
        fn bounded_occupancy(
            keys in proptest::collection::vec(any::<u16>(), 1..500),
            cap in 2usize..32,
        ) {
            let mut t: CuckooTable<Vec<u8>, ()> =
                CuckooTable::with_capacity(cap, CrcPairHasher::default());
            for k in keys {
                t.insert(k.to_le_bytes().to_vec(), ());
                prop_assert!(t.len() <= t.capacity());
            }
        }

        /// A hit's hash always equals the pair component for its way.
        #[test]
        fn lookup_hash_consistency(keys in proptest::collection::vec(any::<u64>(), 1..64)) {
            let mut t: CuckooTable<Vec<u8>, u64> =
                CuckooTable::with_capacity(256, CrcPairHasher::default());
            for &k in &keys {
                t.insert(k.to_le_bytes().to_vec(), k);
            }
            for &k in &keys {
                let kb = k.to_le_bytes().to_vec();
                if let Some(hit) = t.lookup(&kb) {
                    let pair = t.hash_pair(&kb);
                    prop_assert_eq!(hit.hash, pair.for_way(hit.way));
                }
            }
        }

        /// Remove after insert always succeeds for resident keys.
        #[test]
        fn insert_remove_roundtrip(k in any::<u64>()) {
            let mut t: CuckooTable<Vec<u8>, u64> =
                CuckooTable::with_capacity(8, CrcPairHasher::default());
            let kb = k.to_le_bytes().to_vec();
            prop_assert!(t.insert(kb.clone(), k).is_none());
            prop_assert_eq!(t.remove(&kb), Some(k));
            prop_assert!(t.is_empty());
        }
    }
}
