//! A thread-shared 2-way cuckoo table with a lock-free read path.
//!
//! The paper's kernel shares one VAT across all threads of a process:
//! "lookups can still proceed while an update is in flight" (§VI) — reads
//! are lockless, updates serialize on a per-table lock. This module is
//! that table. Every slot is a miniature *seqlock*: a version word plus
//! the entry data, all stored as individual atomics (the crate forbids
//! `unsafe`, so there is no `UnsafeCell` trickery — tearing is prevented
//! by protocol, not by exclusion).
//!
//! # Slot protocol
//!
//! A slot holds a version counter (even = stable, odd = write in flight),
//! a metadata word (occupied bit + key length), the two CRC hash values,
//! six key words (the ≤48 selected argument bytes, zero-padded), and six
//! value words (the masked [`ArgSet`](https://docs.rs) equivalent).
//!
//! *Reader*: load version (`Acquire`); if odd, retry. Load meta, key and
//! value words (`Relaxed`); `fence(Acquire)`; reload version (`Relaxed`).
//! If it changed, retry. Otherwise the snapshot is consistent (see
//! `docs/concurrency.md` for the happens-before argument — the writer's
//! release fence before its data stores pairs with the reader's acquire
//! fence after its data loads, so a reader that observes any word of an
//! in-flight write cannot also observe an unchanged version).
//!
//! *Writer* (under the table mutex, so single-writer): store version odd
//! (`Relaxed`), `fence(Release)`, store the data words (`Relaxed`), store
//! version even (`Release`).
//!
//! A reader that keeps colliding with writers gives up after a bounded
//! number of retries and reports a miss — sound, because a VAT miss only
//! sends the syscall through the real filter again.
//!
//! Relocation during insert writes the incoming entry *over* the displaced
//! one first, then re-homes the displaced entry in its other way: a
//! concurrent reader may transiently miss the displaced key (benign
//! revalidation) but can never observe a torn or fabricated entry.

#[cfg(loom)]
use loom::sync::{
    atomic::{fence, AtomicU64, Ordering},
    Mutex, MutexGuard,
};
#[cfg(not(loom))]
use std::sync::{
    atomic::{fence, AtomicU64, Ordering},
    Mutex, MutexGuard,
};

use crate::{CrcPairHasher, HashPair, PairHasher, Way};

/// Maximum key length in bytes (the 48-bit Argument Bitmask selects at
/// most 48 bytes).
pub const MAX_KEY_BYTES: usize = 48;

/// Key words per slot (48 bytes = 6 little-endian `u64`s).
const KEY_WORDS: usize = MAX_KEY_BYTES / 8;

/// Value words per slot (a masked argument set is six `u64`s).
pub const VALUE_WORDS: usize = 6;

/// Reader retry budget before a probe gives up and reports a miss.
const MAX_READ_RETRIES: usize = 64;

const OCCUPIED: u64 = 1 << 63;
const LEN_MASK: u64 = 0xff;

/// A probe key packed into comparison-ready words: the raw bytes copied
/// into zero-padded little-endian `u64`s plus the byte length. Slot
/// comparison is then six word compares — no byte slicing on the read
/// path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PackedKey {
    words: [u64; KEY_WORDS],
    len: usize,
}

impl PackedKey {
    fn new(key: &[u8]) -> Self {
        assert!(
            key.len() <= MAX_KEY_BYTES,
            "concurrent cuckoo keys are at most {MAX_KEY_BYTES} bytes"
        );
        let mut words = [0u64; KEY_WORDS];
        for (i, chunk) in key.chunks(8).enumerate() {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            words[i] = u64::from_le_bytes(buf);
        }
        PackedKey {
            words,
            len: key.len(),
        }
    }
}

/// One seqlocked slot. All fields are atomics so concurrent access is
/// race-free by construction; consistency of multi-word snapshots comes
/// from the version protocol.
struct SeqSlot {
    version: AtomicU64,
    /// Bit 63: occupied. Bits 0..8: key length in bytes.
    meta: AtomicU64,
    h1: AtomicU64,
    h2: AtomicU64,
    key: [AtomicU64; KEY_WORDS],
    value: [AtomicU64; VALUE_WORDS],
}

impl SeqSlot {
    fn new() -> Self {
        SeqSlot {
            version: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            h1: AtomicU64::new(0),
            h2: AtomicU64::new(0),
            key: [(); KEY_WORDS].map(|()| AtomicU64::new(0)),
            value: [(); VALUE_WORDS].map(|()| AtomicU64::new(0)),
        }
    }
}

/// A fully materialized entry, used on the writer side (relocation moves
/// entries between slots; the hash pair rides along so displaced entries
/// need no re-hashing).
#[derive(Clone, Copy, Debug)]
struct EntryData {
    key: PackedKey,
    pair: HashPair,
    value: [u64; VALUE_WORDS],
}

/// Writer-side bookkeeping, guarded by the table mutex.
#[derive(Clone, Copy, Debug, Default)]
struct WriterState {
    occupied: usize,
    insertions: u64,
    updates: u64,
    evictions: u64,
    relocations: u64,
}

/// A successful lock-free probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConcurrentHit {
    /// The way holding the entry.
    pub way: Way,
    /// The hash value that indexed the slot.
    pub hash: u64,
    /// The stored value words (a consistent snapshot).
    pub value: [u64; VALUE_WORDS],
}

/// Outcome of a lock-free probe: the hit (if any) plus how many times the
/// seqlock protocol forced a retry — the paper's reader/writer collision
/// signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The entry, if found.
    pub hit: Option<ConcurrentHit>,
    /// Version-mismatch (or in-flight-writer) retries this probe paid.
    pub retries: u64,
}

/// What an insert did, as seen by the writer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was new and found a slot (directly or via relocation).
    Inserted,
    /// The key was already resident — its value was refreshed in place.
    /// When the inserting thread had just missed on this key, this means
    /// another thread validated it first (an insert race lost).
    Updated,
    /// The key was placed but relocation pressure evicted another entry.
    Evicted,
}

/// Occupancy and writer-traffic counters (reader hits/misses are counted
/// by the probing threads themselves, to keep the read path free of
/// shared-counter contention).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConcurrentTableStats {
    /// Entries currently resident.
    pub occupied: usize,
    /// Insertions that found a slot.
    pub insertions: u64,
    /// Insertions that refreshed an existing key.
    pub updates: u64,
    /// Entries evicted under relocation pressure.
    pub evictions: u64,
    /// Total relocation steps across all insertions.
    pub relocations: u64,
}

/// A bounded, thread-shared 2-way cuckoo table: lock-free seqlocked
/// reads, mutex-serialized writes (paper §VI).
///
/// Keys are byte strings of at most [`MAX_KEY_BYTES`] bytes; values are
/// six-word arrays. Capacity is fixed at construction and the table never
/// allocates after it — probes and inserts are heap-free.
///
/// # Example
///
/// ```
/// use draco_cuckoo::ConcurrentTable;
///
/// let t = ConcurrentTable::with_capacity(8);
/// assert!(t.probe(b"argset-1").hit.is_none());
/// t.insert(b"argset-1", [7, 0, 0, 0, 0, 0]);
/// let probe = t.probe(b"argset-1");
/// assert_eq!(probe.hit.expect("present").value[0], 7);
/// ```
pub struct ConcurrentTable {
    ways: [Box<[SeqSlot]>; 2],
    slots_per_way: usize,
    max_relocations: usize,
    hasher: CrcPairHasher,
    writer: Mutex<WriterState>,
}

impl ConcurrentTable {
    /// Default relocation budget before eviction (matches the serial
    /// [`crate::CuckooTable`]).
    pub const DEFAULT_MAX_RELOCATIONS: usize = 16;

    /// Creates a table with room for `capacity` entries total (split
    /// across the two ways; odd capacities round up).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cuckoo table capacity must be nonzero");
        let slots_per_way = capacity.div_ceil(2);
        let make_way = || (0..slots_per_way).map(|_| SeqSlot::new()).collect();
        ConcurrentTable {
            ways: [make_way(), make_way()],
            slots_per_way,
            max_relocations: Self::DEFAULT_MAX_RELOCATIONS,
            hasher: CrcPairHasher::new(),
            writer: Mutex::new(WriterState::default()),
        }
    }

    /// Sets the relocation budget (builder-style).
    #[must_use]
    pub fn with_max_relocations(mut self, max: usize) -> Self {
        self.max_relocations = max;
        self
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.slots_per_way * 2
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock_writer().occupied
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writer-side counters (takes the write lock briefly).
    pub fn stats(&self) -> ConcurrentTableStats {
        let state = self.lock_writer();
        ConcurrentTableStats {
            occupied: state.occupied,
            insertions: state.insertions,
            updates: state.updates,
            evictions: state.evictions,
            relocations: state.relocations,
        }
    }

    /// The hash pair the table computes for a key.
    pub fn hash_pair(&self, key: &[u8]) -> HashPair {
        self.hasher.hash_pair(key)
    }

    /// Derives a slot index from a hash value — the same Fibonacci fold
    /// as the serial table, so shared and per-thread VATs place entries
    /// identically.
    fn slot_for(&self, hash: u64) -> usize {
        let folded = hash.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((folded >> 32) % self.slots_per_way as u64) as usize
    }

    /// Software-prefetches the two slots a hash pair indexes by loading
    /// each slot's version word (`Relaxed`) through
    /// [`core::hint::black_box`].
    ///
    /// The batch check path touches every candidate slot of a batch
    /// before probing any of them, so the cache lines are in flight
    /// together instead of being demand-missed one probe at a time —
    /// the software stand-in for the paper's SLB/pipeline overlap. A
    /// version-word load is always race-free here (it is an atomic the
    /// seqlock protocol reads anyway), and the value is discarded, so
    /// prefetching can never change a probe's outcome.
    #[inline]
    pub fn prefetch(&self, pair: HashPair) {
        let s1 = &self.ways[0][self.slot_for(pair.h1)];
        let s2 = &self.ways[1][self.slot_for(pair.h2)];
        core::hint::black_box(s1.version.load(Ordering::Relaxed));
        core::hint::black_box(s2.version.load(Ordering::Relaxed));
    }

    /// Lock-free lookup: exactly two seqlocked slot reads, retried on
    /// version collision. Never blocks and never observes a torn entry.
    pub fn probe(&self, key: &[u8]) -> ProbeOutcome {
        let pair = self.hasher.hash_pair(key);
        self.probe_hashed(key, pair)
    }

    /// [`ConcurrentTable::probe`] with a caller-computed hash pair (the
    /// checker hashes once and reuses the pair for insert-after-miss).
    pub fn probe_hashed(&self, key: &[u8], pair: HashPair) -> ProbeOutcome {
        let packed = PackedKey::new(key);
        let mut retries = 0u64;
        for way in [Way::H1, Way::H2] {
            let hash = pair.for_way(way);
            let slot = &self.ways[way.index()][self.slot_for(hash)];
            if let Some(value) = Self::read_slot(slot, &packed, &mut retries) {
                return ProbeOutcome {
                    hit: Some(ConcurrentHit { way, hash, value }),
                    retries,
                };
            }
        }
        ProbeOutcome { hit: None, retries }
    }

    /// Seqlocked read of one slot. Returns the value if the slot holds
    /// `probe`'s key, `None` on empty/other-key/retry-budget-exhausted.
    fn read_slot(
        slot: &SeqSlot,
        probe: &PackedKey,
        retries: &mut u64,
    ) -> Option<[u64; VALUE_WORDS]> {
        for _ in 0..MAX_READ_RETRIES {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                // A writer is mid-flight on this slot.
                *retries += 1;
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let mut key = [0u64; KEY_WORDS];
            for (word, cell) in key.iter_mut().zip(slot.key.iter()) {
                *word = cell.load(Ordering::Relaxed);
            }
            let mut value = [0u64; VALUE_WORDS];
            for (word, cell) in value.iter_mut().zip(slot.value.iter()) {
                *word = cell.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) != v1 {
                // The slot changed under us — the snapshot may be torn.
                *retries += 1;
                continue;
            }
            let occupied = meta & OCCUPIED != 0;
            let len = (meta & LEN_MASK) as usize;
            if occupied && len == probe.len && key == probe.words {
                return Some(value);
            }
            return None;
        }
        // Retry budget exhausted under sustained writer pressure: report
        // a miss. The caller revalidates through the filter — slower,
        // never wrong.
        None
    }

    /// Inserts (or refreshes) a key. Returns the outcome plus whether the
    /// write lock was contended (`true` means this thread had to wait for
    /// another updater).
    pub fn insert(&self, key: &[u8], value: [u64; VALUE_WORDS]) -> (InsertOutcome, bool) {
        let mut guard = self.write();
        let contended = guard.contended();
        let outcome = guard.insert(key, value);
        (outcome, contended)
    }

    /// Acquires the writer lock, recording whether the acquisition had to
    /// wait. The guard exposes insert/clear so callers can bundle their
    /// own invariant checks (e.g. an epoch re-check) into the critical
    /// section.
    pub fn write(&self) -> ConcurrentWriteGuard<'_> {
        let (state, contended) = match self.writer.try_lock() {
            Ok(guard) => (guard, false),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => (poisoned.into_inner(), false),
            Err(std::sync::TryLockError::WouldBlock) => (self.lock_writer(), true),
        };
        ConcurrentWriteGuard {
            table: self,
            state,
            contended,
        }
    }

    fn lock_writer(&self) -> MutexGuard<'_, WriterState> {
        self.writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Removes every entry (each slot cleared under the seqlock, so
    /// concurrent readers see either the old entry or an empty slot,
    /// never garbage).
    pub fn clear(&self) {
        self.write().clear();
    }

    /// Writer-side slot write under the seqlock protocol. Must only be
    /// called while holding the writer mutex.
    fn slot_write(slot: &SeqSlot, entry: Option<&EntryData>) {
        let v = slot.version.load(Ordering::Relaxed);
        debug_assert_eq!(v & 1, 0, "slot version must be even between writes");
        slot.version.store(v.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        match entry {
            Some(e) => {
                slot.meta
                    .store(OCCUPIED | e.key.len as u64, Ordering::Relaxed);
                slot.h1.store(e.pair.h1, Ordering::Relaxed);
                slot.h2.store(e.pair.h2, Ordering::Relaxed);
                for (cell, word) in slot.key.iter().zip(e.key.words.iter()) {
                    cell.store(*word, Ordering::Relaxed);
                }
                for (cell, word) in slot.value.iter().zip(e.value.iter()) {
                    cell.store(*word, Ordering::Relaxed);
                }
            }
            None => slot.meta.store(0, Ordering::Relaxed),
        }
        slot.version.store(v.wrapping_add(2), Ordering::Release);
    }

    /// Writer-side plain read of one slot (the mutex holder is the only
    /// mutator, so no version dance is needed).
    fn slot_read(slot: &SeqSlot) -> Option<EntryData> {
        let meta = slot.meta.load(Ordering::Relaxed);
        if meta & OCCUPIED == 0 {
            return None;
        }
        let mut key = [0u64; KEY_WORDS];
        for (word, cell) in key.iter_mut().zip(slot.key.iter()) {
            *word = cell.load(Ordering::Relaxed);
        }
        let mut value = [0u64; VALUE_WORDS];
        for (word, cell) in value.iter_mut().zip(slot.value.iter()) {
            *word = cell.load(Ordering::Relaxed);
        }
        Some(EntryData {
            key: PackedKey {
                words: key,
                len: (meta & LEN_MASK) as usize,
            },
            pair: HashPair {
                h1: slot.h1.load(Ordering::Relaxed),
                h2: slot.h2.load(Ordering::Relaxed),
            },
            value,
        })
    }
}

impl core::fmt::Debug for ConcurrentTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ConcurrentTable")
            .field("capacity", &self.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Exclusive write access to a [`ConcurrentTable`]. Readers are *not*
/// excluded — they keep probing lock-free while this guard mutates slots
/// under the seqlock protocol.
pub struct ConcurrentWriteGuard<'a> {
    table: &'a ConcurrentTable,
    state: MutexGuard<'a, WriterState>,
    contended: bool,
}

impl ConcurrentWriteGuard<'_> {
    /// Whether acquiring this guard had to wait for another writer.
    pub fn contended(&self) -> bool {
        self.contended
    }

    /// True if the key is resident right now (no concurrent writer can
    /// change that while the guard lives).
    pub fn contains(&self, key: &[u8]) -> bool {
        let packed = PackedKey::new(key);
        let pair = self.table.hasher.hash_pair(key);
        self.find(&packed, pair).is_some()
    }

    fn find(&self, packed: &PackedKey, pair: HashPair) -> Option<(Way, usize)> {
        for way in [Way::H1, Way::H2] {
            let slot_idx = self.table.slot_for(pair.for_way(way));
            let slot = &self.table.ways[way.index()][slot_idx];
            if let Some(entry) = ConcurrentTable::slot_read(slot) {
                if entry.key == *packed {
                    return Some((way, slot_idx));
                }
            }
        }
        None
    }

    /// Inserts (or refreshes) a key under the held lock.
    pub fn insert(&mut self, key: &[u8], value: [u64; VALUE_WORDS]) -> InsertOutcome {
        let packed = PackedKey::new(key);
        let pair = self.table.hasher.hash_pair(key);
        if let Some((way, slot_idx)) = self.find(&packed, pair) {
            let slot = &self.table.ways[way.index()][slot_idx];
            ConcurrentTable::slot_write(
                slot,
                Some(&EntryData {
                    key: packed,
                    pair,
                    value,
                }),
            );
            self.state.updates += 1;
            return InsertOutcome::Updated;
        }

        let mut homeless = EntryData {
            key: packed,
            pair,
            value,
        };
        let mut way = Way::H1;
        for step in 0..=self.table.max_relocations {
            let slot_idx = self.table.slot_for(homeless.pair.for_way(way));
            let slot = &self.table.ways[way.index()][slot_idx];
            match ConcurrentTable::slot_read(slot) {
                None => {
                    ConcurrentTable::slot_write(slot, Some(&homeless));
                    self.state.occupied += 1;
                    self.state.insertions += 1;
                    self.state.relocations += step as u64;
                    return InsertOutcome::Inserted;
                }
                Some(displaced) => {
                    // Write the incoming entry first, then re-home the
                    // displaced one: a concurrent reader can transiently
                    // miss the displaced key (benign — it revalidates
                    // through the filter) but never sees a torn slot.
                    ConcurrentTable::slot_write(slot, Some(&homeless));
                    homeless = displaced;
                    way = way.other();
                }
            }
        }
        // Relocation budget exhausted: the final homeless entry is
        // dropped (evicted), matching the serial table's policy.
        self.state.insertions += 1;
        self.state.evictions += 1;
        self.state.relocations += self.table.max_relocations as u64;
        InsertOutcome::Evicted
    }

    /// Clears every slot (each under the seqlock protocol).
    pub fn clear(&mut self) {
        for way in &self.table.ways {
            for slot in way.iter() {
                if ConcurrentTable::slot_read(slot).is_some() {
                    ConcurrentTable::slot_write(slot, None);
                }
            }
        }
        self.state.occupied = 0;
    }
}

impl core::fmt::Debug for ConcurrentWriteGuard<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ConcurrentWriteGuard")
            .field("contended", &self.contended)
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(i: u64) -> [u8; 8] {
        i.to_le_bytes()
    }

    fn val(i: u64) -> [u64; VALUE_WORDS] {
        [i, i + 1, 0, 0, 0, 0]
    }

    #[test]
    fn insert_then_probe() {
        let t = ConcurrentTable::with_capacity(8);
        assert!(t.is_empty());
        assert!(t.probe(&key(1)).hit.is_none());
        let (outcome, contended) = t.insert(&key(1), val(100));
        assert_eq!(outcome, InsertOutcome::Inserted);
        assert!(!contended, "uncontended single-thread insert");
        let probe = t.probe(&key(1));
        let hit = probe.hit.expect("present");
        assert_eq!(hit.value, val(100));
        assert_eq!(hit.hash, t.hash_pair(&key(1)).for_way(hit.way));
        assert_eq!(probe.retries, 0, "no writer to collide with");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_in_place() {
        let t = ConcurrentTable::with_capacity(8);
        t.insert(&key(1), val(1));
        let (outcome, _) = t.insert(&key(1), val(2));
        assert_eq!(outcome, InsertOutcome::Updated);
        assert_eq!(t.len(), 1);
        assert_eq!(t.probe(&key(1)).hit.unwrap().value, val(2));
        assert_eq!(t.stats().updates, 1);
    }

    #[test]
    fn pressure_evicts_rather_than_grows() {
        let t = ConcurrentTable::with_capacity(4).with_max_relocations(8);
        let mut evicted = 0;
        for i in 0..32 {
            if t.insert(&key(i), val(i)).0 == InsertOutcome::Evicted {
                evicted += 1;
            }
        }
        assert!(evicted > 0, "pressure must cause evictions");
        assert!(t.len() <= t.capacity());
        let stats = t.stats();
        assert_eq!(stats.evictions, evicted);
        assert!(stats.relocations > 0);
        // Residents are still findable after all that shuffling.
        let mut found = 0;
        for i in 0..32 {
            if t.probe(&key(i)).hit.is_some() {
                found += 1;
            }
        }
        assert_eq!(found, t.len());
    }

    #[test]
    fn clear_empties_table() {
        let t = ConcurrentTable::with_capacity(8);
        for i in 0..4 {
            t.insert(&key(i), val(i));
        }
        t.clear();
        assert!(t.is_empty());
        for i in 0..4 {
            assert!(t.probe(&key(i)).hit.is_none());
        }
    }

    #[test]
    fn guard_bundles_check_and_insert() {
        let t = ConcurrentTable::with_capacity(8);
        let mut guard = t.write();
        assert!(!guard.contains(&key(5)));
        assert_eq!(guard.insert(&key(5), val(5)), InsertOutcome::Inserted);
        assert!(guard.contains(&key(5)));
        drop(guard);
        assert!(t.probe(&key(5)).hit.is_some());
    }

    #[test]
    fn empty_key_is_valid() {
        let t = ConcurrentTable::with_capacity(4);
        t.insert(b"", val(9));
        assert_eq!(t.probe(b"").hit.unwrap().value, val(9));
        assert!(t.probe(&[0u8]).hit.is_none(), "empty != single zero byte");
    }

    #[test]
    fn forty_eight_byte_keys_round_trip() {
        let t = ConcurrentTable::with_capacity(8);
        let long = [0xabu8; MAX_KEY_BYTES];
        t.insert(&long, val(7));
        assert!(t.probe(&long).hit.is_some());
        let mut other = long;
        other[47] = 0xac;
        assert!(t.probe(&other).hit.is_none());
    }

    #[test]
    #[should_panic(expected = "at most 48")]
    fn oversized_key_rejected() {
        let t = ConcurrentTable::with_capacity(4);
        t.insert(&[0u8; 49], val(0));
    }

    #[test]
    fn zero_padding_cannot_alias_lengths() {
        // "ab" and "ab\0" pack to identical words; the length in the
        // meta word must keep them distinct.
        let t = ConcurrentTable::with_capacity(8);
        t.insert(b"ab", val(1));
        assert!(t.probe(b"ab").hit.is_some());
        assert!(t.probe(b"ab\0").hit.is_none());
    }

    #[test]
    fn placement_matches_serial_table() {
        // Shared and serial tables use the same hash and slot fold, so a
        // key resident in one is found at the same (way, hash) in the
        // other.
        let concurrent = ConcurrentTable::with_capacity(32);
        let mut serial: crate::CuckooTable<Vec<u8>, u64> =
            crate::CuckooTable::with_capacity(32, CrcPairHasher::default());
        for i in 0..8u64 {
            concurrent.insert(&key(i), val(i));
            serial.insert(key(i).to_vec(), i);
        }
        for i in 0..8u64 {
            let c = concurrent.probe(&key(i)).hit;
            let s = serial.lookup(&key(i).to_vec());
            match (c, s) {
                (Some(ch), Some(sh)) => {
                    assert_eq!(ch.way, sh.way, "key {i}");
                    assert_eq!(ch.hash, sh.hash, "key {i}");
                }
                (None, None) => {}
                other => panic!("presence diverged for key {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn concurrent_readers_never_see_torn_entries() {
        // Values are derived from keys (value word 0 == key as u64), so
        // any torn read manifests as a mismatched pair.
        let t = Arc::new(ConcurrentTable::with_capacity(64));
        let stop = Arc::new(AtomicU64::new(0));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut checked = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    for i in 0..32u64 {
                        if let Some(hit) = t.probe(&key(i)).hit {
                            assert_eq!(hit.value[0], i, "torn read");
                            assert_eq!(hit.value[1], i + 1, "torn read");
                            checked += 1;
                        }
                    }
                }
                checked
            }));
        }
        for round in 0..200u64 {
            for i in 0..32u64 {
                t.insert(&key(i), val(i));
            }
            if round % 10 == 9 {
                t.clear();
            }
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
    }

    #[test]
    fn debug_formats() {
        let t = ConcurrentTable::with_capacity(4);
        assert!(format!("{t:?}").contains("capacity"));
        assert!(format!("{:?}", t.write()).contains("contended"));
    }

    #[test]
    fn prefetch_is_pure() {
        let t = ConcurrentTable::with_capacity(16);
        for i in 0..6 {
            t.insert(&key(i), val(i));
        }
        let before = t.stats();
        for i in 0..10u64 {
            t.prefetch(t.hash_pair(&key(i)));
        }
        assert_eq!(t.stats(), before);
        let probe = t.probe(&key(0));
        assert_eq!(probe.hit.unwrap().value, val(0));
        assert_eq!(probe.retries, 0, "prefetch must not look like a writer");
    }
}
