//! Deterministic trace generation from workload specifications.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use draco_profiles::{DOCKER_CLONE_FLAGS, DOCKER_PERSONALITY_VALUES};
use draco_syscalls::{ArgKind, SyscallDesc, SyscallTable, MAX_ARGS};

use crate::model::WorkloadSpec;
use crate::trace::{SyscallTrace, TraceOp};

/// Base code address for generated `syscall` sites.
const PC_BASE: u64 = 0x40_0000;

/// Generates reproducible system call traces for a workload.
///
/// The same `(spec, seed)` pair always yields the same trace, and the
/// *argument values* of a given `(syscall, set index)` are a pure
/// function of the workload — so a profile generated from one trace of a
/// workload admits every other trace of the same workload (steady-state
/// assumption of the paper's §X-B profiling methodology).
///
/// # Example
///
/// ```
/// use draco_workloads::{catalog, TraceGenerator};
///
/// let spec = catalog::ipc_pipe();
/// let trace = TraceGenerator::new(&spec, 7).generate(100);
/// assert_eq!(trace.len(), 100);
/// assert!(trace.requests().all(|r| r.id.as_u16() == 0 || r.id.as_u16() == 1));
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    seed: u64,
    cumulative: Vec<f64>,
}

impl TraceGenerator {
    /// Creates a generator for a workload with a seed.
    pub fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        spec.validate();
        let total = spec.total_weight();
        let mut acc = 0.0;
        let cumulative = spec
            .mix
            .iter()
            .map(|m| {
                acc += m.weight / total;
                acc
            })
            .collect();
        TraceGenerator {
            spec: spec.clone(),
            seed,
            cumulative,
        }
    }

    /// The workload name.
    pub fn workload(&self) -> &str {
        self.spec.name
    }

    /// Generates a trace of `ops` operations.
    pub fn generate(&self, ops: usize) -> SyscallTrace {
        let table = SyscallTable::shared();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ name_hash(self.spec.name));
        let descs: Vec<&SyscallDesc> = self
            .spec
            .mix
            .iter()
            .map(|m| {
                table
                    .by_name(m.name)
                    .unwrap_or_else(|| panic!("unknown syscall {} in {}", m.name, self.spec.name))
            })
            .collect();

        let mut out = Vec::with_capacity(ops);
        for _ in 0..ops {
            let mix_idx = self.sample_mix(&mut rng);
            let mix = &self.spec.mix[mix_idx];
            let desc = descs[mix_idx];
            let set_idx = self.sample_set(mix, &mut rng);
            let args =
                argument_values(self.spec.name, desc, set_idx, mix.hot_sets, &mut rng);
            let site = rng.gen_range(0..u64::from(self.spec.pc_sites_per_syscall));
            let pc = PC_BASE + u64::from(desc.id().as_u16()) * 0x100 + site * 8;
            let mean = self.spec.compute_ns_per_op;
            let compute_ns = mean / 2 + rng.gen_range(0..=mean);
            out.push(TraceOp {
                compute_ns,
                pc,
                nr: desc.id().as_u16(),
                args: args.map(|a| a),
            });
        }
        SyscallTrace::from_ops(self.spec.name, out)
    }

    /// Generates the default-length trace for this workload.
    pub fn generate_default(&self) -> SyscallTrace {
        self.generate(self.spec.default_ops)
    }

    fn sample_mix(&self, rng: &mut SmallRng) -> usize {
        let x: f64 = rng.gen();
        self.cumulative
            .iter()
            .position(|&c| x <= c)
            .unwrap_or(self.cumulative.len() - 1)
    }

    /// Samples an argument set index: hot sets follow a steep geometric
    /// distribution (the first set dominates, per Fig. 3); the cold tail
    /// is uniform.
    fn sample_set(&self, mix: &crate::model::SyscallMix, rng: &mut SmallRng) -> u32 {
        if mix.tail_sets > 0 && rng.gen::<f64>() < mix.tail_prob {
            return u32::from(mix.hot_sets) + rng.gen_range(0..u32::from(mix.tail_sets));
        }
        let hot = u32::from(mix.hot_sets);
        // Geometric with ratio 1/3: set 0 gets ~2/3 of the mass.
        let mut idx = 0;
        while idx + 1 < hot && rng.gen::<f64>() < 1.0 / 3.0 {
            idx += 1;
        }
        idx
    }
}

/// A stable, rng-independent hash for deriving argument values.
fn stable_hash(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in parts {
        h ^= p;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn name_hash(name: &str) -> u64 {
    stable_hash(&[name.bytes().fold(0u64, |a, b| a.wrapping_mul(31) + u64::from(b))])
}

/// Produces the argument registers for `(workload, syscall, set index)`.
///
/// Checkable positions are a pure function of the triple (so profiles
/// carry over between traces); pointer positions get fresh pseudo-random
/// addresses every call, which exercises the Argument Bitmask's pointer
/// exclusion end to end. *Hot* sets (below `hot_sets`) are shared across
/// workloads — real applications reuse the same few fds, flag words and
/// buffer sizes — while tail sets are salted per workload, matching the
/// concentrated per-set shares of paper Fig. 3.
fn argument_values(
    workload: &str,
    desc: &SyscallDesc,
    set_idx: u32,
    hot_sets: u8,
    rng: &mut SmallRng,
) -> [u64; MAX_ARGS] {
    let mut args = [0u64; MAX_ARGS];
    let sid = u64::from(desc.id().as_u16());
    // Docker-default argument-checks these two: draw values from the
    // allowed whitelists so docker-default runs stay alive.
    if desc.name() == "clone" {
        args[0] = DOCKER_CLONE_FLAGS[(set_idx as usize) % DOCKER_CLONE_FLAGS.len()];
        for (i, slot) in args.iter_mut().enumerate().take(4).skip(1) {
            *slot = pointer_value(rng, i);
        }
        args[4] = 0; // tls pinned by the profile
        return args;
    }
    if desc.name() == "personality" {
        args[0] =
            DOCKER_PERSONALITY_VALUES[(set_idx as usize) % DOCKER_PERSONALITY_VALUES.len()];
        return args;
    }
    for (pos, kind) in desc.args().iter().enumerate() {
        match *kind {
            ArgKind::None => {}
            ArgKind::Pointer => args[pos] = pointer_value(rng, pos),
            ArgKind::Value(width) => {
                let salt = if set_idx < u32::from(hot_sets) {
                    0
                } else {
                    name_hash(workload)
                };
                let raw = stable_hash(&[salt, sid, u64::from(set_idx), pos as u64]);
                // Keep values plausibly small (fds, flags, sizes) while
                // still distinct per set index.
                let bound_bits = (u32::from(width) * 8).min(16);
                args[pos] = raw % (1u64 << bound_bits);
            }
        }
    }
    args
}

fn pointer_value(rng: &mut SmallRng, pos: usize) -> u64 {
    0x7f00_0000_0000 | u64::from(rng.gen::<u32>()) << 4 | pos as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use draco_syscalls::SyscallId;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let spec = catalog::nginx();
        let a = TraceGenerator::new(&spec, 1).generate(500);
        let b = TraceGenerator::new(&spec, 1).generate(500);
        let c = TraceGenerator::new(&spec, 2).generate(500);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn checkable_values_stable_across_seeds() {
        // Same (workload, syscall, set) must produce the same checkable
        // values whatever the seed, or generated profiles would not
        // transfer between runs.
        let spec = catalog::httpd();
        let a = TraceGenerator::new(&spec, 1).generate(2000);
        let b = TraceGenerator::new(&spec, 99).generate(2000);
        let table = SyscallTable::shared();
        let collect = |t: &SyscallTrace| {
            let mut sets = std::collections::HashSet::new();
            for req in t.requests() {
                let mask = table.get(req.id).unwrap().bitmask();
                sets.insert((req.id, mask.masked(&req.args)));
            }
            sets
        };
        let sa = collect(&a);
        let sb = collect(&b);
        // Both runs draw from the same underlying per-workload pools.
        let union = sa.union(&sb).count();
        let inter = sa.intersection(&sb).count();
        assert!(
            inter * 3 >= union,
            "argument pools should substantially overlap: {inter}/{union}"
        );
    }

    #[test]
    fn mix_weights_are_respected() {
        let spec = catalog::ipc_pipe(); // read .5 / write .5
        let trace = TraceGenerator::new(&spec, 3).generate(10_000);
        let reads = trace.requests().filter(|r| r.id == SyscallId::new(0)).count();
        let frac = reads as f64 / 10_000.0;
        assert!((0.45..=0.55).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn hot_sets_dominate() {
        let spec = catalog::httpd();
        let trace = TraceGenerator::new(&spec, 4).generate(20_000);
        let table = SyscallTable::shared();
        // For read (3 hot sets, tail_prob .18) the hot sets should carry
        // most calls.
        let read_mask = table.by_name("read").unwrap().bitmask();
        let mut counts = std::collections::HashMap::new();
        let mut total = 0u64;
        for req in trace.requests().filter(|r| r.id == SyscallId::new(0)) {
            *counts.entry(read_mask.masked(&req.args)).or_insert(0u64) += 1;
            total += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top3: u64 = freqs.iter().take(3).sum();
        assert!(
            top3 as f64 / total as f64 > 0.7,
            "top-3 sets carry {}/{total}",
            top3
        );
    }

    #[test]
    fn pointer_args_vary_but_masked_values_repeat() {
        let spec = catalog::ipc_pipe();
        let trace = TraceGenerator::new(&spec, 5).generate(1000);
        let table = SyscallTable::shared();
        let mut raw = std::collections::HashSet::new();
        let mut masked = std::collections::HashSet::new();
        for req in trace.requests().filter(|r| r.id == SyscallId::new(0)) {
            let mask = table.get(req.id).unwrap().bitmask();
            raw.insert(req.args);
            masked.insert(mask.masked(&req.args));
        }
        assert!(raw.len() > masked.len() * 10, "pointers must vary");
        assert!(masked.len() <= 2, "one hot set for pipe reads");
    }

    #[test]
    fn clone_and_personality_stay_docker_legal() {
        let spec = catalog::elasticsearch();
        let trace = TraceGenerator::new(&spec, 6).generate(30_000);
        let profile = draco_profiles::docker_default();
        for req in trace.requests() {
            if req.id == SyscallId::new(56) || req.id == SyscallId::new(135) {
                assert!(
                    profile.evaluate(&req).permits(),
                    "docker-default must allow generated {req}"
                );
            }
        }
    }

    #[test]
    fn pc_sites_bounded_by_spec() {
        let spec = catalog::redis(); // 7 sites
        let trace = TraceGenerator::new(&spec, 7).generate(20_000);
        let mut pcs_per_sid = std::collections::HashMap::<u16, std::collections::HashSet<u64>>::new();
        for op in trace.ops() {
            pcs_per_sid.entry(op.nr).or_default().insert(op.pc);
        }
        for (nr, pcs) in pcs_per_sid {
            assert!(pcs.len() <= 7, "nr {nr} has {} sites", pcs.len());
        }
    }

    #[test]
    fn generate_default_uses_spec_length() {
        let spec = catalog::ipc_mq();
        let trace = TraceGenerator::new(&spec, 0).generate_default();
        assert_eq!(trace.len(), spec.default_ops);
    }

    #[test]
    fn compute_time_is_near_mean() {
        let spec = catalog::hpcc();
        let trace = TraceGenerator::new(&spec, 8).generate(5_000);
        let mean = trace.total_compute_ns() as f64 / 5_000.0;
        let target = spec.compute_ns_per_op as f64;
        assert!((target * 0.9..=target * 1.1).contains(&mean), "mean {mean}");
    }
}
