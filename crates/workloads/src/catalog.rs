//! The fifteen paper workloads (paper §X-A).
//!
//! Eight macro benchmarks — HTTPD, NGINX, Elasticsearch, MySQL,
//! Cassandra, Redis, and the OpenFaaS-style `grep` and `pwgen` functions —
//! and seven micro benchmarks — sysbench-fio, HPCC (GUPS),
//! UnixBench-syscall, and the fifo/pipe/domain/mq IPC benchmarks.
//!
//! Mix weights follow the family structure behind paper Fig. 3 (`read`
//! dominates at ≈18% of all macro calls; `futex`, `recvfrom`, `close`,
//! `epoll_wait`, `writev`… make up the rest of the top-20 ≈ 86%).
//! Hot-set counts keep most syscalls at ≤3 frequent argument sets, with
//! fd/path-indexed calls carrying a cold tail. Compute-per-op sets the
//! syscall density: micro benchmarks are syscall-bound; HPCC is
//! compute-bound and shows no measurable checking overhead, exactly as in
//! the paper.

use crate::model::{SyscallMix, WorkloadClass, WorkloadSpec};

fn m(name: &'static str, weight: f64, hot: u8) -> SyscallMix {
    SyscallMix::hot(name, weight, hot)
}

fn mt(name: &'static str, weight: f64, hot: u8, tail: u16, p: f64) -> SyscallMix {
    SyscallMix::with_tail(name, weight, hot, tail, p)
}

fn macro_spec(
    name: &'static str,
    compute_ns_per_op: u64,
    pc_sites: u8,
    mix: Vec<SyscallMix>,
) -> WorkloadSpec {
    let spec = WorkloadSpec {
        name,
        class: WorkloadClass::Macro,
        mix,
        compute_ns_per_op,
        pc_sites_per_syscall: pc_sites,
        default_ops: 60_000,
    };
    spec.validate();
    spec
}

fn micro_spec(
    name: &'static str,
    compute_ns_per_op: u64,
    mix: Vec<SyscallMix>,
) -> WorkloadSpec {
    let spec = WorkloadSpec {
        name,
        class: WorkloadClass::Micro,
        mix,
        compute_ns_per_op,
        pc_sites_per_syscall: 1,
        default_ops: 40_000,
    };
    spec.validate();
    spec
}

/// Builds the full fifteen-workload catalog in paper order.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        httpd(),
        nginx(),
        elasticsearch(),
        mysql(),
        cassandra(),
        redis(),
        grep(),
        pwgen(),
        sysbench_fio(),
        hpcc(),
        unixbench_syscall(),
        ipc_fifo(),
        ipc_pipe(),
        ipc_domain(),
        ipc_mq(),
    ]
}

/// Looks a workload up by its paper label.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|w| w.name == name)
}

/// The macro benchmarks, in paper order.
pub fn macro_benchmarks() -> Vec<WorkloadSpec> {
    all()
        .into_iter()
        .filter(|w| w.class == WorkloadClass::Macro)
        .collect()
}

/// The micro benchmarks, in paper order.
pub fn micro_benchmarks() -> Vec<WorkloadSpec> {
    all()
        .into_iter()
        .filter(|w| w.class == WorkloadClass::Micro)
        .collect()
}

/// Apache HTTPD serving `ab` with 30 concurrent requests.
pub fn httpd() -> WorkloadSpec {
    macro_spec(
        "httpd",
        1500,
        2,
        vec![
            mt("read", 0.17, 3, 24, 0.07),
            mt("close", 0.08, 2, 32, 0.1),
            m("futex", 0.08, 2),
            mt("recvfrom", 0.07, 2, 12, 0.06),
            m("epoll_wait", 0.07, 2),
            mt("accept4", 0.07, 1, 8, 0.04),
            m("write", 0.06, 3),
            mt("writev", 0.05, 2, 10, 0.05),
            m("epoll_ctl", 0.05, 3),
            mt("openat", 0.05, 2, 40, 0.12),
            mt("fstat", 0.05, 2, 32, 0.1),
            m("fcntl", 0.04, 2),
            m("poll", 0.04, 2),
            mt("stat", 0.04, 2, 36, 0.11),
            mt("sendto", 0.03, 2, 8, 0.04),
            mt("sendfile", 0.04, 2, 12, 0.08),
            m("mmap", 0.02, 3),
            m("munmap", 0.02, 2),
            m("times", 0.02, 1),
            m("shutdown", 0.02, 1),
            m("getpid", 0.01, 1),
            m("clone", 0.01, 2),
        ],
    )
}

/// NGINX serving `ab` with 30 concurrent requests.
pub fn nginx() -> WorkloadSpec {
    macro_spec(
        "nginx",
        1300,
        2,
        vec![
            mt("read", 0.15, 3, 20, 0.06),
            mt("recvfrom", 0.10, 2, 10, 0.05),
            mt("writev", 0.10, 2, 12, 0.06),
            m("epoll_wait", 0.10, 2),
            mt("close", 0.08, 2, 28, 0.09),
            m("epoll_ctl", 0.06, 3),
            mt("accept4", 0.06, 1, 8, 0.04),
            m("write", 0.05, 3),
            mt("openat", 0.05, 2, 30, 0.1),
            mt("fstat", 0.04, 2, 24, 0.08),
            m("futex", 0.04, 2),
            mt("sendfile", 0.04, 2, 10, 0.07),
            m("setsockopt", 0.03, 3),
            mt("stat", 0.03, 2, 24, 0.09),
            m("gettimeofday", 0.03, 1),
            m("shutdown", 0.02, 1),
            m("mmap", 0.01, 2),
            m("munmap", 0.01, 2),
        ],
    )
}

/// Elasticsearch driven by YCSB workloada, 10 clients.
///
/// Wide call-site diversity and a large argument-set tail — the paper's
/// Fig. 13 shows Elasticsearch with the lowest STB/SLB hit rates.
pub fn elasticsearch() -> WorkloadSpec {
    macro_spec(
        "elasticsearch",
        2000,
        6,
        vec![
            mt("futex", 0.20, 3, 60, 0.14),
            mt("read", 0.14, 3, 48, 0.12),
            m("epoll_wait", 0.08, 3),
            mt("write", 0.07, 3, 32, 0.1),
            mt("close", 0.05, 2, 40, 0.12),
            mt("recvfrom", 0.05, 2, 24, 0.09),
            mt("sendto", 0.05, 2, 24, 0.09),
            mt("mmap", 0.05, 3, 36, 0.12),
            mt("openat", 0.04, 2, 48, 0.14),
            mt("fstat", 0.04, 2, 40, 0.12),
            mt("stat", 0.04, 2, 44, 0.13),
            m("epoll_ctl", 0.04, 3),
            mt("pread64", 0.04, 2, 30, 0.11),
            mt("pwrite64", 0.03, 2, 30, 0.11),
            m("munmap", 0.03, 3),
            mt("lseek", 0.03, 2, 20, 0.08),
            m("sched_yield", 0.02, 1),
            m("getrandom", 0.02, 2),
            m("clone", 0.01, 2),
            m("madvise", 0.02, 2),
        ],
    )
}

/// MySQL driven by sysbench OLTP, 10 clients.
pub fn mysql() -> WorkloadSpec {
    macro_spec(
        "mysql",
        1800,
        3,
        vec![
            mt("read", 0.16, 3, 24, 0.08),
            mt("write", 0.10, 3, 20, 0.07),
            m("futex", 0.14, 3),
            mt("recvfrom", 0.09, 2, 12, 0.05),
            mt("sendto", 0.09, 2, 12, 0.05),
            m("poll", 0.06, 2),
            mt("pread64", 0.06, 2, 24, 0.1),
            mt("pwrite64", 0.05, 2, 24, 0.1),
            mt("lseek", 0.05, 2, 16, 0.07),
            mt("fsync", 0.04, 1, 8, 0.06),
            mt("close", 0.03, 2, 20, 0.08),
            mt("openat", 0.03, 2, 24, 0.09),
            mt("fstat", 0.03, 2, 20, 0.08),
            m("times", 0.03, 1),
            m("mmap", 0.02, 2),
            m("munmap", 0.02, 2),
        ],
    )
}

/// Cassandra driven by YCSB workloadc, 30 clients.
pub fn cassandra() -> WorkloadSpec {
    macro_spec(
        "cassandra",
        2200,
        4,
        vec![
            mt("futex", 0.22, 3, 40, 0.12),
            mt("read", 0.13, 3, 32, 0.1),
            m("epoll_wait", 0.09, 3),
            mt("write", 0.07, 3, 24, 0.09),
            mt("recvfrom", 0.06, 2, 16, 0.07),
            mt("sendto", 0.06, 2, 16, 0.07),
            mt("mmap", 0.05, 3, 24, 0.1),
            m("epoll_ctl", 0.04, 3),
            mt("close", 0.04, 2, 24, 0.09),
            mt("openat", 0.03, 2, 32, 0.11),
            mt("fstat", 0.03, 2, 24, 0.09),
            mt("stat", 0.03, 2, 28, 0.1),
            m("sched_yield", 0.03, 1),
            mt("pread64", 0.03, 2, 20, 0.08),
            m("munmap", 0.02, 3),
            m("getrandom", 0.02, 2),
            m("madvise", 0.02, 2),
            m("gettimeofday", 0.02, 1),
            m("clone", 0.01, 2),
        ],
    )
}

/// Redis driven by redis-benchmark, 30 concurrent requests.
///
/// Few distinct syscalls but many call sites (command dispatch), giving
/// the low STB hit rate of paper Fig. 13.
pub fn redis() -> WorkloadSpec {
    macro_spec(
        "redis",
        900,
        7,
        vec![
            mt("read", 0.24, 3, 16, 0.06),
            mt("write", 0.22, 3, 16, 0.06),
            m("epoll_wait", 0.20, 2),
            m("epoll_ctl", 0.07, 3),
            mt("close", 0.05, 2, 12, 0.06),
            mt("accept4", 0.05, 1, 8, 0.04),
            m("getpid", 0.04, 1),
            mt("openat", 0.03, 2, 12, 0.07),
            m("fcntl", 0.03, 2),
            m("gettimeofday", 0.03, 1),
            m("times", 0.02, 1),
            m("mmap", 0.01, 2),
            m("munmap", 0.01, 2),
        ],
    )
}

/// The OpenFaaS-style `grep` function: search a pattern over the Linux
/// source tree.
pub fn grep() -> WorkloadSpec {
    macro_spec(
        "grep",
        1200,
        1,
        vec![
            mt("read", 0.32, 2, 24, 0.08),
            mt("openat", 0.16, 1, 64, 0.18),
            mt("close", 0.15, 1, 48, 0.16),
            mt("fstat", 0.12, 1, 40, 0.14),
            m("write", 0.08, 2),
            m("getdents", 0.06, 2),
            m("mmap", 0.04, 2),
            m("munmap", 0.04, 2),
            m("brk", 0.03, 2),
        ],
    )
}

/// The OpenFaaS-style `pwgen` function: generate 10K secure passwords.
pub fn pwgen() -> WorkloadSpec {
    macro_spec(
        "pwgen",
        2500,
        1,
        vec![
            m("getrandom", 0.45, 2),
            m("write", 0.30, 2),
            m("read", 0.10, 2),
            m("brk", 0.06, 2),
            m("mmap", 0.05, 2),
            m("close", 0.04, 1),
        ],
    )
}

/// sysbench FIO: 128 files, 512 MB total.
pub fn sysbench_fio() -> WorkloadSpec {
    micro_spec(
        "sysbench-fio",
        600,
        vec![
            mt("read", 0.28, 2, 64, 0.2),
            mt("write", 0.28, 2, 64, 0.2),
            mt("lseek", 0.16, 2, 32, 0.16),
            mt("fsync", 0.10, 1, 16, 0.12),
            mt("openat", 0.06, 1, 64, 0.2),
            mt("close", 0.06, 1, 64, 0.2),
            m("fdatasync", 0.06, 1),
        ],
    )
}

/// HPCC GUPS: compute-bound, almost no system calls.
pub fn hpcc() -> WorkloadSpec {
    micro_spec(
        "hpcc",
        60_000,
        vec![
            m("brk", 0.25, 2),
            m("mmap", 0.30, 3),
            m("munmap", 0.20, 2),
            m("read", 0.15, 2),
            m("write", 0.10, 2),
        ],
    )
}

/// UnixBench syscall in mix mode: the tightest syscall loop.
pub fn unixbench_syscall() -> WorkloadSpec {
    micro_spec(
        "unixbench-syscall",
        250,
        vec![
            m("close", 0.25, 2),
            m("dup", 0.25, 1),
            m("getpid", 0.20, 1),
            m("getuid", 0.15, 1),
            m("umask", 0.15, 1),
        ],
    )
}

/// IPC Bench fifo: 1000-byte packets over a named pipe.
pub fn ipc_fifo() -> WorkloadSpec {
    micro_spec(
        "fifo",
        450,
        vec![m("read", 0.49, 1), m("write", 0.49, 1), m("openat", 0.02, 1)],
    )
}

/// IPC Bench pipe: 1000-byte packets over an anonymous pipe.
pub fn ipc_pipe() -> WorkloadSpec {
    micro_spec(
        "pipe",
        400,
        vec![m("read", 0.50, 1), m("write", 0.50, 1)],
    )
}

/// IPC Bench domain sockets: 1000-byte packets.
pub fn ipc_domain() -> WorkloadSpec {
    micro_spec(
        "domain",
        500,
        vec![
            m("sendto", 0.48, 1),
            m("recvfrom", 0.48, 1),
            m("socket", 0.02, 1),
            m("close", 0.02, 1),
        ],
    )
}

/// IPC Bench POSIX message queues: 1000-byte packets.
pub fn ipc_mq() -> WorkloadSpec {
    micro_spec(
        "mq",
        550,
        vec![
            m("mq_timedsend", 0.48, 1),
            m("mq_timedreceive", 0.48, 1),
            m("mq_open", 0.02, 1),
            m("close", 0.02, 1),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_syscalls::SyscallTable;

    #[test]
    fn fifteen_workloads_in_paper_split() {
        assert_eq!(all().len(), 15, "paper §X-A: fifteen workloads");
        assert_eq!(macro_benchmarks().len(), 8);
        assert_eq!(micro_benchmarks().len(), 7);
    }

    #[test]
    fn all_specs_validate_and_resolve() {
        let table = SyscallTable::shared();
        for spec in all() {
            spec.validate();
            for mix in &spec.mix {
                assert!(
                    table.by_name(mix.name).is_some(),
                    "{}: unknown syscall {}",
                    spec.name,
                    mix.name
                );
            }
        }
    }

    #[test]
    fn by_name_finds_paper_labels() {
        for name in [
            "httpd",
            "nginx",
            "elasticsearch",
            "mysql",
            "cassandra",
            "redis",
            "grep",
            "pwgen",
            "sysbench-fio",
            "hpcc",
            "unixbench-syscall",
            "fifo",
            "pipe",
            "domain",
            "mq",
        ] {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert!(by_name("fortnite").is_none());
    }

    #[test]
    fn micro_benchmarks_are_syscall_denser_than_macro() {
        let macro_mean: f64 = macro_benchmarks()
            .iter()
            .map(|w| w.compute_ns_per_op as f64)
            .sum::<f64>()
            / 8.0;
        let micro_wo_hpcc: f64 = micro_benchmarks()
            .iter()
            .filter(|w| w.name != "hpcc")
            .map(|w| w.compute_ns_per_op as f64)
            .sum::<f64>()
            / 6.0;
        assert!(micro_wo_hpcc < macro_mean);
    }

    #[test]
    fn hpcc_is_compute_bound() {
        let h = hpcc();
        for w in all() {
            if w.name != "hpcc" {
                assert!(h.compute_ns_per_op > 10 * w.compute_ns_per_op);
            }
        }
    }

    #[test]
    fn read_dominates_macro_union() {
        // Fig. 3: read is the most frequent call overall.
        let mut by_call = std::collections::HashMap::<&str, f64>::new();
        for w in macro_benchmarks() {
            let total = w.total_weight();
            for m in &w.mix {
                *by_call.entry(m.name).or_default() += m.weight / total;
            }
        }
        let read = by_call["read"];
        for (name, w) in &by_call {
            assert!(read >= *w, "{name} outweighs read");
        }
    }

    #[test]
    fn workloads_only_use_docker_allowed_syscalls() {
        // Fig. 2's docker-default runs must not be killed mid-trace.
        let profile = draco_profiles::docker_default();
        let table = SyscallTable::shared();
        for w in all() {
            for m in &w.mix {
                let id = table.by_name(m.name).unwrap().id();
                assert!(
                    profile.rule(id).is_some(),
                    "{}: {} denied by docker-default",
                    w.name,
                    m.name
                );
            }
        }
    }

    #[test]
    fn hot_sets_mostly_three_or_fewer() {
        // Fig. 3: individual syscalls are "often called with three or
        // fewer different argument sets".
        for w in all() {
            for m in &w.mix {
                assert!(m.hot_sets <= 3, "{}:{}", w.name, m.name);
            }
        }
    }
}
