//! Workload specifications: the generative model behind each benchmark.

use core::fmt;

/// Macro (long-running application) vs micro (syscall-dominated kernel
/// exerciser) — the paper reports the two groups separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Application-level benchmark (request latency / execution time).
    Macro,
    /// Kernel-interface micro benchmark.
    Micro,
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadClass::Macro => write!(f, "macro"),
            WorkloadClass::Micro => write!(f, "micro"),
        }
    }
}

/// One system call's role in a workload's mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyscallMix {
    /// Kernel name of the system call.
    pub name: &'static str,
    /// Relative frequency (weights need not sum to 1).
    pub weight: f64,
    /// Number of *hot* argument sets (paper Fig. 3: most calls use three
    /// or fewer).
    pub hot_sets: u8,
    /// Number of additional cold argument sets in the tail (varying file
    /// descriptors, buffer sizes, …).
    pub tail_sets: u16,
    /// Probability that a call draws a tail set instead of a hot one.
    pub tail_prob: f64,
}

impl SyscallMix {
    /// A mix entry with only hot argument sets.
    pub const fn hot(name: &'static str, weight: f64, hot_sets: u8) -> Self {
        SyscallMix {
            name,
            weight,
            hot_sets,
            tail_sets: 0,
            tail_prob: 0.0,
        }
    }

    /// A mix entry with a cold tail.
    pub const fn with_tail(
        name: &'static str,
        weight: f64,
        hot_sets: u8,
        tail_sets: u16,
        tail_prob: f64,
    ) -> Self {
        SyscallMix {
            name,
            weight,
            hot_sets,
            tail_sets,
            tail_prob,
        }
    }

    /// Total distinct argument sets this entry can produce.
    pub const fn total_sets(&self) -> usize {
        self.hot_sets as usize + self.tail_sets as usize
    }
}

/// A complete workload specification.
///
/// The defaults mirror the measurement setup: macro benchmarks interleave
/// real application work between calls; micro benchmarks are tight
/// syscall loops.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (paper's label, e.g. `"nginx"`).
    pub name: &'static str,
    /// Macro or micro.
    pub class: WorkloadClass,
    /// The syscall mix.
    pub mix: Vec<SyscallMix>,
    /// Mean application compute between system calls, nanoseconds.
    pub compute_ns_per_op: u64,
    /// Number of distinct `syscall` instruction sites per system call
    /// (the STB tracks call sites; servers reach one syscall from a few
    /// sites).
    pub pc_sites_per_syscall: u8,
    /// Default trace length used by the harness.
    pub default_ops: usize,
}

impl WorkloadSpec {
    /// Validates internal consistency (weights positive, probabilities in
    /// range, mixes non-empty).
    ///
    /// # Panics
    ///
    /// Panics on an invalid specification; the catalog is code, so a bad
    /// spec is a bug.
    pub fn validate(&self) {
        assert!(!self.mix.is_empty(), "{}: empty mix", self.name);
        for m in &self.mix {
            assert!(m.weight > 0.0, "{}: non-positive weight for {}", self.name, m.name);
            assert!(
                (0.0..=1.0).contains(&m.tail_prob),
                "{}: bad tail_prob for {}",
                self.name,
                m.name
            );
            assert!(m.hot_sets >= 1, "{}: {} needs at least one hot set", self.name, m.name);
            assert!(
                m.tail_prob == 0.0 || m.tail_sets > 0,
                "{}: {} has tail_prob but no tail sets",
                self.name,
                m.name
            );
        }
        assert!(self.pc_sites_per_syscall >= 1);
        assert!(self.default_ops > 0);
    }

    /// Total weight (normalization constant).
    pub fn total_weight(&self) -> f64 {
        self.mix.iter().map(|m| m.weight).sum()
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} syscalls in mix, {} ns/op)",
            self.name,
            self.class,
            self.mix.len(),
            self.compute_ns_per_op
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            class: WorkloadClass::Micro,
            mix: vec![
                SyscallMix::hot("getpid", 1.0, 1),
                SyscallMix::with_tail("read", 2.0, 3, 10, 0.1),
            ],
            compute_ns_per_op: 100,
            pc_sites_per_syscall: 1,
            default_ops: 1000,
        }
    }

    #[test]
    fn valid_spec_passes() {
        spec().validate();
        assert_eq!(spec().total_weight(), 3.0);
        assert!(spec().to_string().contains("test"));
    }

    #[test]
    fn mix_helpers() {
        let m = SyscallMix::hot("x", 1.0, 2);
        assert_eq!(m.total_sets(), 2);
        let m = SyscallMix::with_tail("x", 1.0, 2, 8, 0.2);
        assert_eq!(m.total_sets(), 10);
    }

    #[test]
    #[should_panic(expected = "empty mix")]
    fn empty_mix_rejected() {
        let mut s = spec();
        s.mix.clear();
        s.validate();
    }

    #[test]
    #[should_panic(expected = "non-positive weight")]
    fn zero_weight_rejected() {
        let mut s = spec();
        s.mix[0].weight = 0.0;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "tail_prob but no tail sets")]
    fn tail_prob_without_sets_rejected() {
        let mut s = spec();
        s.mix[0].tail_prob = 0.5;
        s.validate();
    }

    #[test]
    fn class_display() {
        assert_eq!(WorkloadClass::Macro.to_string(), "macro");
        assert_eq!(WorkloadClass::Micro.to_string(), "micro");
    }
}
