//! The calibrated timing model behind Figs. 2, 11, 16 and 17.
//!
//! The paper's software numbers are wall-clock measurements on an Intel
//! Xeon E5-2660 v3 (Ubuntu 18.04 / Linux 5.3, BPF JIT on, mitigations
//! off — §IV-A), with an appendix rerun on CentOS 7.6 / Linux 3.10 with
//! KPTI enabled. A userspace reproduction models those machines as a
//! [`KernelCostModel`]: per-operation application compute (from the
//! trace) plus per-syscall kernel costs, with the *checking* component
//! derived from actually executing this workspace's filters and checkers
//! (instruction counts, cache paths). The model is deterministic, so the
//! harness output is machine-independent; only the constants are
//! calibrated, and only the *shape* of the results is claimed
//! (`DESIGN.md` §5).
//!
//! # Example
//!
//! ```
//! use draco_workloads::{catalog, timing, TraceGenerator};
//!
//! let spec = catalog::ipc_pipe();
//! let trace = TraceGenerator::new(&spec, 1).generate(2_000);
//! let model = timing::KernelCostModel::ubuntu_18_04();
//! let insecure = timing::run_insecure(&trace, &model);
//! let profile = timing::profile_for_trace(&trace, draco_profiles::ProfileKind::SyscallComplete);
//! let seccomp = timing::run_seccomp(&trace, &profile, &model)?;
//! assert!(seccomp.total_ns > insecure.total_ns);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use draco_bpf::SeccompAction;
use draco_core::{CheckPath, DracoChecker};
use draco_profiles::{
    compile_stacked, FilterLayout, ProfileGenerator, ProfileKind, ProfileSpec,
};
use draco_syscalls::SyscallId;

use crate::trace::SyscallTrace;

/// Per-syscall kernel cost constants, in nanoseconds.
///
/// Checking costs are *computed* (filter instructions × per-instruction
/// cost; Draco path constants per paths actually taken), not assumed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelCostModel {
    /// Human-readable label ("ubuntu-18.04-linux-5.3", …).
    pub label: &'static str,
    /// Kernel entry/exit plus the system call's own work.
    pub syscall_base_ns: f64,
    /// Fixed cost of invoking the Seccomp machinery at all.
    pub seccomp_dispatch_ns: f64,
    /// Cost per executed cBPF instruction.
    pub bpf_insn_ns: f64,
    /// Software Draco: SPT-hit path (ID-only admission).
    pub spt_hit_ns: f64,
    /// Software Draco: VAT-hit path (mask, CRC hashes, two probes,
    /// compare).
    pub vat_hit_ns: f64,
    /// Software Draco: extra table-update cost on a miss, on top of the
    /// filter run.
    pub vat_update_ns: f64,
}

impl KernelCostModel {
    /// The paper's main configuration (§IV-A): Ubuntu 18.04, Linux 5.3,
    /// BPF JIT enabled, `spec_store_bypass`/`spectre_v2`/`mds`/`pti`/
    /// `l1tf` mitigations disabled.
    pub const fn ubuntu_18_04() -> Self {
        KernelCostModel {
            label: "ubuntu-18.04-linux-5.3",
            syscall_base_ns: 160.0,
            seccomp_dispatch_ns: 30.0,
            bpf_insn_ns: 1.6,
            spt_hit_ns: 28.0,
            vat_hit_ns: 110.0,
            vat_update_ns: 140.0,
        }
    }

    /// The appendix configuration: CentOS 7.6, Linux 3.10, KPTI and
    /// Spectre mitigations enabled, Seccomp not using the JIT — a much
    /// more expensive kernel path (paper Figs. 16–17).
    pub const fn centos_7_linux_3_10() -> Self {
        KernelCostModel {
            label: "centos-7.6-linux-3.10",
            syscall_base_ns: 520.0,
            seccomp_dispatch_ns: 50.0,
            bpf_insn_ns: 5.0,
            spt_hit_ns: 32.0,
            vat_hit_ns: 120.0,
            vat_update_ns: 160.0,
        }
    }
}

impl Default for KernelCostModel {
    fn default() -> Self {
        KernelCostModel::ubuntu_18_04()
    }
}

/// The modeled execution of one trace under one checking backend.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Workload label.
    pub workload: String,
    /// Backend label (`insecure`, `seccomp`, `draco-sw`).
    pub backend: String,
    /// Total modeled time (compute + kernel + checking).
    pub total_ns: f64,
    /// The checking component alone.
    pub check_ns: f64,
    /// System calls executed.
    pub syscalls: u64,
    /// Total cBPF instructions executed by filters.
    pub filter_insns: u64,
    /// Checks admitted from Draco tables (0 for other backends).
    pub cache_hits: u64,
}

impl RunReport {
    /// This run's time normalized to a baseline run (the paper's
    /// "Normalized to Insecure" axis).
    pub fn normalized_to(&self, baseline: &RunReport) -> f64 {
        self.total_ns / baseline.total_ns
    }
}

/// Generates the application-specific profile for a trace, including the
/// process-startup preamble (paper §X-B records whole-application
/// traces, so startup syscalls are always whitelisted).
pub fn profile_for_trace(trace: &SyscallTrace, kind: ProfileKind) -> ProfileSpec {
    let mut gen = ProfileGenerator::new(trace.workload().to_owned());
    for req in startup_preamble().requests() {
        gen.observe(&req);
    }
    for req in trace.requests() {
        gen.observe(&req);
    }
    gen.emit(kind)
}

/// The process-startup system call sequence every containerized
/// application issues before reaching steady state (dynamic linking,
/// runtime setup). Profiling tools observe it, so generated profiles
/// whitelist it — this is why the paper's app-specific profiles allow
/// 50–100 syscalls (Fig. 15a) even for small applications.
pub fn startup_preamble() -> SyscallTrace {
    use crate::trace::TraceOp;
    let table = draco_syscalls::SyscallTable::shared();
    let mut ops = Vec::new();
    let mut push = |name: &str, sets: &[[u64; 6]]| {
        let desc = table.by_name(name).unwrap_or_else(|| panic!("{name}"));
        for (i, args) in sets.iter().enumerate() {
            ops.push(TraceOp {
                compute_ns: 50,
                pc: 0x20_0000 + u64::from(desc.id().as_u16()) * 0x40 + i as u64 * 8,
                nr: desc.id().as_u16(),
                args: *args,
            });
        }
    };
    let z = [0u64; 6];
    push("execve", &[z]);
    push("brk", &[z, [0x1000, 0, 0, 0, 0, 0], [0x2000, 0, 0, 0, 0, 0]]);
    push("arch_prctl", &[[0x1002, 0x7f00, 0, 0, 0, 0]]);
    push("access", &[[0, 4, 0, 0, 0, 0]]);
    push("openat", &[[0xffff_ff9c, 0, 0x80000, 0, 0, 0], [0xffff_ff9c, 0, 0, 0, 0, 0]]);
    push("newfstatat", &[[3, 0, 0, 0, 0, 0]]);
    push("fstat", &[[3, 0, 0, 0, 0, 0], [4, 0, 0, 0, 0, 0]]);
    push("read", &[[3, 0, 832, 0, 0, 0], [3, 0, 4096, 0, 0, 0]]);
    push("pread64", &[[3, 0, 64, 0x40, 0, 0]]);
    push(
        "mmap",
        &[
            [0, 0x2000, 3, 0x22, 0xffff_ffff_ffff_ffff, 0],
            [0, 0x1000, 1, 2, 3, 0],
            [0, 0x4000, 3, 0x812, 3, 0],
        ],
    );
    push("mprotect", &[[0, 0x1000, 1, 0, 0, 0], [0, 0x1000, 0, 0, 0, 0]]);
    push("munmap", &[[0, 0x2000, 0, 0, 0, 0]]);
    push("close", &[[3, 0, 0, 0, 0, 0], [4, 0, 0, 0, 0, 0]]);
    push("set_tid_address", &[z]);
    push("set_robust_list", &[[0, 24, 0, 0, 0, 0]]);
    push("rt_sigaction", &[[13, 0, 0, 8, 0, 0], [2, 0, 0, 8, 0, 0]]);
    push("rt_sigprocmask", &[[0, 0, 0, 8, 0, 0], [2, 0, 0, 8, 0, 0]]);
    push("prlimit64", &[[0, 3, 0, 0, 0, 0], [0, 7, 0, 0, 0, 0]]);
    push("getrandom", &[[0, 8, 1, 0, 0, 0]]);
    push("getuid", &[z]);
    push("getgid", &[z]);
    push("geteuid", &[z]);
    push("getegid", &[z]);
    push("getpid", &[z]);
    push("gettid", &[z]);
    push("uname", &[z]);
    push("sysinfo", &[z]);
    push("getcwd", &[[0, 4096, 0, 0, 0, 0]]);
    push("statfs", &[z]);
    push("sched_getaffinity", &[[0, 128, 0, 0, 0, 0]]);
    push("ioctl", &[[1, 0x5401, 0, 0, 0, 0], [0, 0x5413, 0, 0, 0, 0]]);
    push("lseek", &[[3, 0, 0, 0, 0, 0]]);
    push("dup2", &[[3, 1, 0, 0, 0, 0]]);
    push("fcntl", &[[3, 1, 0, 0, 0, 0], [3, 2, 1, 0, 0, 0]]);
    push("getdents64", &[[3, 0, 32768, 0, 0, 0]]);
    push("socket", &[[1, 1, 0, 0, 0, 0], [2, 1, 6, 0, 0, 0]]);
    push("connect", &[[3, 0, 16, 0, 0, 0]]);
    push("bind", &[[3, 0, 16, 0, 0, 0]]);
    push("listen", &[[3, 128, 0, 0, 0, 0]]);
    push("setsockopt", &[[3, 1, 2, 0, 4, 0]]);
    push("getsockopt", &[[3, 1, 4, 0, 0, 0]]);
    push("getsockname", &[[3, 0, 0, 0, 0, 0]]);
    push("epoll_create1", &[[0x80000, 0, 0, 0, 0, 0]]);
    push("epoll_ctl", &[[4, 1, 5, 0, 0, 0]]);
    push("pipe2", &[[0, 0x80000, 0, 0, 0, 0]]);
    push("eventfd2", &[[0, 0x80000, 0, 0, 0, 0]]);
    push("sigaltstack", &[z]);
    push("madvise", &[[0, 0x1000, 4, 0, 0, 0]]);
    push("futex", &[[0, 129, 1, 0, 0, 0], [0, 1, 1, 0, 0, 0]]);
    push(
        "clone",
        &[[draco_profiles::DOCKER_CLONE_FLAGS[0], 0, 0, 0, 0, 0]],
    );
    push("wait4", &[[0xffff_ffff, 0, 0, 0, 0, 0]]);
    push("personality", &[[draco_profiles::DOCKER_PERSONALITY_VALUES[0], 0, 0, 0, 0, 0]]);
    push("times", &[z]);
    push("umask", &[[0o22, 0, 0, 0, 0, 0]]);
    push("dup", &[[3, 0, 0, 0, 0, 0]]);
    push("getppid", &[z]);
    push("exit_group", &[z]);
    SyscallTrace::from_ops("startup", ops)
}

/// Models the insecure baseline: no checking at all.
pub fn run_insecure(trace: &SyscallTrace, model: &KernelCostModel) -> RunReport {
    let mut total = 0.0;
    for op in trace.ops() {
        total += op.compute_ns as f64 + model.syscall_base_ns;
    }
    RunReport {
        workload: trace.workload().to_owned(),
        backend: "insecure".to_owned(),
        total_ns: total,
        check_ns: 0.0,
        syscalls: trace.len() as u64,
        filter_insns: 0,
        cache_hits: 0,
    }
}

/// Models conventional Seccomp: the filter runs at every syscall.
///
/// # Errors
///
/// Returns an error if the profile fails to compile (a compiler bug, not
/// a profile property).
pub fn run_seccomp(
    trace: &SyscallTrace,
    profile: &ProfileSpec,
    model: &KernelCostModel,
) -> Result<RunReport, draco_bpf::BpfError> {
    run_seccomp_layout(trace, profile, model, FilterLayout::Linear)
}

/// [`run_seccomp`] with an explicit filter layout (the §XII binary-tree
/// ablation).
///
/// # Errors
///
/// Returns an error if the profile fails to compile.
pub fn run_seccomp_layout(
    trace: &SyscallTrace,
    profile: &ProfileSpec,
    model: &KernelCostModel,
    layout: FilterLayout,
) -> Result<RunReport, draco_bpf::BpfError> {
    run_seccomp_layout_opt(trace, profile, model, layout, false)
}

/// [`run_seccomp_layout`] with the peephole optimizer optionally applied
/// to the generated filters (the `ablate-opt` experiment).
///
/// # Errors
///
/// Returns an error if the profile fails to compile.
pub fn run_seccomp_layout_opt(
    trace: &SyscallTrace,
    profile: &ProfileSpec,
    model: &KernelCostModel,
    layout: FilterLayout,
    optimize: bool,
) -> Result<RunReport, draco_bpf::BpfError> {
    let mut stack = compile_stacked(profile, layout)?;
    if optimize {
        stack = stack.optimize();
    }
    let mut total = 0.0;
    let mut check = 0.0;
    let mut insns_total = 0u64;
    for op in trace.ops() {
        let data = draco_bpf::SeccompData::from_request(&op.request());
        let outcome = stack.run(&data)?;
        let check_ns =
            model.seccomp_dispatch_ns + outcome.insns_executed as f64 * model.bpf_insn_ns;
        insns_total += outcome.insns_executed;
        check += check_ns;
        total += op.compute_ns as f64 + model.syscall_base_ns + check_ns;
        debug_assert!(
            outcome.action.permits(),
            "steady-state workload syscalls must pass their own profile ({})",
            op.request()
        );
    }
    Ok(RunReport {
        workload: trace.workload().to_owned(),
        backend: format!("seccomp[{}]", profile.name()),
        total_ns: total,
        check_ns: check,
        syscalls: trace.len() as u64,
        filter_insns: insns_total,
        cache_hits: 0,
    })
}

/// Models software Draco in front of the same profile.
///
/// # Errors
///
/// Returns an error if the checker's fallback filter fails to compile.
pub fn run_draco_sw(
    trace: &SyscallTrace,
    profile: &ProfileSpec,
    model: &KernelCostModel,
) -> Result<RunReport, draco_core::DracoError> {
    run_draco_sw_with_warmup(trace, profile, model, 0)
}

/// [`run_draco_sw`] with an unmeasured warm-up prefix (the paper measures
/// steady state, §X-C). The report covers only the post-warm-up suffix.
///
/// # Errors
///
/// Returns an error if the checker's fallback filter fails to compile.
pub fn run_draco_sw_with_warmup(
    trace: &SyscallTrace,
    profile: &ProfileSpec,
    model: &KernelCostModel,
    warmup_ops: usize,
) -> Result<RunReport, draco_core::DracoError> {
    let mut checker = DracoChecker::from_profile(profile)?;
    for op in trace.ops().iter().take(warmup_ops) {
        checker.check(&op.request());
    }
    let trace = trace.skip(warmup_ops);
    let trace = &trace;
    let mut total = 0.0;
    let mut check = 0.0;
    let mut insns_total = 0u64;
    let mut cache_hits = 0u64;
    for op in trace.ops() {
        let result = checker.check(&op.request());
        let check_ns = match result.path {
            CheckPath::SptHit => {
                cache_hits += 1;
                model.spt_hit_ns
            }
            CheckPath::VatHit => {
                cache_hits += 1;
                model.vat_hit_ns
            }
            CheckPath::FilterRun { insns } => {
                insns_total += insns;
                model.seccomp_dispatch_ns
                    + insns as f64 * model.bpf_insn_ns
                    + model.vat_update_ns
            }
        };
        debug_assert!(
            result.action.permits() || result.action == SeccompAction::Errno(1),
            "unexpected denial for {}",
            op.request()
        );
        check += check_ns;
        total += op.compute_ns as f64 + model.syscall_base_ns + check_ns;
    }
    Ok(RunReport {
        workload: trace.workload().to_owned(),
        backend: format!("draco-sw[{}]", profile.name()),
        total_ns: total,
        check_ns: check,
        syscalls: trace.len() as u64,
        filter_insns: insns_total,
        cache_hits,
    })
}

/// Convenience: the syscalls a trace uses, for sizing assertions.
pub fn distinct_syscalls(trace: &SyscallTrace) -> usize {
    let mut ids = std::collections::HashSet::new();
    for op in trace.ops() {
        ids.insert(SyscallId::new(op.nr));
    }
    ids.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::generator::TraceGenerator;

    fn trace(name: &str, ops: usize) -> SyscallTrace {
        TraceGenerator::new(&catalog::by_name(name).unwrap(), 17).generate(ops)
    }

    #[test]
    fn insecure_is_cheapest() {
        let t = trace("pipe", 3_000);
        let model = KernelCostModel::ubuntu_18_04();
        let base = run_insecure(&t, &model);
        let complete = profile_for_trace(&t, ProfileKind::SyscallComplete);
        let seccomp = run_seccomp(&t, &complete, &model).unwrap();
        let draco = run_draco_sw(&t, &complete, &model).unwrap();
        assert!(base.total_ns < draco.total_ns);
        assert!(draco.total_ns < seccomp.total_ns, "Fig. 11 ordering");
        assert_eq!(base.normalized_to(&base), 1.0);
    }

    #[test]
    fn micro_overhead_exceeds_macro_overhead() {
        let model = KernelCostModel::ubuntu_18_04();
        let micro = trace("unixbench-syscall", 5_000);
        let macro_ = trace("cassandra", 5_000);
        let overhead = |t: &SyscallTrace| {
            let p = profile_for_trace(t, ProfileKind::SyscallComplete);
            let s = run_seccomp(t, &p, &model).unwrap();
            s.normalized_to(&run_insecure(t, &model))
        };
        let o_micro = overhead(&micro);
        let o_macro = overhead(&macro_);
        assert!(
            o_micro > o_macro,
            "micro {o_micro} vs macro {o_macro} (Fig. 2 shape)"
        );
        assert!(o_micro > 1.05);
    }

    #[test]
    fn complete_2x_nearly_doubles_seccomp_overhead() {
        let model = KernelCostModel::ubuntu_18_04();
        let t = trace("fifo", 5_000);
        let base = run_insecure(&t, &model);
        let p1 = profile_for_trace(&t, ProfileKind::SyscallComplete);
        let p2 = profile_for_trace(&t, ProfileKind::SyscallComplete2x);
        let o1 = run_seccomp(&t, &p1, &model).unwrap().normalized_to(&base) - 1.0;
        let o2 = run_seccomp(&t, &p2, &model).unwrap().normalized_to(&base) - 1.0;
        let ratio = o2 / o1;
        assert!((1.35..=2.3).contains(&ratio), "overhead ratio {ratio}");
    }

    #[test]
    fn draco_sw_absorbs_2x() {
        // Paper: "the overhead of Draco's software implementation goes up
        // only modestly" under -2x.
        let model = KernelCostModel::ubuntu_18_04();
        let t = trace("fifo", 5_000);
        let base = run_insecure(&t, &model);
        let p1 = profile_for_trace(&t, ProfileKind::SyscallComplete);
        let p2 = profile_for_trace(&t, ProfileKind::SyscallComplete2x);
        let o1 = run_draco_sw(&t, &p1, &model).unwrap().normalized_to(&base) - 1.0;
        let o2 = run_draco_sw(&t, &p2, &model).unwrap().normalized_to(&base) - 1.0;
        assert!(o2 < o1 * 1.3, "draco-sw 2x barely moves: {o1} → {o2}");
    }

    #[test]
    fn draco_cache_hit_rate_is_high_in_steady_state() {
        let model = KernelCostModel::ubuntu_18_04();
        let t = trace("nginx", 20_000);
        let p = profile_for_trace(&t, ProfileKind::SyscallComplete);
        let r = run_draco_sw(&t, &p, &model).unwrap();
        let hit_rate = r.cache_hits as f64 / r.syscalls as f64;
        assert!(hit_rate > 0.90, "hit rate {hit_rate}");
    }

    #[test]
    fn hpcc_shows_negligible_overhead() {
        let model = KernelCostModel::ubuntu_18_04();
        let t = trace("hpcc", 3_000);
        let base = run_insecure(&t, &model);
        let p = profile_for_trace(&t, ProfileKind::SyscallComplete);
        let o = run_seccomp(&t, &p, &model).unwrap().normalized_to(&base);
        assert!(o < 1.02, "hpcc overhead {o}");
    }

    #[test]
    fn old_kernel_raises_baseline_costs() {
        let t = trace("pipe", 2_000);
        let new = run_insecure(&t, &KernelCostModel::ubuntu_18_04());
        let old = run_insecure(&t, &KernelCostModel::centos_7_linux_3_10());
        assert!(old.total_ns > new.total_ns);
    }

    #[test]
    fn tree_layout_reduces_check_time() {
        let model = KernelCostModel::ubuntu_18_04();
        let t = trace("unixbench-syscall", 4_000);
        let p = profile_for_trace(&t, ProfileKind::SyscallNoargs);
        let lin = run_seccomp_layout(&t, &p, &model, FilterLayout::Linear).unwrap();
        let tree = run_seccomp_layout(&t, &p, &model, FilterLayout::BinaryTree).unwrap();
        assert!(tree.check_ns < lin.check_ns, "§XII ablation");
        assert!(tree.check_ns > 0.0, "but not free");
    }

    #[test]
    fn startup_preamble_widens_profiles_to_paper_range() {
        let t = trace("unixbench-syscall", 2_000);
        let p = profile_for_trace(&t, ProfileKind::SyscallComplete);
        let n = p.allowed_syscall_count();
        assert!(
            (50..=100).contains(&n),
            "app-specific profiles allow 50–100 syscalls (Fig. 15a), got {n}"
        );
    }

    #[test]
    fn preamble_is_docker_legal() {
        let profile = draco_profiles::docker_default();
        for req in startup_preamble().requests() {
            assert!(
                profile.evaluate(&req).permits(),
                "startup call {req} denied by docker-default"
            );
        }
    }
}
