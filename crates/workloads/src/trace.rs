//! System call traces: the exchange format between workloads, checkers,
//! the simulator, and the profile toolkit.

use core::fmt;

use serde::{Deserialize, Serialize};

use draco_syscalls::{ArgSet, SyscallId, SyscallRequest};

/// One operation of a workload: some application compute followed by one
/// system call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOp {
    /// Modeled application work preceding the call, in nanoseconds.
    pub compute_ns: u64,
    /// Program counter of the `syscall` instruction (STB index).
    pub pc: u64,
    /// System call number.
    pub nr: u16,
    /// The six argument registers.
    pub args: [u64; 6],
}

impl TraceOp {
    /// The decoded request.
    pub fn request(&self) -> SyscallRequest {
        SyscallRequest::new(self.pc, SyscallId::new(self.nr), ArgSet::new(self.args))
    }
}

/// A recorded system call trace.
///
/// # Example
///
/// ```
/// use draco_workloads::{SyscallTrace, TraceOp};
///
/// let trace = SyscallTrace::from_ops(
///     "demo",
///     vec![TraceOp { compute_ns: 100, pc: 0x40, nr: 39, args: [0; 6] }],
/// );
/// let json = trace.to_json();
/// let back = SyscallTrace::from_json(&json)?;
/// assert_eq!(back, trace);
/// # Ok::<(), serde_json::Error>(())
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallTrace {
    workload: String,
    ops: Vec<TraceOp>,
}

impl SyscallTrace {
    /// Wraps a list of operations.
    pub fn from_ops(workload: impl Into<String>, ops: Vec<TraceOp>) -> Self {
        SyscallTrace {
            workload: workload.into(),
            ops,
        }
    }

    /// The workload that produced this trace.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The operations.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of operations (= system calls).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over decoded requests.
    pub fn requests(&self) -> impl Iterator<Item = SyscallRequest> + '_ {
        self.ops.iter().map(TraceOp::request)
    }

    /// Total modeled application compute in the trace.
    pub fn total_compute_ns(&self) -> u64 {
        self.ops.iter().map(|op| op.compute_ns).sum()
    }

    /// Serializes to JSON (the toolkit's on-disk trace format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization is infallible")
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Truncates to the first `n` operations (warm-up splitting).
    #[must_use]
    pub fn take(&self, n: usize) -> SyscallTrace {
        SyscallTrace {
            workload: self.workload.clone(),
            ops: self.ops.iter().take(n).copied().collect(),
        }
    }

    /// Drops the first `n` operations (the measured remainder after a
    /// warm-up prefix).
    #[must_use]
    pub fn skip(&self, n: usize) -> SyscallTrace {
        SyscallTrace {
            workload: self.workload.clone(),
            ops: self.ops.iter().skip(n).copied().collect(),
        }
    }

    /// Merges several threads' traces into the single stream the kernel
    /// sees, ordering operations by cumulative compute time (a
    /// deterministic model of concurrent threads sharing one process —
    /// and one set of Draco tables).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty.
    #[must_use]
    pub fn interleave(threads: &[SyscallTrace]) -> SyscallTrace {
        assert!(!threads.is_empty(), "interleave needs at least one trace");
        let name = threads[0].workload.clone();
        let mut cursors: Vec<(usize, u64)> = threads.iter().map(|_| (0usize, 0u64)).collect();
        for (c, t) in cursors.iter_mut().zip(threads) {
            if let Some(op) = t.ops.first() {
                c.1 = op.compute_ns;
            }
        }
        let total: usize = threads.iter().map(SyscallTrace::len).sum();
        let mut ops = Vec::with_capacity(total);
        loop {
            // Pick the thread whose next op completes earliest.
            let mut best: Option<usize> = None;
            for (i, t) in threads.iter().enumerate() {
                if cursors[i].0 >= t.len() {
                    continue;
                }
                match best {
                    None => best = Some(i),
                    Some(b) if cursors[i].1 < cursors[b].1 => best = Some(i),
                    _ => {}
                }
            }
            let Some(i) = best else { break };
            let op = threads[i].ops[cursors[i].0];
            ops.push(op);
            cursors[i].0 += 1;
            if let Some(next) = threads[i].ops.get(cursors[i].0) {
                cursors[i].1 += next.compute_ns;
            }
        }
        SyscallTrace { workload: name, ops }
    }
}

impl fmt::Debug for SyscallTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SyscallTrace({}, {} ops)", self.workload, self.ops.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SyscallTrace {
        SyscallTrace::from_ops(
            "t",
            vec![
                TraceOp {
                    compute_ns: 10,
                    pc: 0x400,
                    nr: 0,
                    args: [3, 0, 64, 0, 0, 0],
                },
                TraceOp {
                    compute_ns: 20,
                    pc: 0x408,
                    nr: 1,
                    args: [4, 0, 64, 0, 0, 0],
                },
            ],
        )
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.workload(), "t");
        assert_eq!(t.total_compute_ns(), 30);
        assert_eq!(t.ops()[1].nr, 1);
        let reqs: Vec<_> = t.requests().collect();
        assert_eq!(reqs[0].id, SyscallId::new(0));
        assert_eq!(reqs[0].args.get(0), 3);
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let back = SyscallTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn malformed_json_errors() {
        assert!(SyscallTrace::from_json("{nope").is_err());
    }

    #[test]
    fn take_truncates() {
        let t = sample().take(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.ops()[0].nr, 0);
        assert_eq!(sample().take(10).len(), 2);
    }

    #[test]
    fn skip_drops_prefix() {
        let t = sample().skip(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.ops()[0].nr, 1);
        assert_eq!(sample().skip(5).len(), 0);
    }

    #[test]
    fn interleave_orders_by_cumulative_compute() {
        let fast = SyscallTrace::from_ops(
            "fast",
            vec![
                TraceOp { compute_ns: 10, pc: 1, nr: 0, args: [0; 6] },
                TraceOp { compute_ns: 10, pc: 1, nr: 0, args: [1, 0, 0, 0, 0, 0] },
            ],
        );
        let slow = SyscallTrace::from_ops(
            "slow",
            vec![TraceOp { compute_ns: 15, pc: 2, nr: 1, args: [0; 6] }],
        );
        let merged = SyscallTrace::interleave(&[fast, slow]);
        // fast@10, slow@15, fast@20.
        let nrs: Vec<u16> = merged.ops().iter().map(|o| o.nr).collect();
        assert_eq!(nrs, vec![0, 1, 0]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.workload(), "fast");
    }

    #[test]
    fn interleave_is_exhaustive_and_deterministic() {
        let a = sample();
        let b = sample();
        let m1 = SyscallTrace::interleave(&[a.clone(), b.clone()]);
        let m2 = SyscallTrace::interleave(&[a.clone(), b.clone()]);
        assert_eq!(m1, m2);
        assert_eq!(m1.len(), a.len() + b.len());
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn interleave_rejects_empty_input() {
        let _ = SyscallTrace::interleave(&[]);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", sample()), "SyscallTrace(t, 2 ops)");
    }
}
