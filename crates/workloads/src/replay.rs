//! Wall-clock parallel trace replay.
//!
//! The [`timing`](crate::timing) module *models* kernel time from cost
//! constants; this module *measures* it: it drives real checker code
//! (`FilterStack`, `CompiledStack`, [`DracoProcess`]) over generated
//! traces and reports wall-clock checks/second. Replay is sharded: each
//! shard owns one [`DracoProcess`] (or one filter stack) and a trace
//! generated from a deterministic per-shard seed, so N shards model N
//! independent processes checked concurrently — there is no shared
//! mutable state between shards, exactly as per-process Draco tables
//! have none in the paper's OS design (§VII-A).
//!
//! Everything except the clock is deterministic: per-shard check,
//! allow, and cache-hit counts depend only on `(workload, seed, shard)`
//! and are bit-identical across runs, which is what the throughput
//! harness's smoke tests pin down.

use std::time::Instant;

use draco_bpf::SeccompData;
use draco_core::{Decision, DracoProcess, EngineKind, ProcessId};
use draco_obs::{merge_spans, Histogram, MetricsRegistry, ReplayMetrics, Span, SpanTracer};
use draco_profiles::{
    analyze_profile, compile_stacked, FilterLayout, ProfileAnalysis, ProfileKind, ProfileSpec,
};
use draco_syscalls::SyscallRequest;

use crate::model::WorkloadSpec;
use crate::timing::profile_for_trace;
use crate::TraceGenerator;

/// Which check implementation a replay drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReplayBackend {
    /// Seccomp with the cBPF reference interpreter (JIT off).
    SeccompInterp,
    /// Seccomp with the pre-decoded executor (JIT-model, the kernel
    /// default).
    SeccompCompiled,
    /// Software Draco: SPT + VAT caches in front of the filter.
    DracoSw,
    /// Software Draco driven through the staged batch path
    /// ([`DracoProcess::syscall_batch`]), `batch` requests per call.
    /// Decisions and cache counters are identical to [`DracoSw`] on the
    /// same trace; only the per-check overhead changes.
    ///
    /// [`DracoSw`]: ReplayBackend::DracoSw
    DracoBatch {
        /// Requests per `syscall_batch` call. Must be nonzero.
        batch: usize,
    },
    /// Software Draco with the miss path running on the specialized
    /// decision DAG ([`draco_core::EngineKind::Dag`]) instead of the
    /// pre-decoded cBPF executor. Decisions and cache counters are
    /// identical to [`DracoSw`] on the same trace.
    ///
    /// [`DracoSw`]: ReplayBackend::DracoSw
    DracoDag,
}

impl ReplayBackend {
    /// The standard comparison backends, in report order. The batch
    /// backend is an opt-in extra (its batch size is a parameter, not a
    /// fixed member of the comparison set).
    pub const ALL: [ReplayBackend; 4] = [
        ReplayBackend::SeccompInterp,
        ReplayBackend::SeccompCompiled,
        ReplayBackend::DracoSw,
        ReplayBackend::DracoDag,
    ];

    /// Stable label used in reports and JSON.
    pub const fn label(self) -> &'static str {
        match self {
            ReplayBackend::SeccompInterp => "seccomp-interp",
            ReplayBackend::SeccompCompiled => "seccomp-compiled",
            ReplayBackend::DracoSw => "draco-sw",
            ReplayBackend::DracoBatch { .. } => "draco-batch",
            ReplayBackend::DracoDag => "draco-dag",
        }
    }

    /// Whether this backend drives Draco tables (and therefore wants the
    /// install-time filter analysis and emits checker metrics).
    pub const fn is_draco(self) -> bool {
        matches!(
            self,
            ReplayBackend::DracoSw | ReplayBackend::DracoBatch { .. } | ReplayBackend::DracoDag
        )
    }
}

/// Sharding and trace-length parameters of one replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Number of worker shards (threads). Must be nonzero.
    pub shards: usize,
    /// Measured operations per shard.
    pub ops_per_shard: usize,
    /// Unmeasured warm-up operations per shard (steady-state
    /// measurement, paper §X-C).
    pub warmup_ops: usize,
    /// Base RNG seed; shard `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl ReplayConfig {
    /// Seed for one shard.
    pub const fn shard_seed(&self, shard: usize) -> u64 {
        self.base_seed.wrapping_add(shard as u64)
    }
}

/// Every Nth measured check gets a wall-clock latency sample recorded
/// into [`ShardReport::latency_ns`]. Sampling keeps the two extra
/// `Instant::now` calls off almost every iteration of the hot loop.
pub const LATENCY_SAMPLE_INTERVAL: usize = 256;

/// Span-tracer parameters for a traced replay
/// (see [`replay_parallel_traced`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Span-buffer capacity per shard (spans beyond it are dropped and
    /// counted, never reallocated).
    pub capacity_per_shard: usize,
    /// Record stage spans for every Nth check (1 = every check).
    pub sample_interval: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity_per_shard: SpanTracer::DEFAULT_CAPACITY,
            sample_interval: SpanTracer::DEFAULT_SAMPLE_INTERVAL,
        }
    }
}

/// Deterministic counters plus the measured time of one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index (0-based).
    pub shard: usize,
    /// The seed the shard's trace was generated from.
    pub seed: u64,
    /// Measured checks performed (= `ops_per_shard`).
    pub checks: u64,
    /// Checks whose verdict permitted the call.
    pub allowed: u64,
    /// Checks admitted by SPT or VAT without running the filter
    /// (always zero for the Seccomp backends).
    pub cache_hits: u64,
    /// Wall-clock nanoseconds spent in the measured loop.
    pub elapsed_ns: u64,
    /// Sampled per-check wall-clock latency (every
    /// [`LATENCY_SAMPLE_INTERVAL`]th measured check), in nanoseconds.
    pub latency_ns: Histogram,
}

/// The outcome of one (possibly parallel) replay.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayReport {
    /// The backend that was driven.
    pub backend: ReplayBackend,
    /// Workload name.
    pub workload: String,
    /// Per-shard counters, in shard order.
    pub shards: Vec<ShardReport>,
    /// Wall-clock nanoseconds for the whole parallel region (thread
    /// spawn to last join), excluding trace generation and filter
    /// compilation.
    pub wall_ns: u64,
    /// Per-shard observability registries merged into one (saturating,
    /// order-independent). Contains no wall-clock data, so same-seed
    /// runs produce bit-identical registries.
    pub metrics: MetricsRegistry,
}

impl ReplayReport {
    /// Total measured checks across shards.
    pub fn total_checks(&self) -> u64 {
        self.shards.iter().map(|s| s.checks).sum()
    }

    /// Aggregate throughput: total checks over the parallel region's
    /// wall-clock time.
    pub fn checks_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.total_checks() as f64 * 1e9 / self.wall_ns as f64
    }

    /// Fraction of measured checks that skipped the filter.
    pub fn cache_hit_rate(&self) -> f64 {
        let checks = self.total_checks();
        if checks == 0 {
            return 0.0;
        }
        let hits: u64 = self.shards.iter().map(|s| s.cache_hits).sum();
        hits as f64 / checks as f64
    }

    /// Per-shard check counts (the determinism fingerprint).
    pub fn shard_checks(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.checks).collect()
    }

    /// Sampled per-check latency pooled across shards (nanoseconds).
    pub fn latency_hist(&self) -> Histogram {
        let mut pooled = Histogram::default();
        for shard in &self.shards {
            pooled.merge(&shard.latency_ns);
        }
        pooled
    }
}

/// One shard's fully prepared input: requests decoded and profile built
/// before any clock starts.
pub(crate) struct ShardPlan {
    pub(crate) shard: usize,
    pub(crate) seed: u64,
    pub(crate) warmup: Vec<SyscallRequest>,
    pub(crate) measured: Vec<SyscallRequest>,
    pub(crate) profile: ProfileSpec,
    /// Filter-analysis plan for the Draco backend, computed here — with
    /// trace generation and compilation, before any clock starts — so
    /// the measured region models an OS that analyzed the filter once
    /// at install time.
    pub(crate) analysis: Option<ProfileAnalysis>,
}

pub(crate) fn plan_shards(
    spec: &WorkloadSpec,
    kind: ProfileKind,
    backend: ReplayBackend,
    cfg: &ReplayConfig,
) -> Vec<ShardPlan> {
    (0..cfg.shards)
        .map(|shard| {
            let seed = cfg.shard_seed(shard);
            let trace =
                TraceGenerator::new(spec, seed).generate(cfg.warmup_ops + cfg.ops_per_shard);
            let profile = profile_for_trace(&trace, kind);
            let analysis = backend.is_draco().then(|| {
                analyze_profile(&profile).expect("generated profiles always compile")
            });
            let mut reqs = trace.requests();
            let warmup: Vec<SyscallRequest> = reqs.by_ref().take(cfg.warmup_ops).collect();
            let measured: Vec<SyscallRequest> = reqs.collect();
            ShardPlan {
                shard,
                seed,
                warmup,
                measured,
                profile,
                analysis,
            }
        })
        .collect()
}

/// Drives one shard through a closure that performs a single check and
/// reports `(permitted, cache_hit)`.
fn drive<F>(plan: &ShardPlan, mut check: F) -> ShardReport
where
    F: FnMut(&SyscallRequest) -> (bool, bool),
{
    for req in &plan.warmup {
        let _ = check(req);
    }
    let mut allowed = 0u64;
    let mut cache_hits = 0u64;
    let mut latency_ns = Histogram::default();
    let start = Instant::now();
    for (i, req) in plan.measured.iter().enumerate() {
        let sampled = i % LATENCY_SAMPLE_INTERVAL == 0;
        let sample_start = sampled.then(Instant::now);
        let (permitted, hit) = check(req);
        if let Some(t) = sample_start {
            latency_ns.record(t.elapsed().as_nanos() as u64);
        }
        allowed += u64::from(permitted);
        cache_hits += u64::from(hit);
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    ShardReport {
        shard: plan.shard,
        seed: plan.seed,
        checks: plan.measured.len() as u64,
        allowed,
        cache_hits,
        elapsed_ns,
        latency_ns,
    }
}

/// Drives one shard through the batched check entry point, `batch`
/// requests per call, with a reusable decision buffer allocated before
/// the clock starts.
///
/// Latency sampling keeps the scalar driver's cadence: a batch is timed
/// whenever it contains a sampled index (a multiple of
/// [`LATENCY_SAMPLE_INTERVAL`]), and the per-check sample recorded is
/// the batch's wall time divided by its length.
fn drive_batched<F>(plan: &ShardPlan, batch: usize, mut check_batch: F) -> ShardReport
where
    F: FnMut(&[SyscallRequest], &mut [Decision]),
{
    assert!(batch > 0, "batched replay needs a nonzero batch size");
    let mut out = vec![Decision::KILLED; batch];
    for chunk in plan.warmup.chunks(batch) {
        check_batch(chunk, &mut out[..chunk.len()]);
    }
    let mut allowed = 0u64;
    let mut cache_hits = 0u64;
    let mut latency_ns = Histogram::default();
    let start = Instant::now();
    let mut index = 0usize;
    for chunk in plan.measured.chunks(batch) {
        let offset = index % LATENCY_SAMPLE_INTERVAL;
        let sampled = offset == 0 || offset + chunk.len() > LATENCY_SAMPLE_INTERVAL;
        let sample_start = sampled.then(Instant::now);
        let slots = &mut out[..chunk.len()];
        check_batch(chunk, slots);
        if let Some(t) = sample_start {
            latency_ns.record(t.elapsed().as_nanos() as u64 / chunk.len() as u64);
        }
        for decision in slots.iter() {
            allowed += u64::from(decision.action.permits());
            cache_hits += u64::from(decision.path.is_cache_hit());
        }
        index += chunk.len();
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    ShardReport {
        shard: plan.shard,
        seed: plan.seed,
        checks: plan.measured.len() as u64,
        allowed,
        cache_hits,
        elapsed_ns,
        latency_ns,
    }
}

/// The per-shard registry: the shard's own `replay` section, plus (for
/// the Draco backend) the checker/cuckoo/VAT sections of its process.
fn shard_registry(report: &ShardReport, checker: Option<&MetricsRegistry>) -> MetricsRegistry {
    let mut registry = checker.copied().unwrap_or_default();
    registry.replay = ReplayMetrics {
        shards: 1,
        checks: report.checks,
        allowed: report.allowed,
        cache_hits: report.cache_hits,
    };
    registry
}

fn run_shard(
    plan: &ShardPlan,
    backend: ReplayBackend,
    tracer: Option<SpanTracer>,
) -> (ShardReport, MetricsRegistry, Vec<Span>) {
    match backend {
        ReplayBackend::SeccompInterp => {
            let stack = compile_stacked(&plan.profile, FilterLayout::Linear)
                .expect("generated profiles always compile");
            let report = drive(plan, |req| {
                let outcome = stack
                    .run(&SeccompData::from_request(req))
                    .expect("generated filters cannot fault");
                (outcome.action.permits(), false)
            });
            let registry = shard_registry(&report, None);
            // The Seccomp backends have no staged pipeline to trace.
            (report, registry, Vec::new())
        }
        ReplayBackend::SeccompCompiled => {
            let stack = compile_stacked(&plan.profile, FilterLayout::Linear)
                .expect("generated profiles always compile")
                .compiled();
            let report = drive(plan, |req| {
                let outcome = stack
                    .run(&SeccompData::from_request(req))
                    .expect("generated filters cannot fault");
                (outcome.action.permits(), false)
            });
            let registry = shard_registry(&report, None);
            (report, registry, Vec::new())
        }
        ReplayBackend::DracoSw | ReplayBackend::DracoDag => {
            // Shard indices are bounded by the thread count, so this
            // conversion cannot fail in practice — but a silent `as`
            // truncation would alias ProcessIds; fail loudly instead.
            let pid = u32::try_from(plan.shard).expect("shard index exceeds ProcessId range");
            let kind = if backend == ReplayBackend::DracoDag {
                EngineKind::Dag
            } else {
                EngineKind::Compiled
            };
            let mut process = match &plan.analysis {
                Some(analysis) => DracoProcess::spawn_analyzed_with_engine(
                    ProcessId(pid),
                    &plan.profile,
                    analysis,
                    kind,
                ),
                None => DracoProcess::spawn_with_engine(ProcessId(pid), &plan.profile, kind),
            }
            .expect("generated profiles always compile");
            if let Some(tracer) = tracer {
                process.checker_mut().install_span_tracer(tracer);
            }
            let report = drive(plan, |req| {
                let result = process.syscall(req);
                (result.action.permits(), result.path.is_cache_hit())
            });
            let registry = shard_registry(&report, Some(&process.checker().metrics()));
            let spans = process
                .checker_mut()
                .take_span_tracer()
                .map(SpanTracer::into_spans)
                .unwrap_or_default();
            (report, registry, spans)
        }
        ReplayBackend::DracoBatch { batch } => {
            let pid = u32::try_from(plan.shard).expect("shard index exceeds ProcessId range");
            let mut process = match &plan.analysis {
                Some(analysis) => {
                    DracoProcess::spawn_analyzed(ProcessId(pid), &plan.profile, analysis)
                }
                None => DracoProcess::spawn(ProcessId(pid), &plan.profile),
            }
            .expect("generated profiles always compile");
            if let Some(tracer) = tracer {
                process.checker_mut().install_span_tracer(tracer);
            }
            let report = drive_batched(plan, batch, |reqs, out| process.syscall_batch(reqs, out));
            let registry = shard_registry(&report, Some(&process.checker().metrics()));
            let spans = process
                .checker_mut()
                .take_span_tracer()
                .map(SpanTracer::into_spans)
                .unwrap_or_default();
            (report, registry, spans)
        }
    }
}

/// Replays a workload against a backend across `cfg.shards` worker
/// threads, one isolated checker per shard.
///
/// Trace generation, profile generation, and filter compilation happen
/// before any thread is spawned; `wall_ns` covers only the parallel
/// check region. With `shards == 1` this measures single-thread
/// throughput of the same code path.
///
/// # Panics
///
/// Panics if `cfg.shards == 0` or a worker thread panics.
pub fn replay_parallel(
    spec: &WorkloadSpec,
    kind: ProfileKind,
    backend: ReplayBackend,
    cfg: &ReplayConfig,
) -> ReplayReport {
    replay_inner(spec, kind, backend, cfg, None).0
}

/// Like [`replay_parallel`], but with a sampled span tracer installed in
/// every shard's checker (Draco backend only — the Seccomp backends have
/// no staged pipeline and yield no spans).
///
/// All shards share one epoch instant, so the merged spans form a single
/// coherent timeline with the shard index as the Chrome-trace `tid`.
/// Spans are merged across shards in `(start, shard, seq)` order, ready
/// for [`draco_obs::chrome_trace_json`] or [`draco_obs::folded_stacks`].
///
/// # Panics
///
/// Panics if `cfg.shards == 0` or a worker thread panics.
pub fn replay_parallel_traced(
    spec: &WorkloadSpec,
    kind: ProfileKind,
    backend: ReplayBackend,
    cfg: &ReplayConfig,
    trace: &TraceConfig,
) -> (ReplayReport, Vec<Span>) {
    replay_inner(spec, kind, backend, cfg, Some(trace))
}

fn replay_inner(
    spec: &WorkloadSpec,
    kind: ProfileKind,
    backend: ReplayBackend,
    cfg: &ReplayConfig,
    trace: Option<&TraceConfig>,
) -> (ReplayReport, Vec<Span>) {
    assert!(cfg.shards > 0, "replay needs at least one shard");
    let plans = plan_shards(spec, kind, backend, cfg);
    let epoch = Instant::now();
    let start = Instant::now();
    let mut shards: Vec<ShardReport> = Vec::with_capacity(plans.len());
    let mut metrics = MetricsRegistry::default();
    let mut shard_spans: Vec<Vec<Span>> = Vec::with_capacity(plans.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let tracer = trace.map(|tc| {
                    SpanTracer::new(tc.capacity_per_shard, tc.sample_interval)
                        .with_epoch(epoch)
                        .with_shard(plan.shard as u32)
                });
                scope.spawn(move || run_shard(plan, backend, tracer))
            })
            .collect();
        for handle in handles {
            let (report, registry, spans) = handle.join().expect("replay shard panicked");
            shards.push(report);
            metrics.merge(&registry);
            shard_spans.push(spans);
        }
    });
    let wall_ns = start.elapsed().as_nanos() as u64;
    let report = ReplayReport {
        backend,
        workload: spec.name.to_owned(),
        shards,
        wall_ns,
        metrics,
    };
    (report, merge_spans(shard_spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn small_cfg(shards: usize) -> ReplayConfig {
        ReplayConfig {
            shards,
            ops_per_shard: 400,
            warmup_ops: 100,
            base_seed: 2020,
        }
    }

    fn strip_timing(report: &ReplayReport) -> Vec<(usize, u64, u64, u64, u64)> {
        report
            .shards
            .iter()
            .map(|s| (s.shard, s.seed, s.checks, s.allowed, s.cache_hits))
            .collect()
    }

    #[test]
    fn shard_counts_and_seeds() {
        let spec = catalog::ipc_pipe();
        let report = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &small_cfg(3),
        );
        assert_eq!(report.shards.len(), 3);
        for (i, shard) in report.shards.iter().enumerate() {
            assert_eq!(shard.shard, i);
            assert_eq!(shard.seed, 2020 + i as u64);
            assert_eq!(shard.checks, 400);
        }
        assert_eq!(report.total_checks(), 1200);
        assert_eq!(report.shard_checks(), vec![400, 400, 400]);
        assert!(report.checks_per_sec() > 0.0);
    }

    #[test]
    fn same_seed_runs_are_deterministic() {
        let spec = catalog::ipc_pipe();
        for backend in ReplayBackend::ALL {
            let a = replay_parallel(&spec, ProfileKind::SyscallComplete, backend, &small_cfg(2));
            let b = replay_parallel(&spec, ProfileKind::SyscallComplete, backend, &small_cfg(2));
            assert_eq!(strip_timing(&a), strip_timing(&b), "{}", backend.label());
        }
    }

    #[test]
    fn draco_hits_cache_seccomp_does_not() {
        let spec = catalog::unixbench_syscall();
        let draco = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &small_cfg(1),
        );
        assert!(
            draco.cache_hit_rate() > 0.8,
            "warm VAT should absorb most checks, got {}",
            draco.cache_hit_rate()
        );
        let seccomp = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::SeccompInterp,
            &small_cfg(1),
        );
        assert_eq!(seccomp.cache_hit_rate(), 0.0);
    }

    #[test]
    fn backends_agree_on_verdicts() {
        // Same workload, same seed: each backend enforces the same
        // profile, so per-shard allow counts must be identical.
        let spec = catalog::ipc_pipe();
        let cfg = small_cfg(2);
        let allowed: Vec<Vec<u64>> = ReplayBackend::ALL
            .iter()
            .map(|&backend| {
                replay_parallel(&spec, ProfileKind::SyscallComplete, backend, &cfg)
                    .shards
                    .iter()
                    .map(|s| s.allowed)
                    .collect()
            })
            .collect();
        assert_eq!(allowed[0], allowed[1]);
        assert_eq!(allowed[1], allowed[2]);
        assert_eq!(allowed[2], allowed[3], "dag backend agrees with the rest");
    }

    #[test]
    fn dag_backend_matches_draco_sw_counters() {
        // Same engine semantics, different miss-path executor: every
        // deterministic counter (checks, allows, cache hits) must be
        // bit-identical between draco-sw and draco-dag.
        let spec = catalog::unixbench_syscall();
        let cfg = small_cfg(2);
        let sw = replay_parallel(&spec, ProfileKind::SyscallComplete, ReplayBackend::DracoSw, &cfg);
        let dag = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoDag,
            &cfg,
        );
        assert_eq!(strip_timing(&sw), strip_timing(&dag));
        assert_eq!(sw.metrics.checker.filter_runs, dag.metrics.checker.filter_runs);
    }

    #[test]
    fn metrics_section_matches_shard_counters() {
        let spec = catalog::ipc_pipe();
        let report = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &small_cfg(3),
        );
        let m = &report.metrics;
        assert_eq!(m.replay.shards, 3);
        assert_eq!(m.replay.checks, report.total_checks());
        assert_eq!(
            m.replay.allowed,
            report.shards.iter().map(|s| s.allowed).sum::<u64>()
        );
        assert_eq!(
            m.replay.cache_hits,
            report.shards.iter().map(|s| s.cache_hits).sum::<u64>()
        );
        // The Draco backend also feeds checker/cuckoo/VAT sections.
        assert!(m.checker.total() > 0);
        assert!(m.checker.insns_per_filter_run.count() > 0);
        assert!(m.cuckoo.probe_length.count() > 0);
        assert!(m.vat.tables > 0);
        // Seccomp backends feed only the replay section.
        let seccomp = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::SeccompCompiled,
            &small_cfg(2),
        );
        assert_eq!(seccomp.metrics.checker.total(), 0);
        assert_eq!(seccomp.metrics.replay.checks, seccomp.total_checks());
    }

    #[test]
    fn draco_replay_reports_analysis_fast_path_counters() {
        let spec = catalog::ipc_pipe();
        // Every rule of a noargs profile is proven always-allow, so all
        // SPT hits ride the static fast path.
        let noargs = replay_parallel(
            &spec,
            ProfileKind::SyscallNoargs,
            ReplayBackend::DracoSw,
            &small_cfg(2),
        );
        let c = &noargs.metrics.checker;
        assert!(c.always_allow_hits > 0);
        assert_eq!(c.always_allow_hits, c.spt_hits);
        // Complete profiles carry argument whitelists whose compiled
        // filters yield exactly the authored masks back.
        let complete = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &small_cfg(1),
        );
        assert!(complete.metrics.checker.masks_derived_match > 0);
        assert_eq!(complete.metrics.checker.masks_overridden, 0);
    }

    #[test]
    fn merged_metrics_are_deterministic_and_order_independent() {
        // The registry holds no wall-clock data, so the merged registry
        // of a parallel run must equal the merge of the equivalent
        // single-shard runs — in any merge order, on any run.
        let spec = catalog::ipc_pipe();
        let cfg = small_cfg(3);
        let parallel = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &cfg,
        );
        let rerun = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &cfg,
        );
        assert_eq!(
            parallel.metrics, rerun.metrics,
            "same seed, same merged registry"
        );
        // Single-shard registries for the same seeds. shard index 0 with
        // the shifted base seed reproduces each parallel shard's trace.
        let singles: Vec<MetricsRegistry> = (0..cfg.shards)
            .map(|i| {
                let one = ReplayConfig {
                    shards: 1,
                    base_seed: cfg.shard_seed(i),
                    ..cfg
                };
                replay_parallel(&spec, ProfileKind::SyscallComplete, ReplayBackend::DracoSw, &one)
                    .metrics
            })
            .collect();
        let forward = MetricsRegistry::merged(singles.iter());
        let reverse = MetricsRegistry::merged(singles.iter().rev());
        assert_eq!(forward, reverse, "merge must be order-independent");
        assert_eq!(forward.checker, parallel.metrics.checker);
        assert_eq!(forward.cuckoo, parallel.metrics.cuckoo);
        assert_eq!(forward.vat, parallel.metrics.vat);
        assert_eq!(forward.replay, parallel.metrics.replay);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = replay_parallel(
            &catalog::ipc_pipe(),
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &ReplayConfig {
                shards: 0,
                ops_per_shard: 1,
                warmup_ops: 0,
                base_seed: 0,
            },
        );
    }

    #[test]
    fn traced_replay_yields_spans_without_perturbing_counters() {
        let spec = catalog::ipc_pipe();
        let cfg = small_cfg(3);
        let trace = TraceConfig {
            capacity_per_shard: 1 << 14,
            sample_interval: 1,
        };
        let plain = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &cfg,
        );
        let (traced, spans) = replay_parallel_traced(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &cfg,
            &trace,
        );
        assert_eq!(strip_timing(&plain), strip_timing(&traced));
        assert_eq!(plain.metrics, traced.metrics, "tracing is metric-neutral");
        assert!(!spans.is_empty());
        // Every shard contributed, and the merge is start-ordered.
        let shards: std::collections::BTreeSet<u32> =
            spans.iter().map(|s| s.shard).collect();
        assert_eq!(shards.len(), 3, "spans from all shards: {shards:?}");
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn seccomp_backends_trace_no_spans() {
        let spec = catalog::ipc_pipe();
        let (_, spans) = replay_parallel_traced(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::SeccompCompiled,
            &small_cfg(1),
            &TraceConfig::default(),
        );
        assert!(spans.is_empty());
    }

    #[test]
    fn latency_histogram_sees_sampled_checks() {
        let spec = catalog::ipc_pipe();
        let cfg = ReplayConfig {
            shards: 2,
            ops_per_shard: 1_000,
            warmup_ops: 50,
            base_seed: 7,
        };
        let report = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &cfg,
        );
        let pooled = report.latency_hist();
        // ceil(1000 / 256) = 4 samples per shard.
        assert_eq!(pooled.count(), 8);
        for shard in &report.shards {
            assert_eq!(shard.latency_ns.count(), 4);
        }
        assert!(pooled.p50().is_some());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ReplayBackend::SeccompInterp.label(), "seccomp-interp");
        assert_eq!(ReplayBackend::SeccompCompiled.label(), "seccomp-compiled");
        assert_eq!(ReplayBackend::DracoSw.label(), "draco-sw");
        assert_eq!(ReplayBackend::DracoBatch { batch: 64 }.label(), "draco-batch");
        assert_eq!(ReplayBackend::DracoDag.label(), "draco-dag");
    }

    #[test]
    fn batched_replay_matches_scalar_counters_exactly() {
        let spec = catalog::ipc_pipe();
        let cfg = small_cfg(2);
        let scalar = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &cfg,
        );
        for batch in [1usize, 7, 64, 1000] {
            let batched = replay_parallel(
                &spec,
                ProfileKind::SyscallComplete,
                ReplayBackend::DracoBatch { batch },
                &cfg,
            );
            assert_eq!(
                strip_timing(&scalar),
                strip_timing(&batched),
                "batch={batch}"
            );
            // The whole checker section matches except the batch-only
            // counters (the scalar run has none).
            let (s, b) = (&scalar.metrics.checker, &batched.metrics.checker);
            assert_eq!(s.spt_hits, b.spt_hits, "batch={batch}");
            assert_eq!(s.vat_hits, b.vat_hits, "batch={batch}");
            assert_eq!(s.filter_runs, b.filter_runs, "batch={batch}");
            assert_eq!(s.filter_insns, b.filter_insns, "batch={batch}");
            assert_eq!(s.denials, b.denials, "batch={batch}");
            assert_eq!(s.vat_inserts, b.vat_inserts, "batch={batch}");
            assert_eq!(scalar.metrics.replay, batched.metrics.replay, "batch={batch}");
            assert_eq!(b.batched_checks, batched.total_checks() + 2 * 100, "warmup batches too");
            assert!(b.batches > 0);
        }
    }

    #[test]
    fn batched_replay_traces_batch_stage_spans() {
        let spec = catalog::ipc_pipe();
        let (_, spans) = replay_parallel_traced(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoBatch { batch: 32 },
            &small_cfg(1),
            &TraceConfig {
                capacity_per_shard: 1 << 14,
                sample_interval: 1,
            },
        );
        assert!(!spans.is_empty());
        let stages: std::collections::BTreeSet<&str> =
            spans.iter().map(|s| s.stage.label()).collect();
        assert!(stages.contains("batch-probe"), "{stages:?}");
        assert!(stages.contains("batch-commit"), "{stages:?}");
    }
}
