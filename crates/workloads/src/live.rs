//! Rounds-based live replay: the snapshot pump behind `dracoctl top`,
//! `dracoctl audit`, and `repro throughput --timeseries`.
//!
//! The telemetry design rule (see `draco-obs`) is *subtraction, not
//! instrumentation*: the hot loop keeps its existing counters, and live
//! views are built by snapshotting the cumulative [`MetricsRegistry`]
//! at interval boundaries and letting [`MetricsWindow`] subtract. This
//! module supplies the boundaries. A live replay drives the same
//! per-shard plans as [`replay::replay_parallel`](crate::replay) but in
//! `rounds` slices; after each slice it
//!
//! 1. merges the per-shard cumulative registries and pushes one window
//!    interval,
//! 2. refills the audit ring's token bucket (deterministically — the
//!    pump is the clock) and drains newly published denial events,
//! 3. hands a [`LiveTick`] to the caller (the `top` table renderer, the
//!    `audit --follow` printer, or nobody).
//!
//! Shards run interleaved on the calling thread, so per-shard counters
//! remain bit-identical to the equivalent single-shot replay — same
//! plans, same request order within a shard — and ticks never race a
//! half-updated registry.
//!
//! Replayed traces are generated from the very workload profile they
//! are checked against, so a plain replay denies almost nothing. For
//! audit-stream exercise, [`LiveConfig::deny_every`] perturbs every Nth
//! measured request's arguments with a constant outside every recorded
//! whitelist (the throughput harness's deny-stream trick), turning that
//! request into a guaranteed filter-path denial under an
//! argument-checking profile.

use std::sync::Arc;
use std::time::Instant;

use draco_core::{Decision, DracoProcess, EngineKind, ProcessId};
use draco_obs::{
    AuditEvent, AuditRing, Histogram, MetricsRegistry, MetricsWindow, ReplayMetrics,
    TimeseriesDump,
};
use draco_profiles::ProfileKind;
use draco_syscalls::{ArgSet, SyscallRequest};

use crate::model::WorkloadSpec;
use crate::replay::{plan_shards, ReplayBackend, ReplayConfig, LATENCY_SAMPLE_INTERVAL};

/// The argument perturbation that makes a request miss every recorded
/// whitelist: no generated workload produces values with these bits set
/// (same constant as the throughput harness's deny stream).
pub const DENY_PERTURBATION: u64 = 0xdead_0000_0000;

/// Parameters of a live (rounds-sliced) replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LiveConfig {
    /// Sharding/trace parameters, as for a single-shot replay.
    pub replay: ReplayConfig,
    /// Number of slices the measured region is cut into; each slice
    /// seals one window interval and fires one [`LiveTick`]. Must be
    /// nonzero.
    pub rounds: usize,
    /// Window ring capacity (intervals retained). Must be nonzero.
    pub window_capacity: usize,
    /// Audit ring capacity (events buffered between drains).
    pub audit_capacity: usize,
    /// Token-bucket burst for the audit ring; `u64::MAX` disables rate
    /// limiting.
    pub audit_burst: u64,
    /// Tokens granted per round (the pump is the refill clock).
    pub audit_refill_per_round: u64,
    /// Perturb every Nth measured request into a guaranteed denial
    /// (`0` = replay the trace untouched).
    pub deny_every: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            replay: ReplayConfig {
                shards: 2,
                ops_per_shard: 20_000,
                warmup_ops: 2_000,
                base_seed: 2020,
            },
            rounds: 20,
            window_capacity: 64,
            audit_capacity: 4096,
            audit_burst: u64::MAX,
            audit_refill_per_round: 0,
            deny_every: 0,
        }
    }
}

/// One shard's cumulative progress, updated every round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveShardProgress {
    /// Shard index (0-based; also the audit `source` id).
    pub shard: usize,
    /// Measured checks performed so far.
    pub checks: u64,
    /// Checks whose verdict permitted the call.
    pub allowed: u64,
    /// Checks admitted by SPT or VAT without running the filter.
    pub cache_hits: u64,
    /// Filter-path denials so far.
    pub denials: u64,
}

/// What one round of a live replay exposes to the tick callback.
#[derive(Debug)]
pub struct LiveTick<'a> {
    /// Round index (0-based).
    pub round: usize,
    /// Total rounds in this replay.
    pub rounds: usize,
    /// The window ring after this round's push (`last_slot()` is this
    /// round's interval).
    pub window: &'a MetricsWindow,
    /// Per-shard cumulative progress, in shard order.
    pub shards: &'a [LiveShardProgress],
    /// Denial events drained *this round*, in publication order.
    pub events: &'a [AuditEvent],
    /// The audit ring, for drop/throttle accounting.
    pub audit: &'a AuditRing,
}

/// The outcome of a live replay: final cumulative state plus the full
/// telemetry the rounds produced.
#[derive(Clone, Debug)]
pub struct LiveReport {
    /// Workload name.
    pub workload: String,
    /// The backend that was driven.
    pub backend: ReplayBackend,
    /// Rounds executed.
    pub rounds: usize,
    /// Final per-shard cumulative progress.
    pub shards: Vec<LiveShardProgress>,
    /// Final merged cumulative registry (checker/cuckoo/vat sections
    /// from every shard's process, plus the replay overlay).
    pub metrics: MetricsRegistry,
    /// The window ring's dump (schema [`draco_obs::TIMESERIES_SCHEMA`]).
    pub timeseries: TimeseriesDump,
    /// Every denial event drained across all rounds, in order.
    pub events: Vec<AuditEvent>,
    /// Audit events published into the ring (drained or still queued).
    pub audit_published: u64,
    /// Audit events dropped (ring full + rate limited).
    pub audit_dropped: u64,
    /// Drop reason split: ring full.
    pub audit_dropped_ring_full: u64,
    /// Drop reason split: token bucket empty.
    pub audit_dropped_rate_limited: u64,
    /// Wall-clock nanoseconds for the measured region (all rounds).
    pub wall_ns: u64,
}

impl LiveReport {
    /// Total measured checks across shards.
    pub fn total_checks(&self) -> u64 {
        self.shards.iter().map(|s| s.checks).sum()
    }

    /// Total filter-path denials across shards.
    pub fn total_denials(&self) -> u64 {
        self.shards.iter().map(|s| s.denials).sum()
    }
}

/// One shard's live-replay state: its process plus cursors into its
/// measured stream.
struct LiveShard {
    process: DracoProcess,
    measured: Vec<SyscallRequest>,
    cursor: usize,
    progress: LiveShardProgress,
    batch_out: Vec<Decision>,
}

fn perturb(req: &SyscallRequest) -> SyscallRequest {
    let mut args = [0u64; 6];
    for (i, slot) in args.iter_mut().enumerate() {
        *slot = req.args.get(i) ^ DENY_PERTURBATION;
    }
    SyscallRequest::new(req.pc, req.id, ArgSet::new(args))
}

/// Runs a live replay, firing `on_tick` after every round.
///
/// Only the Draco backends are supported: the Seccomp backends have no
/// checker to audit and no cache counters to window.
///
/// # Panics
///
/// Panics if the backend is not a Draco variant, or if `rounds`,
/// `window_capacity`, or `replay.shards` is zero.
pub fn replay_live<F>(
    spec: &WorkloadSpec,
    kind: ProfileKind,
    backend: ReplayBackend,
    cfg: &LiveConfig,
    mut on_tick: F,
) -> LiveReport
where
    F: FnMut(&LiveTick<'_>),
{
    assert!(
        backend.is_draco(),
        "live telemetry needs a Draco backend (got {})",
        backend.label()
    );
    assert!(cfg.rounds > 0, "live replay needs at least one round");
    assert!(cfg.replay.shards > 0, "live replay needs at least one shard");

    let engine = if backend == ReplayBackend::DracoDag {
        EngineKind::Dag
    } else {
        EngineKind::Compiled
    };
    let batch = match backend {
        ReplayBackend::DracoBatch { batch } => {
            assert!(batch > 0, "batched replay needs a nonzero batch size");
            Some(batch)
        }
        _ => None,
    };
    let ring = Arc::new(AuditRing::with_rate_limit(
        cfg.audit_capacity,
        cfg.audit_burst,
    ));

    // Plan exactly as the single-shot replay does, then build one
    // process per shard with the audit sink attached (source = shard).
    let plans = plan_shards(spec, kind, backend, &cfg.replay);
    let mut shards: Vec<LiveShard> = plans
        .into_iter()
        .map(|mut plan| {
            let pid = u32::try_from(plan.shard).expect("shard index exceeds ProcessId range");
            let mut process = match &plan.analysis {
                Some(analysis) => DracoProcess::spawn_analyzed_with_engine(
                    ProcessId(pid),
                    &plan.profile,
                    analysis,
                    engine,
                ),
                None => DracoProcess::spawn_with_engine(ProcessId(pid), &plan.profile, engine),
            }
            .expect("generated profiles always compile");
            process
                .checker_mut()
                .enable_audit(Arc::clone(&ring), plan.shard as u16);
            if cfg.deny_every > 0 {
                for (i, req) in plan.measured.iter_mut().enumerate() {
                    if i % cfg.deny_every == 0 {
                        *req = perturb(req);
                    }
                }
            }
            // Warmup is unmeasured and unwindowed (but still audited —
            // the ring's accounting must cover *every* denial).
            for req in &plan.warmup {
                let _ = process.checker_mut().check(req);
            }
            LiveShard {
                process,
                measured: plan.measured,
                cursor: 0,
                progress: LiveShardProgress {
                    shard: plan.shard,
                    ..LiveShardProgress::default()
                },
                batch_out: vec![Decision::KILLED; batch.unwrap_or(1)],
            }
        })
        .collect();

    let merged = |shards: &[LiveShard]| -> MetricsRegistry {
        let mut registry = MetricsRegistry::default();
        for shard in shards {
            let mut one = shard.process.checker().metrics();
            one.replay = ReplayMetrics {
                shards: 1,
                checks: shard.progress.checks,
                allowed: shard.progress.allowed,
                cache_hits: shard.progress.cache_hits,
            };
            registry.merge(&one);
        }
        registry
    };

    let mut window = MetricsWindow::with_capacity(cfg.window_capacity);
    let mut latency_pool = Histogram::default();
    let epoch = Instant::now();
    window.reset_baseline(&merged(&shards), 0);

    let mut all_events: Vec<AuditEvent> = Vec::new();
    let mut round_events: Vec<AuditEvent> = Vec::new();
    let mut progress: Vec<LiveShardProgress> = Vec::with_capacity(shards.len());

    for round in 0..cfg.rounds {
        for shard in &mut shards {
            // Slice boundaries by round index: even coverage, and the
            // concatenation of all slices is exactly the measured
            // stream in order.
            let len = shard.measured.len();
            let end = len * (round + 1) / cfg.rounds;
            while shard.cursor < end {
                let i = shard.cursor;
                let take = match batch {
                    Some(b) => b.min(end - i),
                    None => 1,
                };
                let reqs = &shard.measured[i..i + take];
                let sampled = i % LATENCY_SAMPLE_INTERVAL < take;
                let sample_start = sampled.then(Instant::now);
                // Drive the liveness-free check path: a live monitor
                // watches a deny-heavy stream without the one-strike
                // `KillProcess` shutdown `DracoProcess::syscall` models
                // (the profile default action would otherwise end the
                // replay at the first audited denial).
                match batch {
                    Some(_) => {
                        let out = &mut shard.batch_out[..take];
                        shard.process.checker_mut().check_batch(reqs, out);
                        for decision in out.iter() {
                            shard.progress.allowed += u64::from(decision.action.permits());
                            shard.progress.cache_hits +=
                                u64::from(decision.path.is_cache_hit());
                        }
                    }
                    None => {
                        let result = shard.process.checker_mut().check(&reqs[0]);
                        shard.progress.allowed += u64::from(result.action.permits());
                        shard.progress.cache_hits += u64::from(result.path.is_cache_hit());
                    }
                }
                if let Some(t) = sample_start {
                    latency_pool.record(t.elapsed().as_nanos() as u64 / take as u64);
                }
                shard.progress.checks += take as u64;
                shard.cursor += take;
            }
            shard.progress.denials = shard.process.checker().stats().denials;
        }

        window.push(&merged(&shards), &latency_pool, epoch.elapsed().as_nanos() as u64);
        ring.refill(cfg.audit_refill_per_round);
        round_events.clear();
        ring.drain(&mut round_events);
        all_events.extend_from_slice(&round_events);

        progress.clear();
        progress.extend(shards.iter().map(|s| s.progress));
        on_tick(&LiveTick {
            round,
            rounds: cfg.rounds,
            window: &window,
            shards: &progress,
            events: &round_events,
            audit: &ring,
        });
    }
    let wall_ns = epoch.elapsed().as_nanos() as u64;

    // Final sweep: anything published after the last drain.
    ring.drain(&mut all_events);

    LiveReport {
        workload: spec.name.to_owned(),
        backend,
        rounds: cfg.rounds,
        shards: shards.iter().map(|s| s.progress).collect(),
        metrics: merged(&shards),
        timeseries: window.dump(),
        events: all_events,
        audit_published: ring.events_published(),
        audit_dropped: ring.events_dropped(),
        audit_dropped_ring_full: ring.dropped_ring_full(),
        audit_dropped_rate_limited: ring.dropped_rate_limited(),
        wall_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::replay::replay_parallel;

    fn live_cfg() -> LiveConfig {
        LiveConfig {
            replay: ReplayConfig {
                shards: 2,
                ops_per_shard: 400,
                warmup_ops: 100,
                base_seed: 2020,
            },
            rounds: 8,
            window_capacity: 8,
            audit_capacity: 1024,
            audit_burst: u64::MAX,
            audit_refill_per_round: 0,
            deny_every: 0,
        }
    }

    #[test]
    fn live_counters_match_single_shot_replay() {
        let spec = catalog::by_name("nginx").unwrap();
        let cfg = live_cfg();
        let mut ticks = 0usize;
        let live = replay_live(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &cfg,
            |tick| {
                ticks += 1;
                assert_eq!(tick.rounds, 8);
                assert_eq!(tick.shards.len(), 2);
            },
        );
        assert_eq!(ticks, 8);
        let single = replay_parallel(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &cfg.replay,
        );
        assert_eq!(live.total_checks(), single.total_checks());
        for (ls, ss) in live.shards.iter().zip(single.shards.iter()) {
            assert_eq!(ls.checks, ss.checks, "shard {}", ls.shard);
            assert_eq!(ls.allowed, ss.allowed, "shard {}", ls.shard);
            assert_eq!(ls.cache_hits, ss.cache_hits, "shard {}", ls.shard);
        }
        // Deterministic sections agree with the single-shot registry.
        assert_eq!(live.metrics.checker, single.metrics.checker);
        assert_eq!(live.metrics.replay, single.metrics.replay);
    }

    #[test]
    fn window_deltas_reconstruct_the_cumulative_registry() {
        let spec = catalog::by_name("redis").unwrap();
        let live = replay_live(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &live_cfg(),
            |_| {},
        );
        assert_eq!(live.timeseries.intervals.len(), 8);
        let mut reconstructed = 0u64;
        for slot in &live.timeseries.intervals {
            reconstructed += slot.delta.replay.checks;
        }
        assert_eq!(reconstructed, live.total_checks());
        let last = live.timeseries.intervals.last().unwrap();
        assert_eq!(last.cumulative.replay.checks, live.total_checks());
    }

    #[test]
    fn deny_stream_is_fully_audited_or_counted() {
        let spec = catalog::by_name("sysbench-fio").unwrap();
        let mut cfg = live_cfg();
        cfg.deny_every = 7;
        let live = replay_live(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &cfg,
            |_| {},
        );
        let denials = live.metrics.checker.denials;
        assert!(denials > 0, "perturbed stream must deny");
        assert_eq!(
            live.audit_published + live.audit_dropped,
            denials,
            "every denial is either published or explicitly dropped"
        );
        assert_eq!(live.events.len() as u64, live.audit_published);
        for event in &live.events {
            assert!((event.source as usize) < cfg.replay.shards);
        }
    }

    #[test]
    fn rate_limited_audit_accounts_exactly() {
        let spec = catalog::by_name("sysbench-fio").unwrap();
        let mut cfg = live_cfg();
        cfg.deny_every = 3;
        cfg.audit_burst = 4;
        cfg.audit_refill_per_round = 2;
        let live = replay_live(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &cfg,
            |_| {},
        );
        let denials = live.metrics.checker.denials;
        assert_eq!(live.audit_published + live.audit_dropped, denials);
        assert!(live.audit_dropped_rate_limited > 0, "bucket must throttle");
        // Burst at attach plus per-round refills bound what can publish.
        let ceiling = 4 + 2 * (cfg.rounds as u64);
        assert!(
            live.audit_published <= ceiling,
            "published {} exceeds token ceiling {}",
            live.audit_published,
            ceiling
        );
    }

    #[test]
    fn batch_backend_matches_scalar_decisions() {
        let spec = catalog::by_name("nginx").unwrap();
        let mut cfg = live_cfg();
        cfg.deny_every = 11;
        let scalar = replay_live(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoSw,
            &cfg,
            |_| {},
        );
        let batched = replay_live(
            &spec,
            ProfileKind::SyscallComplete,
            ReplayBackend::DracoBatch { batch: 32 },
            &cfg,
            |_| {},
        );
        assert_eq!(scalar.total_checks(), batched.total_checks());
        assert_eq!(scalar.total_denials(), batched.total_denials());
        assert_eq!(
            scalar.audit_published + scalar.audit_dropped,
            batched.audit_published + batched.audit_dropped
        );
    }
}
