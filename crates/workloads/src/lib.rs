//! Synthetic workloads, trace generation, and the timing model.
//!
//! The paper evaluates fifteen workloads in Docker containers — eight
//! macro benchmarks (HTTPD, NGINX, Elasticsearch, MySQL, Cassandra,
//! Redis, and the `grep`/`pwgen` functions) and seven micro benchmarks
//! (sysbench-fio, HPCC/GUPS, UnixBench-syscall, and four IPC benchmarks).
//! A userspace reproduction cannot run those applications under a real
//! kernel's Seccomp, so each workload is modeled as a *generative system
//! call process* whose statistics mirror the paper's measurements
//! (substitution documented in `DESIGN.md` §2):
//!
//! * the syscall **mix** follows the per-workload families behind paper
//!   Fig. 3 (read/futex/recvfrom/... for servers, read/write loops for
//!   IPC, and so on);
//! * each syscall draws from a small pool of **hot argument sets** plus a
//!   long tail, reproducing the "three or fewer argument sets" locality
//!   and the short reuse distances of Fig. 3;
//! * each operation carries **application compute time**, which sets the
//!   syscall density — micro benchmarks are syscall-dominated, macro
//!   benchmarks are not, and HPCC hardly makes syscalls at all.
//!
//! [`timing`] converts a generated [`SyscallTrace`] plus a checking
//! backend into modeled execution time under a calibrated
//! [`timing::KernelCostModel`], which is how the harness regenerates the
//! paper's Figs. 2, 11, 16 and 17.
//!
//! # Example
//!
//! ```
//! use draco_workloads::{catalog, TraceGenerator};
//!
//! let spec = catalog::by_name("nginx").expect("nginx is in the catalog");
//! let trace = TraceGenerator::new(&spec, 42).generate(1_000);
//! assert_eq!(trace.len(), 1_000);
//! // Traces are deterministic per (workload, seed).
//! let again = TraceGenerator::new(&spec, 42).generate(1_000);
//! assert_eq!(trace, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod catalog;
mod generator;
pub mod live;
mod locality;
mod model;
pub mod replay;
pub mod shared_replay;
pub mod timing;
mod trace;

pub use generator::TraceGenerator;
pub use locality::{ArgSetBreakdown, LocalityReport, SyscallFrequency};
pub use model::{SyscallMix, WorkloadClass, WorkloadSpec};
pub use trace::{SyscallTrace, TraceOp};
