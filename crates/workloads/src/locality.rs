//! Trace locality analysis (paper §IV-C, Fig. 3; §XI-C, Fig. 14).

use std::collections::HashMap;

use draco_syscalls::{ArgSet, SyscallId, SyscallTable, MAX_ARGS};

use crate::trace::SyscallTrace;

/// Per-argument-set frequency breakdown of one system call, in the
/// fractions paper Fig. 3 stacks: the share of the top argument sets plus
/// an "other" bucket (and a `no_arg` share for zero-argument calls).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ArgSetBreakdown {
    /// Share of calls with no checkable arguments.
    pub no_arg: f64,
    /// Shares of the five most frequent argument sets, descending.
    pub top_sets: [f64; 5],
    /// Share of all remaining argument sets.
    pub other: f64,
    /// Number of distinct argument sets observed.
    pub distinct_sets: usize,
}

/// One system call's row in the locality report.
#[derive(Clone, Debug, PartialEq)]
pub struct SyscallFrequency {
    /// The system call.
    pub id: SyscallId,
    /// Kernel name.
    pub name: String,
    /// Calls observed.
    pub count: u64,
    /// Fraction of all calls in the trace.
    pub fraction: f64,
    /// Mean reuse distance: number of *other* system calls between two
    /// occurrences of the same `(ID, argument set)`, over all sets.
    pub mean_reuse_distance: f64,
    /// Mean reuse distance restricted to the syscall's three hottest
    /// argument sets — the quantity the paper annotates in Fig. 3 ("the
    /// average distance is often only a few tens of system calls"); cold
    /// tail sets recur rarely and would dominate the unrestricted mean.
    pub hot_mean_reuse_distance: f64,
    /// The stacked argument-set shares.
    pub breakdown: ArgSetBreakdown,
}

/// Locality statistics of a trace (or of several merged traces).
#[derive(Clone, Debug, PartialEq)]
pub struct LocalityReport {
    rows: Vec<SyscallFrequency>,
    total_calls: u64,
    /// `dist[n]` = fraction of calls whose syscall has `n` checkable
    /// arguments (paper Fig. 14 per-workload distributions).
    arg_count_fractions: [f64; MAX_ARGS + 1],
}

impl LocalityReport {
    /// Analyzes one trace.
    pub fn analyze(trace: &SyscallTrace) -> Self {
        Self::analyze_merged(std::slice::from_ref(trace))
    }

    /// Analyzes several traces as one stream (the paper merges all macro
    /// benchmarks for Fig. 3).
    pub fn analyze_merged(traces: &[SyscallTrace]) -> Self {
        let table = SyscallTable::shared();
        let mut counts: HashMap<SyscallId, u64> = HashMap::new();
        let mut set_counts: HashMap<SyscallId, HashMap<ArgSet, u64>> = HashMap::new();
        let mut last_seen: HashMap<(SyscallId, ArgSet), u64> = HashMap::new();
        let mut distance_sum: HashMap<SyscallId, (f64, u64)> = HashMap::new();
        let mut set_distances: HashMap<(SyscallId, ArgSet), (f64, u64)> = HashMap::new();
        let mut arg_count_calls = [0u64; MAX_ARGS + 1];
        let mut position: u64 = 0;
        let mut total: u64 = 0;

        for trace in traces {
            for req in trace.requests() {
                let mask = table
                    .get(req.id)
                    .map_or(draco_syscalls::ArgBitmask::EMPTY, draco_syscalls::SyscallDesc::bitmask);
                let masked = mask.masked(&req.args);
                *counts.entry(req.id).or_default() += 1;
                *set_counts
                    .entry(req.id)
                    .or_default()
                    .entry(masked)
                    .or_default() += 1;
                if let Some(prev) = last_seen.insert((req.id, masked), position) {
                    let d = (position - prev - 1) as f64;
                    let entry = distance_sum.entry(req.id).or_insert((0.0, 0));
                    entry.0 += d;
                    entry.1 += 1;
                    let per_set = set_distances.entry((req.id, masked)).or_insert((0.0, 0));
                    per_set.0 += d;
                    per_set.1 += 1;
                }
                let nargs = table.get(req.id).map_or(0, draco_syscalls::SyscallDesc::checked_arg_count);
                arg_count_calls[nargs] += 1;
                position += 1;
                total += 1;
            }
        }

        let mut rows: Vec<SyscallFrequency> = counts
            .iter()
            .map(|(&id, &count)| {
                let name = table
                    .get(id).map_or_else(|| format!("sys_{}", id.as_u16()), |d| d.name().to_owned());
                let (dsum, dcnt) = distance_sum.get(&id).copied().unwrap_or((0.0, 0));
                let mean_reuse_distance = if dcnt > 0 { dsum / dcnt as f64 } else { f64::NAN };
                let sets = &set_counts[&id];
                // Hot-set distance: the three most frequent sets only.
                let mut by_freq: Vec<(&ArgSet, &u64)> = sets.iter().collect();
                by_freq.sort_unstable_by(|a, b| b.1.cmp(a.1));
                let (mut hsum, mut hcnt) = (0.0, 0u64);
                for (set, _) in by_freq.iter().take(3) {
                    if let Some((s, c)) = set_distances.get(&(id, **set)) {
                        hsum += s;
                        hcnt += c;
                    }
                }
                let hot_mean_reuse_distance =
                    if hcnt > 0 { hsum / hcnt as f64 } else { f64::NAN };
                let mut freqs: Vec<u64> = sets.values().copied().collect();
                freqs.sort_unstable_by(|a, b| b.cmp(a));
                let call_total = count as f64;
                let desc_nargs = table.get(id).map_or(0, draco_syscalls::SyscallDesc::checked_arg_count);
                let mut breakdown = ArgSetBreakdown {
                    distinct_sets: sets.len(),
                    ..ArgSetBreakdown::default()
                };
                if desc_nargs == 0 {
                    breakdown.no_arg = 1.0;
                } else {
                    for (i, f) in freqs.iter().take(5).enumerate() {
                        breakdown.top_sets[i] = *f as f64 / call_total;
                    }
                    breakdown.other =
                        freqs.iter().skip(5).sum::<u64>() as f64 / call_total;
                }
                SyscallFrequency {
                    id,
                    name,
                    count,
                    fraction: count as f64 / total as f64,
                    mean_reuse_distance,
                    hot_mean_reuse_distance,
                    breakdown,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));

        let mut arg_count_fractions = [0.0; MAX_ARGS + 1];
        if total > 0 {
            for (f, c) in arg_count_fractions.iter_mut().zip(arg_count_calls) {
                *f = c as f64 / total as f64;
            }
        }
        LocalityReport {
            rows,
            total_calls: total,
            arg_count_fractions,
        }
    }

    /// Rows sorted by descending frequency.
    pub fn rows(&self) -> &[SyscallFrequency] {
        &self.rows
    }

    /// Total calls analyzed.
    pub const fn total_calls(&self) -> u64 {
        self.total_calls
    }

    /// Fraction of all calls covered by the `n` most frequent syscalls
    /// (Fig. 3: the top 20 cover ≈86%).
    pub fn top_n_coverage(&self, n: usize) -> f64 {
        self.rows.iter().take(n).map(|r| r.fraction).sum()
    }

    /// Fraction of calls whose syscall takes `n` checkable arguments
    /// (Fig. 14).
    pub fn arg_count_fraction(&self, n: usize) -> f64 {
        self.arg_count_fractions.get(n).copied().unwrap_or(0.0)
    }

    /// The syscalls in descending frequency order — feed to
    /// [`draco_profiles::ProfileSpec::with_priority_order`] for
    /// profile-guided filter-chain ordering.
    pub fn hottest_first(&self) -> Vec<SyscallId> {
        self.rows.iter().map(|r| r.id).collect()
    }

    /// Mean number of checkable arguments per call.
    pub fn mean_checked_args(&self) -> f64 {
        self.arg_count_fractions
            .iter()
            .enumerate()
            .map(|(n, f)| n as f64 * f)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::generator::TraceGenerator;
    use crate::trace::TraceOp;

    fn op(nr: u16, arg0: u64) -> TraceOp {
        TraceOp {
            compute_ns: 0,
            pc: 0x400,
            nr,
            args: [arg0, 0, 0, 0, 0, 0],
        }
    }

    #[test]
    fn counts_and_fractions() {
        let trace = SyscallTrace::from_ops(
            "t",
            vec![op(3, 1), op(3, 1), op(3, 2), op(39, 0)],
        );
        let r = LocalityReport::analyze(&trace);
        assert_eq!(r.total_calls(), 4);
        assert_eq!(r.rows()[0].name, "close");
        assert_eq!(r.rows()[0].count, 3);
        assert!((r.rows()[0].fraction - 0.75).abs() < 1e-9);
        assert_eq!(r.rows()[1].name, "getpid");
        assert!((r.top_n_coverage(1) - 0.75).abs() < 1e-9);
        assert!((r.top_n_coverage(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reuse_distance_counts_intervening_calls() {
        // close(1) at 0 and 2: one call between → distance 1.
        let trace = SyscallTrace::from_ops("t", vec![op(3, 1), op(39, 0), op(3, 1)]);
        let r = LocalityReport::analyze(&trace);
        let close = r.rows().iter().find(|x| x.name == "close").unwrap();
        assert!((close.mean_reuse_distance - 1.0).abs() < 1e-9);
        // getpid occurs once → NaN (no reuse observed).
        let getpid = r.rows().iter().find(|x| x.name == "getpid").unwrap();
        assert!(getpid.mean_reuse_distance.is_nan());
    }

    #[test]
    fn breakdown_separates_argument_sets() {
        let trace = SyscallTrace::from_ops(
            "t",
            vec![op(3, 1), op(3, 1), op(3, 1), op(3, 2), op(3, 3), op(3, 4)],
        );
        let r = LocalityReport::analyze(&trace);
        let close = &r.rows()[0];
        assert_eq!(close.breakdown.distinct_sets, 4);
        assert!((close.breakdown.top_sets[0] - 0.5).abs() < 1e-9);
        assert_eq!(close.breakdown.no_arg, 0.0);
    }

    #[test]
    fn zero_arg_calls_reported_as_no_arg() {
        let trace = SyscallTrace::from_ops("t", vec![op(39, 0); 3]);
        let r = LocalityReport::analyze(&trace);
        assert_eq!(r.rows()[0].breakdown.no_arg, 1.0);
        assert_eq!(r.arg_count_fraction(0), 1.0);
        assert_eq!(r.mean_checked_args(), 0.0);
    }

    #[test]
    fn macro_union_matches_paper_shape() {
        // Fig. 3: top-20 cover ≈86%, reuse distances are tens of calls.
        let traces: Vec<SyscallTrace> = catalog::macro_benchmarks()
            .iter()
            .map(|w| TraceGenerator::new(w, 11).generate(10_000))
            .collect();
        let r = LocalityReport::analyze_merged(&traces);
        let cov = r.top_n_coverage(20);
        assert!(cov > 0.80, "top-20 coverage {cov}");
        let read = r.rows().iter().find(|x| x.name == "read").unwrap();
        assert!(read.fraction > 0.10, "read fraction {}", read.fraction);
        assert!(
            read.hot_mean_reuse_distance < 100.0,
            "read hot reuse distance {}",
            read.hot_mean_reuse_distance
        );
    }

    #[test]
    fn merged_equals_concatenation_for_single_trace() {
        let spec = catalog::ipc_pipe();
        let t = TraceGenerator::new(&spec, 1).generate(100);
        assert_eq!(
            LocalityReport::analyze(&t),
            LocalityReport::analyze_merged(std::slice::from_ref(&t))
        );
    }

    #[test]
    fn arg_count_fractions_sum_to_one() {
        let spec = catalog::mysql();
        let t = TraceGenerator::new(&spec, 2).generate(5_000);
        let r = LocalityReport::analyze(&t);
        let sum: f64 = (0..=6).map(|n| r.arg_count_fraction(n)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r.mean_checked_args() > 0.5);
    }
}
