//! Multi-threaded replay against one thread-shared Draco process.
//!
//! [`replay`](crate::replay) models N *independent* processes — each
//! shard owns its own tables. This module models the paper's §VI
//! instead: N worker threads of **one** process hammer a single
//! [`SharedDracoProcess`], whose SPT/VAT reads are lock-free and whose
//! miss path serializes per syscall table. Two key mixes bracket the
//! contention space:
//!
//! * [`KeyMix::Skewed`] — every thread replays the *same* trace
//!   (identical seed), so all threads share the same hot argument sets:
//!   after the writer-heavy cold start, the workload is read-dominated
//!   and every thread hits entries some other thread validated;
//! * [`KeyMix::Uniform`] — each thread replays its *own* trace
//!   (per-thread seed), so argument sets are mostly disjoint: threads
//!   keep inserting throughout, exercising the per-table writer locks
//!   and the insert-race accounting.
//!
//! The unmeasured warm-up is run concurrently by all threads — that *is*
//! the writer-heavy cold-start phase, and the contention it produces
//! (lock waits, insert races, seqlock retries) is visible in the final
//! metrics — while `wall_ns` covers only the measured steady-state
//! region, like the per-process replay.

use std::time::Instant;

use draco_core::{ProcessId, SharedDracoProcess};
use draco_obs::{Histogram, MetricsRegistry, ReplayMetrics};
use draco_profiles::{analyze_profile, ProfileGenerator, ProfileKind, ProfileSpec};
use draco_syscalls::SyscallRequest;

use crate::model::WorkloadSpec;
use crate::replay::LATENCY_SAMPLE_INTERVAL;
use crate::TraceGenerator;

/// How per-thread argument-set streams relate to each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeyMix {
    /// All threads replay the same seed: shared hot keys,
    /// read-dominated steady state.
    Skewed,
    /// Per-thread seeds: mostly disjoint keys, writer-heavy throughout.
    Uniform,
}

impl KeyMix {
    /// Both mixes, in report order.
    pub const ALL: [KeyMix; 2] = [KeyMix::Skewed, KeyMix::Uniform];

    /// Stable label used in reports and JSON.
    pub const fn label(self) -> &'static str {
        match self {
            KeyMix::Skewed => "skewed",
            KeyMix::Uniform => "uniform",
        }
    }
}

/// Threading and trace-length parameters of one shared replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedReplayConfig {
    /// Number of worker threads sharing the one process. Must be
    /// nonzero.
    pub threads: usize,
    /// Measured operations per thread.
    pub ops_per_thread: usize,
    /// Unmeasured cold-start operations per thread (run concurrently —
    /// the writer-heavy phase).
    pub warmup_ops: usize,
    /// Base RNG seed; see [`SharedReplayConfig::thread_seed`].
    pub base_seed: u64,
    /// Key-mix shape across threads.
    pub mix: KeyMix,
}

impl SharedReplayConfig {
    /// Seed for one worker thread: the base seed under
    /// [`KeyMix::Skewed`], `base_seed + thread` under
    /// [`KeyMix::Uniform`].
    pub const fn thread_seed(&self, thread: usize) -> u64 {
        match self.mix {
            KeyMix::Skewed => self.base_seed,
            KeyMix::Uniform => self.base_seed.wrapping_add(thread as u64),
        }
    }
}

/// Deterministic counters plus the measured time of one worker thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedThreadReport {
    /// Worker index (0-based).
    pub thread: usize,
    /// The seed the worker's trace was generated from.
    pub seed: u64,
    /// Measured checks performed (= `ops_per_thread`).
    pub checks: u64,
    /// Checks whose verdict permitted the call.
    pub allowed: u64,
    /// Checks admitted by the shared SPT or VAT without running the
    /// filter.
    pub cache_hits: u64,
    /// Wall-clock nanoseconds spent in this worker's measured loop.
    pub elapsed_ns: u64,
    /// Sampled per-check wall-clock latency, in nanoseconds.
    pub latency_ns: Histogram,
}

/// The outcome of one shared-process replay.
#[derive(Clone, Debug, PartialEq)]
pub struct SharedReplayReport {
    /// Workload name.
    pub workload: String,
    /// The key mix that was driven.
    pub mix: KeyMix,
    /// Worker-thread count.
    pub threads: Vec<SharedThreadReport>,
    /// Wall-clock nanoseconds for the whole measured parallel region.
    pub wall_ns: u64,
    /// The shared process's merged observability registry (checker
    /// section includes warm-up traffic and the contention counters)
    /// plus a `replay` section for the measured region.
    pub metrics: MetricsRegistry,
}

impl SharedReplayReport {
    /// Total measured checks across workers.
    pub fn total_checks(&self) -> u64 {
        self.threads.iter().map(|t| t.checks).sum()
    }

    /// Aggregate throughput: total measured checks over the parallel
    /// region's wall-clock time.
    pub fn checks_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.total_checks() as f64 * 1e9 / self.wall_ns as f64
    }

    /// Fraction of measured checks that skipped the filter.
    pub fn cache_hit_rate(&self) -> f64 {
        let checks = self.total_checks();
        if checks == 0 {
            return 0.0;
        }
        let hits: u64 = self.threads.iter().map(|t| t.cache_hits).sum();
        hits as f64 / checks as f64
    }

    /// Sampled per-check latency pooled across workers (nanoseconds).
    pub fn latency_hist(&self) -> Histogram {
        let mut pooled = Histogram::default();
        for thread in &self.threads {
            pooled.merge(&thread.latency_ns);
        }
        pooled
    }
}

/// One worker's fully prepared input.
struct ThreadPlan {
    thread: usize,
    seed: u64,
    warmup: Vec<SyscallRequest>,
    measured: Vec<SyscallRequest>,
}

fn plan_threads(spec: &WorkloadSpec, cfg: &SharedReplayConfig) -> Vec<ThreadPlan> {
    (0..cfg.threads)
        .map(|thread| {
            let seed = cfg.thread_seed(thread);
            let trace =
                TraceGenerator::new(spec, seed).generate(cfg.warmup_ops + cfg.ops_per_thread);
            let mut reqs = trace.requests();
            let warmup: Vec<SyscallRequest> = reqs.by_ref().take(cfg.warmup_ops).collect();
            let measured: Vec<SyscallRequest> = reqs.collect();
            ThreadPlan {
                thread,
                seed,
                warmup,
                measured,
            }
        })
        .collect()
}

/// The profile all workers run under: the union of every thread's trace
/// (one process, one installed filter — paper §VI).
fn union_profile(spec: &WorkloadSpec, plans: &[ThreadPlan], kind: ProfileKind) -> ProfileSpec {
    let mut gen = ProfileGenerator::new(spec.name.to_owned());
    for plan in plans {
        for req in plan.warmup.iter().chain(plan.measured.iter()) {
            gen.observe(req);
        }
    }
    gen.emit(kind)
}

/// Replays a workload with `cfg.threads` worker threads sharing one
/// [`SharedDracoProcess`].
///
/// Trace generation, profile generation, filter compilation, and filter
/// analysis happen before any thread is spawned. The concurrent warm-up
/// (the writer-heavy cold start) runs unmeasured behind a barrier;
/// `wall_ns` covers only the measured region. Per-thread allow counts
/// depend only on `(workload, seed, thread)` — cache-hit counts do not
/// (which thread wins a validation race is timing-dependent), but their
/// *sum* with filter runs always equals the check count.
///
/// # Panics
///
/// Panics if `cfg.threads == 0` or a worker thread panics.
pub fn replay_shared(
    spec: &WorkloadSpec,
    kind: ProfileKind,
    cfg: &SharedReplayConfig,
) -> SharedReplayReport {
    replay_shared_inner(spec, kind, cfg, None)
}

/// Like [`replay_shared`], but each worker drives the staged batch path
/// ([`draco_core::SharedThreadHandle::syscall_batch`]), `batch` requests
/// per call. Per-thread allow counts are identical to the scalar shared
/// replay on the same config; cache-hit counts remain timing-dependent
/// across threads exactly as in the scalar case.
///
/// # Panics
///
/// Panics if `cfg.threads == 0`, `batch == 0`, or a worker panics.
pub fn replay_shared_batched(
    spec: &WorkloadSpec,
    kind: ProfileKind,
    cfg: &SharedReplayConfig,
    batch: usize,
) -> SharedReplayReport {
    assert!(batch > 0, "batched replay needs a nonzero batch size");
    replay_shared_inner(spec, kind, cfg, Some(batch))
}

fn replay_shared_inner(
    spec: &WorkloadSpec,
    kind: ProfileKind,
    cfg: &SharedReplayConfig,
    batch: Option<usize>,
) -> SharedReplayReport {
    assert!(cfg.threads > 0, "shared replay needs at least one thread");
    let plans = plan_threads(spec, cfg);
    let profile = union_profile(spec, &plans, kind);
    let analysis = analyze_profile(&profile).expect("generated profiles always compile");
    let process = SharedDracoProcess::spawn_analyzed(ProcessId(0), &profile, &analysis)
        .expect("generated profiles always compile");

    let barrier = std::sync::Barrier::new(cfg.threads + 1);
    let mut threads: Vec<SharedThreadReport> = Vec::with_capacity(plans.len());
    let mut wall_ns = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let mut handle = process.spawn_thread();
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut out =
                        vec![draco_core::CheckResult::KILLED; batch.unwrap_or(0)];
                    // Writer-heavy cold start: all threads populate the
                    // shared tables concurrently, unmeasured.
                    match batch {
                        Some(batch) => {
                            for chunk in plan.warmup.chunks(batch) {
                                handle.syscall_batch(chunk, &mut out[..chunk.len()]);
                            }
                        }
                        None => {
                            for req in &plan.warmup {
                                let _ = handle.syscall(req);
                            }
                        }
                    }
                    barrier.wait();
                    let mut allowed = 0u64;
                    let mut cache_hits = 0u64;
                    let mut latency_ns = Histogram::default();
                    let start = Instant::now();
                    match batch {
                        Some(batch) => {
                            let mut index = 0usize;
                            for chunk in plan.measured.chunks(batch) {
                                let offset = index % LATENCY_SAMPLE_INTERVAL;
                                let sampled = offset == 0
                                    || offset + chunk.len() > LATENCY_SAMPLE_INTERVAL;
                                let sample_start = sampled.then(Instant::now);
                                let slots = &mut out[..chunk.len()];
                                handle.syscall_batch(chunk, slots);
                                if let Some(t) = sample_start {
                                    latency_ns.record(
                                        t.elapsed().as_nanos() as u64 / chunk.len() as u64,
                                    );
                                }
                                for decision in slots.iter() {
                                    allowed += u64::from(decision.action.permits());
                                    cache_hits += u64::from(decision.path.is_cache_hit());
                                }
                                index += chunk.len();
                            }
                        }
                        None => {
                            for (i, req) in plan.measured.iter().enumerate() {
                                let sampled = i % LATENCY_SAMPLE_INTERVAL == 0;
                                let sample_start = sampled.then(Instant::now);
                                let result = handle.syscall(req);
                                if let Some(t) = sample_start {
                                    latency_ns.record(t.elapsed().as_nanos() as u64);
                                }
                                allowed += u64::from(result.action.permits());
                                cache_hits += u64::from(result.path.is_cache_hit());
                            }
                        }
                    }
                    let elapsed_ns = start.elapsed().as_nanos() as u64;
                    drop(handle); // flush thread-local stats into the process
                    SharedThreadReport {
                        thread: plan.thread,
                        seed: plan.seed,
                        checks: plan.measured.len() as u64,
                        allowed,
                        cache_hits,
                        elapsed_ns,
                        latency_ns,
                    }
                })
            })
            .collect();
        // Release the measured region only once every worker finished
        // its cold start, then time spawn-to-last-join of that region.
        barrier.wait();
        let start = Instant::now();
        for handle in handles {
            threads.push(handle.join().expect("shared replay worker panicked"));
        }
        wall_ns = start.elapsed().as_nanos() as u64;
    });
    threads.sort_by_key(|t| t.thread);

    let mut metrics = process.metrics();
    metrics.replay = ReplayMetrics {
        shards: threads.len() as u64,
        checks: threads.iter().map(|t| t.checks).sum(),
        allowed: threads.iter().map(|t| t.allowed).sum(),
        cache_hits: threads.iter().map(|t| t.cache_hits).sum(),
    };
    SharedReplayReport {
        workload: spec.name.to_owned(),
        mix: cfg.mix,
        threads,
        wall_ns,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn small_cfg(threads: usize, mix: KeyMix) -> SharedReplayConfig {
        SharedReplayConfig {
            threads,
            ops_per_thread: 400,
            warmup_ops: 100,
            base_seed: 2020,
            mix,
        }
    }

    #[test]
    fn thread_counts_and_seeds() {
        let spec = catalog::ipc_pipe();
        let report = replay_shared(
            &spec,
            ProfileKind::SyscallComplete,
            &small_cfg(3, KeyMix::Uniform),
        );
        assert_eq!(report.threads.len(), 3);
        for (i, t) in report.threads.iter().enumerate() {
            assert_eq!(t.thread, i);
            assert_eq!(t.seed, 2020 + i as u64);
            assert_eq!(t.checks, 400);
        }
        assert_eq!(report.total_checks(), 1200);
        assert!(report.checks_per_sec() > 0.0);
    }

    #[test]
    fn skewed_threads_share_one_seed() {
        let cfg = small_cfg(4, KeyMix::Skewed);
        for t in 0..4 {
            assert_eq!(cfg.thread_seed(t), 2020);
        }
        let uniform = small_cfg(4, KeyMix::Uniform);
        assert_eq!(uniform.thread_seed(3), 2023);
    }

    #[test]
    fn allow_counts_are_deterministic_cache_hits_conserved() {
        let spec = catalog::ipc_pipe();
        for mix in KeyMix::ALL {
            let cfg = small_cfg(3, mix);
            let a = replay_shared(&spec, ProfileKind::SyscallComplete, &cfg);
            let b = replay_shared(&spec, ProfileKind::SyscallComplete, &cfg);
            let allowed = |r: &SharedReplayReport| -> Vec<u64> {
                r.threads.iter().map(|t| t.allowed).collect()
            };
            assert_eq!(allowed(&a), allowed(&b), "{}", mix.label());
            // Which thread wins a validation race varies, but every
            // check is either a hit or a filter run.
            let c = &a.metrics.checker;
            assert_eq!(
                c.total(),
                3 * 500,
                "warmup + measured all accounted ({})",
                mix.label()
            );
        }
    }

    #[test]
    fn skewed_mix_is_read_dominated_after_cold_start() {
        let spec = catalog::unixbench_syscall();
        let report = replay_shared(
            &spec,
            ProfileKind::SyscallComplete,
            &small_cfg(3, KeyMix::Skewed),
        );
        assert!(
            report.cache_hit_rate() > 0.8,
            "shared warm tables absorb the measured region, got {}",
            report.cache_hit_rate()
        );
    }

    #[test]
    fn shared_decisions_match_isolated_replay() {
        // One thread against the shared process decides exactly like the
        // per-process replay engine on the same trace (the full N-thread
        // differential test lives in tests/equivalence.rs).
        let spec = catalog::ipc_pipe();
        let shared = replay_shared(
            &spec,
            ProfileKind::SyscallComplete,
            &small_cfg(1, KeyMix::Skewed),
        );
        let again = replay_shared(
            &spec,
            ProfileKind::SyscallComplete,
            &small_cfg(1, KeyMix::Uniform),
        );
        // thread 0 has the same seed under both mixes.
        assert_eq!(shared.threads[0].allowed, again.threads[0].allowed);
        assert_eq!(shared.threads[0].cache_hits, again.threads[0].cache_hits);
    }

    #[test]
    fn metrics_carry_replay_section_and_contention_counters() {
        let spec = catalog::ipc_pipe();
        let report = replay_shared(
            &spec,
            ProfileKind::SyscallComplete,
            &small_cfg(3, KeyMix::Uniform),
        );
        assert_eq!(report.metrics.replay.shards, 3);
        assert_eq!(report.metrics.replay.checks, report.total_checks());
        // Contention counters exist and are consistent: they never
        // exceed what the traffic could have produced. (Whether they are
        // nonzero depends on actual interleaving — on a single-CPU host
        // threads may never collide.)
        let c = &report.metrics.checker;
        assert!(c.insert_races_lost <= c.filter_runs);
        assert!(c.vat_hits + c.spt_hits + c.filter_runs == c.total());
    }

    #[test]
    fn latency_histogram_sees_sampled_checks() {
        let spec = catalog::ipc_pipe();
        let report = replay_shared(
            &spec,
            ProfileKind::SyscallComplete,
            &SharedReplayConfig {
                threads: 2,
                ops_per_thread: 1_000,
                warmup_ops: 50,
                base_seed: 7,
                mix: KeyMix::Skewed,
            },
        );
        // ceil(1000 / 256) = 4 samples per thread.
        assert_eq!(report.latency_hist().count(), 8);
        assert!(report.latency_hist().p50().is_some());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = replay_shared(
            &catalog::ipc_pipe(),
            ProfileKind::SyscallComplete,
            &SharedReplayConfig {
                threads: 0,
                ops_per_thread: 1,
                warmup_ops: 0,
                base_seed: 0,
                mix: KeyMix::Skewed,
            },
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(KeyMix::Skewed.label(), "skewed");
        assert_eq!(KeyMix::Uniform.label(), "uniform");
    }

    #[test]
    fn batched_shared_replay_matches_scalar_allow_counts() {
        let spec = catalog::ipc_pipe();
        for mix in KeyMix::ALL {
            let cfg = small_cfg(3, mix);
            let scalar = replay_shared(&spec, ProfileKind::SyscallComplete, &cfg);
            for batch in [1usize, 31, 1000] {
                let batched =
                    replay_shared_batched(&spec, ProfileKind::SyscallComplete, &cfg, batch);
                let allowed = |r: &SharedReplayReport| -> Vec<u64> {
                    r.threads.iter().map(|t| t.allowed).collect()
                };
                assert_eq!(
                    allowed(&scalar),
                    allowed(&batched),
                    "{} batch={batch}",
                    mix.label()
                );
                // Every check is still a hit or a filter run, and the
                // batch section reflects the batched traffic.
                let c = &batched.metrics.checker;
                assert_eq!(c.total(), 3 * 500, "{} batch={batch}", mix.label());
                assert_eq!(
                    c.batched_checks,
                    3 * 500,
                    "warmup and measured both batched ({} batch={batch})",
                    mix.label()
                );
                assert!(c.batches > 0, "{} batch={batch}", mix.label());
            }
        }
    }

    #[test]
    #[should_panic(expected = "nonzero batch size")]
    fn zero_batch_rejected() {
        let _ = replay_shared_batched(
            &catalog::ipc_pipe(),
            ProfileKind::SyscallComplete,
            &small_cfg(1, KeyMix::Skewed),
            0,
        );
    }
}
