//! Load-time program validation, mirroring the kernel's checker.
//!
//! The kernel rejects malformed filters when they are installed
//! (`seccomp(2)` returns `EINVAL`), not when they run. cBPF is loop-free by
//! construction — all jump offsets are non-negative — so validation
//! guarantees termination.

use core::fmt;

use crate::insn::{Insn, Src, BPF_MAXINSNS, MEMWORDS};
use crate::SECCOMP_DATA_SIZE;

/// Validation failures for cBPF programs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BpfError {
    /// The program has no instructions.
    Empty,
    /// The program exceeds `BPF_MAXINSNS`.
    TooLong(usize),
    /// A jump target lies beyond the end of the program.
    JumpOutOfBounds {
        /// Index of the offending instruction.
        at: usize,
        /// The out-of-bounds target.
        target: usize,
    },
    /// The final instruction can fall through past the end.
    MissingReturn,
    /// An absolute load is unaligned or outside `seccomp_data`.
    BadLoadOffset {
        /// Index of the offending instruction.
        at: usize,
        /// The offending byte offset.
        offset: u32,
    },
    /// A scratch-memory index is out of range.
    BadMemIndex {
        /// Index of the offending instruction.
        at: usize,
        /// The offending slot index.
        index: u32,
    },
    /// Division by a constant zero.
    DivisionByZero {
        /// Index of the offending instruction.
        at: usize,
    },
    /// Shift by a constant of 32 or more.
    BadShift {
        /// Index of the offending instruction.
        at: usize,
    },
    /// Division by `X` where `X` is zero, detected at run time.
    RuntimeDivisionByZero,
    /// An undefined label was referenced in the assembler.
    UndefinedLabel(String),
    /// A label was defined twice in the assembler.
    DuplicateLabel(String),
    /// A jump distance does not fit in the 8-bit `jt`/`jf` fields.
    JumpTooFar {
        /// Index of the offending instruction.
        at: usize,
        /// The required displacement.
        distance: usize,
    },
    /// A raw encoding outside the seccomp cBPF subset.
    UnsupportedOpcode {
        /// Index of the offending instruction.
        at: usize,
        /// The raw opcode.
        code: u16,
    },
}

impl fmt::Display for BpfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BpfError::Empty => write!(f, "empty program"),
            BpfError::TooLong(n) => {
                write!(f, "program has {n} instructions, max {BPF_MAXINSNS}")
            }
            BpfError::JumpOutOfBounds { at, target } => {
                write!(f, "instruction {at} jumps to {target}, past the end")
            }
            BpfError::MissingReturn => {
                write!(f, "execution can fall through past the last instruction")
            }
            BpfError::BadLoadOffset { at, offset } => {
                write!(f, "instruction {at} loads invalid offset {offset}")
            }
            BpfError::BadMemIndex { at, index } => {
                write!(f, "instruction {at} uses scratch slot {index}, max 15")
            }
            BpfError::DivisionByZero { at } => {
                write!(f, "instruction {at} divides by constant zero")
            }
            BpfError::BadShift { at } => {
                write!(f, "instruction {at} shifts by 32 or more")
            }
            BpfError::RuntimeDivisionByZero => {
                write!(f, "division by zero at run time")
            }
            BpfError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            BpfError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BpfError::JumpTooFar { at, distance } => {
                write!(
                    f,
                    "instruction {at} needs a jump of {distance}, max 255"
                )
            }
            BpfError::UnsupportedOpcode { at, code } => {
                write!(f, "instruction {at} has unsupported opcode {code:#06x}")
            }
        }
    }
}

impl std::error::Error for BpfError {}

/// Validates an instruction sequence the way the kernel does at filter
/// install time.
///
/// Checks performed:
///
/// * non-empty, at most [`BPF_MAXINSNS`] instructions;
/// * every jump target in bounds (cBPF offsets are forward-only, so
///   termination follows);
/// * no fall-through past the end: the last instruction must be a `RET`
///   or an unconditional jump;
/// * `LdAbs` offsets word-aligned and within `seccomp_data`;
/// * scratch-memory indices below 16;
/// * no division or shift by an illegal constant.
///
/// # Errors
///
/// Returns the first violation found, in program order.
pub fn validate(insns: &[Insn]) -> Result<(), BpfError> {
    if insns.is_empty() {
        return Err(BpfError::Empty);
    }
    if insns.len() > BPF_MAXINSNS {
        return Err(BpfError::TooLong(insns.len()));
    }
    for (at, insn) in insns.iter().enumerate() {
        match *insn {
            // `off > SIZE - 4` (not `off + 4 > SIZE`): the additive form
            // overflows for offsets near `u32::MAX` — 0xffff_fffc is
            // 4-aligned and `off + 4` wraps to 0, admitting a load far
            // past the struct tail.
            Insn::LdAbs(off)
                if (off % 4 != 0 || off > SECCOMP_DATA_SIZE - 4) => {
                    return Err(BpfError::BadLoadOffset { at, offset: off });
                }
            Insn::LdMem(idx) | Insn::LdxMem(idx) | Insn::St(idx) | Insn::Stx(idx)
                if idx as usize >= MEMWORDS => {
                    return Err(BpfError::BadMemIndex { at, index: idx });
                }
            Insn::Alu(crate::AluOp::Div, Src::K(0)) => {
                return Err(BpfError::DivisionByZero { at });
            }
            Insn::Alu(crate::AluOp::Lsh | crate::AluOp::Rsh, Src::K(k)) if k >= 32 => {
                return Err(BpfError::BadShift { at });
            }
            Insn::Ja(off) => {
                let target = at + 1 + off as usize;
                if target >= insns.len() {
                    return Err(BpfError::JumpOutOfBounds { at, target });
                }
            }
            Insn::Jmp { jt, jf, .. } => {
                for off in [jt, jf] {
                    let target = at + 1 + off as usize;
                    if target >= insns.len() {
                        return Err(BpfError::JumpOutOfBounds { at, target });
                    }
                }
            }
            _ => {}
        }
    }
    // No fall-through: the last instruction must terminate or jump.
    let last = insns[insns.len() - 1];
    if !(last.is_ret() || matches!(last, Insn::Ja(_))) {
        return Err(BpfError::MissingReturn);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Cond};

    #[test]
    fn accepts_minimal_program() {
        assert_eq!(validate(&[Insn::RetK(0)]), Ok(()));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(validate(&[]), Err(BpfError::Empty));
    }

    #[test]
    fn rejects_too_long() {
        let prog = vec![Insn::RetK(0); BPF_MAXINSNS + 1];
        assert!(matches!(validate(&prog), Err(BpfError::TooLong(_))));
    }

    #[test]
    fn rejects_out_of_bounds_jumps() {
        let prog = vec![
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(1),
                jt: 10,
                jf: 0,
            },
            Insn::RetK(0),
        ];
        assert!(matches!(
            validate(&prog),
            Err(BpfError::JumpOutOfBounds { at: 0, .. })
        ));
        let prog = vec![Insn::Ja(5), Insn::RetK(0)];
        assert!(matches!(
            validate(&prog),
            Err(BpfError::JumpOutOfBounds { at: 0, .. })
        ));
    }

    #[test]
    fn rejects_fall_through() {
        let prog = vec![Insn::LdAbs(0)];
        assert_eq!(validate(&prog), Err(BpfError::MissingReturn));
    }

    #[test]
    fn rejects_bad_load_offsets() {
        for off in [1u32, 2, 3, 61, 64, 100] {
            let prog = vec![Insn::LdAbs(off), Insn::RetK(0)];
            assert!(
                matches!(validate(&prog), Err(BpfError::BadLoadOffset { .. })),
                "offset {off}"
            );
        }
        // 60 is the last valid word.
        assert_eq!(validate(&[Insn::LdAbs(60), Insn::RetK(0)]), Ok(()));
    }

    #[test]
    fn rejects_load_offsets_that_overflow_the_bounds_check() {
        // 0xffff_fffc is 4-aligned and `off + 4` wraps to 0; the
        // additive bounds check used to admit it and the VM's word
        // indexing panicked. Every 4-byte access straddling or past the
        // struct tail must be rejected, including the wrap-around ones.
        for off in [61u32, 62, 63, 64, u32::MAX - 3, u32::MAX] {
            let prog = vec![Insn::LdAbs(off), Insn::RetK(0)];
            assert!(
                matches!(validate(&prog), Err(BpfError::BadLoadOffset { .. })),
                "offset {off:#x}"
            );
        }
    }

    #[test]
    fn rejects_bad_mem_indices() {
        for insn in [
            Insn::LdMem(16),
            Insn::LdxMem(99),
            Insn::St(16),
            Insn::Stx(255),
        ] {
            assert!(matches!(
                validate(&[insn, Insn::RetK(0)]),
                Err(BpfError::BadMemIndex { .. })
            ));
        }
        assert_eq!(
            validate(&[Insn::St(15), Insn::LdMem(15), Insn::RetK(0)]),
            Ok(())
        );
    }

    #[test]
    fn rejects_constant_div_by_zero_and_wide_shifts() {
        assert!(matches!(
            validate(&[Insn::Alu(AluOp::Div, Src::K(0)), Insn::RetK(0)]),
            Err(BpfError::DivisionByZero { at: 0 })
        ));
        assert!(matches!(
            validate(&[Insn::Alu(AluOp::Lsh, Src::K(32)), Insn::RetK(0)]),
            Err(BpfError::BadShift { at: 0 })
        ));
        assert_eq!(
            validate(&[Insn::Alu(AluOp::Rsh, Src::K(31)), Insn::RetK(0)]),
            Ok(())
        );
    }

    #[test]
    fn accepts_terminal_unconditional_jump() {
        // Last insn may be JA pointing backwards-in-text... cBPF offsets
        // are forward-only, so a terminal JA must target an earlier RET —
        // impossible. Terminal JA with offset 0 targets the next (absent)
        // instruction and is out of bounds.
        let prog = vec![Insn::Ja(0), Insn::RetK(0)];
        assert_eq!(validate(&prog), Ok(()));
    }

    #[test]
    fn error_display_is_lowercase_and_concise() {
        let msgs = [
            BpfError::Empty.to_string(),
            BpfError::TooLong(5000).to_string(),
            BpfError::MissingReturn.to_string(),
            BpfError::RuntimeDivisionByZero.to_string(),
            BpfError::UndefinedLabel("x".into()).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }
}
