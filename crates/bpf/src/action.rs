//! Seccomp filter return actions.

use core::fmt;

/// What a seccomp filter tells the kernel to do with a system call
/// (paper §II-B: "kill the process or thread, send a SIGSYS signal to the
/// thread, return an error, or log the system call").
///
/// Encodings follow `include/uapi/linux/seccomp.h`; the low 16 bits carry
/// action data (the errno, for [`SeccompAction::Errno`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SeccompAction {
    /// Let the system call proceed (`SECCOMP_RET_ALLOW`).
    Allow,
    /// Log and allow (`SECCOMP_RET_LOG`).
    Log,
    /// Fail the call with this errno (`SECCOMP_RET_ERRNO`).
    Errno(u16),
    /// Deliver `SIGSYS` to the thread (`SECCOMP_RET_TRAP`).
    Trap,
    /// Notify an attached tracer (`SECCOMP_RET_TRACE`).
    Trace(u16),
    /// Kill the calling thread (`SECCOMP_RET_KILL_THREAD`).
    KillThread,
    /// Kill the whole process (`SECCOMP_RET_KILL_PROCESS`).
    KillProcess,
}

impl SeccompAction {
    const RET_KILL_PROCESS: u32 = 0x8000_0000;
    const RET_KILL_THREAD: u32 = 0x0000_0000;
    const RET_TRAP: u32 = 0x0003_0000;
    const RET_ERRNO: u32 = 0x0005_0000;
    const RET_TRACE: u32 = 0x7ff0_0000;
    const RET_LOG: u32 = 0x7ffc_0000;
    const RET_ALLOW: u32 = 0x7fff_0000;
    const ACTION_MASK: u32 = 0xffff_0000;
    const DATA_MASK: u32 = 0x0000_ffff;

    /// Encodes to the 32-bit filter return value.
    pub const fn encode(self) -> u32 {
        match self {
            SeccompAction::Allow => Self::RET_ALLOW,
            SeccompAction::Log => Self::RET_LOG,
            SeccompAction::Errno(e) => Self::RET_ERRNO | e as u32,
            SeccompAction::Trap => Self::RET_TRAP,
            SeccompAction::Trace(d) => Self::RET_TRACE | d as u32,
            SeccompAction::KillThread => Self::RET_KILL_THREAD,
            SeccompAction::KillProcess => Self::RET_KILL_PROCESS,
        }
    }

    /// Decodes a 32-bit filter return value.
    ///
    /// Unknown action codes decode to [`SeccompAction::KillProcess`],
    /// matching the kernel's fail-closed behaviour for unrecognized
    /// actions.
    pub const fn decode(value: u32) -> SeccompAction {
        let data = (value & Self::DATA_MASK) as u16;
        match value & Self::ACTION_MASK {
            Self::RET_ALLOW => SeccompAction::Allow,
            Self::RET_LOG => SeccompAction::Log,
            Self::RET_ERRNO => SeccompAction::Errno(data),
            Self::RET_TRAP => SeccompAction::Trap,
            Self::RET_TRACE => SeccompAction::Trace(data),
            Self::RET_KILL_THREAD => SeccompAction::KillThread,
            _ => SeccompAction::KillProcess,
        }
    }

    /// True if the system call is permitted to execute
    /// (`Allow` or `Log`).
    pub const fn permits(self) -> bool {
        matches!(self, SeccompAction::Allow | SeccompAction::Log)
    }

    /// Kernel-defined precedence: when multiple filters run, the most
    /// restrictive (lowest-precedence-value) action wins.
    pub const fn precedence(self) -> u8 {
        match self {
            SeccompAction::KillProcess => 0,
            SeccompAction::KillThread => 1,
            SeccompAction::Trap => 2,
            SeccompAction::Errno(_) => 3,
            SeccompAction::Trace(_) => 4,
            SeccompAction::Log => 5,
            SeccompAction::Allow => 6,
        }
    }

    /// Combines two filters' verdicts, keeping the most restrictive.
    #[must_use]
    pub const fn most_restrictive(self, other: SeccompAction) -> SeccompAction {
        if self.precedence() <= other.precedence() {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SeccompAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeccompAction::Allow => write!(f, "allow"),
            SeccompAction::Log => write!(f, "log"),
            SeccompAction::Errno(e) => write!(f, "errno({e})"),
            SeccompAction::Trap => write!(f, "trap"),
            SeccompAction::Trace(d) => write!(f, "trace({d})"),
            SeccompAction::KillThread => write!(f, "kill-thread"),
            SeccompAction::KillProcess => write!(f, "kill-process"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodings_match_linux_uapi() {
        assert_eq!(SeccompAction::Allow.encode(), 0x7fff_0000);
        assert_eq!(SeccompAction::KillProcess.encode(), 0x8000_0000);
        assert_eq!(SeccompAction::KillThread.encode(), 0x0000_0000);
        assert_eq!(SeccompAction::Trap.encode(), 0x0003_0000);
        assert_eq!(SeccompAction::Errno(38).encode(), 0x0005_0026);
        assert_eq!(SeccompAction::Log.encode(), 0x7ffc_0000);
        assert_eq!(SeccompAction::Trace(7).encode(), 0x7ff0_0007);
    }

    #[test]
    fn decode_roundtrips() {
        for action in [
            SeccompAction::Allow,
            SeccompAction::Log,
            SeccompAction::Errno(1),
            SeccompAction::Errno(0),
            SeccompAction::Trap,
            SeccompAction::Trace(99),
            SeccompAction::KillThread,
            SeccompAction::KillProcess,
        ] {
            assert_eq!(SeccompAction::decode(action.encode()), action);
        }
    }

    #[test]
    fn unknown_actions_fail_closed() {
        assert_eq!(SeccompAction::decode(0x1234_0000), SeccompAction::KillProcess);
    }

    #[test]
    fn permits_only_allow_and_log() {
        assert!(SeccompAction::Allow.permits());
        assert!(SeccompAction::Log.permits());
        for a in [
            SeccompAction::Errno(1),
            SeccompAction::Trap,
            SeccompAction::Trace(0),
            SeccompAction::KillThread,
            SeccompAction::KillProcess,
        ] {
            assert!(!a.permits(), "{a}");
        }
    }

    #[test]
    fn precedence_orders_restrictiveness() {
        assert_eq!(
            SeccompAction::Allow.most_restrictive(SeccompAction::KillProcess),
            SeccompAction::KillProcess
        );
        assert_eq!(
            SeccompAction::Errno(5).most_restrictive(SeccompAction::Log),
            SeccompAction::Errno(5)
        );
        assert_eq!(
            SeccompAction::Allow.most_restrictive(SeccompAction::Allow),
            SeccompAction::Allow
        );
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(SeccompAction::KillProcess.to_string(), "kill-process");
        assert_eq!(SeccompAction::Errno(38).to_string(), "errno(38)");
    }
}
