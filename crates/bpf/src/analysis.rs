//! Abstract interpretation over validated cBPF programs (paper §V-B).
//!
//! The paper observes that the kernel can *derive* which `seccomp_data`
//! bytes a filter actually inspects instead of trusting a userspace side
//! channel. This module is that derivation: a sound static analysis that,
//! per system call number, classifies the filter's decision as
//! [`Verdict::AlwaysAllow`], [`Verdict::AlwaysDeny`] (any constant
//! non-allow action), or [`Verdict::ArgDependent`], and computes the
//! exact set of argument bytes that can influence the decision as a
//! [`draco_syscalls::ArgBitmask`] — the SPT mask Draco's checker hashes.
//!
//! # The abstract domain
//!
//! Each of the accumulator, index register, and sixteen scratch slots is
//! tracked as an [`AbsVal`]: the reduced product of
//!
//! * an unsigned **interval** `[lo, hi]`,
//! * **known bits** `(kmask, kval)` — bits proven equal on every path
//!   (the kernel BPF verifier's tnum, restricted to 32 bits), and
//! * a per-byte-lane **taint** set: for each of the value's four bytes,
//!   which `seccomp_data` bytes can influence it. Byte granularity is
//!   what lets `A &= k` discharge taint for the bytes `k` zeroes — the
//!   exact shape profile compilers emit for masked argument compares.
//!
//! Loads of `seccomp_data` words are tracked symbolically (the value
//! remembers its field offset), which resolves the syscall-number and
//! architecture words to constants when the analysis pins them, and
//! powers the out-of-range-comparison lint when it does not.
//!
//! cBPF jumps are forward-only, so the control-flow graph is a DAG and
//! one program-order pass with joins at merge points reaches the fixed
//! point — no iteration. Conditional edges are *refined* (`Jeq` pins the
//! accumulator, `Jgt`/`Jge` narrow the interval, a false `Jset` proves
//! bits zero) and an edge whose refinement is contradictory is dead.
//!
//! # Soundness of the derived mask
//!
//! The mask is an over-approximation of influence: flipping any argument
//! byte *outside* it can never change the filter's decision. The
//! argument is non-interference: the decision taint unions, over every
//! reachable return, the *control* taint (the operand taints of every
//! unresolved branch on the path — resolved branches go the same way for
//! all inputs) with the returned value's taint for `RetA`. Two inputs
//! differing only in an untainted byte therefore follow the same path to
//! the same return value. `tests` property-check exactly this statement
//! against the concrete VM.

use crate::insn::{Insn, Src, MEMWORDS};
use crate::{AluOp, Cond, Program, SeccompAction, SECCOMP_DATA_SIZE};
use draco_syscalls::ArgBitmask;

/// Bitset over the 64 bytes of `struct seccomp_data`.
type ByteSet = u64;

/// All 48 argument-byte bits of an [`ArgBitmask`].
const FULL_ARG_MASK: u64 = (1u64 << 48) - 1;

/// Byte offsets of `instruction_pointer` within `seccomp_data`.
const IP_BYTES: ByteSet = 0xff00;

/// Byte offset where the argument area starts.
const ARG_BYTE_BASE: u32 = 16;

/// What to hold fixed during a pass.
///
/// Verdict passes pin `nr` (the syscall being classified) and `arch`
/// (native x86-64 calls, the only kind the checker sees); the lint pass
/// pins nothing so that e.g. the architecture guard every compiled
/// filter opens with is not reported as a dead branch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Pin the `nr` word (offset 0) to this value.
    pub nr: Option<u32>,
    /// Pin the `arch` word (offset 4) to this value.
    pub arch: Option<u32>,
}

/// The per-syscall decision classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Every reachable return is `Allow`: the decision is proven
    /// argument-independent and a checker may skip argument hashing.
    AlwaysAllow,
    /// Every reachable return is the same non-`Allow` action.
    AlwaysDeny(SeccompAction),
    /// The decision can depend on argument bytes (or could not be proven
    /// constant); the mask says which bytes.
    ArgDependent,
}

/// The full analysis result for one syscall number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyscallVerdict {
    /// The decision classification.
    pub verdict: Verdict,
    /// Argument bytes that can influence the decision. Always
    /// [`ArgBitmask::EMPTY`] for the constant verdicts.
    pub mask: ArgBitmask,
    /// The decision can depend on the instruction pointer — a hazard for
    /// any cache keyed on `(nr, args)` alone.
    pub ip_dependent: bool,
    /// A runtime fault (division by a possibly-zero `X`) is reachable;
    /// the verdict degrades to [`Verdict::ArgDependent`] with a full
    /// mask because a fault is not a cacheable decision.
    pub may_fault: bool,
}

/// Lint severity. [`Severity::Error`] findings are soundness hazards and
/// fail `dracoctl analyze`; warnings are inefficiencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Wasted work or suspicious-but-harmless code.
    Warning,
    /// A correctness or cacheability hazard.
    Error,
}

/// What a lint finding is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintKind {
    /// Reachable by jump-graph topology but on no feasible path — dead
    /// code `optimize`'s plain reachability cannot remove.
    UnreachableCode,
    /// A conditional that always goes the same way given prior
    /// comparisons; `taken` reports which way.
    DeadBranch {
        /// True if the branch is always taken, false if never.
        taken: bool,
    },
    /// An equality comparison of the syscall-number word against a value
    /// no syscall in the table has.
    OutOfRangeSyscallCmp {
        /// The compared constant.
        value: u32,
        /// The table capacity it exceeds.
        capacity: u32,
    },
    /// A `seccomp_data` load whose result is overwritten before any use
    /// on every path — the filter reads bytes it then ignores.
    DeadLoad {
        /// The loaded byte offset.
        offset: u32,
    },
    /// The filter's decision can depend on the instruction pointer,
    /// which `(nr, args)`-keyed caches like Draco's VAT do not see.
    IpDependentDecision,
    /// A division by a possibly-zero `X` is reachable.
    PossibleDivFault,
    /// A masked compare whose outcome is already decided by a compare
    /// on the same masked field on every path to it — a contradictory
    /// or duplicate compare chain (typically an importer emitting the
    /// same argument test twice, or an unsatisfiable flag combination).
    RedundantMaskedCompare {
        /// The `seccomp_data` byte offset of the field both compares
        /// load.
        offset: u32,
        /// True if the redundant branch is always taken, false if it
        /// always falls through.
        taken: bool,
    },
}

impl LintKind {
    /// The severity class of this finding.
    pub const fn severity(self) -> Severity {
        match self {
            LintKind::UnreachableCode
            | LintKind::DeadBranch { .. }
            | LintKind::OutOfRangeSyscallCmp { .. }
            | LintKind::DeadLoad { .. }
            | LintKind::RedundantMaskedCompare { .. } => Severity::Warning,
            LintKind::IpDependentDecision | LintKind::PossibleDivFault => Severity::Error,
        }
    }
}

/// One lint finding, anchored to an instruction index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lint {
    /// Index of the instruction the finding is about.
    pub at: usize,
    /// What was found.
    pub kind: LintKind,
}

impl core::fmt::Display for Lint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let sev = match self.kind.severity() {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        match self.kind {
            LintKind::UnreachableCode => {
                write!(f, "{sev}: insn {} is on no feasible path", self.at)
            }
            LintKind::DeadBranch { taken } => write!(
                f,
                "{sev}: insn {} is always {}",
                self.at,
                if taken { "taken" } else { "fall-through" }
            ),
            LintKind::OutOfRangeSyscallCmp { value, capacity } => write!(
                f,
                "{sev}: insn {} compares nr against {value}, outside the table (capacity {capacity})",
                self.at
            ),
            LintKind::DeadLoad { offset } => write!(
                f,
                "{sev}: insn {} loads offset {offset} but the value is never used",
                self.at
            ),
            LintKind::IpDependentDecision => write!(
                f,
                "{sev}: insn {} makes the decision depend on the instruction pointer",
                self.at
            ),
            LintKind::PossibleDivFault => write!(
                f,
                "{sev}: insn {} may divide by a zero X at run time",
                self.at
            ),
            LintKind::RedundantMaskedCompare { offset, taken } => write!(
                f,
                "{sev}: insn {} re-compares the field at offset {offset} already decided by a dominating compare (always {})",
                self.at,
                if taken { "taken" } else { "fall-through" }
            ),
        }
    }
}

/// A conditional branch the analysis proved one-sided for *every* input
/// (produced by the unpinned pass, so the fact is input-independent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedBranch {
    /// Instruction index of the conditional.
    pub at: usize,
    /// True if the branch is always taken (rewrite to `Ja(jt)`), false
    /// if never (rewrite to `Ja(jf)`).
    pub taken: bool,
}

// ---------------------------------------------------------------------
// The abstract value.
// ---------------------------------------------------------------------

/// Per-byte-lane taint: which `seccomp_data` bytes each byte of a 32-bit
/// value can depend on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Taint([ByteSet; 4]);

impl Taint {
    const NONE: Taint = Taint([0; 4]);

    fn all(self) -> ByteSet {
        self.0[0] | self.0[1] | self.0[2] | self.0[3]
    }

    fn union(self, other: Taint) -> Taint {
        Taint([
            self.0[0] | other.0[0],
            self.0[1] | other.0[1],
            self.0[2] | other.0[2],
            self.0[3] | other.0[3],
        ])
    }

    /// Carry propagation: result lane `i` depends on lanes `0..=i`
    /// (add/sub/mul-by-constant move information strictly upward).
    fn prefix(self) -> Taint {
        let mut acc = 0;
        let mut out = [0; 4];
        for (lane, slot) in out.iter_mut().enumerate() {
            acc |= self.0[lane];
            *slot = acc;
        }
        Taint(out)
    }

    /// Right-shift propagation: result lane `i` depends on lanes `i..4`.
    fn suffix(self) -> Taint {
        let mut acc = 0;
        let mut out = [0; 4];
        for i in (0..4).rev() {
            acc |= self.0[i];
            out[i] = acc;
        }
        Taint(out)
    }

    /// Every lane depends on everything (division, variable shifts).
    fn spread(self) -> Taint {
        Taint([self.all(); 4])
    }
}

/// The reduced interval × known-bits × taint abstract value.
///
/// Crate-visible so the specializing DAG compiler ([`crate::dag`]) can
/// drive branch decisions through the same domain the verdicts use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct AbsVal {
    pub(crate) lo: u32,
    pub(crate) hi: u32,
    /// Bits whose value is the same for every input reaching this point.
    pub(crate) kmask: u32,
    /// Their values (`kval & !kmask == 0`).
    pub(crate) kval: u32,
    pub(crate) taint: Taint,
    /// `Some(off)`: the value is exactly the `seccomp_data` word at
    /// `off` (used by the syscall-number lint).
    pub(crate) field: Option<u32>,
}

impl AbsVal {
    pub(crate) const fn constant(v: u32) -> AbsVal {
        AbsVal {
            lo: v,
            hi: v,
            kmask: u32::MAX,
            kval: v,
            taint: Taint::NONE,
            field: None,
        }
    }

    pub(crate) fn top() -> AbsVal {
        AbsVal {
            lo: 0,
            hi: u32::MAX,
            kmask: 0,
            kval: 0,
            taint: Taint::NONE,
            field: None,
        }
    }

    /// An unknown `seccomp_data` word: each result byte is tainted by
    /// the corresponding input byte.
    pub(crate) fn load(off: u32) -> AbsVal {
        let mut t = [0; 4];
        for (lane, slot) in t.iter_mut().enumerate() {
            *slot = 1u64 << (off as usize + lane);
        }
        AbsVal {
            taint: Taint(t),
            field: Some(off),
            ..AbsVal::top()
        }
    }

    pub(crate) const fn is_const(&self) -> bool {
        self.lo == self.hi
    }

    /// Bits that can possibly be 1.
    const fn possible_ones(&self) -> u32 {
        self.kval | !self.kmask
    }

    /// Re-establishes the reduced-product invariants; returns `false`
    /// if the value is contradictory (no concrete value satisfies it),
    /// which marks the incoming edge dead.
    fn canonicalize(&mut self) -> bool {
        // Interval bounds implied by the known bits.
        self.lo = self.lo.max(self.kval);
        self.hi = self.hi.min(self.kval | !self.kmask);
        if self.lo > self.hi {
            return false;
        }
        // Known bits implied by the interval: the common high-bit prefix.
        let diff = self.lo ^ self.hi;
        let prefix = if diff == 0 {
            u32::MAX
        } else {
            // All bits above the highest differing bit agree.
            !(u32::MAX >> diff.leading_zeros())
        };
        let add = prefix & !self.kmask;
        self.kmask |= add;
        self.kval |= self.lo & add;
        // A byte whose value is fully known cannot be influenced by any
        // input byte (on the paths reaching here); drop its taint.
        for lane in 0..4 {
            if (self.kmask >> (8 * lane)) & 0xff == 0xff {
                self.taint.0[lane] = 0;
            }
        }
        if self.is_const() {
            self.kmask = u32::MAX;
            self.kval = self.lo;
        }
        true
    }

    /// Least upper bound at a merge point.
    fn join(&mut self, other: &AbsVal) {
        let agree = self.kmask & other.kmask & !(self.kval ^ other.kval);
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        self.kmask = agree;
        self.kval &= agree;
        self.taint = self.taint.union(other.taint);
        if self.field != other.field {
            self.field = None;
        }
        let ok = self.canonicalize();
        debug_assert!(ok, "join of feasible values is feasible");
    }
}

/// Bit length of `v` (position of the highest set bit, plus one).
fn bit_len(v: u32) -> u32 {
    32 - v.leading_zeros()
}

/// Abstract transfer for `a <op> rhs` (both operands abstract; constant
/// operands arrive as singleton values).
pub(crate) fn alu_transfer(op: AluOp, a: &AbsVal, rhs: &AbsVal) -> AbsVal {
    // Constant folding falls out of the per-op cases below, but the
    // fully-known fast path keeps taint exactly empty.
    if a.is_const() && rhs.is_const() && !matches!(op, AluOp::Div if rhs.lo == 0) {
        let v = match op {
            AluOp::Add => a.lo.wrapping_add(rhs.lo),
            AluOp::Sub => a.lo.wrapping_sub(rhs.lo),
            AluOp::Mul => a.lo.wrapping_mul(rhs.lo),
            AluOp::Div => a.lo / rhs.lo,
            AluOp::And => a.lo & rhs.lo,
            AluOp::Or => a.lo | rhs.lo,
            AluOp::Xor => a.lo ^ rhs.lo,
            AluOp::Lsh => a.lo.wrapping_shl(rhs.lo),
            AluOp::Rsh => a.lo.wrapping_shr(rhs.lo),
        };
        return AbsVal::constant(v);
    }
    let mut out = AbsVal::top();
    out.taint = a.taint.union(rhs.taint);
    match op {
        AluOp::Add => {
            if let (Some(lo), Some(hi)) = (a.lo.checked_add(rhs.lo), a.hi.checked_add(rhs.hi)) {
                out.lo = lo;
                out.hi = hi;
            }
            out.taint = a.taint.union(rhs.taint).prefix();
        }
        AluOp::Sub => {
            if a.lo >= rhs.hi {
                out.lo = a.lo - rhs.hi;
                out.hi = a.hi - rhs.lo;
            }
            out.taint = a.taint.union(rhs.taint).prefix();
        }
        AluOp::Mul => {
            if let Some(hi) = a.hi.checked_mul(rhs.hi) {
                out.lo = a.lo.wrapping_mul(rhs.lo);
                out.hi = hi;
            }
            out.taint = if rhs.is_const() {
                a.taint.prefix()
            } else {
                a.taint.union(rhs.taint).spread()
            };
        }
        AluOp::Div => {
            // rhs == 0 faults at run time; the caller handles that. For
            // the value domain, divide by the smallest possible nonzero
            // divisor for the high bound.
            let div_lo = rhs.lo.max(1);
            out.lo = a.lo / rhs.hi.max(1);
            out.hi = a.hi / div_lo;
            out.taint = a.taint.union(rhs.taint).spread();
        }
        AluOp::And => {
            out.kmask = (a.kmask & rhs.kmask)
                | (a.kmask & !a.kval)
                | (rhs.kmask & !rhs.kval);
            out.kval = a.kval & rhs.kval;
            out.hi = a.hi.min(rhs.hi);
        }
        AluOp::Or => {
            out.kmask =
                (a.kmask & rhs.kmask) | (a.kmask & a.kval) | (rhs.kmask & rhs.kval);
            out.kval = (a.kval | rhs.kval) & out.kmask;
            out.lo = a.lo.max(rhs.lo);
            let bits = bit_len(a.hi).max(bit_len(rhs.hi));
            out.hi = if bits >= 32 { u32::MAX } else { (1 << bits) - 1 };
        }
        AluOp::Xor => {
            out.kmask = a.kmask & rhs.kmask;
            out.kval = (a.kval ^ rhs.kval) & out.kmask;
            let bits = bit_len(a.hi).max(bit_len(rhs.hi));
            out.hi = if bits >= 32 { u32::MAX } else { (1 << bits) - 1 };
        }
        AluOp::Lsh => {
            if rhs.is_const() {
                // Immediate shifts < 32 are enforced by the validator;
                // a constant-valued X register is not, and the VM masks
                // it mod 32 (`wrapping_shl`).
                let k = rhs.lo & 31;
                out.kmask = (a.kmask << k) | ((1u32 << k) - 1);
                out.kval = a.kval << k;
                if a.hi <= u32::MAX >> k {
                    out.lo = a.lo << k;
                    out.hi = a.hi << k;
                }
                out.taint = if k.is_multiple_of(8) {
                    let s = (k / 8) as usize;
                    let mut t = [0; 4];
                    t[s..4].copy_from_slice(&a.taint.0[..4 - s]);
                    Taint(t)
                } else {
                    a.taint.prefix()
                };
            } else {
                // The VM masks variable shifts mod 32 (`wrapping_shl`).
                out.taint = a.taint.union(rhs.taint).spread();
            }
        }
        AluOp::Rsh => {
            if rhs.is_const() {
                let k = rhs.lo & 31;
                out.kmask = (a.kmask >> k) | !(u32::MAX >> k);
                out.kval = a.kval >> k;
                out.lo = a.lo >> k;
                out.hi = a.hi >> k;
                out.taint = if k.is_multiple_of(8) {
                    let s = (k / 8) as usize;
                    let mut t = [0; 4];
                    t[..4 - s].copy_from_slice(&a.taint.0[s..4]);
                    Taint(t)
                } else {
                    a.taint.suffix()
                };
            } else {
                out.taint = a.taint.union(rhs.taint).spread();
            }
        }
    }
    let ok = out.canonicalize();
    debug_assert!(ok, "ALU transfer of feasible inputs is feasible");
    out
}

// ---------------------------------------------------------------------
// Branch evaluation and refinement.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Tri {
    True,
    False,
    Maybe,
}

pub(crate) fn eval_cond(cond: Cond, a: &AbsVal, rhs: &AbsVal) -> Tri {
    match cond {
        Cond::Jeq => {
            if a.is_const() && rhs.is_const() && a.lo == rhs.lo {
                Tri::True
            } else if a.hi < rhs.lo
                || a.lo > rhs.hi
                || (a.kmask & rhs.kmask) & (a.kval ^ rhs.kval) != 0
            {
                Tri::False
            } else {
                Tri::Maybe
            }
        }
        Cond::Jgt => {
            if a.lo > rhs.hi {
                Tri::True
            } else if a.hi <= rhs.lo {
                Tri::False
            } else {
                Tri::Maybe
            }
        }
        Cond::Jge => {
            if a.lo >= rhs.hi {
                Tri::True
            } else if a.hi < rhs.lo {
                Tri::False
            } else {
                Tri::Maybe
            }
        }
        Cond::Jset => {
            if a.kval & rhs.kval != 0 {
                Tri::True
            } else if a.possible_ones() & rhs.possible_ones() == 0 {
                Tri::False
            } else {
                Tri::Maybe
            }
        }
    }
}

/// Refines `a` along one edge of a conditional against a *constant* `k`.
/// Returns `None` if the refinement is contradictory (the edge is dead
/// even though plain evaluation could not decide the branch).
pub(crate) fn refine(cond: Cond, a: &AbsVal, k: u32, taken: bool) -> Option<AbsVal> {
    let mut v = *a;
    match (cond, taken) {
        (Cond::Jeq, true) => {
            // On this path A is exactly k; its bytes are no longer
            // input-dependent (path dependence is control taint).
            v = AbsVal::constant(k);
        }
        (Cond::Jeq, false) => {
            if k == v.lo && k < u32::MAX {
                v.lo = k + 1;
            }
            if k == v.hi && k > 0 {
                v.hi = k - 1;
            }
        }
        (Cond::Jgt, true) => v.lo = v.lo.max(k.checked_add(1)?),
        (Cond::Jgt, false) => v.hi = v.hi.min(k),
        (Cond::Jge, true) => v.lo = v.lo.max(k),
        (Cond::Jge, false) => v.hi = v.hi.min(k.checked_sub(1)?),
        (Cond::Jset, true) => {}
        (Cond::Jset, false) => {
            // A & k == 0: every bit of k is known zero in A.
            if v.kmask & k & v.kval != 0 {
                return None;
            }
            v.kmask |= k;
            v.kval &= !k;
        }
    }
    v.canonicalize().then_some(v)
}

// ---------------------------------------------------------------------
// The machine state and the DAG pass.
// ---------------------------------------------------------------------

/// Scratch memory, lazily materialized: `None` means all sixteen slots
/// still hold their VM-initialized constant zero. Compiled whitelists
/// never touch scratch, so their states stay two registers wide.
#[derive(Clone, Debug)]
struct Mem(Option<Box<[AbsVal; MEMWORDS]>>);

impl Mem {
    fn get(&self, i: usize) -> AbsVal {
        match &self.0 {
            Some(slots) => slots[i],
            None => AbsVal::constant(0),
        }
    }

    fn set(&mut self, i: usize, v: AbsVal) {
        self.0
            .get_or_insert_with(|| Box::new([AbsVal::constant(0); MEMWORDS]))[i] = v;
    }

    fn join(&mut self, other: &Mem) {
        match (&mut self.0, &other.0) {
            (None, None) => {}
            _ => {
                let slots = self
                    .0
                    .get_or_insert_with(|| Box::new([AbsVal::constant(0); MEMWORDS]));
                for (i, slot) in slots.iter_mut().enumerate() {
                    slot.join(&other.get(i));
                }
            }
        }
    }
}

#[derive(Clone, Debug)]
struct State {
    a: AbsVal,
    x: AbsVal,
    mem: Mem,
    /// Input bytes that influenced which path reached this point.
    ctrl: ByteSet,
}

impl State {
    fn entry() -> State {
        State {
            a: AbsVal::constant(0),
            x: AbsVal::constant(0),
            mem: Mem(None),
            ctrl: 0,
        }
    }

    fn join(&mut self, other: &State) {
        self.a.join(&other.a);
        self.x.join(&other.x);
        self.mem.join(&other.mem);
        self.ctrl |= other.ctrl;
    }
}

/// Everything one abstract pass learns about a program.
#[derive(Clone, Debug)]
struct PassFacts {
    /// Abstractly reachable instructions.
    reached: Vec<bool>,
    /// Per conditional: was the taken / fall-through edge ever live?
    jt_live: Vec<bool>,
    jf_live: Vec<bool>,
    /// Distinct constant return actions observed.
    actions: Vec<SeccompAction>,
    /// A `RetA` with a non-constant accumulator was reachable.
    unknown_ret: bool,
    /// Union over reachable returns of control + returned-value taint.
    decision_taint: ByteSet,
    /// Instructions where a division by a possibly-zero `X` is reachable.
    div_faults: Vec<usize>,
    /// `Jeq` comparisons of the `nr` word against a constant (for the
    /// out-of-range lint): `(insn index, constant)`.
    nr_eq_cmps: Vec<(usize, u32)>,
}

/// Runs the one-pass DAG analysis under `cfg`.
fn run_pass(program: &Program, cfg: &AnalysisConfig) -> PassFacts {
    let insns = program.insns();
    let n = insns.len();
    let mut states: Vec<Option<State>> = vec![None; n];
    states[0] = Some(State::entry());
    let mut facts = PassFacts {
        reached: vec![false; n],
        jt_live: vec![false; n],
        jf_live: vec![false; n],
        actions: Vec::new(),
        unknown_ret: false,
        decision_taint: 0,
        div_faults: Vec::new(),
        nr_eq_cmps: Vec::new(),
    };

    for at in 0..n {
        // Take (don't clone) this instruction's state; successors are
        // strictly later, so it is never needed again.
        let Some(mut st) = states[at].take() else {
            continue;
        };
        facts.reached[at] = true;
        let seed = |states: &mut Vec<Option<State>>, target: usize, st: State| {
            match &mut states[target] {
                Some(existing) => existing.join(&st),
                slot @ None => *slot = Some(st),
            }
        };
        match insns[at] {
            Insn::LdAbs(off) => {
                st.a = match off {
                    0 if cfg.nr.is_some() => AbsVal {
                        field: Some(0),
                        ..AbsVal::constant(cfg.nr.unwrap())
                    },
                    4 if cfg.arch.is_some() => AbsVal {
                        field: Some(4),
                        ..AbsVal::constant(cfg.arch.unwrap())
                    },
                    _ => AbsVal::load(off),
                };
                seed(&mut states, at + 1, st);
            }
            Insn::LdImm(k) => {
                st.a = AbsVal::constant(k);
                seed(&mut states, at + 1, st);
            }
            Insn::LdMem(i) => {
                st.a = st.mem.get(i as usize);
                seed(&mut states, at + 1, st);
            }
            Insn::LdLen => {
                st.a = AbsVal::constant(SECCOMP_DATA_SIZE);
                seed(&mut states, at + 1, st);
            }
            Insn::LdxImm(k) => {
                st.x = AbsVal::constant(k);
                seed(&mut states, at + 1, st);
            }
            Insn::LdxMem(i) => {
                st.x = st.mem.get(i as usize);
                seed(&mut states, at + 1, st);
            }
            Insn::LdxLen => {
                st.x = AbsVal::constant(SECCOMP_DATA_SIZE);
                seed(&mut states, at + 1, st);
            }
            Insn::St(i) => {
                st.mem.set(i as usize, st.a);
                seed(&mut states, at + 1, st);
            }
            Insn::Stx(i) => {
                st.mem.set(i as usize, st.x);
                seed(&mut states, at + 1, st);
            }
            Insn::Alu(op, src) => {
                let rhs = match src {
                    Src::K(k) => AbsVal::constant(k),
                    Src::X => st.x,
                };
                if matches!(op, AluOp::Div) && rhs.lo == 0 {
                    // rhs is X here: a constant-zero divisor is rejected
                    // at validation. The fault path contributes no
                    // state; the non-fault path knows X != 0.
                    facts.div_faults.push(at);
                }
                st.a = alu_transfer(op, &st.a, &rhs);
                if matches!(op, AluOp::Div | AluOp::Mul) || matches!(src, Src::X) {
                    st.a.field = None;
                } else {
                    // Ld field symbolism survives only the identity ops.
                    let identity = matches!(
                        (op, src),
                        (AluOp::Add | AluOp::Sub | AluOp::Or | AluOp::Xor, Src::K(0))
                            | (AluOp::Lsh | AluOp::Rsh, Src::K(0))
                    );
                    if !identity {
                        st.a.field = None;
                    }
                }
                seed(&mut states, at + 1, st);
            }
            Insn::Neg => {
                st.a = if st.a.is_const() {
                    AbsVal::constant(st.a.lo.wrapping_neg())
                } else {
                    AbsVal {
                        taint: st.a.taint.prefix(),
                        ..AbsVal::top()
                    }
                };
                seed(&mut states, at + 1, st);
            }
            Insn::Ja(off) => {
                seed(&mut states, at + 1 + off as usize, st);
            }
            Insn::Jmp { cond, src, jt, jf } => {
                let rhs = match src {
                    Src::K(k) => AbsVal::constant(k),
                    Src::X => st.x,
                };
                if cond == Cond::Jeq && st.a.field == Some(0) && rhs.is_const() {
                    facts.nr_eq_cmps.push((at, rhs.lo));
                }
                let verdict = eval_cond(cond, &st.a, &rhs);
                let cond_taint = st.a.taint.all() | rhs.taint.all();
                let t_target = at + 1 + jt as usize;
                let f_target = at + 1 + jf as usize;
                for (taken, target, live) in [
                    (true, t_target, &mut facts.jt_live[at]),
                    (false, f_target, &mut facts.jf_live[at]),
                ] {
                    let ruled_out = match verdict {
                        Tri::True => !taken,
                        Tri::False => taken,
                        Tri::Maybe => false,
                    };
                    if ruled_out {
                        continue;
                    }
                    let mut edge = st.clone();
                    if verdict == Tri::Maybe {
                        // The branch direction leaks the operands.
                        edge.ctrl |= cond_taint;
                    }
                    if rhs.is_const() {
                        match refine(cond, &st.a, rhs.lo, taken) {
                            Some(refined) => edge.a = refined,
                            None => continue, // contradictory: edge dead
                        }
                    }
                    *live = true;
                    seed(&mut states, target, edge);
                }
            }
            Insn::RetK(k) => {
                let action = SeccompAction::decode(k);
                if !facts.actions.contains(&action) {
                    facts.actions.push(action);
                }
                facts.decision_taint |= st.ctrl;
            }
            Insn::RetA => {
                if st.a.is_const() {
                    let action = SeccompAction::decode(st.a.lo);
                    if !facts.actions.contains(&action) {
                        facts.actions.push(action);
                    }
                } else {
                    facts.unknown_ret = true;
                }
                facts.decision_taint |= st.ctrl | st.a.taint.all();
            }
            Insn::Tax => {
                st.x = st.a;
                seed(&mut states, at + 1, st);
            }
            Insn::Txa => {
                st.a = st.x;
                seed(&mut states, at + 1, st);
            }
        }
    }
    facts
}

impl PassFacts {
    /// Argument bytes of the decision taint, as an SPT mask.
    fn arg_mask(&self) -> ArgBitmask {
        ArgBitmask::from_raw((self.decision_taint >> ARG_BYTE_BASE) & FULL_ARG_MASK)
    }

    fn ip_dependent(&self) -> bool {
        self.decision_taint & IP_BYTES != 0
    }

    fn classify(&self) -> SyscallVerdict {
        let may_fault = !self.div_faults.is_empty();
        if may_fault {
            // A reachable fault is not a cacheable decision: degrade to
            // the fully conservative answer.
            return SyscallVerdict {
                verdict: Verdict::ArgDependent,
                mask: ArgBitmask::from_raw(FULL_ARG_MASK),
                ip_dependent: true,
                may_fault,
            };
        }
        let ip_dependent = self.ip_dependent();
        if !self.unknown_ret {
            if let [action] = self.actions[..] {
                let verdict = if action == SeccompAction::Allow {
                    Verdict::AlwaysAllow
                } else {
                    Verdict::AlwaysDeny(action)
                };
                return SyscallVerdict {
                    verdict,
                    mask: ArgBitmask::EMPTY,
                    ip_dependent,
                    may_fault,
                };
            }
        }
        SyscallVerdict {
            verdict: Verdict::ArgDependent,
            mask: self.arg_mask(),
            ip_dependent,
            may_fault,
        }
    }
}

// ---------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------

/// Classifies the filter's decision for one syscall number, with the
/// architecture word pinned to [`crate::AUDIT_ARCH_X86_64`] (the only
/// architecture the checker's `SeccompData` constructors produce).
pub fn analyze_syscall(program: &Program, nr: u32) -> SyscallVerdict {
    let cfg = AnalysisConfig {
        nr: Some(nr),
        arch: Some(crate::AUDIT_ARCH_X86_64),
    };
    run_pass(program, &cfg).classify()
}

/// Classifies the decision under an explicit configuration.
pub fn analyze_with(program: &Program, cfg: &AnalysisConfig) -> SyscallVerdict {
    run_pass(program, cfg).classify()
}

/// Conditional branches proven one-sided for every input (nothing
/// pinned), for [`crate::optimize_analyzed`]'s dead-branch rewriting.
pub fn resolved_branches(program: &Program) -> Vec<ResolvedBranch> {
    let facts = run_pass(program, &AnalysisConfig::default());
    let mut out = Vec::new();
    for (at, insn) in program.insns().iter().enumerate() {
        if !facts.reached[at] || !matches!(insn, Insn::Jmp { .. }) {
            continue;
        }
        match (facts.jt_live[at], facts.jf_live[at]) {
            (true, false) => out.push(ResolvedBranch { at, taken: true }),
            (false, true) => out.push(ResolvedBranch { at, taken: false }),
            _ => {}
        }
    }
    out
}

/// Jump-graph reachability (exactly what `optimize`'s DCE uses).
fn graph_reachable(insns: &[Insn]) -> Vec<bool> {
    let mut reachable = vec![false; insns.len()];
    let mut stack = vec![0usize];
    while let Some(at) = stack.pop() {
        if at >= insns.len() || reachable[at] {
            continue;
        }
        reachable[at] = true;
        match insns[at] {
            Insn::Ja(off) => stack.push(at + 1 + off as usize),
            Insn::Jmp { jt, jf, .. } => {
                stack.push(at + 1 + jt as usize);
                stack.push(at + 1 + jf as usize);
            }
            Insn::RetK(_) | Insn::RetA => {}
            _ => stack.push(at + 1),
        }
    }
    reachable
}

/// Backward liveness of `A` over the DAG; returns, per instruction, the
/// set of `LdAbs` whose loaded value is dead on every path.
fn dead_loads(insns: &[Insn], reached: &[bool]) -> Vec<usize> {
    const A: u32 = 1;
    const X: u32 = 2;
    let mem_bit = |i: u32| 4u32 << i;
    let n = insns.len();
    // live[at] = registers/slots live on entry to `at`.
    let mut live = vec![0u32; n + 1];
    let mut dead = Vec::new();
    for at in (0..n).rev() {
        let succ = |off: usize| live[(at + 1 + off).min(n)];
        let out = match insns[at] {
            Insn::Ja(off) => succ(off as usize),
            Insn::Jmp { jt, jf, .. } => succ(jt as usize) | succ(jf as usize),
            Insn::RetK(_) | Insn::RetA => 0,
            _ => succ(0),
        };
        live[at] = match insns[at] {
            Insn::LdAbs(off) => {
                if reached[at] && out & A == 0 {
                    dead.push(at);
                    let _ = off;
                }
                out & !A
            }
            Insn::LdImm(_) | Insn::LdLen => out & !A,
            Insn::LdMem(i) => (out & !A) | mem_bit(i),
            Insn::LdxImm(_) | Insn::LdxLen => out & !X,
            Insn::LdxMem(i) => (out & !X) | mem_bit(i),
            Insn::St(i) => (out & !mem_bit(i)) | A,
            Insn::Stx(i) => (out & !mem_bit(i)) | X,
            Insn::Alu(_, Src::X) => out | A | X,
            Insn::Alu(_, Src::K(_)) | Insn::Neg => out | A,
            Insn::Ja(_) => out,
            Insn::Jmp { src: Src::X, .. } => out | A | X,
            Insn::Jmp { .. } => out | A,
            Insn::RetK(_) => 0,
            Insn::RetA => A,
            Insn::Tax => (out & !X) | A,
            Insn::Txa => (out & !A) | X,
        };
    }
    dead.reverse();
    dead
}

/// Does an established compare outcome decide a later compare on the
/// *same* masked field? `(fc, fk, f_taken)` is the dominating fact —
/// "`cond fc` against `fk` went `f_taken`" — and `(cond, k)` the
/// question. Returns the forced branch direction, or `None` when the
/// fact leaves the question open.
fn fact_decides(fc: Cond, fk: u32, f_taken: bool, cond: Cond, k: u32) -> Option<bool> {
    // The exact same test repeats: its outcome is already fixed.
    if fc == cond && fk == k {
        return Some(f_taken);
    }
    match (fc, f_taken) {
        // v == fk: every compare against a constant is decided.
        (Cond::Jeq, true) => Some(match cond {
            Cond::Jeq => fk == k,
            Cond::Jgt => fk > k,
            Cond::Jge => fk >= k,
            Cond::Jset => fk & k != 0,
        }),
        // v != fk.
        (Cond::Jeq, false) => (cond == Cond::Jeq && k == fk).then_some(false),
        // v > fk.
        (Cond::Jgt, true) => match cond {
            Cond::Jeq if k <= fk => Some(false),
            Cond::Jgt if k <= fk => Some(true),
            Cond::Jge if k <= fk.saturating_add(1) => Some(true),
            _ => None,
        },
        // v <= fk.
        (Cond::Jgt, false) => match cond {
            Cond::Jeq | Cond::Jge if k > fk => Some(false),
            Cond::Jgt if k >= fk => Some(false),
            _ => None,
        },
        // v >= fk.
        (Cond::Jge, true) => match cond {
            Cond::Jeq if k < fk => Some(false),
            Cond::Jgt if k < fk => Some(true),
            Cond::Jge if k <= fk => Some(true),
            _ => None,
        },
        // v < fk.
        (Cond::Jge, false) => match cond {
            Cond::Jeq | Cond::Jge if k >= fk => Some(false),
            Cond::Jgt if k >= fk.saturating_sub(1) => Some(false),
            _ => None,
        },
        // v & fk != 0 (weak: some bit of fk is set).
        (Cond::Jset, true) => match cond {
            Cond::Jeq if k == 0 => Some(false),
            Cond::Jset if fk.count_ones() == 1 && k & fk != 0 => Some(true),
            _ => None,
        },
        // v & fk == 0 (strong: every bit of fk is clear).
        (Cond::Jset, false) => match cond {
            Cond::Jset if k & !fk == 0 => Some(false),
            Cond::Jeq if k & fk != 0 => Some(false),
            _ => None,
        },
    }
}

/// Forward must-analysis attributing decided branches to a dominating
/// compare on the same masked `seccomp_data` field: returns, per such
/// conditional, `(insn index, field offset, always-taken)`.
///
/// The accumulator, `X`, and scratch slots carry a provenance — "this
/// value is `data[off..off+4] & mask`" — and every path records the
/// constant compares already executed on such values. `seccomp_data`
/// is immutable during one evaluation, so reloading the field yields
/// the same word, and a compare whose `(offset, mask)` provenance
/// matches a fact held on *every* path to it (set intersection at
/// joins) is decided by [`fact_decides`] even where the interval
/// domain of [`run_pass`] lost the refinement across the reload.
fn redundant_masked_compares(insns: &[Insn]) -> Vec<(usize, u32, bool)> {
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Prov {
        Field { off: u32, mask: u32 },
        Opaque,
    }
    #[derive(Clone, Copy, PartialEq, Eq)]
    struct CmpFact {
        off: u32,
        mask: u32,
        cond: Cond,
        k: u32,
        taken: bool,
    }
    #[derive(Clone)]
    struct ProvState {
        a: Prov,
        x: Prov,
        mem: [Prov; MEMWORDS],
        facts: Vec<CmpFact>,
    }
    impl ProvState {
        fn join(&mut self, other: &ProvState) {
            fn meet(a: &mut Prov, b: Prov) {
                if *a != b {
                    *a = Prov::Opaque;
                }
            }
            meet(&mut self.a, other.a);
            meet(&mut self.x, other.x);
            for (s, o) in self.mem.iter_mut().zip(other.mem) {
                meet(s, o);
            }
            self.facts.retain(|f| other.facts.contains(f));
        }
    }

    let n = insns.len();
    let mut states: Vec<Option<ProvState>> = vec![None; n];
    states[0] = Some(ProvState {
        a: Prov::Opaque,
        x: Prov::Opaque,
        mem: [Prov::Opaque; MEMWORDS],
        facts: Vec::new(),
    });
    let mut out = Vec::new();
    for at in 0..n {
        let Some(mut st) = states[at].take() else {
            continue;
        };
        let seed = |states: &mut Vec<Option<ProvState>>, target: usize, st: ProvState| {
            match &mut states[target] {
                Some(existing) => existing.join(&st),
                slot @ None => *slot = Some(st),
            }
        };
        match insns[at] {
            Insn::LdAbs(off) => {
                st.a = Prov::Field {
                    off,
                    mask: u32::MAX,
                };
                seed(&mut states, at + 1, st);
            }
            Insn::LdImm(_) | Insn::LdLen => {
                st.a = Prov::Opaque;
                seed(&mut states, at + 1, st);
            }
            Insn::LdMem(i) => {
                st.a = st.mem[i as usize];
                seed(&mut states, at + 1, st);
            }
            Insn::LdxImm(_) | Insn::LdxLen => {
                st.x = Prov::Opaque;
                seed(&mut states, at + 1, st);
            }
            Insn::LdxMem(i) => {
                st.x = st.mem[i as usize];
                seed(&mut states, at + 1, st);
            }
            Insn::St(i) => {
                st.mem[i as usize] = st.a;
                seed(&mut states, at + 1, st);
            }
            Insn::Stx(i) => {
                st.mem[i as usize] = st.x;
                seed(&mut states, at + 1, st);
            }
            Insn::Alu(op, src) => {
                st.a = match (op, src, st.a) {
                    // Narrowing the mask keeps the field provenance:
                    // (word & m) & k == word & (m & k).
                    (AluOp::And, Src::K(k), Prov::Field { off, mask }) => Prov::Field {
                        off,
                        mask: mask & k,
                    },
                    // Identity ops leave the value untouched.
                    (
                        AluOp::Add | AluOp::Sub | AluOp::Or | AluOp::Xor | AluOp::Lsh | AluOp::Rsh,
                        Src::K(0),
                        p,
                    ) => p,
                    _ => Prov::Opaque,
                };
                seed(&mut states, at + 1, st);
            }
            Insn::Neg => {
                st.a = Prov::Opaque;
                seed(&mut states, at + 1, st);
            }
            Insn::Ja(off) => {
                seed(&mut states, at + 1 + off as usize, st);
            }
            Insn::Jmp { cond, src, jt, jf } => {
                let field = match (st.a, src) {
                    (Prov::Field { off, mask }, Src::K(k)) => Some((off, mask, k)),
                    _ => None,
                };
                let decided = field.and_then(|(off, mask, k)| {
                    st.facts
                        .iter()
                        .filter(|f| f.off == off && f.mask == mask)
                        .find_map(|f| fact_decides(f.cond, f.k, f.taken, cond, k))
                        .map(|taken| (off, taken))
                });
                if let Some((off, taken)) = decided {
                    out.push((at, off, taken));
                }
                for (taken, target) in [(true, at + 1 + jt as usize), (false, at + 1 + jf as usize)]
                {
                    if let Some((_, forced)) = decided {
                        if forced != taken {
                            continue;
                        }
                    }
                    let mut edge = st.clone();
                    if let Some((off, mask, k)) = field {
                        let fact = CmpFact {
                            off,
                            mask,
                            cond,
                            k,
                            taken,
                        };
                        if !edge.facts.contains(&fact) {
                            edge.facts.push(fact);
                        }
                    }
                    seed(&mut states, target, edge);
                }
            }
            Insn::RetK(_) | Insn::RetA => {}
            Insn::Tax => {
                st.x = st.a;
                seed(&mut states, at + 1, st);
            }
            Insn::Txa => {
                st.a = st.x;
                seed(&mut states, at + 1, st);
            }
        }
    }
    out
}

/// Lints a program with nothing pinned, so every finding holds for all
/// inputs. `table_capacity` (highest syscall number + 1) powers the
/// out-of-range comparison lint; pass 0 to disable it.
pub fn lint_program(program: &Program, table_capacity: u32) -> Vec<Lint> {
    let insns = program.insns();
    let facts = run_pass(program, &AnalysisConfig::default());
    let graph = graph_reachable(insns);
    let redundant = redundant_masked_compares(insns);
    let mut lints = Vec::new();
    for (at, insn) in insns.iter().enumerate() {
        if graph[at] && !facts.reached[at] {
            lints.push(Lint {
                at,
                kind: LintKind::UnreachableCode,
            });
            continue;
        }
        if facts.reached[at] && matches!(insn, Insn::Jmp { .. }) {
            // A branch attributable to a dominating compare on the same
            // masked field gets the specific lint; the generic
            // dead-branch lint covers the rest.
            if let Some(&(_, offset, taken)) =
                redundant.iter().find(|&&(r_at, _, _)| r_at == at)
            {
                lints.push(Lint {
                    at,
                    kind: LintKind::RedundantMaskedCompare { offset, taken },
                });
                continue;
            }
            match (facts.jt_live[at], facts.jf_live[at]) {
                (true, false) => lints.push(Lint {
                    at,
                    kind: LintKind::DeadBranch { taken: true },
                }),
                (false, true) => lints.push(Lint {
                    at,
                    kind: LintKind::DeadBranch { taken: false },
                }),
                _ => {}
            }
        }
    }
    if table_capacity > 0 {
        for &(at, value) in &facts.nr_eq_cmps {
            if value >= table_capacity {
                lints.push(Lint {
                    at,
                    kind: LintKind::OutOfRangeSyscallCmp {
                        value,
                        capacity: table_capacity,
                    },
                });
            }
        }
    }
    for at in dead_loads(insns, &facts.reached) {
        let Insn::LdAbs(offset) = insns[at] else {
            unreachable!("dead_loads only reports LdAbs")
        };
        lints.push(Lint {
            at,
            kind: LintKind::DeadLoad { offset },
        });
    }
    for &at in &facts.div_faults {
        lints.push(Lint {
            at,
            kind: LintKind::PossibleDivFault,
        });
    }
    if facts.ip_dependent() {
        // Anchor the finding to the first instruction-pointer load.
        let at = insns
            .iter()
            .position(|i| matches!(i, Insn::LdAbs(8) | Insn::LdAbs(12)))
            .unwrap_or(0);
        lints.push(Lint {
            at,
            kind: LintKind::IpDependentDecision,
        });
    }
    lints.sort_by_key(|l| l.at);
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interpreter, ProgramBuilder, SeccompData};

    fn prog(insns: Vec<Insn>) -> Program {
        Program::new(insns).expect("valid program")
    }

    fn jeq(k: u32, jt: u8, jf: u8) -> Insn {
        Insn::Jmp {
            cond: Cond::Jeq,
            src: Src::K(k),
            jt,
            jf,
        }
    }

    const ALLOW: u32 = 0x7fff_0000;
    const KILL: u32 = 0x8000_0000;

    #[test]
    fn oversized_constant_x_shift_matches_vm() {
        // A constant X >= 32 reaches the shift transfer (the validator
        // only caps immediate shifts); the VM masks it mod 32, and the
        // abstract transfer used to panic on the raw shift instead.
        for (op, x, a, want) in [
            (AluOp::Lsh, 40u32, 3u32, 3u32 << 8),
            (AluOp::Rsh, 33, 0x300, 0x300 >> 1),
        ] {
            let p = prog(vec![
                Insn::LdxImm(x),
                Insn::LdImm(a),
                Insn::Alu(op, Src::X),
                Insn::RetA,
            ]);
            let v = analyze_syscall(&p, 39);
            assert_eq!(v.verdict, Verdict::AlwaysDeny(SeccompAction::decode(want)));
            let out = Interpreter::new(&p)
                .run(&SeccompData::for_syscall(39, &[0; 6]))
                .unwrap();
            assert_eq!(out.raw, want);
        }
    }

    #[test]
    fn constant_allow_is_always_allow() {
        let p = prog(vec![Insn::RetK(ALLOW)]);
        let v = analyze_syscall(&p, 39);
        assert_eq!(v.verdict, Verdict::AlwaysAllow);
        assert_eq!(v.mask, ArgBitmask::EMPTY);
        assert!(!v.ip_dependent && !v.may_fault);
    }

    #[test]
    fn nr_whitelist_resolves_per_syscall() {
        // allow getpid(39), kill everything else.
        let p = prog(vec![
            Insn::LdAbs(0),
            jeq(39, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        assert_eq!(analyze_syscall(&p, 39).verdict, Verdict::AlwaysAllow);
        assert_eq!(
            analyze_syscall(&p, 40).verdict,
            Verdict::AlwaysDeny(SeccompAction::KillProcess)
        );
    }

    #[test]
    fn arg_compare_yields_exact_byte_mask() {
        // allow iff arg0's low word == 0xffff_ffff.
        let p = prog(vec![
            Insn::LdAbs(SeccompData::off_arg_lo(0)),
            jeq(0xffff_ffff, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let v = analyze_syscall(&p, 135);
        assert_eq!(v.verdict, Verdict::ArgDependent);
        assert_eq!(v.mask, ArgBitmask::from_raw(0xf), "arg0 bytes 0..4");
    }

    #[test]
    fn and_mask_discharges_untested_bytes() {
        // Compare only byte 1 of arg2's low word.
        let p = prog(vec![
            Insn::LdAbs(SeccompData::off_arg_lo(2)),
            Insn::Alu(AluOp::And, Src::K(0x0000_ff00)),
            jeq(0x1200, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let v = analyze_syscall(&p, 1);
        assert_eq!(v.verdict, Verdict::ArgDependent);
        // arg2 byte 1 = bitmask bit 2*8 + 1.
        assert_eq!(v.mask, ArgBitmask::from_raw(1 << 17));
    }

    #[test]
    fn arch_guard_is_resolved_in_verdict_runs() {
        let p = prog(vec![
            Insn::LdAbs(4),
            jeq(crate::AUDIT_ARCH_X86_64, 1, 0),
            Insn::RetK(KILL),
            Insn::LdAbs(0),
            jeq(0, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        assert_eq!(analyze_syscall(&p, 0).verdict, Verdict::AlwaysAllow);
        // ...but stays open in the unpinned lint run: no dead branches.
        assert!(lint_program(&p, 0).is_empty());
    }

    #[test]
    fn ip_dependence_is_flagged() {
        let p = prog(vec![
            Insn::LdAbs(8),
            jeq(0x1234, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let v = analyze_syscall(&p, 0);
        assert!(v.ip_dependent);
        let lints = lint_program(&p, 0);
        assert!(lints
            .iter()
            .any(|l| l.kind == LintKind::IpDependentDecision && l.at == 0));
    }

    #[test]
    fn reta_of_loaded_word_is_conservative() {
        let p = prog(vec![Insn::LdAbs(SeccompData::off_arg_lo(0)), Insn::RetA]);
        let v = analyze_syscall(&p, 0);
        assert_eq!(v.verdict, Verdict::ArgDependent);
        assert_eq!(v.mask, ArgBitmask::from_raw(0xf));
    }

    #[test]
    fn reta_of_constant_classifies() {
        let p = prog(vec![Insn::LdImm(ALLOW), Insn::RetA]);
        assert_eq!(analyze_syscall(&p, 0).verdict, Verdict::AlwaysAllow);
    }

    #[test]
    fn possible_div_fault_degrades() {
        let p = prog(vec![
            Insn::LdAbs(SeccompData::off_arg_lo(0)),
            Insn::Tax,
            Insn::LdImm(100),
            Insn::Alu(AluOp::Div, Src::X),
            Insn::RetA,
        ]);
        let v = analyze_syscall(&p, 0);
        assert!(v.may_fault);
        assert_eq!(v.verdict, Verdict::ArgDependent);
        assert_eq!(v.mask, ArgBitmask::from_raw(FULL_ARG_MASK));
        assert!(lint_program(&p, 0)
            .iter()
            .any(|l| l.kind == LintKind::PossibleDivFault));
    }

    #[test]
    fn div_by_nonzero_x_is_clean() {
        let p = prog(vec![
            Insn::LdxImm(16),
            Insn::LdAbs(SeccompData::off_arg_lo(0)),
            Insn::Alu(AluOp::Div, Src::X),
            jeq(0, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let v = analyze_syscall(&p, 0);
        assert!(!v.may_fault);
        assert!(!lint_program(&p, 0)
            .iter()
            .any(|l| l.kind == LintKind::PossibleDivFault));
    }

    #[test]
    fn dead_branch_after_prior_comparison() {
        // Second test of the same loaded word can never differ.
        let p = prog(vec![
            Insn::LdAbs(0),
            jeq(39, 0, 3), // != 39 → ret kill at 5
            jeq(40, 0, 1), // A == 39 here: never taken
            Insn::RetK(ALLOW),
            Insn::RetK(0xdead_0000),
            Insn::RetK(KILL),
        ]);
        let lints = lint_program(&p, 0);
        // The decided branch is attributed to the dominating compare on
        // the same field rather than reported as a bare dead branch.
        assert!(
            lints.iter().any(|l| l.at == 2
                && l.kind
                    == LintKind::RedundantMaskedCompare {
                        offset: 0,
                        taken: false
                    }),
            "{lints:?}"
        );
        assert!(!lints
            .iter()
            .any(|l| matches!(l.kind, LintKind::DeadBranch { .. })));
        // Its taken-target became infeasible too.
        assert!(lints
            .iter()
            .any(|l| l.at == 3 && l.kind == LintKind::UnreachableCode));
    }

    #[test]
    fn jset_false_edge_proves_bits_zero() {
        let p = prog(vec![
            Insn::LdAbs(SeccompData::off_arg_lo(1)),
            Insn::Jmp {
                cond: Cond::Jset,
                src: Src::K(0xff),
                jt: 2,
                jf: 0,
            },
            // A & 0xff == 0 here; testing equality to 7 is dead.
            jeq(7, 0, 1),
            Insn::RetK(KILL),
            Insn::RetK(ALLOW),
        ]);
        let lints = lint_program(&p, 0);
        assert!(
            lints.iter().any(|l| l.at == 2
                && l.kind
                    == LintKind::RedundantMaskedCompare {
                        offset: SeccompData::off_arg_lo(1),
                        taken: false
                    }),
            "{lints:?}"
        );
    }

    #[test]
    fn duplicate_masked_compare_survives_a_reload() {
        // The same byte of arg0 is masked and tested twice, with a
        // reload in between. The interval domain loses the refinement
        // across the reload (both edges of insn 5 stay live for it),
        // but the field-provenance pass knows seccomp_data is
        // immutable and proves the repeat always taken.
        let off = SeccompData::off_arg_lo(0);
        let p = prog(vec![
            Insn::LdAbs(off),
            Insn::Alu(AluOp::And, Src::K(0xff)),
            jeq(5, 0, 4), // != 5 → kill at 7
            Insn::LdAbs(off),
            Insn::Alu(AluOp::And, Src::K(0xff)),
            jeq(5, 0, 1), // same test again: always taken
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let lints = lint_program(&p, 0);
        assert!(
            lints.iter().any(|l| l.at == 5
                && l.kind
                    == LintKind::RedundantMaskedCompare {
                        offset: off,
                        taken: true
                    }),
            "{lints:?}"
        );
    }

    #[test]
    fn contradictory_masked_compare_chain_is_flagged() {
        // arg1 == 3 was established upstream; == 4 can never hold.
        let off = SeccompData::off_arg_lo(1);
        let p = prog(vec![
            Insn::LdAbs(off),
            jeq(3, 0, 3), // != 3 → kill
            Insn::LdAbs(off),
            jeq(4, 0, 1), // contradicts the dominating == 3
            Insn::RetK(0xdead_0000),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let lints = lint_program(&p, 0);
        assert!(
            lints.iter().any(|l| l.at == 3
                && l.kind
                    == LintKind::RedundantMaskedCompare {
                        offset: off,
                        taken: false
                    }),
            "{lints:?}"
        );
    }

    #[test]
    fn compares_on_distinct_fields_are_not_redundant() {
        let p = prog(vec![
            Insn::LdAbs(SeccompData::off_arg_lo(0)),
            jeq(5, 0, 3),
            Insn::LdAbs(SeccompData::off_arg_lo(1)), // different field
            jeq(5, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let lints = lint_program(&p, 0);
        assert!(
            !lints
                .iter()
                .any(|l| matches!(l.kind, LintKind::RedundantMaskedCompare { .. })),
            "{lints:?}"
        );
    }

    #[test]
    fn distinct_masks_on_one_field_are_not_redundant() {
        // Same word, different masks: the first test says nothing about
        // the second derived value.
        let off = SeccompData::off_arg_lo(2);
        let p = prog(vec![
            Insn::LdAbs(off),
            Insn::Alu(AluOp::And, Src::K(0x00ff)),
            jeq(5, 0, 4),
            Insn::LdAbs(off),
            Insn::Alu(AluOp::And, Src::K(0xff00)),
            jeq(0x0500, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let lints = lint_program(&p, 0);
        assert!(
            !lints
                .iter()
                .any(|l| matches!(l.kind, LintKind::RedundantMaskedCompare { .. })),
            "{lints:?}"
        );
    }

    #[test]
    fn out_of_range_syscall_cmp_lints() {
        let p = prog(vec![
            Insn::LdAbs(0),
            jeq(5000, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let lints = lint_program(&p, 436);
        assert!(lints.iter().any(|l| l.at == 1
            && l.kind
                == LintKind::OutOfRangeSyscallCmp {
                    value: 5000,
                    capacity: 436
                }));
        // Range guards (jgt/jge) against large constants are not linted.
        let p = prog(vec![
            Insn::LdAbs(0),
            Insn::Jmp {
                cond: Cond::Jge,
                src: Src::K(0x4000_0000),
                jt: 0,
                jf: 1,
            },
            Insn::RetK(KILL),
            Insn::RetK(ALLOW),
        ]);
        assert!(!lint_program(&p, 436)
            .iter()
            .any(|l| matches!(l.kind, LintKind::OutOfRangeSyscallCmp { .. })));
    }

    #[test]
    fn dead_load_is_reported() {
        let p = prog(vec![
            Insn::LdAbs(SeccompData::off_arg_lo(3)), // dead: overwritten
            Insn::LdAbs(0),
            jeq(1, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let lints = lint_program(&p, 0);
        assert!(lints
            .iter()
            .any(|l| l.at == 0 && l.kind == LintKind::DeadLoad { offset: 40 }));
        assert!(
            !lints
                .iter()
                .any(|l| l.at == 1 && matches!(l.kind, LintKind::DeadLoad { .. })),
            "the used load is live"
        );
    }

    #[test]
    fn scratch_memory_is_tracked() {
        // Store the arg word, reload it, compare: mask must survive.
        let p = prog(vec![
            Insn::LdAbs(SeccompData::off_arg_lo(0)),
            Insn::St(3),
            Insn::LdImm(0),
            Insn::LdMem(3),
            jeq(42, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let v = analyze_syscall(&p, 0);
        assert_eq!(v.verdict, Verdict::ArgDependent);
        assert_eq!(v.mask, ArgBitmask::from_raw(0xf));
    }

    #[test]
    fn resolved_branches_are_input_independent() {
        let p = prog(vec![
            Insn::LdImm(7),
            jeq(7, 0, 1), // always taken
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        let resolved = resolved_branches(&p);
        assert_eq!(
            resolved,
            vec![ResolvedBranch { at: 1, taken: true }]
        );
        // An input-dependent branch is never reported.
        let p = prog(vec![
            Insn::LdAbs(0),
            jeq(7, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        assert!(resolved_branches(&p).is_empty());
    }

    #[test]
    fn builder_whitelist_has_no_lints() {
        let mut b = ProgramBuilder::new();
        b.load_nr();
        for nr in [0u32, 1, 39, 231] {
            let next = format!("n{nr}");
            b.jeq_imm(nr, "allow", next.clone());
            b.label(next);
        }
        b.goto("deny");
        b.label("allow");
        b.ret_action(SeccompAction::Allow);
        b.label("deny");
        b.ret_action(SeccompAction::KillProcess);
        let p = b.build().unwrap();
        assert_eq!(lint_program(&p, 436), Vec::new());
        assert_eq!(analyze_syscall(&p, 39).verdict, Verdict::AlwaysAllow);
        assert_eq!(
            analyze_syscall(&p, 2).verdict,
            Verdict::AlwaysDeny(SeccompAction::KillProcess)
        );
    }

    #[test]
    fn verdicts_agree_with_vm_on_handwritten_filter(){
        // Paper Fig. 1's personality filter shape.
        let p = prog(vec![
            Insn::LdAbs(0),
            jeq(135, 0, 4),
            Insn::LdAbs(SeccompData::off_arg_lo(0)),
            jeq(0xffff_ffff, 1, 0),
            jeq(0x0002_0008, 0, 1),
            Insn::RetK(ALLOW),
            Insn::RetK(KILL),
        ]);
        for nr in [0u32, 135, 200] {
            let v = analyze_syscall(&p, nr);
            for arg0 in [0u64, 0xffff_ffff, 0x20008, 7] {
                let data = SeccompData::for_syscall(nr as i32, &[arg0, 0, 0, 0, 0, 0]);
                let out = Interpreter::new(&p).run(&data).unwrap();
                match v.verdict {
                    Verdict::AlwaysAllow => assert_eq!(out.action, SeccompAction::Allow),
                    Verdict::AlwaysDeny(a) => assert_eq!(out.action, a),
                    Verdict::ArgDependent => {}
                }
            }
        }
        let v = analyze_syscall(&p, 135);
        assert_eq!(v.verdict, Verdict::ArgDependent);
        assert_eq!(v.mask, ArgBitmask::from_raw(0xf));
    }

    #[test]
    fn lint_display_is_readable() {
        let lint = Lint {
            at: 3,
            kind: LintKind::DeadBranch { taken: true },
        };
        assert_eq!(lint.to_string(), "warning: insn 3 is always taken");
        let lint = Lint {
            at: 9,
            kind: LintKind::PossibleDivFault,
        };
        assert!(lint.to_string().starts_with("error:"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{Interpreter, SeccompData};
    use proptest::prelude::*;

    fn arb_alu() -> impl Strategy<Value = AluOp> {
        prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::Mul),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Xor),
        ]
    }

    fn arb_cond() -> impl Strategy<Value = Cond> {
        prop_oneof![
            Just(Cond::Jeq),
            Just(Cond::Jgt),
            Just(Cond::Jge),
            Just(Cond::Jset)
        ]
    }

    /// Constants biased toward byte masks and compare values real
    /// filters use, so branches are sometimes decidable.
    fn arb_k() -> impl Strategy<Value = u32> {
        prop_oneof![
            0u32..8,
            Just(0xff),
            Just(0xff00),
            Just(0xffff_ffff),
            any::<u32>()
        ]
    }

    /// Generator biased toward decision-relevant filters: loads of real
    /// fields, masked compares, arithmetic, scratch traffic. Division is
    /// K-only so the VM cannot fault (fault conservatism has its own
    /// unit test).
    fn arb_insn() -> impl Strategy<Value = Insn> {
        prop_oneof![
            (0u32..16).prop_map(|w| Insn::LdAbs(w * 4)),
            arb_k().prop_map(Insn::LdImm),
            (0u32..4).prop_map(Insn::LdMem),
            (0u32..4).prop_map(Insn::St),
            arb_k().prop_map(Insn::LdxImm),
            Just(Insn::Tax),
            Just(Insn::Txa),
            Just(Insn::Neg),
            (arb_alu(), arb_k()).prop_map(|(op, k)| Insn::Alu(op, Src::K(k))),
            arb_alu().prop_map(|op| Insn::Alu(op, Src::X)),
            (1u32..32).prop_map(|k| Insn::Alu(AluOp::Div, Src::K(k))),
            (0u32..31).prop_map(|k| Insn::Alu(AluOp::Lsh, Src::K(k))),
            (0u32..31).prop_map(|k| Insn::Alu(AluOp::Rsh, Src::K(k))),
            (0u32..6).prop_map(Insn::Ja),
            (arb_cond(), arb_k(), 0u8..6, 0u8..6).prop_map(|(cond, k, jt, jf)| Insn::Jmp {
                cond,
                src: Src::K(k),
                jt,
                jf,
            }),
            (arb_cond(), 0u8..6, 0u8..6).prop_map(|(cond, jt, jf)| Insn::Jmp {
                cond,
                src: Src::X,
                jt,
                jf,
            }),
            (0u32..3).prop_map(|k| Insn::RetK(k * 0x7fff_0000)),
        ]
    }

    fn arb_program() -> impl Strategy<Value = Program> {
        proptest::collection::vec(arb_insn(), 1..24).prop_map(|mut body| {
            let len = body.len();
            for (i, insn) in body.iter_mut().enumerate() {
                let room = len - i;
                match insn {
                    Insn::Ja(off) => *off %= room as u32,
                    Insn::Jmp { jt, jf, .. } => {
                        *jt %= room.min(255) as u8;
                        *jf %= room.min(255) as u8;
                    }
                    _ => {}
                }
            }
            body.push(Insn::RetA);
            Program::new(body).expect("constructed valid")
        })
    }

    fn arb_args() -> impl Strategy<Value = [u64; 6]> {
        proptest::array::uniform6(prop_oneof![
            0u64..8,
            Just(0xffu64),
            Just(0xffff_ffffu64),
            any::<u64>()
        ])
    }

    proptest! {
        /// The differential statement of the ISSUE: (1) every concrete
        /// execution's action falls in the analyzer's verdict class, and
        /// (2) flipping any argument byte *outside* the derived mask
        /// never changes the decision.
        #[test]
        fn verdict_and_mask_are_sound(
            prog in arb_program(),
            nr in 0u32..440,
            args in arb_args(),
            flip_bit in 0usize..48,
        ) {
            let v = analyze_syscall(&prog, nr);
            let data = SeccompData::for_syscall(nr as i32, &args);
            let out = Interpreter::new(&prog).run(&data);
            if v.may_fault {
                // Fault conservatism: nothing to check (mask is full,
                // verdict is ArgDependent).
                return Ok(());
            }
            let out = out.expect("no reachable fault was derived");
            match v.verdict {
                Verdict::AlwaysAllow => {
                    prop_assert_eq!(out.action, SeccompAction::Allow);
                    prop_assert_eq!(v.mask, ArgBitmask::EMPTY);
                }
                Verdict::AlwaysDeny(a) => {
                    prop_assert_eq!(out.action, a);
                    prop_assert_eq!(v.mask, ArgBitmask::EMPTY);
                }
                Verdict::ArgDependent => {}
            }
            // Mask soundness: an outside-mask byte flip cannot change
            // the decision (nor the raw return value).
            if v.mask.raw() & (1 << flip_bit) == 0 {
                let (arg, byte) = (flip_bit / 8, flip_bit % 8);
                let mut flipped = args;
                flipped[arg] ^= 0xff << (8 * byte);
                let out2 = Interpreter::new(&prog)
                    .run(&SeccompData::for_syscall(nr as i32, &flipped))
                    .expect("fault-free filter stays fault-free");
                prop_assert_eq!(out.raw, out2.raw, "mask {:?}", v.mask);
            }
        }

        /// Branches reported as resolved are resolved for every input.
        #[test]
        fn resolved_branches_hold_concretely(
            prog in arb_program(),
            nr in 0u32..440,
            args in arb_args(),
        ) {
            let resolved = resolved_branches(&prog);
            if resolved.is_empty() {
                return Ok(());
            }
            // Trace the concrete execution and record branch directions.
            let insns = prog.insns();
            let mut pc = 0usize;
            let mut a = 0u32;
            let mut x = 0u32;
            let mut mem = [0u32; MEMWORDS];
            let data = SeccompData::for_syscall(nr as i32, &args);
            for _ in 0..insns.len() + 1 {
                match insns[pc] {
                    Insn::Jmp { cond, src, jt, jf } => {
                        let operand = match src { Src::K(k) => k, Src::X => x };
                        let taken = match cond {
                            Cond::Jeq => a == operand,
                            Cond::Jgt => a > operand,
                            Cond::Jge => a >= operand,
                            Cond::Jset => a & operand != 0,
                        };
                        if let Some(r) = resolved.iter().find(|r| r.at == pc) {
                            prop_assert_eq!(r.taken, taken, "at {}", pc);
                        }
                        pc += 1 + if taken { jt as usize } else { jf as usize };
                    }
                    Insn::RetK(_) | Insn::RetA => break,
                    Insn::Ja(off) => pc += 1 + off as usize,
                    insn => {
                        match insn {
                            Insn::LdAbs(off) => a = data.load_word(off).unwrap(),
                            Insn::LdImm(k) => a = k,
                            Insn::LdMem(i) => a = mem[i as usize],
                            Insn::LdLen => a = SECCOMP_DATA_SIZE,
                            Insn::LdxImm(k) => x = k,
                            Insn::LdxMem(i) => x = mem[i as usize],
                            Insn::LdxLen => x = SECCOMP_DATA_SIZE,
                            Insn::St(i) => mem[i as usize] = a,
                            Insn::Stx(i) => mem[i as usize] = x,
                            Insn::Alu(op, src) => {
                                let operand = match src { Src::K(k) => k, Src::X => x };
                                a = match op {
                                    AluOp::Add => a.wrapping_add(operand),
                                    AluOp::Sub => a.wrapping_sub(operand),
                                    AluOp::Mul => a.wrapping_mul(operand),
                                    AluOp::Div if operand == 0 => return Ok(()),
                                    AluOp::Div => a / operand,
                                    AluOp::And => a & operand,
                                    AluOp::Or => a | operand,
                                    AluOp::Xor => a ^ operand,
                                    AluOp::Lsh => a.wrapping_shl(operand),
                                    AluOp::Rsh => a.wrapping_shr(operand),
                                };
                            }
                            Insn::Neg => a = a.wrapping_neg(),
                            Insn::Tax => x = a,
                            Insn::Txa => a = x,
                            _ => unreachable!(),
                        }
                        pc += 1;
                    }
                }
            }
        }
    }
}
