//! A small cBPF assembler with labels.
//!
//! Profile compilers (`draco-profiles`) emit long chains of compare-and-
//! branch logic; hand-computing 8-bit relative offsets is error-prone, so
//! this builder resolves symbolic labels to `jt`/`jf` displacements at
//! [`ProgramBuilder::build`] time, inserting islands of unconditional
//! jumps when a displacement exceeds the 255-instruction reach is *not*
//! attempted — the builder reports [`BpfError::JumpTooFar`] instead, and
//! the profile compilers structure their output (trees, chunked chains) to
//! stay within reach, exactly like libseccomp does.

use std::collections::HashMap;

use crate::insn::{Insn, Src};
use crate::{BpfError, Cond, Program, SeccompAction, SeccompData};

/// A pending instruction: either final or awaiting label resolution.
#[derive(Clone, Debug)]
enum Pending {
    Done(Insn),
    CondJump {
        cond: Cond,
        src: Src,
        on_true: String,
        on_false: String,
    },
    Goto(String),
}

/// Builds cBPF programs with symbolic control flow.
///
/// # Example
///
/// ```
/// use draco_bpf::{ProgramBuilder, SeccompAction};
///
/// let mut b = ProgramBuilder::new();
/// b.load_nr();
/// b.jeq_imm(0, "allow", "next");
/// b.label("next");
/// b.jeq_imm(1, "allow", "deny");
/// b.label("allow");
/// b.ret_action(SeccompAction::Allow);
/// b.label("deny");
/// b.ret_action(SeccompAction::KillProcess);
/// let prog = b.build()?;
/// assert_eq!(prog.len(), 5);
/// # Ok::<(), draco_bpf::BpfError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    pending: Vec<Pending>,
    labels: HashMap<String, usize>,
    error: Option<BpfError>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Defines `name` at the current position.
    ///
    /// Duplicate definitions are recorded as an error surfaced by
    /// [`ProgramBuilder::build`].
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        if self
            .labels
            .insert(name.clone(), self.pending.len())
            .is_some()
            && self.error.is_none()
        {
            self.error = Some(BpfError::DuplicateLabel(name));
        }
        self
    }

    /// Emits a raw instruction.
    pub fn insn(&mut self, insn: Insn) -> &mut Self {
        self.pending.push(Pending::Done(insn));
        self
    }

    /// Emits `A = seccomp_data.nr`.
    pub fn load_nr(&mut self) -> &mut Self {
        self.insn(Insn::LdAbs(SeccompData::OFF_NR))
    }

    /// Emits `A = seccomp_data.arch`.
    pub fn load_arch(&mut self) -> &mut Self {
        self.insn(Insn::LdAbs(SeccompData::OFF_ARCH))
    }

    /// Emits `A = low 32 bits of args[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 6`.
    pub fn load_arg_lo(&mut self, i: usize) -> &mut Self {
        assert!(i < 6);
        self.insn(Insn::LdAbs(SeccompData::off_arg_lo(i)))
    }

    /// Emits `A = high 32 bits of args[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 6`.
    pub fn load_arg_hi(&mut self, i: usize) -> &mut Self {
        assert!(i < 6);
        self.insn(Insn::LdAbs(SeccompData::off_arg_hi(i)))
    }

    /// Emits a conditional jump comparing `A` with an immediate.
    pub fn jump_if(
        &mut self,
        cond: Cond,
        k: u32,
        on_true: impl Into<String>,
        on_false: impl Into<String>,
    ) -> &mut Self {
        self.pending.push(Pending::CondJump {
            cond,
            src: Src::K(k),
            on_true: on_true.into(),
            on_false: on_false.into(),
        });
        self
    }

    /// Emits `if A == k goto on_true else goto on_false`.
    pub fn jeq_imm(
        &mut self,
        k: u32,
        on_true: impl Into<String>,
        on_false: impl Into<String>,
    ) -> &mut Self {
        self.jump_if(Cond::Jeq, k, on_true, on_false)
    }

    /// Emits `if A >= k goto on_true else goto on_false`.
    pub fn jge_imm(
        &mut self,
        k: u32,
        on_true: impl Into<String>,
        on_false: impl Into<String>,
    ) -> &mut Self {
        self.jump_if(Cond::Jge, k, on_true, on_false)
    }

    /// Emits `if A > k goto on_true else goto on_false`.
    pub fn jgt_imm(
        &mut self,
        k: u32,
        on_true: impl Into<String>,
        on_false: impl Into<String>,
    ) -> &mut Self {
        self.jump_if(Cond::Jgt, k, on_true, on_false)
    }

    /// Emits an unconditional jump to a label.
    pub fn goto(&mut self, target: impl Into<String>) -> &mut Self {
        self.pending.push(Pending::Goto(target.into()));
        self
    }

    /// Emits `return action`.
    pub fn ret_action(&mut self, action: SeccompAction) -> &mut Self {
        self.insn(Insn::RetK(action.encode()))
    }

    /// Resolves labels and validates the program.
    ///
    /// # Errors
    ///
    /// Returns label errors ([`BpfError::UndefinedLabel`],
    /// [`BpfError::DuplicateLabel`], [`BpfError::JumpTooFar`]) or any
    /// validation failure from [`crate::validate`].
    pub fn build(&self) -> Result<Program, BpfError> {
        if let Some(err) = &self.error {
            return Err(err.clone());
        }
        let resolve = |name: &str| -> Result<usize, BpfError> {
            self.labels
                .get(name)
                .copied()
                .ok_or_else(|| BpfError::UndefinedLabel(name.to_owned()))
        };
        let mut insns = Vec::with_capacity(self.pending.len());
        for (at, pending) in self.pending.iter().enumerate() {
            let next = at + 1;
            let insn = match pending {
                Pending::Done(insn) => *insn,
                Pending::Goto(target) => {
                    let t = resolve(target)?;
                    let distance = t.checked_sub(next).ok_or(BpfError::JumpOutOfBounds {
                        at,
                        target: t,
                    })?;
                    Insn::Ja(distance as u32)
                }
                Pending::CondJump {
                    cond,
                    src,
                    on_true,
                    on_false,
                } => {
                    let disp = |target: &str| -> Result<u8, BpfError> {
                        let t = resolve(target)?;
                        let d = t
                            .checked_sub(next)
                            .ok_or(BpfError::JumpOutOfBounds { at, target: t })?;
                        u8::try_from(d)
                            .map_err(|_| BpfError::JumpTooFar { at, distance: d })
                    };
                    Insn::Jmp {
                        cond: *cond,
                        src: *src,
                        jt: disp(on_true)?,
                        jf: disp(on_false)?,
                    }
                }
            };
            insns.push(insn);
        }
        Program::new(insns)
    }
}

/// A label that means "fall through to the next instruction".
///
/// `jeq_imm(k, FALLTHROUGH, ...)` requires a label defined immediately
/// after the jump; this helper just documents the common idiom of
/// defining a fresh label right after emitting the branch.
pub const FALLTHROUGH: &str = "__next";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interpreter, SeccompData};

    fn run(b: &ProgramBuilder, nr: i32, args: [u64; 6]) -> SeccompAction {
        let prog = b.build().expect("build");
        Interpreter::new(&prog)
            .run(&SeccompData::for_syscall(nr, &args))
            .expect("run")
            .action
    }

    #[test]
    fn builds_two_syscall_whitelist() {
        let mut b = ProgramBuilder::new();
        b.load_nr();
        b.jeq_imm(0, "allow", "n1");
        b.label("n1");
        b.jeq_imm(1, "allow", "deny");
        b.label("allow");
        b.ret_action(SeccompAction::Allow);
        b.label("deny");
        b.ret_action(SeccompAction::KillProcess);

        assert_eq!(run(&b, 0, [0; 6]), SeccompAction::Allow);
        assert_eq!(run(&b, 1, [0; 6]), SeccompAction::Allow);
        assert_eq!(run(&b, 2, [0; 6]), SeccompAction::KillProcess);
    }

    #[test]
    fn goto_resolves_forward() {
        let mut b = ProgramBuilder::new();
        b.goto("end");
        b.ret_action(SeccompAction::KillProcess);
        b.label("end");
        b.ret_action(SeccompAction::Allow);
        assert_eq!(run(&b, 0, [0; 6]), SeccompAction::Allow);
    }

    #[test]
    fn undefined_label_errors() {
        let mut b = ProgramBuilder::new();
        b.load_nr();
        b.jeq_imm(0, "nowhere", "also-nowhere");
        assert!(matches!(b.build(), Err(BpfError::UndefinedLabel(_))));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.ret_action(SeccompAction::Allow);
        b.label("x");
        assert_eq!(b.build(), Err(BpfError::DuplicateLabel("x".into())));
    }

    #[test]
    fn backward_jump_rejected() {
        let mut b = ProgramBuilder::new();
        b.label("top");
        b.load_nr();
        b.goto("top");
        assert!(matches!(
            b.build(),
            Err(BpfError::JumpOutOfBounds { .. })
        ));
    }

    #[test]
    fn too_far_conditional_jump_errors() {
        let mut b = ProgramBuilder::new();
        b.load_nr();
        b.jeq_imm(0, "far", "far");
        for _ in 0..300 {
            b.insn(Insn::LdImm(0));
        }
        b.label("far");
        b.ret_action(SeccompAction::Allow);
        assert!(matches!(b.build(), Err(BpfError::JumpTooFar { .. })));
    }

    #[test]
    fn arg_loads_address_correct_words() {
        let mut b = ProgramBuilder::new();
        b.load_arg_hi(2);
        b.insn(Insn::RetA);
        let prog = b.build().unwrap();
        let out = Interpreter::new(&prog)
            .run(&SeccompData::for_syscall(
                0,
                &[0, 0, 0xaabb_0000_1234_5678, 0, 0, 0],
            ))
            .unwrap();
        assert_eq!(out.raw, 0xaabb_0000);
    }

    #[test]
    fn builder_len_tracks_emissions() {
        let mut b = ProgramBuilder::new();
        assert!(b.is_empty());
        b.load_nr().load_arch();
        assert_eq!(b.len(), 2);
    }
}
