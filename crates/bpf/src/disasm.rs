//! A cBPF disassembler.
//!
//! Renders programs in the classic `bpf_dbg`/`libseccomp --disasm`
//! style: one instruction per line with absolute jump targets, so
//! generated filters can be inspected, diffed, and compared against
//! real-kernel tooling output.

use core::fmt::Write as _;

use crate::insn::{Insn, Src};
use crate::{AluOp, Cond, Program};

/// Disassembles one instruction at `pc` (targets rendered absolute).
pub fn disasm_insn(pc: usize, insn: Insn) -> String {
    let next = pc + 1;
    match insn {
        Insn::LdAbs(k) => format!("ld  [{k}]"),
        Insn::LdImm(k) => format!("ld  #{k:#x}"),
        Insn::LdMem(k) => format!("ld  M[{k}]"),
        Insn::LdLen => "ld  len".to_owned(),
        Insn::LdxImm(k) => format!("ldx #{k:#x}"),
        Insn::LdxMem(k) => format!("ldx M[{k}]"),
        Insn::LdxLen => "ldx len".to_owned(),
        Insn::St(k) => format!("st  M[{k}]"),
        Insn::Stx(k) => format!("stx M[{k}]"),
        Insn::Alu(op, src) => {
            let mnemonic = match op {
                AluOp::Add => "add",
                AluOp::Sub => "sub",
                AluOp::Mul => "mul",
                AluOp::Div => "div",
                AluOp::And => "and",
                AluOp::Or => "or",
                AluOp::Xor => "xor",
                AluOp::Lsh => "lsh",
                AluOp::Rsh => "rsh",
            };
            match src {
                Src::K(k) => format!("{mnemonic} #{k:#x}"),
                Src::X => format!("{mnemonic} x"),
            }
        }
        Insn::Neg => "neg".to_owned(),
        Insn::Ja(off) => format!("ja  {}", next + off as usize),
        Insn::Jmp { cond, src, jt, jf } => {
            let mnemonic = match cond {
                Cond::Jeq => "jeq",
                Cond::Jgt => "jgt",
                Cond::Jge => "jge",
                Cond::Jset => "jset",
            };
            let operand = match src {
                Src::K(k) => format!("#{k:#x}"),
                Src::X => "x".to_owned(),
            };
            format!(
                "{mnemonic} {operand}, {}, {}",
                next + jt as usize,
                next + jf as usize
            )
        }
        Insn::RetK(k) => format!("ret #{k:#x}"),
        Insn::RetA => "ret a".to_owned(),
        Insn::Tax => "tax".to_owned(),
        Insn::Txa => "txa".to_owned(),
    }
}

/// Disassembles a whole program, one numbered line per instruction.
///
/// # Example
///
/// ```
/// use draco_bpf::{disasm, Insn, Program};
///
/// let prog = Program::new(vec![Insn::LdAbs(0), Insn::RetA])?;
/// let text = disasm(&prog);
/// assert_eq!(text, "  0: ld  [0]\n  1: ret a\n");
/// # Ok::<(), draco_bpf::BpfError>(())
/// ```
pub fn disasm(program: &Program) -> String {
    let mut out = String::new();
    for (pc, insn) in program.insns().iter().enumerate() {
        writeln!(out, "{pc:>3}: {}", disasm_insn(pc, *insn)).expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramBuilder, SeccompAction};

    #[test]
    fn disassembles_every_opcode() {
        let cases: Vec<(Insn, &str)> = vec![
            (Insn::LdAbs(16), "ld  [16]"),
            (Insn::LdImm(7), "ld  #0x7"),
            (Insn::LdMem(3), "ld  M[3]"),
            (Insn::LdLen, "ld  len"),
            (Insn::LdxImm(9), "ldx #0x9"),
            (Insn::LdxMem(1), "ldx M[1]"),
            (Insn::LdxLen, "ldx len"),
            (Insn::St(4), "st  M[4]"),
            (Insn::Stx(5), "stx M[5]"),
            (Insn::Alu(AluOp::Add, Src::K(3)), "add #0x3"),
            (Insn::Alu(AluOp::Div, Src::X), "div x"),
            (Insn::Neg, "neg"),
            (Insn::RetA, "ret a"),
            (Insn::Tax, "tax"),
            (Insn::Txa, "txa"),
        ];
        for (insn, want) in cases {
            assert_eq!(disasm_insn(0, insn), want);
        }
    }

    #[test]
    fn jump_targets_are_absolute() {
        assert_eq!(disasm_insn(10, Insn::Ja(5)), "ja  16");
        assert_eq!(
            disasm_insn(
                2,
                Insn::Jmp {
                    cond: Cond::Jeq,
                    src: Src::K(59),
                    jt: 4,
                    jf: 0
                }
            ),
            "jeq #0x3b, 7, 3"
        );
    }

    #[test]
    fn whole_program_listing() {
        let mut b = ProgramBuilder::new();
        b.load_nr();
        b.jeq_imm(39, "allow", "deny");
        b.label("allow");
        b.ret_action(SeccompAction::Allow);
        b.label("deny");
        b.ret_action(SeccompAction::KillProcess);
        let text = disasm(&b.build().unwrap());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "  0: ld  [0]");
        assert_eq!(lines[1], "  1: jeq #0x27, 2, 3");
        assert!(lines[2].contains("ret #0x7fff0000"));
        assert!(lines[3].contains("ret #0x80000000"));
    }
}
