//! The `seccomp_data` structure cBPF filters read from.

use core::fmt;

use draco_syscalls::{SyscallRequest, MAX_ARGS};

/// The x86-64 audit architecture token (`AUDIT_ARCH_X86_64`).
pub const AUDIT_ARCH_X86_64: u32 = 0xc000_003e;

/// Size in bytes of `struct seccomp_data`.
pub const SECCOMP_DATA_SIZE: u32 = 64;

/// The kernel-provided snapshot a seccomp filter inspects.
///
/// Layout (all loads are little-endian 32-bit words at 4-byte offsets, as
/// in Linux):
///
/// | offset | field |
/// |-------:|-------|
/// | 0      | `nr` (i32 system call number) |
/// | 4      | `arch` (u32 audit architecture) |
/// | 8      | `instruction_pointer` (u64) |
/// | 16+8i  | `args[i]` (u64, i in 0..6) |
///
/// # Example
///
/// ```
/// use draco_bpf::SeccompData;
///
/// let d = SeccompData::for_syscall(0, &[3, 0, 4096, 0, 0, 0]);
/// assert_eq!(d.load_word(SeccompData::OFF_NR), Some(0));
/// assert_eq!(d.load_word(SeccompData::off_arg_lo(0)), Some(3));
/// assert_eq!(d.load_word(SeccompData::off_arg_lo(2)), Some(4096));
/// assert_eq!(d.load_word(SeccompData::off_arg_hi(2)), Some(0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeccompData {
    /// System call number.
    pub nr: i32,
    /// Audit architecture.
    pub arch: u32,
    /// Address of the `syscall` instruction.
    pub instruction_pointer: u64,
    /// The six raw argument registers.
    pub args: [u64; MAX_ARGS],
}

impl SeccompData {
    /// Builds the snapshot for an x86-64 system call.
    pub fn for_syscall(nr: i32, args: &[u64; MAX_ARGS]) -> Self {
        SeccompData {
            nr,
            arch: AUDIT_ARCH_X86_64,
            instruction_pointer: 0,
            args: *args,
        }
    }

    /// Builds the snapshot from a decoded [`SyscallRequest`].
    pub fn from_request(req: &SyscallRequest) -> Self {
        SeccompData {
            nr: i32::from(req.id.as_u16()),
            arch: AUDIT_ARCH_X86_64,
            instruction_pointer: req.pc,
            args: req.args.as_array(),
        }
    }

    /// Loads the 32-bit little-endian word at byte `offset`, as
    /// `BPF_LD | BPF_W | BPF_ABS` does.
    ///
    /// Returns `None` for unaligned or out-of-bounds offsets — the same
    /// accesses the kernel validator rejects at load time.
    pub fn load_word(&self, offset: u32) -> Option<u32> {
        // Subtractive bound: `offset + 4` wraps for offsets near
        // `u32::MAX`, letting 0xffff_fffc through to the indexing below.
        if !offset.is_multiple_of(4) || offset > SECCOMP_DATA_SIZE - 4 {
            return None;
        }
        Some(match offset {
            0 => self.nr as u32,
            4 => self.arch,
            8 => (self.instruction_pointer & 0xffff_ffff) as u32,
            12 => (self.instruction_pointer >> 32) as u32,
            _ => {
                let arg = ((offset - 16) / 8) as usize;
                let half = (offset - 16) % 8;
                if half == 0 {
                    (self.args[arg] & 0xffff_ffff) as u32
                } else {
                    (self.args[arg] >> 32) as u32
                }
            }
        })
    }

    /// Byte offset of `nr`.
    pub const OFF_NR: u32 = 0;
    /// Byte offset of `arch`.
    pub const OFF_ARCH: u32 = 4;
    /// Byte offset of the low half of `instruction_pointer`.
    pub const OFF_IP_LO: u32 = 8;
    /// Byte offset of the low 32 bits of argument `i`.
    pub const fn off_arg_lo(i: usize) -> u32 {
        16 + 8 * i as u32
    }
    /// Byte offset of the high 32 bits of argument `i`.
    pub const fn off_arg_hi(i: usize) -> u32 {
        20 + 8 * i as u32
    }
}

impl fmt::Debug for SeccompData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SeccompData {{ nr: {}, arch: {:#x}, ip: {:#x}, args: {:x?} }}",
            self.nr, self.arch, self.instruction_pointer, self.args
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use draco_syscalls::{ArgSet, SyscallId};

    #[test]
    fn field_offsets_match_linux_layout() {
        let d = SeccompData {
            nr: 57,
            arch: AUDIT_ARCH_X86_64,
            instruction_pointer: 0x1122_3344_5566_7788,
            args: [
                0xaaaa_bbbb_cccc_dddd,
                1,
                2,
                3,
                4,
                0x9999_0000_1111_2222,
            ],
        };
        assert_eq!(d.load_word(0), Some(57));
        assert_eq!(d.load_word(4), Some(AUDIT_ARCH_X86_64));
        assert_eq!(d.load_word(8), Some(0x5566_7788));
        assert_eq!(d.load_word(12), Some(0x1122_3344));
        assert_eq!(d.load_word(16), Some(0xcccc_dddd));
        assert_eq!(d.load_word(20), Some(0xaaaa_bbbb));
        assert_eq!(d.load_word(SeccompData::off_arg_lo(5)), Some(0x1111_2222));
        assert_eq!(d.load_word(SeccompData::off_arg_hi(5)), Some(0x9999_0000));
    }

    #[test]
    fn unaligned_and_oob_loads_fail() {
        let d = SeccompData::for_syscall(0, &[0; 6]);
        assert_eq!(d.load_word(1), None);
        assert_eq!(d.load_word(2), None);
        assert_eq!(d.load_word(62), None);
        assert_eq!(d.load_word(64), None);
        assert_eq!(d.load_word(u32::MAX), None);
        assert_eq!(d.load_word(60), Some(0), "last word is in bounds");
    }

    #[test]
    fn aligned_wrap_around_offset_is_rejected() {
        // 0xffff_fffc passes the alignment test and `offset + 4` wraps
        // to 0; the additive bounds check used to let it through to the
        // argument-indexing arm, which panicked. It must be `None`.
        let d = SeccompData::for_syscall(0, &[0; 6]);
        assert_eq!(d.load_word(u32::MAX - 3), None);
        assert_eq!(d.load_word(0x8000_0000), None);
    }

    #[test]
    fn from_request_copies_everything() {
        let req = SyscallRequest::new(
            0x40_0000,
            SyscallId::new(202),
            ArgSet::new([9, 8, 7, 6, 5, 4]),
        );
        let d = SeccompData::from_request(&req);
        assert_eq!(d.nr, 202);
        assert_eq!(d.instruction_pointer, 0x40_0000);
        assert_eq!(d.args, [9, 8, 7, 6, 5, 4]);
        assert_eq!(d.arch, AUDIT_ARCH_X86_64);
    }

    #[test]
    fn negative_nr_roundtrips() {
        let d = SeccompData {
            nr: -1,
            arch: AUDIT_ARCH_X86_64,
            instruction_pointer: 0,
            args: [0; 6],
        };
        assert_eq!(d.load_word(0), Some(u32::MAX));
    }

    #[test]
    fn debug_is_informative() {
        let d = SeccompData::for_syscall(1, &[0; 6]);
        let s = format!("{d:?}");
        assert!(s.contains("nr: 1"));
    }
}
