//! The reference cBPF interpreter.

use core::fmt;

use crate::insn::{Insn, Src, MEMWORDS};
use crate::{BpfError, Program, SeccompAction, SeccompData};

/// The result of running a filter over one system call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// The decoded action.
    pub action: SeccompAction,
    /// The raw 32-bit return value.
    pub raw: u32,
    /// Number of instructions executed — the unit of checking cost in the
    /// paper's evaluation ("the number of instructions needed to execute
    /// the ... profile", §IV-B).
    pub insns_executed: u64,
}

/// Executes a validated [`Program`] against [`SeccompData`] snapshots.
///
/// The interpreter models the kernel's non-JIT path. Because programs are
/// validated at construction, execution cannot fault except for division
/// by a runtime-zero `X`, which mirrors the kernel's defined behaviour of
/// returning 0 from the filter (treated here as an error to surface bugs
/// in generated filters).
///
/// # Example
///
/// ```
/// use draco_bpf::{Insn, Interpreter, Program, SeccompData};
///
/// let prog = Program::new(vec![Insn::LdAbs(0), Insn::RetA])?;
/// let out = Interpreter::new(&prog).run(&SeccompData::for_syscall(7, &[0; 6]))?;
/// assert_eq!(out.raw, 7);
/// assert_eq!(out.insns_executed, 2);
/// # Ok::<(), draco_bpf::BpfError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter for a program.
    pub fn new(program: &'p Program) -> Self {
        Interpreter { program }
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// Returns [`BpfError::RuntimeDivisionByZero`] if an `A / X` executes
    /// with `X == 0`.
    pub fn run(&self, data: &SeccompData) -> Result<Outcome, BpfError> {
        let insns = self.program.insns();
        let mut a: u32 = 0;
        let mut x: u32 = 0;
        let mut mem = [0u32; MEMWORDS];
        let mut pc: usize = 0;
        let mut executed: u64 = 0;

        loop {
            // Validation guarantees pc stays in bounds and terminates.
            let insn = insns[pc];
            executed += 1;
            pc += 1;
            match insn {
                Insn::LdAbs(off) => {
                    // Offsets are validated at load time.
                    a = data.load_word(off).expect("validated load offset");
                }
                Insn::LdImm(k) => a = k,
                Insn::LdMem(i) => a = mem[i as usize],
                Insn::LdLen => a = crate::SECCOMP_DATA_SIZE,
                Insn::LdxImm(k) => x = k,
                Insn::LdxMem(i) => x = mem[i as usize],
                Insn::LdxLen => x = crate::SECCOMP_DATA_SIZE,
                Insn::St(i) => mem[i as usize] = a,
                Insn::Stx(i) => mem[i as usize] = x,
                Insn::Alu(op, src) => {
                    let operand = match src {
                        Src::K(k) => k,
                        Src::X => x,
                    };
                    a = alu(op, a, operand, matches!(src, Src::X))?;
                }
                Insn::Neg => a = a.wrapping_neg(),
                Insn::Ja(off) => pc += off as usize,
                Insn::Jmp { cond, src, jt, jf } => {
                    let operand = match src {
                        Src::K(k) => k,
                        Src::X => x,
                    };
                    let taken = match cond {
                        crate::Cond::Jeq => a == operand,
                        crate::Cond::Jgt => a > operand,
                        crate::Cond::Jge => a >= operand,
                        crate::Cond::Jset => a & operand != 0,
                    };
                    pc += if taken { jt as usize } else { jf as usize };
                }
                Insn::RetK(k) => return Ok(outcome(k, executed)),
                Insn::RetA => return Ok(outcome(a, executed)),
                Insn::Tax => x = a,
                Insn::Txa => a = x,
            }
        }
    }
}

fn alu(op: crate::AluOp, a: u32, operand: u32, from_x: bool) -> Result<u32, BpfError> {
    use crate::AluOp::*;
    Ok(match op {
        Add => a.wrapping_add(operand),
        Sub => a.wrapping_sub(operand),
        Mul => a.wrapping_mul(operand),
        Div => {
            if operand == 0 {
                debug_assert!(from_x, "constant zero divisor is rejected at load");
                return Err(BpfError::RuntimeDivisionByZero);
            }
            a / operand
        }
        And => a & operand,
        Or => a | operand,
        Xor => a ^ operand,
        Lsh => a.wrapping_shl(operand),
        Rsh => a.wrapping_shr(operand),
    })
}

fn outcome(raw: u32, executed: u64) -> Outcome {
    Outcome {
        action: SeccompAction::decode(raw),
        raw,
        insns_executed: executed,
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} after {} insns", self.action, self.insns_executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Cond};

    fn run(insns: Vec<Insn>, data: &SeccompData) -> Outcome {
        let prog = Program::new(insns).expect("valid program");
        Interpreter::new(&prog).run(data).expect("clean run")
    }

    fn data_nr(nr: i32) -> SeccompData {
        SeccompData::for_syscall(nr, &[0; 6])
    }

    #[test]
    fn returns_constant() {
        let out = run(vec![Insn::RetK(SeccompAction::Allow.encode())], &data_nr(0));
        assert_eq!(out.action, SeccompAction::Allow);
        assert_eq!(out.insns_executed, 1);
    }

    #[test]
    fn loads_and_compares_nr() {
        // The canonical 4-instruction whitelist check.
        let insns = vec![
            Insn::LdAbs(SeccompData::OFF_NR),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(39),
                jt: 0,
                jf: 1,
            },
            Insn::RetK(SeccompAction::Allow.encode()),
            Insn::RetK(SeccompAction::KillProcess.encode()),
        ];
        let hit = run(insns.clone(), &data_nr(39));
        assert_eq!(hit.action, SeccompAction::Allow);
        assert_eq!(hit.insns_executed, 3);
        let miss = run(insns, &data_nr(40));
        assert_eq!(miss.action, SeccompAction::KillProcess);
        assert_eq!(miss.insns_executed, 3);
    }

    #[test]
    fn checks_argument_words() {
        // Paper Fig. 1: personality(0xffffffff) or personality(0x20008).
        let insns = vec![
            Insn::LdAbs(SeccompData::OFF_NR),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(135),
                jt: 0,
                jf: 4,
            },
            Insn::LdAbs(SeccompData::off_arg_lo(0)),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(0xffff_ffff),
                jt: 1,
                jf: 0,
            },
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(0x0002_0008),
                jt: 0,
                jf: 1,
            },
            Insn::RetK(SeccompAction::Allow.encode()),
            Insn::RetK(SeccompAction::KillProcess.encode()),
        ];
        let ok1 = run(
            insns.clone(),
            &SeccompData::for_syscall(135, &[0xffff_ffff, 0, 0, 0, 0, 0]),
        );
        assert_eq!(ok1.action, SeccompAction::Allow);
        let ok2 = run(
            insns.clone(),
            &SeccompData::for_syscall(135, &[0x20008, 0, 0, 0, 0, 0]),
        );
        assert_eq!(ok2.action, SeccompAction::Allow);
        let bad = run(
            insns.clone(),
            &SeccompData::for_syscall(135, &[1, 0, 0, 0, 0, 0]),
        );
        assert_eq!(bad.action, SeccompAction::KillProcess);
        let other = run(insns, &data_nr(1));
        assert_eq!(other.action, SeccompAction::KillProcess);
        assert_eq!(other.insns_executed, 3);
    }

    #[test]
    fn alu_operations() {
        let cases: Vec<(AluOp, u32, u32, u32)> = vec![
            (AluOp::Add, 10, 3, 13),
            (AluOp::Sub, 10, 3, 7),
            (AluOp::Mul, 10, 3, 30),
            (AluOp::Div, 10, 3, 3),
            (AluOp::And, 0b1100, 0b1010, 0b1000),
            (AluOp::Or, 0b1100, 0b1010, 0b1110),
            (AluOp::Xor, 0b1100, 0b1010, 0b0110),
            (AluOp::Lsh, 1, 4, 16),
            (AluOp::Rsh, 16, 4, 1),
        ];
        for (op, a0, k, want) in cases {
            let out = run(
                vec![Insn::LdImm(a0), Insn::Alu(op, Src::K(k)), Insn::RetA],
                &data_nr(0),
            );
            assert_eq!(out.raw, want, "{op:?}");
        }
    }

    #[test]
    fn alu_from_x_and_moves() {
        let out = run(
            vec![
                Insn::LdImm(21),
                Insn::Tax,                       // X = 21
                Insn::LdImm(2),                  // A = 2
                Insn::Alu(AluOp::Mul, Src::X),   // A = 42
                Insn::RetA,
            ],
            &data_nr(0),
        );
        assert_eq!(out.raw, 42);
        let out = run(
            vec![Insn::LdxImm(9), Insn::Txa, Insn::RetA],
            &data_nr(0),
        );
        assert_eq!(out.raw, 9);
    }

    #[test]
    fn scratch_memory_roundtrip() {
        let out = run(
            vec![
                Insn::LdImm(123),
                Insn::St(5),
                Insn::LdImm(0),
                Insn::LdMem(5),
                Insn::RetA,
            ],
            &data_nr(0),
        );
        assert_eq!(out.raw, 123);
        let out = run(
            vec![
                Insn::LdxImm(77),
                Insn::Stx(0),
                Insn::LdMem(0),
                Insn::RetA,
            ],
            &data_nr(0),
        );
        assert_eq!(out.raw, 77);
    }

    #[test]
    fn wrapping_arithmetic_and_neg() {
        let out = run(
            vec![
                Insn::LdImm(u32::MAX),
                Insn::Alu(AluOp::Add, Src::K(1)),
                Insn::RetA,
            ],
            &data_nr(0),
        );
        assert_eq!(out.raw, 0);
        let out = run(vec![Insn::LdImm(1), Insn::Neg, Insn::RetA], &data_nr(0));
        assert_eq!(out.raw, u32::MAX);
    }

    #[test]
    fn ja_skips_instructions() {
        let out = run(
            vec![
                Insn::Ja(1),
                Insn::RetK(1), // skipped
                Insn::RetK(2),
            ],
            &data_nr(0),
        );
        assert_eq!(out.raw, 2);
        assert_eq!(out.insns_executed, 2);
    }

    #[test]
    fn runtime_division_by_zero_errors() {
        let prog = Program::new(vec![
            Insn::LdImm(10),
            Insn::LdxImm(0),
            Insn::Alu(AluOp::Div, Src::X),
            Insn::RetA,
        ])
        .unwrap();
        let err = Interpreter::new(&prog).run(&data_nr(0)).unwrap_err();
        assert_eq!(err, BpfError::RuntimeDivisionByZero);
    }

    #[test]
    fn ldlen_loads_struct_size() {
        let out = run(vec![Insn::LdLen, Insn::RetA], &data_nr(0));
        assert_eq!(out.raw, 64);
        let out = run(vec![Insn::LdxLen, Insn::Txa, Insn::RetA], &data_nr(0));
        assert_eq!(out.raw, 64);
    }

    #[test]
    fn jset_tests_bits() {
        let insns = vec![
            Insn::LdAbs(SeccompData::off_arg_lo(1)),
            Insn::Jmp {
                cond: Cond::Jset,
                src: Src::K(0x4),
                jt: 0,
                jf: 1,
            },
            Insn::RetK(1),
            Insn::RetK(0),
        ];
        let set = run(
            insns.clone(),
            &SeccompData::for_syscall(0, &[0, 0x6, 0, 0, 0, 0]),
        );
        assert_eq!(set.raw, 1);
        let clear = run(
            insns,
            &SeccompData::for_syscall(0, &[0, 0x3, 0, 0, 0, 0]),
        );
        assert_eq!(clear.raw, 0);
    }

    #[test]
    fn outcome_display() {
        let out = run(vec![Insn::RetK(SeccompAction::Allow.encode())], &data_nr(0));
        assert_eq!(out.to_string(), "allow after 1 insns");
    }
}
