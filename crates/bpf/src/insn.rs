//! The classic-BPF instruction set (seccomp subset).
//!
//! Instructions are modeled as a typed enum rather than raw
//! `sock_filter` words, but every variant corresponds 1:1 to a Linux
//! encoding and [`Insn::encode`]/[`Insn::decode`] round-trip through the
//! numeric form, so programs can be exchanged with real-kernel tooling.
//! Packet-relative addressing (`BPF_IND`, `BPF_MSH`) is omitted: the
//! seccomp verifier rejects it anyway.

use core::fmt;

/// Maximum program length accepted by the kernel (`BPF_MAXINSNS`).
pub const BPF_MAXINSNS: usize = 4096;

/// Scratch memory slots available to a cBPF program (`BPF_MEMWORDS`).
pub(crate) const MEMWORDS: usize = 16;

/// Operand source for ALU and conditional-jump instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Src {
    /// The immediate constant `k`.
    K(u32),
    /// The index register `X`.
    X,
}

/// Arithmetic/logic operations (`BPF_ALU` class).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    And,
    Or,
    Xor,
    Lsh,
    Rsh,
}

/// Conditional-jump comparisons (`BPF_JMP` class).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Jump if `A == operand`.
    Jeq,
    /// Jump if `A > operand` (unsigned).
    Jgt,
    /// Jump if `A >= operand` (unsigned).
    Jge,
    /// Jump if `A & operand != 0`.
    Jset,
}

/// One classic-BPF instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Insn {
    /// `A = seccomp_data[k..k+4]` (`BPF_LD | BPF_W | BPF_ABS`).
    LdAbs(u32),
    /// `A = k` (`BPF_LD | BPF_IMM`).
    LdImm(u32),
    /// `A = M[k]` (`BPF_LD | BPF_MEM`).
    LdMem(u32),
    /// `A = sizeof(seccomp_data)` (`BPF_LD | BPF_LEN`).
    LdLen,
    /// `X = k` (`BPF_LDX | BPF_IMM`).
    LdxImm(u32),
    /// `X = M[k]` (`BPF_LDX | BPF_MEM`).
    LdxMem(u32),
    /// `X = sizeof(seccomp_data)` (`BPF_LDX | BPF_LEN`).
    LdxLen,
    /// `M[k] = A` (`BPF_ST`).
    St(u32),
    /// `M[k] = X` (`BPF_STX`).
    Stx(u32),
    /// `A = A <op> src` (`BPF_ALU`).
    Alu(AluOp, Src),
    /// `A = -A` (`BPF_ALU | BPF_NEG`).
    Neg,
    /// Unconditional relative jump (`BPF_JMP | BPF_JA`).
    Ja(u32),
    /// Conditional jump: if the comparison holds, skip `jt` instructions,
    /// else skip `jf` (`BPF_JMP | cond`).
    Jmp {
        /// The comparison to evaluate against the accumulator.
        cond: Cond,
        /// Right-hand operand.
        src: Src,
        /// Instructions to skip when the condition is true.
        jt: u8,
        /// Instructions to skip when the condition is false.
        jf: u8,
    },
    /// Return the constant `k` (`BPF_RET | BPF_K`).
    RetK(u32),
    /// Return the accumulator (`BPF_RET | BPF_A`).
    RetA,
    /// `X = A` (`BPF_MISC | BPF_TAX`).
    Tax,
    /// `A = X` (`BPF_MISC | BPF_TXA`).
    Txa,
}

impl Insn {
    /// Encodes to the Linux `sock_filter` quadruple
    /// `(code, jt, jf, k)`.
    pub fn encode(self) -> (u16, u8, u8, u32) {
        use consts::*;
        match self {
            Insn::LdAbs(k) => (LD | W | ABS, 0, 0, k),
            Insn::LdImm(k) => (LD | IMM, 0, 0, k),
            Insn::LdMem(k) => (LD | MEM, 0, 0, k),
            Insn::LdLen => (LD | W | LEN, 0, 0, 0),
            Insn::LdxImm(k) => (LDX | IMM, 0, 0, k),
            Insn::LdxMem(k) => (LDX | MEM, 0, 0, k),
            Insn::LdxLen => (LDX | W | LEN, 0, 0, 0),
            Insn::St(k) => (ST, 0, 0, k),
            Insn::Stx(k) => (STX, 0, 0, k),
            Insn::Alu(op, src) => {
                let op_bits = match op {
                    AluOp::Add => ADD,
                    AluOp::Sub => SUB,
                    AluOp::Mul => MUL,
                    AluOp::Div => DIV,
                    AluOp::And => AND,
                    AluOp::Or => OR,
                    AluOp::Xor => XOR,
                    AluOp::Lsh => LSH,
                    AluOp::Rsh => RSH,
                };
                let (src_bit, k) = match src {
                    Src::K(k) => (SRC_K, k),
                    Src::X => (SRC_X, 0),
                };
                (ALU | op_bits | src_bit, 0, 0, k)
            }
            Insn::Neg => (ALU | NEG, 0, 0, 0),
            Insn::Ja(k) => (JMP | JA, 0, 0, k),
            Insn::Jmp { cond, src, jt, jf } => {
                let cond_bits = match cond {
                    Cond::Jeq => JEQ,
                    Cond::Jgt => JGT,
                    Cond::Jge => JGE,
                    Cond::Jset => JSET,
                };
                let (src_bit, k) = match src {
                    Src::K(k) => (SRC_K, k),
                    Src::X => (SRC_X, 0),
                };
                (JMP | cond_bits | src_bit, jt, jf, k)
            }
            Insn::RetK(k) => (RET | RVAL_K, 0, 0, k),
            Insn::RetA => (RET | RVAL_A, 0, 0, 0),
            Insn::Tax => (MISC | TAX, 0, 0, 0),
            Insn::Txa => (MISC | TXA, 0, 0, 0),
        }
    }

    /// Decodes a Linux `sock_filter` quadruple.
    ///
    /// Returns `None` for encodings outside the seccomp subset.
    pub fn decode(code: u16, jt: u8, jf: u8, k: u32) -> Option<Insn> {
        use consts::*;
        let class = code & 0x07;
        Some(match class {
            LD => match code & !LD {
                x if x == W | ABS => Insn::LdAbs(k),
                IMM => Insn::LdImm(k),
                MEM => Insn::LdMem(k),
                x if x == W | LEN => Insn::LdLen,
                _ => return None,
            },
            LDX => match code & !LDX {
                IMM => Insn::LdxImm(k),
                MEM => Insn::LdxMem(k),
                x if x == W | LEN => Insn::LdxLen,
                _ => return None,
            },
            ST => Insn::St(k),
            STX => Insn::Stx(k),
            ALU => {
                if code & !ALU & !SRC_X == NEG {
                    return Some(Insn::Neg);
                }
                let src = if code & SRC_X != 0 { Src::X } else { Src::K(k) };
                let op = match code & 0xf0 {
                    ADD => AluOp::Add,
                    SUB => AluOp::Sub,
                    MUL => AluOp::Mul,
                    DIV => AluOp::Div,
                    AND => AluOp::And,
                    OR => AluOp::Or,
                    XOR => AluOp::Xor,
                    LSH => AluOp::Lsh,
                    RSH => AluOp::Rsh,
                    _ => return None,
                };
                Insn::Alu(op, src)
            }
            JMP => {
                if code & 0xf0 == JA {
                    return Some(Insn::Ja(k));
                }
                let src = if code & SRC_X != 0 { Src::X } else { Src::K(k) };
                let cond = match code & 0xf0 {
                    JEQ => Cond::Jeq,
                    JGT => Cond::Jgt,
                    JGE => Cond::Jge,
                    JSET => Cond::Jset,
                    _ => return None,
                };
                Insn::Jmp { cond, src, jt, jf }
            }
            RET => match code & 0x18 {
                RVAL_K => Insn::RetK(k),
                RVAL_A => Insn::RetA,
                _ => return None,
            },
            MISC => match code & 0xf8 {
                TAX => Insn::Tax,
                TXA => Insn::Txa,
                _ => return None,
            },
            _ => return None,
        })
    }

    /// True for `RET` instructions (program terminators).
    pub const fn is_ret(self) -> bool {
        matches!(self, Insn::RetK(_) | Insn::RetA)
    }
}

/// Linux numeric encodings for cBPF fields.
mod consts {
    pub(super) const LD: u16 = 0x00;
    pub(super) const LDX: u16 = 0x01;
    pub(super) const ST: u16 = 0x02;
    pub(super) const STX: u16 = 0x03;
    pub(super) const ALU: u16 = 0x04;
    pub(super) const JMP: u16 = 0x05;
    pub(super) const RET: u16 = 0x06;
    pub(super) const MISC: u16 = 0x07;

    pub(super) const W: u16 = 0x00;
    pub(super) const IMM: u16 = 0x00;
    pub(super) const ABS: u16 = 0x20;
    pub(super) const MEM: u16 = 0x60;
    pub(super) const LEN: u16 = 0x80;

    pub(super) const ADD: u16 = 0x00;
    pub(super) const SUB: u16 = 0x10;
    pub(super) const MUL: u16 = 0x20;
    pub(super) const DIV: u16 = 0x30;
    pub(super) const OR: u16 = 0x40;
    pub(super) const AND: u16 = 0x50;
    pub(super) const LSH: u16 = 0x60;
    pub(super) const RSH: u16 = 0x70;
    pub(super) const NEG: u16 = 0x80;
    pub(super) const XOR: u16 = 0xa0;

    pub(super) const JA: u16 = 0x00;
    pub(super) const JEQ: u16 = 0x10;
    pub(super) const JGT: u16 = 0x20;
    pub(super) const JGE: u16 = 0x30;
    pub(super) const JSET: u16 = 0x40;

    pub(super) const SRC_K: u16 = 0x00;
    pub(super) const SRC_X: u16 = 0x08;

    pub(super) const RVAL_K: u16 = 0x00;
    pub(super) const RVAL_A: u16 = 0x10;

    pub(super) const TAX: u16 = 0x00;
    pub(super) const TXA: u16 = 0x80;
}

/// A complete cBPF program (a boxed instruction sequence).
///
/// Construct via [`Program::new`] (validating) or through
/// [`crate::ProgramBuilder`]. The instruction list is immutable once
/// built — exactly like an installed seccomp filter, which cannot change
/// during process runtime (paper §VII-B, data coherence).
#[derive(Clone, PartialEq, Eq)]
pub struct Program {
    insns: Box<[Insn]>,
}

impl Program {
    /// Wraps and validates an instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure (see [`crate::validate`]).
    pub fn new(insns: Vec<Insn>) -> Result<Self, crate::BpfError> {
        crate::validate(&insns)?;
        Ok(Program {
            insns: insns.into_boxed_slice(),
        })
    }

    /// The instructions.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Encodes to raw `sock_filter` quadruples, the wire format the
    /// kernel's `seccomp(2)` consumes — round-trips through
    /// [`Program::from_raw`].
    pub fn to_raw(&self) -> Vec<(u16, u8, u8, u32)> {
        self.insns.iter().map(|i| i.encode()).collect()
    }

    /// Decodes raw `sock_filter` quadruples and validates the result.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BpfError::UnsupportedOpcode`] for encodings
    /// outside the seccomp subset, or any validation failure.
    pub fn from_raw(raw: &[(u16, u8, u8, u32)]) -> Result<Self, crate::BpfError> {
        let insns = raw
            .iter()
            .enumerate()
            .map(|(at, &(code, jt, jf, k))| {
                Insn::decode(code, jt, jf, k)
                    .ok_or(crate::BpfError::UnsupportedOpcode { at, code })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Program::new(insns)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True if the program has no instructions (never, once validated).
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Program({} insns)", self.insns.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(insn: Insn) {
        let (code, jt, jf, k) = insn.encode();
        assert_eq!(Insn::decode(code, jt, jf, k), Some(insn), "{insn:?}");
    }

    #[test]
    fn encode_decode_roundtrips() {
        for insn in [
            Insn::LdAbs(16),
            Insn::LdImm(7),
            Insn::LdMem(3),
            Insn::LdLen,
            Insn::LdxImm(9),
            Insn::LdxMem(1),
            Insn::LdxLen,
            Insn::St(4),
            Insn::Stx(5),
            Insn::Neg,
            Insn::Ja(10),
            Insn::RetK(0x7fff_0000),
            Insn::RetA,
            Insn::Tax,
            Insn::Txa,
        ] {
            roundtrip(insn);
        }
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Lsh,
            AluOp::Rsh,
        ] {
            roundtrip(Insn::Alu(op, Src::K(3)));
            roundtrip(Insn::Alu(op, Src::X));
        }
        for cond in [Cond::Jeq, Cond::Jgt, Cond::Jge, Cond::Jset] {
            roundtrip(Insn::Jmp {
                cond,
                src: Src::K(42),
                jt: 1,
                jf: 2,
            });
            roundtrip(Insn::Jmp {
                cond,
                src: Src::X,
                jt: 0,
                jf: 3,
            });
        }
    }

    #[test]
    fn ld_abs_matches_linux_encoding() {
        // BPF_LD | BPF_W | BPF_ABS == 0x20.
        let (code, _, _, k) = Insn::LdAbs(0).encode();
        assert_eq!(code, 0x20);
        assert_eq!(k, 0);
        // BPF_JMP | BPF_JEQ | BPF_K == 0x15.
        let (code, jt, jf, k) = Insn::Jmp {
            cond: Cond::Jeq,
            src: Src::K(59),
            jt: 4,
            jf: 0,
        }
        .encode();
        assert_eq!(code, 0x15);
        assert_eq!((jt, jf, k), (4, 0, 59));
        // BPF_RET | BPF_K == 0x06.
        assert_eq!(Insn::RetK(0).encode().0, 0x06);
    }

    #[test]
    fn decode_rejects_unknown_codes() {
        assert_eq!(Insn::decode(0xffff, 0, 0, 0), None);
        // BPF_LD | BPF_B | BPF_IND (packet-relative): not in subset.
        assert_eq!(Insn::decode(0x50, 0, 0, 0), None);
    }

    #[test]
    fn is_ret_classification() {
        assert!(Insn::RetK(0).is_ret());
        assert!(Insn::RetA.is_ret());
        assert!(!Insn::LdAbs(0).is_ret());
    }

    #[test]
    fn raw_roundtrip() {
        let prog = Program::new(vec![
            Insn::LdAbs(0),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(39),
                jt: 0,
                jf: 1,
            },
            Insn::RetK(0x7fff_0000),
            Insn::RetK(0x8000_0000),
        ])
        .unwrap();
        let raw = prog.to_raw();
        assert_eq!(raw[0], (0x20, 0, 0, 0));
        assert_eq!(raw[1], (0x15, 0, 1, 39));
        let back = Program::from_raw(&raw).unwrap();
        assert_eq!(back.insns(), prog.insns());
    }

    #[test]
    fn from_raw_rejects_foreign_opcodes() {
        // BPF_LD | BPF_B | BPF_IND: packet-relative, not in the subset.
        let err = Program::from_raw(&[(0x50, 0, 0, 0), (0x06, 0, 0, 0)]).unwrap_err();
        assert!(matches!(
            err,
            crate::BpfError::UnsupportedOpcode { at: 0, code: 0x50 }
        ));
    }

    #[test]
    fn program_debug_shows_len() {
        let p = Program::new(vec![Insn::RetK(0)]).unwrap();
        assert_eq!(format!("{p:?}"), "Program(1 insns)");
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_any_insn() -> impl Strategy<Value = Insn> {
        let alu = prop_oneof![
            Just(AluOp::Add), Just(AluOp::Sub), Just(AluOp::Mul),
            Just(AluOp::Div), Just(AluOp::And), Just(AluOp::Or),
            Just(AluOp::Xor), Just(AluOp::Lsh), Just(AluOp::Rsh),
        ];
        let cond = prop_oneof![
            Just(Cond::Jeq), Just(Cond::Jgt), Just(Cond::Jge), Just(Cond::Jset)
        ];
        prop_oneof![
            any::<u32>().prop_map(Insn::LdAbs),
            any::<u32>().prop_map(Insn::LdImm),
            any::<u32>().prop_map(Insn::LdMem),
            Just(Insn::LdLen),
            any::<u32>().prop_map(Insn::LdxImm),
            any::<u32>().prop_map(Insn::LdxMem),
            Just(Insn::LdxLen),
            any::<u32>().prop_map(Insn::St),
            any::<u32>().prop_map(Insn::Stx),
            (alu.clone(), any::<u32>()).prop_map(|(op, k)| Insn::Alu(op, Src::K(k))),
            alu.prop_map(|op| Insn::Alu(op, Src::X)),
            Just(Insn::Neg),
            any::<u32>().prop_map(Insn::Ja),
            (cond.clone(), any::<u32>(), any::<u8>(), any::<u8>())
                .prop_map(|(cond, k, jt, jf)| Insn::Jmp { cond, src: Src::K(k), jt, jf }),
            (cond, any::<u8>(), any::<u8>())
                .prop_map(|(cond, jt, jf)| Insn::Jmp { cond, src: Src::X, jt, jf }),
            any::<u32>().prop_map(Insn::RetK),
            Just(Insn::RetA),
            Just(Insn::Tax),
            Just(Insn::Txa),
        ]
    }

    proptest! {
        /// Every instruction round-trips through the Linux sock_filter
        /// encoding, except that ALU/JMP X-source forms canonicalize
        /// their unused `k` to 0 (as the kernel does).
        #[test]
        fn encode_decode_identity(insn in arb_any_insn()) {
            let (code, jt, jf, k) = insn.encode();
            let decoded = Insn::decode(code, jt, jf, k).expect("decodes");
            prop_assert_eq!(decoded, insn);
        }

        /// Decoding is total over arbitrary words: it either rejects or
        /// re-encodes to something that decodes to itself (stability).
        #[test]
        fn decode_is_stable(code in any::<u16>(), jt in any::<u8>(), jf in any::<u8>(), k in any::<u32>()) {
            if let Some(insn) = Insn::decode(code, jt, jf, k) {
                let (c2, t2, f2, k2) = insn.encode();
                prop_assert_eq!(Insn::decode(c2, t2, f2, k2), Some(insn));
            }
        }
    }
}
