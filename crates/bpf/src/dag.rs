//! The specializing decision-DAG compiler (paper §XII, ROADMAP item 3).
//!
//! The software miss path pays full cBPF execution on every VAT miss.
//! This module lowers a validated [`Program`] into a [`CompiledDag`]: a
//! sorted dispatch table on the syscall number whose entries are
//! straight-line mask/compare chains over `seccomp_data` words, derived
//! by re-running the abstract domain of [`crate::analysis`] (interval ×
//! known-bits × byte-taint) as a *specializer* instead of a classifier.
//!
//! # How specialization works
//!
//! For each syscall number in the dispatch table the compiler walks the
//! program once with the number pinned to a constant. Every branch the
//! abstract domain decides ([`analysis`]'s `eval_cond` returning a
//! definite answer) is followed at compile time and disappears; every
//! branch it cannot decide becomes a [`Cmp`] node *only if* the
//! accumulator is provably `word(off) & mask` for some data word — a
//! fact tracked by a small symbolic-expression domain riding along with
//! the abstract value. Both arms are then specialized recursively under
//! the branch refinement, so downstream comparisons that the refinement
//! decides also vanish. `RetK` (and `RetA` with a constant accumulator)
//! become deduplicated [`Ret`] leaves.
//!
//! A second, unpinned walk produces the *root* entry used for syscall
//! numbers outside the table; there the number itself is a symbolic
//! word, so the filter's own nr-dispatch tree (linear or binary) is
//! reproduced as runtime compare nodes and the DAG remains total over
//! every input.
//!
//! # Fallback rules
//!
//! Wherever specialization cannot close a path the node becomes
//! [`Fallback`], which re-runs the full program in the pre-decoded VM
//! ([`CompiledFilter`]) from instruction 0. This is sound because the
//! program is deterministic: any input reaching that node would drive
//! the concrete VM through exactly the decided prefix that led there,
//! so a full re-run returns the same verdict. Fallback triggers on:
//!
//! * a conditional whose accumulator is not a (masked) data word and
//!   not a constant — e.g. values mixed through arithmetic;
//! * a conditional against the `X` register when `X` is not constant;
//! * `RetA` with a non-constant accumulator;
//! * a division whose divisor may be zero at run time (the re-run
//!   reproduces the VM's [`BpfError::RuntimeDivisionByZero`] exactly);
//! * compile-time budget exhaustion (step, depth, or node caps), which
//!   degrades the *path* — or, for the node cap, the whole entry — to
//!   fallback rather than failing.
//!
//! Because every leaf is `Ret` or `Fallback`, `CompiledDag::run` is
//! total: it decides exactly like the interpreter on every input,
//! including error outcomes.
//!
//! # Cost accounting
//!
//! [`Outcome::insns_executed`] from a DAG run counts *DAG nodes walked*
//! (plus the VM's own count when a fallback re-runs the filter). A node
//! is one pre-decoded load-mask-compare, so the unit is comparable to —
//! but smaller than — one interpreted instruction; benchmark sections
//! report the two engines side by side rather than mixing the units.
//!
//! # Example
//!
//! ```
//! use draco_bpf::{CompiledDag, Insn, Interpreter, Program, SeccompData};
//!
//! // return the first argument word for syscall 7, else 0
//! let prog = Program::new(vec![
//!     Insn::LdAbs(SeccompData::OFF_NR),
//!     Insn::Jmp { cond: draco_bpf::Cond::Jeq, src: draco_bpf::Src::K(7), jt: 0, jf: 2 },
//!     Insn::LdAbs(SeccompData::off_arg_lo(0)),
//!     Insn::RetA,
//!     Insn::RetK(0),
//! ])?;
//! let dag = CompiledDag::compile(&prog, &[7]);
//! let data = SeccompData::for_syscall(7, &[41, 0, 0, 0, 0, 0]);
//! assert_eq!(dag.run(&data)?.raw, Interpreter::new(&prog).run(&data)?.raw);
//! # Ok::<(), draco_bpf::BpfError>(())
//! ```

use core::fmt;
use std::collections::HashMap;

use crate::analysis::{alu_transfer, eval_cond, refine, AbsVal, Tri};
use crate::insn::{Insn, Src, MEMWORDS};
use crate::vm::Outcome;
use crate::{BpfError, CompiledFilter, Cond, Program, SeccompAction, SeccompData};

/// Per-entry cap on emitted nodes; exceeding it degrades the entry to a
/// single fallback node.
const MAX_NODES_PER_ENTRY: usize = 4096;
/// Per-entry cap on abstractly executed instructions across all paths;
/// paths beyond it degrade to fallback nodes.
const MAX_STEPS_PER_ENTRY: usize = 1 << 17;
/// Cap on specializer recursion depth (one level per undecided branch).
const MAX_DEPTH: usize = 1024;

/// One pre-decoded decision node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DagOp {
    /// Return this raw 32-bit filter value.
    Ret(u32),
    /// `if (word(off) & mask) <cond> k goto t else goto f`.
    Cmp {
        /// Byte offset of the `seccomp_data` word to load.
        off: u32,
        /// Mask applied to the loaded word before comparing.
        mask: u32,
        /// The comparison.
        cond: Cond,
        /// Right-hand constant.
        k: u32,
        /// Node index when the comparison holds.
        t: u32,
        /// Node index when it does not.
        f: u32,
    },
    /// Re-run the full program in the pre-decoded VM.
    Fallback,
}

/// A node plus the source-program pc it was specialized from
/// (provenance, surfaced by [`CompiledDag::dump`]).
#[derive(Clone, Copy, Debug)]
struct Node {
    op: DagOp,
    pc: u32,
}

/// Shape summary of a compiled DAG, for tooling and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DagStats {
    /// Total nodes, including the shared fallback node 0.
    pub nodes: usize,
    /// Compare nodes.
    pub cmp: usize,
    /// Return leaves.
    pub ret: usize,
    /// Fallback leaves.
    pub fallback: usize,
    /// Dispatch-table entries (distinct pinned syscall numbers).
    pub table_entries: usize,
    /// Table entries whose reachable subgraph contains no fallback —
    /// the specializer fully closed them.
    pub closed_entries: usize,
}

impl fmt::Display for DagStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes ({} cmp, {} ret, {} fallback), {}/{} table entries closed",
            self.nodes, self.cmp, self.ret, self.fallback, self.closed_entries, self.table_entries
        )
    }
}

/// A filter lowered to a specialized decision DAG.
///
/// Compile once with [`CompiledDag::compile`], run many times with
/// [`CompiledDag::run`]. Decisions (action, raw value, and errors) are
/// exactly those of [`crate::Interpreter`] on every input; only the
/// instruction-count unit differs (see the module docs).
#[derive(Clone, Debug)]
pub struct CompiledDag {
    nodes: Vec<Node>,
    /// Sorted `(nr-as-u32, entry node)` dispatch table.
    table: Vec<(u32, u32)>,
    /// Entry for syscall numbers outside the table.
    root: u32,
    vm: CompiledFilter,
}

impl CompiledDag {
    /// Specializes `program` for the given syscall numbers.
    ///
    /// `nrs` are the numbers given dedicated dispatch-table entries
    /// (duplicates are removed); any other number routes through the
    /// unpinned root entry. Compilation always succeeds — paths the
    /// specializer cannot close become VM-fallback nodes.
    pub fn compile(program: &Program, nrs: &[u32]) -> CompiledDag {
        // Node 0 is the shared "whole entry degraded" fallback.
        let mut nodes = vec![Node {
            op: DagOp::Fallback,
            pc: 0,
        }];
        let root = build_entry(program, None, &mut nodes).unwrap_or(0);
        let mut sorted: Vec<u32> = nrs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let table: Vec<(u32, u32)> = sorted
            .into_iter()
            .map(|nr| {
                let entry = build_entry(program, Some(nr), &mut nodes).unwrap_or(0);
                (nr, entry)
            })
            .collect();
        CompiledDag {
            nodes,
            table,
            root,
            vm: CompiledFilter::compile(program),
        }
    }

    /// Runs the DAG against one `seccomp_data` snapshot.
    ///
    /// `insns_executed` in the outcome counts DAG nodes walked, plus
    /// the VM's instruction count if a fallback re-ran the program.
    ///
    /// # Errors
    ///
    /// Returns [`BpfError::RuntimeDivisionByZero`] exactly when the
    /// interpreter would (such paths always route through fallback).
    pub fn run(&self, data: &SeccompData) -> Result<Outcome, BpfError> {
        let nr_word = data
            .load_word(SeccompData::OFF_NR)
            .expect("nr offset is always in bounds");
        let mut idx = match self.table.binary_search_by_key(&nr_word, |&(nr, _)| nr) {
            Ok(i) => self.table[i].1,
            Err(_) => self.root,
        };
        let mut steps: u64 = 0;
        loop {
            steps += 1;
            match self.nodes[idx as usize].op {
                DagOp::Ret(raw) => {
                    return Ok(Outcome {
                        action: SeccompAction::decode(raw),
                        raw,
                        insns_executed: steps,
                    })
                }
                DagOp::Cmp {
                    off,
                    mask,
                    cond,
                    k,
                    t,
                    f,
                } => {
                    let w = data.load_word(off).expect("compare offsets are validated") & mask;
                    let taken = match cond {
                        Cond::Jeq => w == k,
                        Cond::Jgt => w > k,
                        Cond::Jge => w >= k,
                        Cond::Jset => w & k != 0,
                    };
                    idx = if taken { t } else { f };
                }
                DagOp::Fallback => {
                    let out = self.vm.run(data)?;
                    return Ok(Outcome {
                        insns_executed: steps + out.insns_executed,
                        ..out
                    });
                }
            }
        }
    }

    /// Shape summary (node kinds, closed-entry count).
    pub fn stats(&self) -> DagStats {
        let mut s = DagStats {
            nodes: self.nodes.len(),
            table_entries: self.table.len(),
            ..DagStats::default()
        };
        for n in &self.nodes {
            match n.op {
                DagOp::Ret(_) => s.ret += 1,
                DagOp::Cmp { .. } => s.cmp += 1,
                DagOp::Fallback => s.fallback += 1,
            }
        }
        s.closed_entries = self
            .table
            .iter()
            .filter(|&&(_, entry)| self.entry_is_closed(entry))
            .count();
        s
    }

    /// True if no fallback node is reachable from the entry serving
    /// `nr` — every input with that number decides inside the DAG.
    pub fn is_closed_for(&self, nr: u32) -> bool {
        let entry = match self.table.binary_search_by_key(&nr, |&(n, _)| n) {
            Ok(i) => self.table[i].1,
            Err(_) => self.root,
        };
        self.entry_is_closed(entry)
    }

    fn entry_is_closed(&self, entry: u32) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![entry];
        while let Some(i) = stack.pop() {
            if core::mem::replace(&mut seen[i as usize], true) {
                continue;
            }
            match self.nodes[i as usize].op {
                DagOp::Fallback => return false,
                DagOp::Ret(_) => {}
                DagOp::Cmp { t, f, .. } => {
                    stack.push(t);
                    stack.push(f);
                }
            }
        }
        true
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the DAG holds only the shared fallback node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Human-readable listing: the dispatch table, then every node with
    /// its source-pc provenance (`[pc N]` — the program counter the
    /// specializer was at when it emitted the node).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "dag: {}", self.stats());
        let _ = writeln!(out, "root -> n{}", self.root);
        for &(nr, entry) in &self.table {
            let _ = writeln!(out, "nr {nr} -> n{entry}");
        }
        for (i, n) in self.nodes.iter().enumerate() {
            match n.op {
                DagOp::Ret(raw) => {
                    let _ = writeln!(
                        out,
                        "n{i}: ret {} (0x{raw:08x}) [pc {}]",
                        SeccompAction::decode(raw),
                        n.pc
                    );
                }
                DagOp::Cmp {
                    off,
                    mask,
                    cond,
                    k,
                    t,
                    f,
                } => {
                    let lhs = if mask == u32::MAX {
                        format!("data[{off}]")
                    } else {
                        format!("data[{off}] & 0x{mask:08x}")
                    };
                    let op = match cond {
                        Cond::Jeq => "==",
                        Cond::Jgt => ">",
                        Cond::Jge => ">=",
                        Cond::Jset => "&",
                    };
                    let _ = writeln!(out, "n{i}: if {lhs} {op} 0x{k:08x} -> n{t} else n{f} [pc {}]", n.pc);
                }
                DagOp::Fallback => {
                    let _ = writeln!(out, "n{i}: fallback -> vm [pc {}]", n.pc);
                }
            }
        }
        out
    }
}

/// Specializes one entry; `None` pins nothing (the root entry). Returns
/// `None` only when the per-entry node budget is exhausted, in which
/// case any partial nodes are rolled back.
fn build_entry(program: &Program, pinned_nr: Option<u32>, nodes: &mut Vec<Node>) -> Option<u32> {
    let start = nodes.len();
    let node_budget = start + MAX_NODES_PER_ENTRY;
    let mut b = Specializer {
        insns: program.insns(),
        pinned_nr,
        nodes,
        ret_cache: HashMap::new(),
        fb_cache: HashMap::new(),
        steps: 0,
        node_budget,
    };
    match b.spec(0, SpecState::entry(), 0) {
        Ok(idx) => Some(idx),
        Err(Overflow) => {
            nodes.truncate(start);
            None
        }
    }
}

/// Node-budget exhaustion; degrades the entry wholesale.
struct Overflow;

/// What the specializer knows the accumulator (or `X`, or a scratch
/// word) *is*, as a computation over the input — alongside the abstract
/// value describing what it can *be*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expr {
    /// Exactly the `seccomp_data` word at this byte offset.
    Field(u32),
    /// Exactly `word(off) & mask`.
    Masked(u32, u32),
    /// Some other computation (only usable if the abstract value is a
    /// constant).
    Opaque,
}

#[derive(Clone, Copy, Debug)]
struct Val {
    abs: AbsVal,
    expr: Expr,
}

impl Val {
    fn constant(v: u32) -> Val {
        Val {
            abs: AbsVal::constant(v),
            expr: Expr::Opaque,
        }
    }

    fn load(off: u32) -> Val {
        Val {
            abs: AbsVal::load(off),
            expr: Expr::Field(off),
        }
    }

    fn opaque_top() -> Val {
        Val {
            abs: AbsVal::top(),
            expr: Expr::Opaque,
        }
    }

    fn as_const(&self) -> Option<u32> {
        self.abs.is_const().then_some(self.abs.lo)
    }

    /// `Some((off, mask))` if the runtime value is exactly
    /// `word(off) & mask` (mask `u32::MAX` for a bare load).
    fn as_word(&self) -> Option<(u32, u32)> {
        match self.expr {
            Expr::Field(off) => Some((off, u32::MAX)),
            Expr::Masked(off, m) => Some((off, m)),
            Expr::Opaque => None,
        }
    }
}

/// Registers plus lazily materialized scratch memory (all-zero until
/// first store, mirroring the VM's initial state).
#[derive(Clone, Debug)]
struct SpecState {
    a: Val,
    x: Val,
    mem: Option<Box<[Val; MEMWORDS]>>,
}

impl SpecState {
    fn entry() -> SpecState {
        SpecState {
            a: Val::constant(0),
            x: Val::constant(0),
            mem: None,
        }
    }

    fn mem_get(&self, i: usize) -> Val {
        match &self.mem {
            Some(slots) => slots[i],
            None => Val::constant(0),
        }
    }

    fn mem_set(&mut self, i: usize, v: Val) {
        self.mem
            .get_or_insert_with(|| Box::new([Val::constant(0); MEMWORDS]))[i] = v;
    }
}

struct Specializer<'a> {
    insns: &'a [Insn],
    pinned_nr: Option<u32>,
    nodes: &'a mut Vec<Node>,
    /// Dedup of `Ret` leaves by raw value, per entry.
    ret_cache: HashMap<u32, u32>,
    /// Dedup of fallback nodes by source pc, per entry.
    fb_cache: HashMap<u32, u32>,
    steps: usize,
    node_budget: usize,
}

impl Specializer<'_> {
    fn push(&mut self, op: DagOp, pc: usize) -> Result<u32, Overflow> {
        if self.nodes.len() >= self.node_budget {
            return Err(Overflow);
        }
        self.nodes.push(Node { op, pc: pc as u32 });
        Ok((self.nodes.len() - 1) as u32)
    }

    fn ret(&mut self, raw: u32, pc: usize) -> Result<u32, Overflow> {
        if let Some(&idx) = self.ret_cache.get(&raw) {
            return Ok(idx);
        }
        let idx = self.push(DagOp::Ret(raw), pc)?;
        self.ret_cache.insert(raw, idx);
        Ok(idx)
    }

    fn fallback(&mut self, pc: usize) -> Result<u32, Overflow> {
        if let Some(&idx) = self.fb_cache.get(&(pc as u32)) {
            return Ok(idx);
        }
        let idx = self.push(DagOp::Fallback, pc)?;
        self.fb_cache.insert(pc as u32, idx);
        Ok(idx)
    }

    /// Specializes from `pc` under `st`, returning the node deciding
    /// every input that can reach this point.
    fn spec(&mut self, mut pc: usize, mut st: SpecState, depth: usize) -> Result<u32, Overflow> {
        if depth > MAX_DEPTH {
            return self.fallback(pc);
        }
        loop {
            self.steps += 1;
            if self.steps > MAX_STEPS_PER_ENTRY {
                return self.fallback(pc);
            }
            // Validation guarantees pc stays in bounds and terminates.
            match self.insns[pc] {
                Insn::LdAbs(off) => {
                    st.a = match self.pinned_nr {
                        Some(nr) if off == SeccompData::OFF_NR => Val::constant(nr),
                        _ => Val::load(off),
                    };
                }
                Insn::LdImm(k) => st.a = Val::constant(k),
                Insn::LdMem(i) => st.a = st.mem_get(i as usize),
                Insn::LdLen => st.a = Val::constant(crate::SECCOMP_DATA_SIZE),
                Insn::LdxImm(k) => st.x = Val::constant(k),
                Insn::LdxMem(i) => st.x = st.mem_get(i as usize),
                Insn::LdxLen => st.x = Val::constant(crate::SECCOMP_DATA_SIZE),
                Insn::St(i) => st.mem_set(i as usize, st.a),
                Insn::Stx(i) => st.mem_set(i as usize, st.x),
                Insn::Alu(op, src) => {
                    let rhs = match src {
                        Src::K(k) => Val::constant(k),
                        Src::X => st.x,
                    };
                    // A divisor that may be zero at run time faults in
                    // the VM; reproduce by re-running it.
                    if matches!(op, crate::AluOp::Div) && rhs.abs.lo == 0 {
                        return self.fallback(pc);
                    }
                    let abs = alu_transfer(op, &st.a.abs, &rhs.abs);
                    let expr = if abs.is_const() {
                        Expr::Opaque
                    } else {
                        and_expr(op, &st.a, &rhs)
                    };
                    st.a = Val { abs, expr };
                }
                Insn::Neg => {
                    st.a = match st.a.as_const() {
                        Some(v) => Val::constant(v.wrapping_neg()),
                        None => Val::opaque_top(),
                    };
                }
                Insn::Ja(off) => {
                    pc += 1 + off as usize;
                    continue;
                }
                Insn::Jmp { cond, src, jt, jf } => {
                    let k = match src {
                        Src::K(k) => k,
                        // A runtime-varying X operand is outside the
                        // compare-node language.
                        Src::X => match st.x.as_const() {
                            Some(v) => v,
                            None => return self.fallback(pc),
                        },
                    };
                    let rhs_abs = AbsVal::constant(k);
                    match eval_cond(cond, &st.a.abs, &rhs_abs) {
                        Tri::True => {
                            pc += 1 + jt as usize;
                            continue;
                        }
                        Tri::False => {
                            pc += 1 + jf as usize;
                            continue;
                        }
                        Tri::Maybe => {
                            let Some((off, mask)) = st.a.as_word() else {
                                return self.fallback(pc);
                            };
                            // Reserve the node before recursing so the
                            // entry's node order follows discovery.
                            let idx = self.push(
                                DagOp::Cmp {
                                    off,
                                    mask,
                                    cond,
                                    k,
                                    t: 0,
                                    f: 0,
                                },
                                pc,
                            )?;
                            let t = match refine(cond, &st.a.abs, k, true) {
                                Some(abs) => {
                                    let mut s = st.clone();
                                    s.a.abs = abs;
                                    self.spec(pc + 1 + jt as usize, s, depth + 1)?
                                }
                                // Refinement proved the edge dead: no
                                // input reaches it, any target is
                                // sound.
                                None => self.fallback(pc)?,
                            };
                            let f = match refine(cond, &st.a.abs, k, false) {
                                Some(abs) => {
                                    st.a.abs = abs;
                                    self.spec(pc + 1 + jf as usize, st, depth + 1)?
                                }
                                None => self.fallback(pc)?,
                            };
                            if let DagOp::Cmp {
                                t: ref mut slot_t,
                                f: ref mut slot_f,
                                ..
                            } = self.nodes[idx as usize].op
                            {
                                *slot_t = t;
                                *slot_f = f;
                            }
                            return Ok(idx);
                        }
                    }
                }
                Insn::RetK(k) => return self.ret(k, pc),
                Insn::RetA => {
                    return match st.a.as_const() {
                        Some(v) => self.ret(v, pc),
                        None => self.fallback(pc),
                    }
                }
                Insn::Tax => st.x = st.a,
                Insn::Txa => st.a = st.x,
            }
            pc += 1;
        }
    }
}

/// Symbolic-expression transfer: only `AND` against a constant keeps a
/// data word in the compare-node language.
fn and_expr(op: crate::AluOp, a: &Val, rhs: &Val) -> Expr {
    if !matches!(op, crate::AluOp::And) {
        return Expr::Opaque;
    }
    let masked = |v: &Val, k: u32| match v.expr {
        Expr::Field(off) => Expr::Masked(off, k),
        Expr::Masked(off, m) => Expr::Masked(off, m & k),
        Expr::Opaque => Expr::Opaque,
    };
    if let Some(k) = rhs.as_const() {
        masked(a, k)
    } else if let Some(k) = a.as_const() {
        masked(rhs, k)
    } else {
        Expr::Opaque
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Interpreter};

    fn whitelist_prog() -> Program {
        // Paper Fig. 1: personality(0xffffffff) or personality(0x20008).
        Program::new(vec![
            Insn::LdAbs(SeccompData::OFF_NR),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(135),
                jt: 0,
                jf: 4,
            },
            Insn::LdAbs(SeccompData::off_arg_lo(0)),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(0xffff_ffff),
                jt: 1,
                jf: 0,
            },
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(0x0002_0008),
                jt: 0,
                jf: 1,
            },
            Insn::RetK(SeccompAction::Allow.encode()),
            Insn::RetK(SeccompAction::KillProcess.encode()),
        ])
        .unwrap()
    }

    fn assert_agrees(dag: &CompiledDag, prog: &Program, data: &SeccompData) {
        let want = Interpreter::new(prog).run(data);
        let got = dag.run(data);
        match (want, got) {
            (Ok(w), Ok(g)) => {
                assert_eq!(w.action, g.action, "action for {data:?}");
                assert_eq!(w.raw, g.raw, "raw for {data:?}");
            }
            (Err(w), Err(g)) => assert_eq!(w, g),
            (w, g) => panic!("divergence for {data:?}: vm={w:?} dag={g:?}"),
        }
    }

    #[test]
    fn whitelist_decisions_match_interpreter() {
        let prog = whitelist_prog();
        let dag = CompiledDag::compile(&prog, &[135]);
        for (nr, arg0) in [
            (135i32, 0xffff_ffffu64),
            (135, 0x20008),
            (135, 1),
            (1, 0),
            (-1, 0),
            (135, u64::MAX),
        ] {
            let data = SeccompData::for_syscall(nr, &[arg0, 0, 0, 0, 0, 0]);
            assert_agrees(&dag, &prog, &data);
        }
    }

    #[test]
    fn pinned_entry_is_closed_and_small() {
        let prog = whitelist_prog();
        let dag = CompiledDag::compile(&prog, &[135]);
        assert!(dag.is_closed_for(135), "pinned entry should close");
        assert!(dag.is_closed_for(7), "root only compares nr + args");
        let s = dag.stats();
        assert_eq!(s.table_entries, 1);
        assert_eq!(s.closed_entries, 1);
        // Pinned chain: two arg compares + allow/kill leaves; root adds
        // the nr compare. Everything fits well under a dozen nodes.
        assert!(s.nodes <= 12, "{s}");
        // The pinned run decides in two compares + leaf, far fewer
        // steps than the interpreter's seven instructions.
        let data = SeccompData::for_syscall(135, &[0x20008, 0, 0, 0, 0, 0]);
        assert!(dag.run(&data).unwrap().insns_executed <= 3);
    }

    #[test]
    fn errno_value_is_preserved() {
        let prog = Program::new(vec![
            Insn::LdAbs(SeccompData::OFF_NR),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(2),
                jt: 0,
                jf: 1,
            },
            Insn::RetK(SeccompAction::Errno(38).encode()),
            Insn::RetK(SeccompAction::Allow.encode()),
        ])
        .unwrap();
        let dag = CompiledDag::compile(&prog, &[2]);
        let out = dag.run(&SeccompData::for_syscall(2, &[0; 6])).unwrap();
        assert_eq!(out.action, SeccompAction::Errno(38));
    }

    #[test]
    fn masked_compares_specialize() {
        // allow iff (arg1.lo & 0xff00) == 0x1200 — an AND chain the
        // expression domain must keep in the compare language.
        let prog = Program::new(vec![
            Insn::LdAbs(SeccompData::off_arg_lo(1)),
            Insn::Alu(AluOp::And, Src::K(0xff00)),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(0x1200),
                jt: 0,
                jf: 1,
            },
            Insn::RetK(SeccompAction::Allow.encode()),
            Insn::RetK(SeccompAction::KillProcess.encode()),
        ])
        .unwrap();
        let dag = CompiledDag::compile(&prog, &[0]);
        assert!(dag.is_closed_for(0));
        for arg1 in [0x1234u64, 0x5634, 0x1200, 0, u64::MAX] {
            let data = SeccompData::for_syscall(0, &[0, arg1, 0, 0, 0, 0]);
            assert_agrees(&dag, &prog, &data);
        }
    }

    #[test]
    fn non_const_reta_falls_back_exactly() {
        let prog = Program::new(vec![Insn::LdAbs(SeccompData::OFF_NR), Insn::RetA]).unwrap();
        let dag = CompiledDag::compile(&prog, &[7]);
        assert!(!dag.is_closed_for(1234));
        for nr in [0, 7, 1234, -1] {
            assert_agrees(&dag, &prog, &SeccompData::for_syscall(nr, &[0; 6]));
        }
        // Pinned entry: nr is a constant, so RetA closes.
        assert!(dag.is_closed_for(7));
    }

    #[test]
    fn possible_division_fault_falls_back() {
        let prog = Program::new(vec![
            Insn::LdAbs(SeccompData::off_arg_lo(0)),
            Insn::Tax,
            Insn::LdImm(10),
            Insn::Alu(AluOp::Div, Src::X),
            Insn::RetA,
        ])
        .unwrap();
        let dag = CompiledDag::compile(&prog, &[0]);
        assert!(!dag.is_closed_for(0));
        let faulting = SeccompData::for_syscall(0, &[0, 0, 0, 0, 0, 0]);
        assert_eq!(dag.run(&faulting).unwrap_err(), BpfError::RuntimeDivisionByZero);
        let fine = SeccompData::for_syscall(0, &[2, 0, 0, 0, 0, 0]);
        assert_eq!(dag.run(&fine).unwrap().raw, 5);
    }

    #[test]
    fn jumps_on_non_constant_x_fall_back_exactly() {
        let prog = Program::new(vec![
            Insn::LdAbs(SeccompData::off_arg_lo(0)),
            Insn::Tax,
            Insn::LdAbs(SeccompData::off_arg_lo(1)),
            Insn::Jmp {
                cond: Cond::Jgt,
                src: Src::X,
                jt: 0,
                jf: 1,
            },
            Insn::RetK(SeccompAction::Allow.encode()),
            Insn::RetK(SeccompAction::Errno(1).encode()),
        ])
        .unwrap();
        let dag = CompiledDag::compile(&prog, &[0]);
        for (a0, a1) in [(1u64, 2u64), (2, 1), (5, 5)] {
            let data = SeccompData::for_syscall(0, &[a0, a1, 0, 0, 0, 0]);
            assert_agrees(&dag, &prog, &data);
        }
    }

    #[test]
    fn ret_leaves_are_deduplicated() {
        // Three paths to the same allow leaf inside one entry.
        let prog = whitelist_prog();
        let dag = CompiledDag::compile(&prog, &[]);
        let rets = dag
            .nodes
            .iter()
            .filter(|n| matches!(n.op, DagOp::Ret(_)))
            .count();
        // allow + kill only, despite multiple source paths.
        assert_eq!(rets, 2);
    }

    #[test]
    fn dump_lists_table_and_provenance() {
        let prog = whitelist_prog();
        let dag = CompiledDag::compile(&prog, &[135]);
        let text = dag.dump();
        assert!(text.contains("nr 135 -> n"), "{text}");
        assert!(text.contains("[pc "), "{text}");
        assert!(text.contains("ret allow"), "{text}");
        assert!(!dag.is_empty());
        assert_eq!(dag.len(), dag.stats().nodes);
    }

    #[test]
    fn scratch_memory_flows_through() {
        let prog = Program::new(vec![
            Insn::LdAbs(SeccompData::off_arg_lo(2)),
            Insn::St(3),
            Insn::LdImm(0),
            Insn::LdMem(3),
            Insn::Jmp {
                cond: Cond::Jset,
                src: Src::K(0x1),
                jt: 0,
                jf: 1,
            },
            Insn::RetK(SeccompAction::Errno(9).encode()),
            Insn::RetK(SeccompAction::Allow.encode()),
        ])
        .unwrap();
        let dag = CompiledDag::compile(&prog, &[0]);
        assert!(dag.is_closed_for(0));
        for arg2 in [0u64, 1, 2, 3] {
            let data = SeccompData::for_syscall(0, &[0, 0, arg2, 0, 0, 0]);
            assert_agrees(&dag, &prog, &data);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{AluOp, Interpreter};
    use proptest::prelude::*;

    /// Strategy: random but *valid* programs (same shape as the
    /// `CompiledFilter` equivalence suite).
    fn arb_program(max_len: usize) -> impl Strategy<Value = Program> {
        proptest::collection::vec(arb_body_insn(), 1..max_len).prop_map(|mut body| {
            let len = body.len();
            for (i, insn) in body.iter_mut().enumerate() {
                let room = len - i;
                match insn {
                    Insn::Ja(off) => *off %= room as u32,
                    Insn::Jmp { jt, jf, .. } => {
                        *jt %= room.min(255) as u8;
                        *jf %= room.min(255) as u8;
                    }
                    _ => {}
                }
            }
            body.push(Insn::RetA);
            Program::new(body).expect("constructed valid")
        })
    }

    fn arb_body_insn() -> impl Strategy<Value = Insn> {
        prop_oneof![
            (0u32..16).prop_map(|w| Insn::LdAbs(w * 4)),
            any::<u32>().prop_map(Insn::LdImm),
            (0u32..16).prop_map(Insn::LdMem),
            any::<u32>().prop_map(Insn::LdxImm),
            (0u32..16).prop_map(Insn::LdxMem),
            (0u32..16).prop_map(Insn::St),
            (0u32..16).prop_map(Insn::Stx),
            (arb_alu_op(), 1u32..1000).prop_map(|(op, k)| Insn::Alu(op, Src::K(k))),
            (arb_shift_op(), 0u32..32).prop_map(|(op, k)| Insn::Alu(op, Src::K(k))),
            arb_alu_op().prop_map(|op| Insn::Alu(op, Src::X)),
            arb_shift_op().prop_map(|op| Insn::Alu(op, Src::X)),
            Just(Insn::Neg),
            Just(Insn::Tax),
            Just(Insn::Txa),
            (0u32..4).prop_map(Insn::Ja),
            (arb_cond(), arb_src(), 0u8..4, 0u8..4).prop_map(|(cond, src, jt, jf)| {
                Insn::Jmp { cond, src, jt, jf }
            }),
        ]
    }

    fn arb_src() -> impl Strategy<Value = Src> {
        prop_oneof![any::<u32>().prop_map(Src::K), Just(Src::X)]
    }

    fn arb_alu_op() -> impl Strategy<Value = AluOp> {
        prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::Mul),
            Just(AluOp::Div),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Xor),
        ]
    }

    /// Shift ops are separate: the validator caps constant shift
    /// amounts at 31.
    fn arb_shift_op() -> impl Strategy<Value = AluOp> {
        prop_oneof![Just(AluOp::Lsh), Just(AluOp::Rsh)]
    }

    fn arb_cond() -> impl Strategy<Value = Cond> {
        prop_oneof![
            Just(Cond::Jeq),
            Just(Cond::Jgt),
            Just(Cond::Jge),
            Just(Cond::Jset)
        ]
    }

    proptest! {
        /// Exact decision equality (action, raw value, and errors)
        /// between the DAG — through both pinned table entries and the
        /// symbolic root — and the interpreter, on arbitrary valid
        /// programs and inputs.
        #[test]
        fn dag_equals_interpreter(
            prog in arb_program(24),
            nr in 0i32..512,
            args in proptest::array::uniform6(any::<u64>()),
        ) {
            let data = SeccompData::for_syscall(nr, &args);
            // Pin the exercised nr (table-entry path) plus two others
            // that force the same input through the symbolic root.
            let dag_pinned = CompiledDag::compile(&prog, &[nr as u32]);
            let dag_root = CompiledDag::compile(&prog, &[]);
            let want = Interpreter::new(&prog).run(&data);
            for dag in [&dag_pinned, &dag_root] {
                match (&want, dag.run(&data)) {
                    (Ok(w), Ok(g)) => {
                        prop_assert_eq!(w.action, g.action);
                        prop_assert_eq!(w.raw, g.raw);
                    }
                    (Err(w), Err(g)) => prop_assert_eq!(w, &g),
                    (w, g) => prop_assert!(false, "divergence: vm={:?} dag={:?}", w, g),
                }
            }
        }
    }
}
