//! A classic-BPF (cBPF) seccomp filter engine.
//!
//! Linux Seccomp expresses system-call policies as classic BPF programs
//! executed at every syscall entry against a [`SeccompData`] snapshot
//! (paper §II-B). The cost Draco eliminates *is* the execution of these
//! programs, so this crate reproduces the whole pipeline in userspace:
//!
//! * [`Insn`] / [`Program`] — the cBPF instruction set (the seccomp subset:
//!   no packet-relative loads) with Linux's numeric encodings;
//! * [`validate`] — the kernel's load-time checker: forward-only jumps,
//!   in-bounds targets, aligned loads, every path ending in `RET`;
//! * [`Interpreter`] — the reference executor, which also counts executed
//!   instructions (the unit of checking cost in the evaluation);
//! * [`CompiledFilter`] — a pre-decoded executor standing in for the
//!   kernel's BPF JIT (2–3× faster than interpretation, paper §IV-A); the
//!   substitution is documented in `DESIGN.md`;
//! * [`CompiledDag`] — a specializing compiler that lowers a filter to
//!   a per-syscall decision DAG of mask/compare nodes derived from the
//!   analysis domain, with exact VM-fallback for paths it cannot close;
//! * [`ProgramBuilder`] — a small assembler with labels, used by
//!   `draco-profiles` to compile whitelists the way libseccomp does;
//! * [`analysis`] — an abstract-interpretation pass that classifies the
//!   filter's decision per syscall, derives the exact argument-byte mask
//!   the decision depends on (paper §V-B), and lints filters for dead or
//!   hazardous code.
//!
//! # Example
//!
//! ```
//! use draco_bpf::{Interpreter, ProgramBuilder, SeccompAction, SeccompData};
//!
//! // Allow getpid (39), kill everything else.
//! let mut b = ProgramBuilder::new();
//! b.load_nr();
//! b.jeq_imm(39, "allow", "deny");
//! b.label("allow");
//! b.ret_action(SeccompAction::Allow);
//! b.label("deny");
//! b.ret_action(SeccompAction::KillProcess);
//! let prog = b.build()?;
//!
//! let data = SeccompData::for_syscall(39, &[0; 6]);
//! let outcome = Interpreter::new(&prog).run(&data)?;
//! assert_eq!(outcome.action, SeccompAction::Allow);
//! # Ok::<(), draco_bpf::BpfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod analysis;
mod action;
mod asm;
mod compiled;
mod dag;
mod data;
pub mod disasm;
mod opt;
pub mod semdiff;
mod insn;
mod validator;
mod vm;

pub use action::SeccompAction;
pub use analysis::{analyze_syscall, lint_program, Lint, LintKind, Severity, SyscallVerdict, Verdict};
pub use asm::{ProgramBuilder, FALLTHROUGH};
pub use compiled::CompiledFilter;
pub use dag::{CompiledDag, DagStats};
pub use data::{SeccompData, AUDIT_ARCH_X86_64, SECCOMP_DATA_SIZE};
pub use disasm::disasm;
pub use insn::{AluOp, Cond, Insn, Program, Src, BPF_MAXINSNS};
pub use opt::{optimize, optimize_analyzed};
pub use validator::{validate, BpfError};
pub use vm::{Interpreter, Outcome};
