//! Pre-decoded filter execution — the userspace stand-in for the kernel
//! BPF JIT.
//!
//! The kernel JIT-compiles installed filters to native code, which the
//! paper reports is worth 2–3× over interpretation (§IV-A). A userspace
//! reproduction cannot emit kernel-mode native code, so this module does
//! the next-faithful thing: it resolves every instruction to a compact
//! operation with *absolute* jump targets and pre-resolved field accessors,
//! then executes a tight loop with no per-step decode. The relative cost
//! relationship (compiled < interpreted, both linear in filter length) is
//! what the evaluation depends on, and that is preserved. Substitution
//! documented in `DESIGN.md` §2.

use core::fmt;

use crate::insn::{Insn, Src, MEMWORDS};
use crate::vm::Outcome;
use crate::{AluOp, BpfError, Cond, Program, SeccompAction, SeccompData};

/// One pre-decoded operation with absolute control flow.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `A = field(data)`, where the field is pre-resolved from the offset.
    LoadField(Field),
    LdImm(u32),
    LdMem(u8),
    LdxImm(u32),
    LdxMem(u8),
    LdLen,
    LdxLen,
    St(u8),
    Stx(u8),
    AluK(AluOp, u32),
    AluX(AluOp),
    Neg,
    Tax,
    Txa,
    /// Unconditional jump to an absolute index.
    Jump(u32),
    /// Conditional branch with absolute targets.
    Branch {
        cond: Cond,
        k: u32,
        use_x: bool,
        target_true: u32,
        target_false: u32,
    },
    RetK(u32),
    RetA,
}

/// A `seccomp_data` field, pre-resolved from a byte offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Field {
    Nr,
    Arch,
    IpLo,
    IpHi,
    ArgLo(u8),
    ArgHi(u8),
}

impl Field {
    fn from_offset(off: u32) -> Field {
        match off {
            0 => Field::Nr,
            4 => Field::Arch,
            8 => Field::IpLo,
            12 => Field::IpHi,
            _ => {
                let arg = ((off - 16) / 8) as u8;
                if (off - 16).is_multiple_of(8) {
                    Field::ArgLo(arg)
                } else {
                    Field::ArgHi(arg)
                }
            }
        }
    }

    #[inline]
    fn read(self, data: &SeccompData) -> u32 {
        match self {
            Field::Nr => data.nr as u32,
            Field::Arch => data.arch,
            Field::IpLo => (data.instruction_pointer & 0xffff_ffff) as u32,
            Field::IpHi => (data.instruction_pointer >> 32) as u32,
            Field::ArgLo(i) => (data.args[i as usize] & 0xffff_ffff) as u32,
            Field::ArgHi(i) => (data.args[i as usize] >> 32) as u32,
        }
    }
}

/// A filter compiled to the pre-decoded form.
///
/// Produces bit-identical outcomes to [`crate::Interpreter`] (property
/// tested), including the executed-instruction count, so either executor
/// can back the cost model.
///
/// # Example
///
/// ```
/// use draco_bpf::{CompiledFilter, Insn, Interpreter, Program, SeccompData};
///
/// let prog = Program::new(vec![Insn::LdAbs(0), Insn::RetA])?;
/// let compiled = CompiledFilter::compile(&prog);
/// let data = SeccompData::for_syscall(42, &[0; 6]);
/// assert_eq!(
///     compiled.run(&data)?,
///     Interpreter::new(&prog).run(&data)?,
/// );
/// # Ok::<(), draco_bpf::BpfError>(())
/// ```
#[derive(Clone)]
pub struct CompiledFilter {
    ops: Box<[Op]>,
}

impl CompiledFilter {
    /// Compiles a validated program.
    pub fn compile(program: &Program) -> Self {
        let ops = program
            .insns()
            .iter()
            .enumerate()
            .map(|(pc, insn)| {
                let next = (pc + 1) as u32;
                match *insn {
                    Insn::LdAbs(off) => Op::LoadField(Field::from_offset(off)),
                    Insn::LdImm(k) => Op::LdImm(k),
                    Insn::LdMem(i) => Op::LdMem(i as u8),
                    Insn::LdLen => Op::LdLen,
                    Insn::LdxImm(k) => Op::LdxImm(k),
                    Insn::LdxMem(i) => Op::LdxMem(i as u8),
                    Insn::LdxLen => Op::LdxLen,
                    Insn::St(i) => Op::St(i as u8),
                    Insn::Stx(i) => Op::Stx(i as u8),
                    Insn::Alu(op, Src::K(k)) => Op::AluK(op, k),
                    Insn::Alu(op, Src::X) => Op::AluX(op),
                    Insn::Neg => Op::Neg,
                    Insn::Tax => Op::Tax,
                    Insn::Txa => Op::Txa,
                    Insn::Ja(off) => Op::Jump(next + off),
                    Insn::Jmp { cond, src, jt, jf } => {
                        let (k, use_x) = match src {
                            Src::K(k) => (k, false),
                            Src::X => (0, true),
                        };
                        Op::Branch {
                            cond,
                            k,
                            use_x,
                            target_true: next + u32::from(jt),
                            target_false: next + u32::from(jf),
                        }
                    }
                    Insn::RetK(k) => Op::RetK(k),
                    Insn::RetA => Op::RetA,
                }
            })
            .collect();
        CompiledFilter { ops }
    }

    /// Number of operations (equals the source program length).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the filter has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Executes the filter.
    ///
    /// # Errors
    ///
    /// Returns [`BpfError::RuntimeDivisionByZero`] if an `A / X` executes
    /// with `X == 0`.
    pub fn run(&self, data: &SeccompData) -> Result<Outcome, BpfError> {
        let mut a: u32 = 0;
        let mut x: u32 = 0;
        let mut mem = [0u32; MEMWORDS];
        let mut pc: u32 = 0;
        let mut executed: u64 = 0;

        loop {
            let op = self.ops[pc as usize];
            executed += 1;
            pc += 1;
            match op {
                Op::LoadField(field) => a = field.read(data),
                Op::LdImm(k) => a = k,
                Op::LdMem(i) => a = mem[i as usize],
                Op::LdLen => a = crate::SECCOMP_DATA_SIZE,
                Op::LdxImm(k) => x = k,
                Op::LdxMem(i) => x = mem[i as usize],
                Op::LdxLen => x = crate::SECCOMP_DATA_SIZE,
                Op::St(i) => mem[i as usize] = a,
                Op::Stx(i) => mem[i as usize] = x,
                Op::AluK(op, k) => a = alu(op, a, k)?,
                Op::AluX(op) => a = alu(op, a, x)?,
                Op::Neg => a = a.wrapping_neg(),
                Op::Tax => x = a,
                Op::Txa => a = x,
                Op::Jump(t) => pc = t,
                Op::Branch {
                    cond,
                    k,
                    use_x,
                    target_true,
                    target_false,
                } => {
                    let operand = if use_x { x } else { k };
                    let taken = match cond {
                        Cond::Jeq => a == operand,
                        Cond::Jgt => a > operand,
                        Cond::Jge => a >= operand,
                        Cond::Jset => a & operand != 0,
                    };
                    pc = if taken { target_true } else { target_false };
                }
                Op::RetK(k) => {
                    return Ok(Outcome {
                        action: SeccompAction::decode(k),
                        raw: k,
                        insns_executed: executed,
                    })
                }
                Op::RetA => {
                    return Ok(Outcome {
                        action: SeccompAction::decode(a),
                        raw: a,
                        insns_executed: executed,
                    })
                }
            }
        }
    }
}

#[inline]
fn alu(op: AluOp, a: u32, operand: u32) -> Result<u32, BpfError> {
    Ok(match op {
        AluOp::Add => a.wrapping_add(operand),
        AluOp::Sub => a.wrapping_sub(operand),
        AluOp::Mul => a.wrapping_mul(operand),
        AluOp::Div => {
            if operand == 0 {
                return Err(BpfError::RuntimeDivisionByZero);
            }
            a / operand
        }
        AluOp::And => a & operand,
        AluOp::Or => a | operand,
        AluOp::Xor => a ^ operand,
        AluOp::Lsh => a.wrapping_shl(operand),
        AluOp::Rsh => a.wrapping_shr(operand),
    })
}

impl fmt::Debug for CompiledFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompiledFilter({} ops)", self.ops.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;

    fn both(insns: Vec<Insn>, data: &SeccompData) -> (Outcome, Outcome) {
        let prog = Program::new(insns).expect("valid");
        let interp = Interpreter::new(&prog).run(data).expect("interp");
        let compiled = CompiledFilter::compile(&prog).run(data).expect("compiled");
        (interp, compiled)
    }

    #[test]
    fn matches_interpreter_on_whitelist() {
        let insns = vec![
            Insn::LdAbs(SeccompData::OFF_NR),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(39),
                jt: 0,
                jf: 1,
            },
            Insn::RetK(SeccompAction::Allow.encode()),
            Insn::RetK(SeccompAction::KillProcess.encode()),
        ];
        for nr in [0, 39, 100] {
            let data = SeccompData::for_syscall(nr, &[0; 6]);
            let (i, c) = both(insns.clone(), &data);
            assert_eq!(i, c, "nr={nr}");
        }
    }

    #[test]
    fn matches_interpreter_on_alu_and_mem() {
        let insns = vec![
            Insn::LdAbs(SeccompData::off_arg_lo(0)),
            Insn::St(0),
            Insn::Alu(AluOp::And, Src::K(0xff)),
            Insn::Tax,
            Insn::LdMem(0),
            Insn::Alu(AluOp::Rsh, Src::K(8)),
            Insn::Alu(AluOp::Add, Src::X),
            Insn::RetA,
        ];
        let data = SeccompData::for_syscall(1, &[0x1234_5678, 0, 0, 0, 0, 0]);
        let (i, c) = both(insns, &data);
        assert_eq!(i, c);
        assert_eq!(c.raw, 0x0012_3456 + 0x78);
    }

    #[test]
    fn division_by_zero_agrees() {
        let prog = Program::new(vec![
            Insn::LdImm(1),
            Insn::LdxImm(0),
            Insn::Alu(AluOp::Div, Src::X),
            Insn::RetA,
        ])
        .unwrap();
        let data = SeccompData::for_syscall(0, &[0; 6]);
        assert_eq!(
            CompiledFilter::compile(&prog).run(&data),
            Interpreter::new(&prog).run(&data)
        );
    }

    #[test]
    fn len_matches_source() {
        let prog = Program::new(vec![Insn::Ja(0), Insn::RetK(0)]).unwrap();
        let c = CompiledFilter::compile(&prog);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(format!("{c:?}"), "CompiledFilter(2 ops)");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::Interpreter;
    use proptest::prelude::*;

    /// Strategy: random but *valid* programs. Jumps always target the
    /// in-bounds range, and the final instruction returns.
    fn arb_program(max_len: usize) -> impl Strategy<Value = Program> {
        proptest::collection::vec(arb_body_insn(), 1..max_len).prop_map(|mut body| {
            let len = body.len();
            // Clamp jump offsets so every target stays in bounds of the
            // final program (body + trailing RET).
            for (i, insn) in body.iter_mut().enumerate() {
                let room = len - i; // distance to the trailing RET
                match insn {
                    Insn::Ja(off) => *off %= room as u32,
                    Insn::Jmp { jt, jf, .. } => {
                        *jt %= room.min(255) as u8;
                        *jf %= room.min(255) as u8;
                    }
                    _ => {}
                }
            }
            body.push(Insn::RetA);
            Program::new(body).expect("constructed valid")
        })
    }

    fn arb_body_insn() -> impl Strategy<Value = Insn> {
        prop_oneof![
            (0u32..16).prop_map(|w| Insn::LdAbs(w * 4)),
            any::<u32>().prop_map(Insn::LdImm),
            (0u32..16).prop_map(Insn::LdMem),
            any::<u32>().prop_map(Insn::LdxImm),
            (0u32..16).prop_map(Insn::LdxMem),
            (0u32..16).prop_map(Insn::St),
            (0u32..16).prop_map(Insn::Stx),
            (arb_alu_op(), 1u32..1000).prop_map(|(op, k)| Insn::Alu(op, Src::K(k))),
            Just(Insn::Neg),
            Just(Insn::Tax),
            Just(Insn::Txa),
            (0u32..4).prop_map(Insn::Ja),
            (arb_cond(), any::<u32>(), 0u8..4, 0u8..4).prop_map(|(cond, k, jt, jf)| {
                Insn::Jmp {
                    cond,
                    src: Src::K(k),
                    jt,
                    jf,
                }
            }),
        ]
    }

    fn arb_alu_op() -> impl Strategy<Value = AluOp> {
        prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::Mul),
            Just(AluOp::Div),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Xor),
        ]
    }

    fn arb_cond() -> impl Strategy<Value = Cond> {
        prop_oneof![
            Just(Cond::Jeq),
            Just(Cond::Jgt),
            Just(Cond::Jge),
            Just(Cond::Jset)
        ]
    }

    proptest! {
        /// The compiled executor is observationally identical to the
        /// interpreter on arbitrary valid programs and inputs.
        #[test]
        fn compiled_equals_interpreter(
            prog in arb_program(24),
            nr in 0i32..512,
            args in proptest::array::uniform6(any::<u64>()),
        ) {
            let data = SeccompData::for_syscall(nr, &args);
            let i = Interpreter::new(&prog).run(&data);
            let c = CompiledFilter::compile(&prog).run(&data);
            prop_assert_eq!(i, c);
        }
    }
}
