//! A peephole optimizer for cBPF programs.
//!
//! Generated filters contain artifacts of label-based codegen:
//! unconditional jumps to unconditional jumps (island hops), `ja 0`
//! no-ops, and unreachable padding. This pass performs
//!
//! 1. **jump threading** — any jump landing on a `ja` is retargeted to
//!    the chain's final destination (conditional displacements only when
//!    the 8-bit reach allows);
//! 2. **no-op elimination** — `ja 0` instructions fall away;
//! 3. **dead-code elimination** — instructions unreachable from entry are
//!    removed and every displacement recomputed.
//!
//! The pass is semantics-preserving (property-tested against the
//! interpreter) and idempotent in practice; the result is re-validated.

use crate::insn::Insn;
use crate::{BpfError, Program};

/// Optimizes a validated program.
///
/// # Errors
///
/// Never fails for programs produced by this crate's builders; the error
/// type exists because the optimized instruction stream is re-validated.
pub fn optimize(program: &Program) -> Result<Program, BpfError> {
    let mut insns: Vec<Insn> = program.insns().to_vec();

    // --- 1. Jump threading (targets are loop-free: offsets are forward).
    let final_target = |insns: &[Insn], mut t: usize| -> usize {
        // Follow ja chains; forward-only offsets guarantee termination.
        while let Some(Insn::Ja(off)) = insns.get(t) {
            t = t + 1 + *off as usize;
        }
        t
    };
    for at in 0..insns.len() {
        match insns[at] {
            Insn::Ja(off) => {
                let t = final_target(&insns, at + 1 + off as usize);
                insns[at] = Insn::Ja((t - at - 1) as u32);
            }
            Insn::Jmp { cond, src, jt, jf } => {
                let thread = |off: u8| -> u8 {
                    let t = final_target(&insns, at + 1 + off as usize);
                    let d = t - at - 1;
                    if d <= u8::MAX as usize {
                        d as u8
                    } else {
                        off
                    }
                };
                insns[at] = Insn::Jmp {
                    cond,
                    src,
                    jt: thread(jt),
                    jf: thread(jf),
                };
            }
            _ => {}
        }
    }

    // --- 2 & 3. Mark reachable instructions; `ja 0` counts as removable.
    let mut reachable = vec![false; insns.len()];
    let mut stack = vec![0usize];
    while let Some(at) = stack.pop() {
        if at >= insns.len() || reachable[at] {
            continue;
        }
        reachable[at] = true;
        match insns[at] {
            Insn::Ja(off) => stack.push(at + 1 + off as usize),
            Insn::Jmp { jt, jf, .. } => {
                stack.push(at + 1 + jt as usize);
                stack.push(at + 1 + jf as usize);
            }
            Insn::RetK(_) | Insn::RetA => {}
            _ => stack.push(at + 1),
        }
    }
    let removable: Vec<bool> = insns
        .iter()
        .zip(&reachable)
        .map(|(insn, &r)| !r || matches!(insn, Insn::Ja(0)))
        .collect();

    // Old index → new index: prefix sums of retained instructions; a
    // removed instruction maps to the next retained one, which is where
    // its fallthrough lands.
    let mut kept_before = vec![0usize; insns.len() + 1];
    for at in 0..insns.len() {
        kept_before[at + 1] = kept_before[at] + usize::from(!removable[at]);
    }
    let map = |old: usize| -> usize {
        // Map to the first retained instruction at or after `old`.
        let mut t = old;
        while t < insns.len() && removable[t] {
            // A removed `ja 0` falls through; a removed unreachable insn
            // can only be "landed on" by fallthrough from another removed
            // one, so skipping forward is sound.
            t += 1;
        }
        kept_before[t]
    };

    let mut out = Vec::with_capacity(kept_before[insns.len()]);
    for at in 0..insns.len() {
        if removable[at] {
            continue;
        }
        let here = map(at);
        let insn = match insns[at] {
            Insn::Ja(off) => {
                let t = map(at + 1 + off as usize);
                Insn::Ja((t - here - 1) as u32)
            }
            Insn::Jmp { cond, src, jt, jf } => Insn::Jmp {
                cond,
                src,
                jt: (map(at + 1 + jt as usize) - here - 1) as u8,
                jf: (map(at + 1 + jf as usize) - here - 1) as u8,
            },
            other => other,
        };
        out.push(insn);
    }
    Program::new(out)
}

/// Optimizes with the abstract interpreter's dead-branch facts layered
/// on top of [`optimize`]'s syntactic passes.
///
/// Conditionals [`crate::analysis::resolved_branches`] proves one-sided
/// for *every* input are rewritten to unconditional jumps, which lets
/// jump threading and DCE collapse code plain graph reachability cannot
/// see is dead. Rewriting exposes new facts (and `optimize` itself is
/// not strictly idempotent — DCE renumbering can mint fresh `ja 0`s), so
/// the combined pass iterates to a fixed point: the returned program is
/// unchanged by both `optimize` and another `optimize_analyzed`.
///
/// # Errors
///
/// As for [`optimize`]: only if re-validation of a rewritten stream
/// fails, which no reachable rewrite can cause.
pub fn optimize_analyzed(program: &Program) -> Result<Program, BpfError> {
    let mut current = optimize(program)?;
    // Each productive iteration shrinks the program or replaces a
    // conditional with `ja`; the bound is a safety net, not a limit any
    // real filter approaches.
    for _ in 0..64 {
        let mut insns: Vec<Insn> = current.insns().to_vec();
        for r in crate::analysis::resolved_branches(&current) {
            if let Insn::Jmp { jt, jf, .. } = insns[r.at] {
                insns[r.at] = Insn::Ja(u32::from(if r.taken { jt } else { jf }));
            }
        }
        let next = optimize(&Program::new(insns)?)?;
        if next.insns() == current.insns() {
            break;
        }
        current = next;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Cond, Insn, Interpreter, ProgramBuilder, SeccompAction, SeccompData, Src,
    };

    fn action_of(p: &Program, nr: i32) -> SeccompAction {
        Interpreter::new(p)
            .run(&SeccompData::for_syscall(nr, &[0; 6]))
            .expect("runs")
            .action
    }

    #[test]
    fn threads_island_hops() {
        // jeq → island(ja → ja → ret allow).
        let prog = Program::new(vec![
            Insn::LdAbs(0),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(1),
                jt: 1,
                jf: 0,
            },
            Insn::RetK(SeccompAction::KillProcess.encode()),
            Insn::Ja(1), // island 1
            Insn::RetK(0xdead),
            Insn::Ja(0), // island 2: no-op hop
            Insn::RetK(SeccompAction::Allow.encode()),
        ])
        .unwrap();
        let opt = optimize(&prog).unwrap();
        assert!(opt.len() < prog.len());
        for nr in [0, 1, 2] {
            assert_eq!(action_of(&prog, nr), action_of(&opt, nr), "nr {nr}");
        }
        // The dead 0xdead return and the `ja 0` are gone.
        assert!(!opt.insns().contains(&Insn::RetK(0xdead)));
        assert!(!opt.insns().contains(&Insn::Ja(0)));
    }

    #[test]
    fn removes_unreachable_tail() {
        let prog = Program::new(vec![
            Insn::RetK(SeccompAction::Allow.encode()),
            Insn::LdAbs(0),
            Insn::RetK(0),
        ])
        .unwrap();
        let opt = optimize(&prog).unwrap();
        assert_eq!(opt.len(), 1);
        assert_eq!(action_of(&opt, 5), SeccompAction::Allow);
    }

    #[test]
    fn respects_conditional_reach() {
        // A jeq whose threaded target would exceed 255 must keep its hop.
        let mut insns = vec![
            Insn::LdAbs(0),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(7),
                jt: 0,
                jf: 1,
            },
            Insn::Ja(301), // hop to the far allow
        ];
        for _ in 0..300 {
            insns.push(Insn::LdImm(0));
        }
        insns.push(Insn::RetK(SeccompAction::KillProcess.encode()));
        insns.push(Insn::RetK(SeccompAction::Allow.encode()));
        let prog = Program::new(insns).unwrap();
        let opt = optimize(&prog).unwrap();
        assert_eq!(action_of(&opt, 7), SeccompAction::Allow);
        assert_eq!(action_of(&opt, 8), SeccompAction::KillProcess);
    }

    #[test]
    fn shrinks_generated_whitelists() {
        let mut b = ProgramBuilder::new();
        b.load_nr();
        for nr in 0..24u32 {
            let next = format!("n{nr}");
            b.jeq_imm(nr, "allow", next.clone());
            b.label(next);
        }
        b.goto("deny");
        b.label("allow");
        b.ret_action(SeccompAction::Allow);
        b.label("deny");
        b.ret_action(SeccompAction::KillProcess);
        let prog = b.build().unwrap();
        let opt = optimize(&prog).unwrap();
        assert!(opt.len() <= prog.len());
        for nr in 0..30 {
            assert_eq!(action_of(&prog, nr), action_of(&opt, nr));
        }
    }

    #[test]
    fn analyzed_pass_removes_semantically_dead_branches() {
        // `jeq 7` after `ld #7` always falls to its taken edge, but the
        // branch is live by graph reachability, so plain optimize keeps
        // all four instructions.
        let prog = Program::new(vec![
            Insn::LdImm(7),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(7),
                jt: 0,
                jf: 1,
            },
            Insn::RetK(SeccompAction::Allow.encode()),
            Insn::RetK(SeccompAction::KillProcess.encode()),
        ])
        .unwrap();
        assert_eq!(optimize(&prog).unwrap().len(), 4);
        let opt = optimize_analyzed(&prog).unwrap();
        assert_eq!(
            opt.insns(),
            &[Insn::LdImm(7), Insn::RetK(SeccompAction::Allow.encode())]
        );
        assert_eq!(action_of(&opt, 12), SeccompAction::Allow);
    }

    #[test]
    fn analyzed_pass_keeps_input_dependent_branches() {
        let prog = Program::new(vec![
            Insn::LdAbs(0),
            Insn::Jmp {
                cond: Cond::Jeq,
                src: Src::K(7),
                jt: 0,
                jf: 1,
            },
            Insn::RetK(SeccompAction::Allow.encode()),
            Insn::RetK(SeccompAction::KillProcess.encode()),
        ])
        .unwrap();
        let opt = optimize_analyzed(&prog).unwrap();
        assert_eq!(opt.insns(), prog.insns());
    }

    #[test]
    fn idempotent() {
        let prog = Program::new(vec![
            Insn::LdAbs(0),
            Insn::Ja(0),
            Insn::RetA,
        ])
        .unwrap();
        let once = optimize(&prog).unwrap();
        let twice = optimize(&once).unwrap();
        assert_eq!(once.insns(), twice.insns());
        assert_eq!(once.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{AluOp, Cond, Insn, Interpreter, SeccompData, Src};
    use proptest::prelude::*;

    fn arb_insn() -> impl Strategy<Value = Insn> {
        prop_oneof![
            (0u32..16).prop_map(|w| Insn::LdAbs(w * 4)),
            any::<u32>().prop_map(Insn::LdImm),
            (0u32..16).prop_map(Insn::LdMem),
            (0u32..16).prop_map(Insn::St),
            (arb_alu(), 1u32..64).prop_map(|(op, k)| Insn::Alu(op, Src::K(k))),
            Just(Insn::Tax),
            Just(Insn::Txa),
            (0u32..6).prop_map(Insn::Ja),
            (arb_cond(), any::<u32>(), 0u8..6, 0u8..6).prop_map(|(cond, k, jt, jf)| {
                Insn::Jmp {
                    cond,
                    src: Src::K(k),
                    jt,
                    jf,
                }
            }),
            (0u32..2).prop_map(|k| Insn::RetK(k * 0x7fff_0000)),
        ]
    }

    fn arb_alu() -> impl Strategy<Value = AluOp> {
        prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Xor)
        ]
    }

    fn arb_cond() -> impl Strategy<Value = Cond> {
        prop_oneof![
            Just(Cond::Jeq),
            Just(Cond::Jgt),
            Just(Cond::Jge),
            Just(Cond::Jset)
        ]
    }

    fn arb_program() -> impl Strategy<Value = Program> {
        proptest::collection::vec(arb_insn(), 1..24).prop_map(|mut body| {
            let len = body.len();
            for (i, insn) in body.iter_mut().enumerate() {
                let room = len - i;
                match insn {
                    Insn::Ja(off) => *off %= room as u32,
                    Insn::Jmp { jt, jf, .. } => {
                        *jt %= room.min(255) as u8;
                        *jf %= room.min(255) as u8;
                    }
                    _ => {}
                }
            }
            body.push(Insn::RetA);
            Program::new(body).expect("constructed valid")
        })
    }

    proptest! {
        /// Optimization never changes observable behaviour and never
        /// grows the program.
        #[test]
        fn optimize_preserves_semantics(
            prog in arb_program(),
            nr in 0i32..64,
            args in proptest::array::uniform6(0u64..8),
        ) {
            let opt = optimize(&prog).expect("optimizes");
            prop_assert!(opt.len() <= prog.len());
            let data = SeccompData::for_syscall(nr, &args);
            let a = Interpreter::new(&prog).run(&data);
            let b = Interpreter::new(&opt).run(&data);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x.action, y.action);
                    prop_assert_eq!(x.raw, y.raw);
                    // Executed-instruction count may only shrink.
                    prop_assert!(y.insns_executed <= x.insns_executed);
                }
                (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
                (a, b) => prop_assert!(false, "divergence: {a:?} vs {b:?}"),
            }
        }

        /// The analysis-assisted pass preserves actions, and its output
        /// is a fixed point of both itself and the plain optimizer —
        /// "optimize remains idempotent under the combined pass".
        #[test]
        fn optimize_analyzed_preserves_actions_and_is_idempotent(
            prog in arb_program(),
            nr in 0i32..64,
            args in proptest::array::uniform6(0u64..8),
        ) {
            let opt = optimize_analyzed(&prog).expect("optimizes");
            prop_assert!(opt.len() <= prog.len());
            let data = SeccompData::for_syscall(nr, &args);
            let a = Interpreter::new(&prog).run(&data);
            let b = Interpreter::new(&opt).run(&data);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x.action, y.action);
                    prop_assert_eq!(x.raw, y.raw);
                }
                (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
                (a, b) => prop_assert!(false, "divergence: {a:?} vs {b:?}"),
            }
            let again = optimize_analyzed(&opt).expect("re-optimizes");
            prop_assert_eq!(again.insns(), opt.insns());
            let plain = optimize(&opt).expect("plain pass");
            prop_assert_eq!(plain.insns(), opt.insns());
        }
    }
}
